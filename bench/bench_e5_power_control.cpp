// Experiment E5 (Theorem 17): the full physical-model pipeline with power
// control. The LP over the tau-weighted conflict graph is rounded, and the
// per-channel winner sets are handed to the power-control substrate; the
// theorem (via [24]) predicts that every winner set admits feasible powers.
// We run it on the Euclidean plane (a fading metric) and on a synthetic
// hub metric (a "general metric" stress case) and report rho(pi), welfare
// and the power-control success rate, which must be 100%.

#include <benchmark/benchmark.h>

#include <cmath>

#include "api/api.hpp"
#include "bench_util.hpp"
#include "gen/scenario.hpp"
#include "graph/inductive_independence.hpp"
#include "models/power_control.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"

namespace {

using namespace ssa;

struct PipelineResult {
  double rho = 0.0;
  double lp_value = 0.0;
  double welfare = 0.0;
  int channel_sets = 0;
  int feasible_sets = 0;
};

PipelineResult run_pipeline(const std::vector<Link>& links,
                            const Metric& metric, int k, std::uint64_t seed) {
  PhysicalParams params;
  ModelGraph model = power_control_conflict_graph(links, metric, params);
  PipelineResult result;
  result.rho = rho_of_ordering(model.graph, model.order).value;
  Rng rng(seed);
  auto valuations = gen::random_valuations(links.size(), k,
                                           gen::ValuationMix::kMixed, 100, rng);
  const AuctionInstance instance(std::move(model.graph), std::move(model.order),
                                 k, std::move(valuations));
  // The tau-weights make rho large, so single rounding passes are sparse;
  // 512 repetitions give non-trivial winner sets to feed power control.
  SolveOptions options;
  options.seed = seed + 1;
  options.pipeline.rounding_repetitions = 512;
  const SolveReport report =
      make_solver("lp-rounding")->solve(instance, options);
  if (report.fractional->status != lp::SolveStatus::kOptimal) return result;
  result.lp_value = *report.lp_upper_bound;
  result.welfare = report.welfare;
  for (int j = 0; j < k; ++j) {
    const std::vector<int> holders = channel_holders(report.allocation, j);
    if (holders.empty()) continue;
    ++result.channel_sets;
    if (solve_power_control(links, metric, params, holders).feasible) {
      ++result.feasible_sets;
    }
  }
  return result;
}

void experiment_table() {
  Table table({"metric", "n", "k", "rho(pi)", "b*", "welfare",
               "power-feasible sets", "all feasible"});
  bool all_ok = true;
  for (const std::size_t n : {16u, 24u, 32u}) {
    for (const int k : {1, 2}) {
      // Fading metric: random links in the plane.
      Rng rng(500 + n);
      const auto planar = gen::random_links(
          n, 20.0 * std::sqrt(static_cast<double>(n)), 1.0, 2.5, rng);
      const auto [links, metric] = to_metric_links(planar);
      const PipelineResult plane = run_pipeline(links, metric, k, 600 + n);
      const bool plane_ok = plane.feasible_sets == plane.channel_sets;
      all_ok = all_ok && plane_ok;
      table.add_row({"plane", Table::integer(static_cast<long long>(n)),
                     Table::integer(k), Table::num(plane.rho, 2),
                     Table::num(plane.lp_value, 1), Table::num(plane.welfare, 1),
                     Table::integer(plane.feasible_sets) + "/" +
                         Table::integer(plane.channel_sets),
                     plane_ok ? "yes" : "NO"});

      // General metric: hub construction, links between consecutive sites.
      const ExplicitMetric hub = make_hub_metric(2 * n, 6, 4.0, 700 + n);
      std::vector<Link> hub_links;
      for (std::size_t i = 0; i + 1 < 2 * n; i += 2) {
        hub_links.push_back(Link{static_cast<int>(i), static_cast<int>(i + 1)});
      }
      const PipelineResult general = run_pipeline(hub_links, hub, k, 800 + n);
      const bool general_ok = general.feasible_sets == general.channel_sets;
      all_ok = all_ok && general_ok;
      table.add_row({"hub", Table::integer(static_cast<long long>(n)),
                     Table::integer(k), Table::num(general.rho, 2),
                     Table::num(general.lp_value, 1),
                     Table::num(general.welfare, 1),
                     Table::integer(general.feasible_sets) + "/" +
                         Table::integer(general.channel_sets),
                     general_ok ? "yes" : "NO"});
    }
  }
  bench::print_experiment(
      "E5 / Theorem 17: rounding + power control, fading vs general metrics",
      table,
      all_ok ? "VERDICT: every rounded winner set admitted a feasible power "
               "assignment (the [24]-style guarantee holds end to end)"
             : "VERDICT: some winner set had NO feasible powers");
}

/// Non-vacuous check of the Theorem 17 invariant: many greedy maximal
/// independent sets of the tau-weighted graph, each fed to power control.
void independent_set_table() {
  Table table({"metric", "n", "sets checked", "mean set size",
               "power-feasible", "all feasible"});
  bool all_ok = true;
  PhysicalParams params;
  for (const std::size_t n : {24u, 40u}) {
    Rng rng(900 + n);
    const auto planar = gen::random_links(
        n, 25.0 * std::sqrt(static_cast<double>(n)), 1.0, 2.5, rng);
    const auto [links, metric] = to_metric_links(planar);
    const ModelGraph model = power_control_conflict_graph(links, metric, params);
    int feasible = 0, checked = 0;
    RunningStats sizes;
    for (int trial = 0; trial < 40; ++trial) {
      // Greedy maximal independent set in a random vertex order.
      Ordering order = identity_ordering(n);
      rng.shuffle(order);
      std::vector<int> set;
      for (int v : order) {
        set.push_back(v);
        if (!model.graph.is_independent(set)) set.pop_back();
      }
      if (set.empty()) continue;
      ++checked;
      sizes.add(static_cast<double>(set.size()));
      if (solve_power_control(links, metric, params, set).feasible) ++feasible;
    }
    const bool ok = feasible == checked;
    all_ok = all_ok && ok;
    table.add_row({"plane", Table::integer(static_cast<long long>(n)),
                   Table::integer(checked), Table::num(sizes.mean(), 1),
                   Table::integer(feasible), ok ? "yes" : "NO"});
  }
  bench::print_experiment(
      "E5b / Theorem 17 invariant: independent sets of the tau-graph vs "
      "power control",
      table,
      all_ok ? "VERDICT: every independent set of the tau-weighted graph "
               "admits feasible powers ([24] Theorem 3 analogue)"
             : "VERDICT: VIOLATION - an independent set had no feasible powers");
}

void bm_power_control_solve(benchmark::State& state) {
  Rng rng(9);
  const auto planar = gen::random_links(
      static_cast<std::size_t>(state.range(0)), 200.0, 1.0, 2.0, rng);
  const auto [links, metric] = to_metric_links(planar);
  PhysicalParams params;
  std::vector<int> set;
  for (std::size_t i = 0; i < links.size(); i += 4) {
    set.push_back(static_cast<int>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_power_control(links, metric, params, set));
  }
}
BENCHMARK(bm_power_control_solve)->Arg(32)->Arg(64)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  return ssa::bench::run(argc, argv, [] {
    experiment_table();
    independent_set_table();
  });
}
