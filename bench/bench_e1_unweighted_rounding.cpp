// Experiment E1 (Theorem 3): approximation quality of Algorithm 1 on
// unweighted conflict graphs. The end-to-end columns (b*, best of 48, the
// proven factor) come from the unified "lp-rounding" solver; the
// single-pass expectation series reuses the solver's fractional payload
// with the raw Algorithm 1 primitive. The claim holds when
// E[welfare] >= b* / (8 sqrt(k) rho).

#include <benchmark/benchmark.h>

#include <string>

#include "api/api.hpp"
#include "bench_util.hpp"
#include "core/rounding.hpp"
#include "gen/scenario.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"

namespace {

using namespace ssa;

AuctionInstance make_instance(const std::string& model, std::size_t n, int k,
                              std::uint64_t seed) {
  if (model == "disk") {
    return gen::make_disk_auction(n, k, gen::ValuationMix::kMixed, seed);
  }
  return gen::make_protocol_auction(n, k, 1.0, gen::ValuationMix::kMixed, seed);
}

void experiment_table() {
  Table table({"model", "n", "k", "rho(pi)", "b*", "E[round]", "best48",
               "b*/E[round]", "8*sqrt(k)*rho", "bound ok"});
  bool all_ok = true;
  const auto solver = make_solver("lp-rounding");
  SolveOptions options;
  options.seed = 42;
  options.pipeline.rounding_repetitions = 48;
  options.pipeline.explicit_limit = 6;  // demand-oracle LP beyond k = 6
  for (const std::string model : {"disk", "protocol"}) {
    for (const std::size_t n : {20u, 40u, 80u}) {
      for (const int k : {1, 2, 4, 8}) {
        const AuctionInstance instance = make_instance(model, n, k, 7u * n + k);
        const SolveReport report = solver->solve(instance, options);
        if (report.fractional->status != lp::SolveStatus::kOptimal) continue;
        Rng rng(1000 + n + static_cast<std::uint64_t>(k));
        RunningStats single;
        for (int trial = 0; trial < 40; ++trial) {
          single.add(instance.welfare(
              round_unweighted(instance, *report.fractional, rng)));
        }
        const double b_star = *report.lp_upper_bound;
        // report.factor is the paper's 8 sqrt(k) rho for unweighted graphs;
        // report.guarantee = b*/factor is the proven expectation bound.
        const bool ok = single.mean() >= report.guarantee - 1e-9;
        all_ok = all_ok && ok;
        table.add_row({model, Table::integer(static_cast<long long>(n)),
                       Table::integer(k), Table::num(instance.rho(), 1),
                       Table::num(b_star, 1), Table::num(single.mean(), 1),
                       Table::num(report.welfare, 1),
                       Table::num(single.mean() > 0 ? b_star / single.mean()
                                                    : 0.0,
                                  2),
                       Table::num(report.factor, 1), ok ? "yes" : "NO"});
      }
    }
  }
  bench::print_experiment(
      "E1 / Theorem 3: Algorithm 1 on unweighted conflict graphs", table,
      all_ok ? "VERDICT: E[welfare] >= b*/(8 sqrt(k) rho) on every row "
               "(bound holds; realized ratios are far smaller than the "
               "worst-case factor)"
             : "VERDICT: bound VIOLATED on some row");
}

void bm_lp_solve(benchmark::State& state) {
  const AuctionInstance instance = make_instance(
      "disk", static_cast<std::size_t>(state.range(0)),
      static_cast<int>(state.range(1)), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_auction_lp(instance));
  }
}
BENCHMARK(bm_lp_solve)->Args({20, 2})->Args({40, 2})->Args({40, 4});

void bm_rounding_pass(benchmark::State& state) {
  const AuctionInstance instance = make_instance(
      "disk", static_cast<std::size_t>(state.range(0)), 4, 9);
  const FractionalSolution lp = solve_auction_lp(instance);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(round_unweighted(instance, lp, rng));
  }
}
BENCHMARK(bm_rounding_pass)->Arg(20)->Arg(40)->Arg(80);

}  // namespace

int main(int argc, char** argv) {
  return ssa::bench::run(argc, argv, experiment_table);
}
