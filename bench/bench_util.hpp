#pragma once
/// \file bench_util.hpp
/// Shared helpers for the experiment binaries: every bench prints the
/// series it measures as a table (these are the "rows" EXPERIMENTS.md
/// records) and then runs its google-benchmark timings.

#include <benchmark/benchmark.h>

#include <iostream>

#include "support/table.hpp"

namespace ssa::bench {

/// Prints the experiment table and a one-line verdict.
inline void print_experiment(const std::string& title, const Table& table,
                             const std::string& verdict) {
  table.print(std::cout, title);
  if (!verdict.empty()) std::cout << verdict << "\n";
  std::cout << std::endl;
}

/// Runs the experiment table printer, then google-benchmark.
/// Usage from main: return ssa::bench::run(argc, argv, [] { ...tables... });
template <typename TableFn>
int run(int argc, char** argv, const TableFn& tables) {
  tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace ssa::bench
