#pragma once
/// \file bench_util.hpp
/// Shared helpers for the experiment binaries: every bench prints the
/// series it measures as a table (these are the "rows" EXPERIMENTS.md
/// records) and then runs its google-benchmark timings. Benches that call
/// record() additionally emit a machine-readable BENCH_<name>.json next to
/// the working directory, so the perf trajectory (wall time, welfare,
/// solver key per measured row) can be tracked across PRs by tooling
/// instead of table-scraping.

#include <benchmark/benchmark.h>

#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "api/solver.hpp"
#include "support/table.hpp"

namespace ssa::bench {

/// Build provenance stamped into every BENCH_*.json: archived records must
/// stay attributable to the code and build flavor that produced them (a
/// Debug or sanitizer number is not comparable to a Release one). The
/// CMake bench targets define SSA_BUILD_TYPE/SSA_GIT_SHA; a bare compile
/// falls back to the NDEBUG-derived flavor and "unknown".
inline std::string build_type() {
#ifdef SSA_BUILD_TYPE
  return SSA_BUILD_TYPE;
#elif defined(NDEBUG)
  return "Release";
#else
  return "Debug";
#endif
}

inline std::string git_sha() {
#ifdef SSA_GIT_SHA
  return SSA_GIT_SHA;
#else
  return "unknown";
#endif
}

/// Wall-clock UTC timestamp in ISO-8601 ("2026-08-08T12:34:56Z"), taken
/// when the JSON is written (i.e. after the measured phases ran).
inline std::string iso_timestamp_utc() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buffer[32];
  std::strftime(buffer, sizeof buffer, "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buffer;
}

/// One machine-readable measurement row.
struct BenchRecord {
  std::string name;           ///< row identifier, e.g. "e11/shards=4"
  double wall_seconds = 0.0;  ///< measured wall time of the row
  double welfare = 0.0;       ///< welfare the row produced (0 if n/a)
  std::string solver;         ///< registry key (or "auto"/"mixed")
  /// Free-form extra metrics (requests/sec, cache hit rate, ...).
  std::vector<std::pair<std::string, double>> extra;
};

namespace detail {

inline std::vector<BenchRecord>& records() {
  static std::vector<BenchRecord> storage;
  return storage;
}

/// Minimal JSON string escaping (the fields we emit are ASCII labels).
inline std::string json_escaped(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

/// Writes BENCH_<basename(argv0)>.json into the working directory; no file
/// when the bench recorded nothing.
inline void write_json(const char* argv0) {
  if (records().empty()) return;
  std::string name(argv0 == nullptr ? "bench" : argv0);
  if (const auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  const std::string path = "BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_util: cannot write " << path << "\n";
    return;
  }
  out.precision(12);  // welfare sums need more than the default 6 digits
  out << "{\n  \"bench\": \"" << json_escaped(name) << "\",\n  \"build_type\": \""
      << json_escaped(build_type()) << "\",\n  \"git_sha\": \""
      << json_escaped(git_sha()) << "\",\n  \"timestamp\": \""
      << json_escaped(iso_timestamp_utc()) << "\",\n  \"records\": [";
  bool first_record = true;
  for (const BenchRecord& record : records()) {
    out << (first_record ? "\n" : ",\n");
    first_record = false;
    out << "    {\"name\": \"" << json_escaped(record.name)
        << "\", \"wall_seconds\": " << record.wall_seconds
        << ", \"welfare\": " << record.welfare << ", \"solver\": \""
        << json_escaped(record.solver) << "\"";
    for (const auto& [key, value] : record.extra) {
      out << ", \"" << json_escaped(key) << "\": " << value;
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  std::cout << "wrote " << path << " (" << records().size() << " records)\n";
}

}  // namespace detail

/// Registers one measurement row for the BENCH_*.json emitted by run().
inline void record(BenchRecord record) {
  detail::records().push_back(std::move(record));
}

/// Registers a row straight from a SolveReport: wall time, welfare and the
/// solver key (solver_selected when the execution layer filled it) come
/// from the report, extra metrics ride along. This is the one helper every
/// bench that measures solves goes through (e7/e10/e11), so the JSON rows
/// stay structurally identical across experiments instead of each bench
/// hand-assembling its own BenchRecord.
inline void record_report(
    std::string name, const SolveReport& report,
    std::vector<std::pair<std::string, double>> extra = {}) {
  record(BenchRecord{
      std::move(name), report.wall_time_seconds, report.welfare,
      report.solver_selected.empty() ? report.solver : report.solver_selected,
      std::move(extra)});
}

/// Prints the experiment table and a one-line verdict.
inline void print_experiment(const std::string& title, const Table& table,
                             const std::string& verdict) {
  table.print(std::cout, title);
  if (!verdict.empty()) std::cout << verdict << "\n";
  std::cout << std::endl;
}

/// Runs the experiment table printer, flushes the JSON records, then runs
/// google-benchmark.
/// Usage from main: return ssa::bench::run(argc, argv, [] { ...tables... });
template <typename TableFn>
int run(int argc, char** argv, const TableFn& tables) {
  tables();
  detail::write_json(argc > 0 ? argv[0] : nullptr);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace ssa::bench
