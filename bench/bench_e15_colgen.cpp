// Experiment E15: the decomposition solve path (asymmetric-colgen) under
// churn, cold vs column-pool warm starts.
//
// The workload mirrors E14 one layer up: the same asymmetric structure
// (per-channel graphs, ordering, rho, valuation supports) arrives over and
// over with rescaled bundle values -- but here the instances sit BEYOND the
// k <= 12 explicit-enumeration cap, so the only LP path is the restricted
// master + pricing oracle. Cold, every arrival regrows its column set from
// nothing, one oracle round at a time; warm, the per-structure column pool
// (service/column_pool_cache.hpp, keyed by the structural fingerprint)
// seeds the restricted master with the donor's generated columns and the
// oracle usually just certifies optimality in a single round.
//
//   e15/churn/*  -- S scenarios (k = 13/14, past the explicit cap) x V
//                   support-preserving variants, solved cold (no pool) and
//                   warm (ColumnPoolCache, the service's exact key path).
//                   Reports per scenario: warm-hit rate, total oracle
//                   rounds and master pivots cold vs warm, the pivot and
//                   round ratios, generated-column totals, and whether
//                   EVERY warm payload was bitwise identical to its cold
//                   twin (wire::reports_payload_equal) -- pool reuse is a
//                   latency lever, never a result change.
//   BM_*         -- google-benchmark timings of one cold and one
//                   pool-warm colgen solve.
//
// The headline number is the MEDIAN master-pivot ratio across the churn
// scenarios (the verdict line prints it; the oracle-round ratio rides
// along): the seeded master both skips the column regrowth AND starts
// from the donor's basis, so pivots capture the full saving. The roadmap
// target is >= 2x.
// SSA_E15_SCENARIOS / SSA_E15_VARIANTS shrink the grid for CI smoke.
// Every row lands in BENCH_bench_e15_colgen.json via bench_util.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/api.hpp"
#include "bench_util.hpp"
#include "core/asymmetric_colgen.hpp"
#include "gen/scenario.hpp"
#include "service/column_pool_cache.hpp"
#include "support/fingerprint.hpp"
#include "support/random.hpp"
#include "wire/codec.hpp"

namespace {

using namespace ssa;

std::size_t env_count(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long value = std::atol(env);
    if (value > 0) return static_cast<std::size_t>(value);
  }
  return fallback;
}

/// Support-preserving churn: every positive bundle value of one bidder is
/// rescaled, zeros stay zero, so the structural fingerprint (and the set
/// of candidate master columns) is unchanged while the objective moves.
AsymmetricInstance rescale_bidder(const AsymmetricInstance& instance,
                                 std::size_t v, Rng& rng) {
  std::vector<double> values(num_bundles(instance.num_channels()), 0.0);
  for (Bundle t = 1; t < num_bundles(instance.num_channels()); ++t) {
    const double old = instance.value(v, t);
    if (old > 0.0) values[t] = old * rng.uniform(0.5, 2.0);
  }
  return instance.with_valuation(
      v, std::make_shared<ExplicitValuation>(instance.num_channels(),
                                             std::move(values)));
}

struct ChurnOutcome {
  double warm_rate = 0.0;
  long long cold_rounds = 0;
  long long warm_rounds = 0;
  long long cold_pivots = 0;
  long long warm_pivots = 0;
  long long cold_columns = 0;
  long long warm_columns = 0;
  bool payload_identical = true;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
};

/// Replays V churn variants of \p base through the unified API, cold and
/// pool-warm, verifying payload identity on every pair.
ChurnOutcome run_churn_stream(const AsymmetricInstance& base,
                              std::size_t variants, std::uint64_t seed) {
  const auto solver = make_solver("asymmetric-colgen");
  SolveOptions options;
  options.seed = 7;
  options.pipeline.rounding_repetitions = 8;

  service::ColumnPoolCache cache(64);
  Rng rng(seed);
  ChurnOutcome outcome;
  AsymmetricInstance churned = base;
  for (std::size_t i = 0; i < variants; ++i) {
    churned = rescale_bidder(churned, i % churned.num_bidders(), rng);

    const SolveReport cold = solver->solve(churned, options);
    outcome.cold_rounds += cold.oracle_rounds;
    outcome.cold_pivots += cold.pivots;
    outcome.cold_columns += cold.columns_generated;
    outcome.cold_seconds += cold.wall_time_seconds;

    // The service's warm path: look the structure up by its structural
    // fingerprint, seed the restricted master from the banked pool,
    // re-bank this run's export.
    WarmStartContext context;
    AsymmetricColumnPool banked;
    const std::string key = structural_fingerprint(churned).hex();
    if (const AsymmetricColumnPool* pool = cache.lookup(key)) {
      banked = *pool;
      context.pool_hint = &banked;
    }
    SolveOptions warm_options = options;
    warm_options.warm_context = &context;
    const SolveReport warm = solver->solve(churned, warm_options);
    outcome.warm_rounds += warm.oracle_rounds;
    outcome.warm_pivots += warm.pivots;
    outcome.warm_columns += warm.columns_generated;
    outcome.warm_seconds += warm.wall_time_seconds;
    if (warm.warm_started) outcome.warm_rate += 1.0;
    if (!wire::reports_payload_equal(warm, cold)) {
      outcome.payload_identical = false;
    }
    if (context.has_pool_export) {
      cache.insert(key, std::move(context.pool_exported));
    }
  }
  if (variants > 0) {
    outcome.warm_rate /= static_cast<double>(variants);
  }
  return outcome;
}

void churn_experiment(std::size_t scenarios, std::size_t variants) {
  Table table({"scenario", "n", "k", "warm rate", "rounds c/w", "pivots cold",
               "pivots warm", "ratio", "cols c/w", "payload=="});
  std::vector<double> pivot_ratios;
  std::vector<double> round_ratios;
  for (std::size_t s = 0; s < scenarios; ++s) {
    const std::size_t n = 6 + (s % 3);
    const int k = 13 + static_cast<int>(s % 2);  // past the explicit cap
    const AsymmetricInstance base = gen::make_random_asymmetric(
        n, k, 0.3, gen::ValuationMix::kMixed, 1500 + 31 * s);
    const ChurnOutcome outcome =
        run_churn_stream(base, variants, 9100 + 17 * s);
    const auto ratio_of = [](long long cold, long long warm) {
      return warm > 0 ? static_cast<double>(cold) / static_cast<double>(warm)
                      : static_cast<double>(cold + 1);
    };
    const double pivot_ratio =
        ratio_of(outcome.cold_pivots, outcome.warm_pivots);
    const double round_ratio =
        ratio_of(outcome.cold_rounds, outcome.warm_rounds);
    pivot_ratios.push_back(pivot_ratio);
    round_ratios.push_back(round_ratio);
    const std::string name = "e15/churn/s" + std::to_string(s);
    table.add_row({name, Table::integer(static_cast<long long>(n)),
                   Table::integer(k), Table::num(outcome.warm_rate, 2),
                   Table::integer(outcome.cold_rounds) + "/" +
                       Table::integer(outcome.warm_rounds),
                   Table::integer(outcome.cold_pivots),
                   Table::integer(outcome.warm_pivots),
                   Table::num(pivot_ratio, 2),
                   Table::integer(outcome.cold_columns) + "/" +
                       Table::integer(outcome.warm_columns),
                   outcome.payload_identical ? "yes" : "NO"});
    bench::record(bench::BenchRecord{
        name, outcome.warm_seconds, 0.0, "asymmetric-colgen",
        {{"variants", static_cast<double>(variants)},
         {"warm_rate", outcome.warm_rate},
         {"cold_rounds", static_cast<double>(outcome.cold_rounds)},
         {"warm_rounds", static_cast<double>(outcome.warm_rounds)},
         {"round_ratio", round_ratio},
         {"cold_pivots", static_cast<double>(outcome.cold_pivots)},
         {"warm_pivots", static_cast<double>(outcome.warm_pivots)},
         {"pivot_ratio", pivot_ratio},
         {"cold_columns", static_cast<double>(outcome.cold_columns)},
         {"warm_columns", static_cast<double>(outcome.warm_columns)},
         {"cold_seconds", outcome.cold_seconds},
         {"payload_identical", outcome.payload_identical ? 1.0 : 0.0}}});
  }
  const auto median_of = [](std::vector<double> values) {
    std::sort(values.begin(), values.end());
    return values.empty() ? 0.0 : values[values.size() / 2];
  };
  const double pivot_median = median_of(pivot_ratios);
  const double round_median = median_of(round_ratios);
  bench::print_experiment(
      "E15: churn stream past the explicit cap, cold vs pool-warm colgen",
      table,
      "median master-pivot ratio (cold/warm) = " +
          Table::num(pivot_median, 2) + " (roadmap target >= 2x); " +
          "median oracle-round ratio = " + Table::num(round_median, 2));
  bench::record(bench::BenchRecord{
      "e15/churn/median", 0.0, 0.0, "asymmetric-colgen",
      {{"median_pivot_ratio", pivot_median},
       {"median_round_ratio", round_median}}});
}

const AsymmetricInstance& bm_instance() {
  static const AsymmetricInstance instance = gen::make_random_asymmetric(
      7, 13, 0.3, gen::ValuationMix::kMixed, 177);
  return instance;
}

void BM_ColdColgenSolve(benchmark::State& state) {
  const AsymmetricInstance& instance = bm_instance();
  const auto solver = make_solver("asymmetric-colgen");
  SolveOptions options;
  options.pipeline.rounding_repetitions = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver->solve(instance, options));
  }
}
BENCHMARK(BM_ColdColgenSolve);

void BM_PoolWarmColgenSolve(benchmark::State& state) {
  const AsymmetricInstance& instance = bm_instance();
  const auto solver = make_solver("asymmetric-colgen");
  SolveOptions options;
  options.pipeline.rounding_repetitions = 8;
  WarmStartContext donor;
  SolveOptions donor_options = options;
  donor_options.warm_context = &donor;
  (void)solver->solve(instance, donor_options);
  for (auto _ : state) {
    WarmStartContext context;
    context.pool_hint = &donor.pool_exported;
    SolveOptions warm_options = options;
    warm_options.warm_context = &context;
    benchmark::DoNotOptimize(solver->solve(instance, warm_options));
  }
}
BENCHMARK(BM_PoolWarmColgenSolve);

}  // namespace

int main(int argc, char** argv) {
  return ssa::bench::run(argc, argv, [] {
    churn_experiment(env_count("SSA_E15_SCENARIOS", 6),
                     env_count("SSA_E15_VARIANTS", 20));
  });
}
