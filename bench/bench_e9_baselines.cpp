// Experiment E9: algorithm shoot-out on small instances where the exact
// optimum is computable. One solve_batch over the cross product of
// instances and registry solvers replaces the old hand-rolled per-algorithm
// comparison loop: exact B&B, LP + Algorithm 1 (best of 64), derandomized
// rounding, greedy by value, greedy by density, and the local-ratio
// rho-approximation (k = 1 rows). The paper's framework should sit between
// greedy and exact, with realized ratios far below the worst-case
// 8 sqrt(k) rho.

#include <benchmark/benchmark.h>

#include <deque>

#include "api/api.hpp"
#include "bench_util.hpp"
#include "core/rounding.hpp"
#include "gen/scenario.hpp"
#include "support/pairwise.hpp"
#include "support/stats.hpp"

namespace {

using namespace ssa;

void experiment_table() {
  // Build the instance grid (a deque keeps pointers stable for BatchJob).
  std::deque<AuctionInstance> instances;
  std::vector<LabelledInstance> labelled;
  for (const std::size_t n : {8u, 10u, 12u}) {
    for (const int k : {1, 2, 3}) {
      instances.push_back(gen::make_disk_auction(
          n, k, gen::ValuationMix::kMixed,
          1000 + 7 * n + static_cast<std::size_t>(k)));
      labelled.push_back({"n=" + std::to_string(n) + ",k=" + std::to_string(k),
                          &instances.back()});
    }
  }

  // Cross product of instances and solvers; out-of-domain jobs
  // (local-ratio-k1 when k > 1) surface as per-job errors, rendered "n/a"
  // below.
  SolveOptions options;
  options.seed = 21;
  options.pipeline.rounding_repetitions = 64;
  const std::vector<std::string> solvers = {
      "exact",          "lp-rounding",         "greedy-value",
      "greedy-density", "local-ratio-k1",      "local-ratio-per-channel"};
  const std::vector<BatchJob> jobs = cross_jobs(labelled, solvers, options);
  const BatchResult batch = solve_batch(jobs);

  const auto welfare = [&](const std::string& label,
                           const std::string& solver) {
    const SolveReport* report = batch.find(label, solver);
    return report != nullptr ? Table::num(report->welfare, 1)
                             : std::string("n/a");
  };

  Table table({"instance", "OPT", "LP b*", "Alg1 best64", "derand",
               "greedy-val", "greedy-den", "LR-1ch", "LR-perch", "Alg1/OPT"});
  RunningStats ratio_stats;
  for (const LabelledInstance& li : labelled) {
    const std::string& label = li.label;
    const SolveReport* exact = batch.find(label, "exact");
    const SolveReport* rounded = batch.find(label, "lp-rounding");
    // The pure derandomized algorithm (the pipeline's derandomize option
    // would report max(random pass, derand)), on the batch's LP payload.
    std::string derand = "n/a";
    if (rounded != nullptr && rounded->fractional) {
      const AuctionInstance& instance = li.instance.symmetric();
      const PairwiseFamily family(instance.num_bidders(), 61);
      derand = Table::num(
          instance.welfare(
              derandomized_round(instance, *rounded->fractional, family)),
          1);
    }
    const double ratio =
        exact != nullptr && rounded != nullptr && exact->welfare > 0
            ? rounded->welfare / exact->welfare
            : 1.0;
    ratio_stats.add(ratio);
    table.add_row(
        {label, welfare(label, "exact"),
         rounded != nullptr && rounded->lp_upper_bound
             ? Table::num(*rounded->lp_upper_bound, 1)
             : "n/a",
         welfare(label, "lp-rounding"), derand,
         welfare(label, "greedy-value"), welfare(label, "greedy-density"),
         welfare(label, "local-ratio-k1"),
         welfare(label, "local-ratio-per-channel"), Table::num(ratio, 2)});
  }
  bench::print_experiment(
      "E9: baselines vs the paper's framework on exactly-solvable instances",
      table,
      "VERDICT: LP dominates OPT (relaxation); best-of-64 Algorithm 1 "
      "recovers on average " +
          Table::num(100.0 * ratio_stats.mean(), 0) +
          "% of OPT -- far better than the worst-case 8 sqrt(k) rho factor");

  // The same reports, in the generic diagnostics view the API provides.
  bench::print_experiment("E9 (unified SolveReport diagnostics)", batch.table(),
                          "");
}

void bm_exact(benchmark::State& state) {
  const AuctionInstance instance = gen::make_disk_auction(
      static_cast<std::size_t>(state.range(0)), 2, gen::ValuationMix::kMixed, 4);
  const auto solver = make_solver("exact");
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver->solve(instance));
  }
}
BENCHMARK(bm_exact)->Arg(8)->Arg(10)->Arg(12);

void bm_greedy(benchmark::State& state) {
  const AuctionInstance instance = gen::make_disk_auction(
      static_cast<std::size_t>(state.range(0)), 2, gen::ValuationMix::kMixed, 4);
  const auto solver = make_solver("greedy-value");
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver->solve(instance));
  }
}
BENCHMARK(bm_greedy)->Arg(12)->Arg(24);

}  // namespace

int main(int argc, char** argv) {
  return ssa::bench::run(argc, argv, experiment_table);
}
