// Experiment E9: algorithm shoot-out on small instances where the exact
// optimum is computable. Compares: exact B&B, LP + Algorithm 1 (best of
// 64), derandomized rounding, greedy by value, greedy by density, and the
// local-ratio rho-approximation (k = 1 rows). The paper's framework should
// sit between greedy and exact, with realized ratios far below the
// worst-case 8 sqrt(k) rho.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/auction_lp.hpp"
#include "core/exact.hpp"
#include "core/greedy.hpp"
#include "core/rounding.hpp"
#include "gen/scenario.hpp"
#include "support/pairwise.hpp"
#include "support/stats.hpp"

namespace {

using namespace ssa;

void experiment_table() {
  Table table({"n", "k", "OPT", "LP b*", "Alg1 best64", "derand", "greedy-val",
               "greedy-den", "LR-1ch", "LR-perch", "Alg1/OPT"});
  RunningStats ratio_stats;
  for (const std::size_t n : {8u, 10u, 12u}) {
    for (const int k : {1, 2, 3}) {
      const AuctionInstance instance = gen::make_disk_auction(
          n, k, gen::ValuationMix::kMixed, 1000 + 7 * n + static_cast<std::size_t>(k));
      const ExactResult exact = solve_exact(instance);
      const FractionalSolution lp = solve_auction_lp(instance);
      const Allocation rounded = best_of_rounds(instance, lp, 64, 21);
      const PairwiseFamily family(n, 61);
      const Allocation derand = derandomized_round(instance, lp, family);
      const Allocation by_value = greedy_by_value(instance);
      const Allocation by_density = greedy_by_density(instance);
      const double local_ratio_welfare =
          k == 1 ? instance.welfare(local_ratio_single_channel(instance)) : -1.0;
      const double per_channel_welfare =
          instance.welfare(local_ratio_per_channel(instance));
      const double ratio =
          exact.welfare > 0 ? instance.welfare(rounded) / exact.welfare : 1.0;
      ratio_stats.add(ratio);
      table.add_row(
          {Table::integer(static_cast<long long>(n)), Table::integer(k),
           Table::num(exact.welfare, 1), Table::num(lp.objective, 1),
           Table::num(instance.welfare(rounded), 1),
           Table::num(instance.welfare(derand), 1),
           Table::num(instance.welfare(by_value), 1),
           Table::num(instance.welfare(by_density), 1),
           local_ratio_welfare >= 0 ? Table::num(local_ratio_welfare, 1) : "n/a",
           Table::num(per_channel_welfare, 1), Table::num(ratio, 2)});
    }
  }
  bench::print_experiment(
      "E9: baselines vs the paper's framework on exactly-solvable instances",
      table,
      "VERDICT: LP dominates OPT (relaxation); best-of-64 Algorithm 1 "
      "recovers on average " +
          Table::num(100.0 * ratio_stats.mean(), 0) +
          "% of OPT -- far better than the worst-case 8 sqrt(k) rho factor");
}

void bm_exact(benchmark::State& state) {
  const AuctionInstance instance = gen::make_disk_auction(
      static_cast<std::size_t>(state.range(0)), 2, gen::ValuationMix::kMixed, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_exact(instance));
  }
}
BENCHMARK(bm_exact)->Arg(8)->Arg(10)->Arg(12);

void bm_greedy(benchmark::State& state) {
  const AuctionInstance instance = gen::make_disk_auction(
      static_cast<std::size_t>(state.range(0)), 2, gen::ValuationMix::kMixed, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_by_value(instance));
  }
}
BENCHMARK(bm_greedy)->Arg(12)->Arg(24);

}  // namespace

int main(int argc, char** argv) {
  return ssa::bench::run(argc, argv, experiment_table);
}
