// Experiment E14: the warm-start solve path on a perturbed stream.
//
// The serving workload this measures is churn-variant traffic: the same
// auction structure (graph, ordering, rho, valuation supports) arrives
// over and over with rescaled bundle values. Cold, every arrival pays a
// full two-phase simplex solve; warm, the optimal basis banked from the
// previous variant of the structure installs directly (values enter the
// explicit LP only through the objective) and the re-solve runs in a
// handful of pivots. Three phases:
//
//   e14/churn/*  -- S scenarios x V support-preserving variants, solved
//                   cold (no hint) and warm (per-structure BasisCache
//                   keyed by the structural fingerprint, exactly the
//                   service's key path). Reports per scenario: warm-hit
//                   rate, total pivots cold vs warm, the pivot ratio, and
//                   whether EVERY warm payload was bitwise identical to
//                   its cold twin (wire::reports_payload_equal) -- the
//                   warm path is a latency lever, never a result change.
//   e14/delta/*  -- incremental re-solve: one bidder appended / removed,
//                   the donor basis remapped with the delta helpers of
//                   core/auction_lp.hpp and repaired by the restricted
//                   phase 1, against a from-scratch solve of the changed
//                   instance.
//   BM_*         -- google-benchmark timings of one cold and one warm
//                   churn solve.
//
// The headline number is the MEDIAN pivot ratio across the churn
// scenarios (the verdict line prints it); the roadmap target is >= 2x.
// SSA_E14_SCENARIOS / SSA_E14_VARIANTS shrink the grid for CI smoke.
// Every row lands in BENCH_bench_e14_warm_start.json via bench_util.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/api.hpp"
#include "bench_util.hpp"
#include "core/auction_lp.hpp"
#include "gen/scenario.hpp"
#include "service/basis_cache.hpp"
#include "support/fingerprint.hpp"
#include "support/random.hpp"
#include "wire/codec.hpp"

namespace {

using namespace ssa;

std::size_t env_count(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long value = std::atol(env);
    if (value > 0) return static_cast<std::size_t>(value);
  }
  return fallback;
}

/// Support-preserving churn: every positive bundle value of one bidder is
/// rescaled, zeros stay zero, so the structural fingerprint (and the LP's
/// column set) is unchanged while the objective moves.
AuctionInstance rescale_bidder(const AuctionInstance& instance, std::size_t v,
                               Rng& rng) {
  std::vector<double> values(num_bundles(instance.num_channels()), 0.0);
  for (Bundle t = 1; t < num_bundles(instance.num_channels()); ++t) {
    const double old = instance.value(v, t);
    if (old > 0.0) values[t] = old * rng.uniform(0.5, 2.0);
  }
  return instance.with_valuation(
      v, std::make_shared<ExplicitValuation>(instance.num_channels(),
                                             std::move(values)));
}

/// True vertex removal (induced subgraph on everything but \p removed,
/// later vertices shifted down) -- the shape the delta-remap helpers
/// model; AuctionInstance::without_bidder only zeroes a valuation.
AuctionInstance drop_bidder(const AuctionInstance& big, std::size_t removed) {
  const std::size_t n = big.num_bidders();
  ConflictGraph graph(n - 1);
  const auto shifted = [&](std::size_t u) { return u < removed ? u : u - 1; };
  for (std::size_t u = 0; u < n; ++u) {
    if (u == removed) continue;
    for (std::size_t v = 0; v < n; ++v) {
      if (v == removed || u == v) continue;
      const double w = big.graph().weight(u, v);
      if (w > 0.0) graph.set_weight(shifted(u), shifted(v), w);
    }
  }
  Ordering order;
  for (const int v : big.order()) {
    if (static_cast<std::size_t>(v) == removed) continue;
    order.push_back(static_cast<int>(shifted(static_cast<std::size_t>(v))));
  }
  std::vector<ValuationPtr> valuations;
  for (std::size_t v = 0; v < n; ++v) {
    if (v != removed) valuations.push_back(big.valuations()[v]);
  }
  return AuctionInstance(std::move(graph), std::move(order),
                         big.num_channels(), std::move(valuations), big.rho());
}

std::uint32_t positive_bundles(const AuctionInstance& instance, std::size_t v) {
  std::uint32_t count = 0;
  for (Bundle t = 1; t < num_bundles(instance.num_channels()); ++t) {
    if (instance.value(v, t) > 0.0) ++count;
  }
  return count;
}

struct ChurnOutcome {
  double warm_rate = 0.0;
  long long cold_pivots = 0;
  long long warm_pivots = 0;
  bool payload_identical = true;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
};

/// Replays V churn variants of \p base through the unified API, cold and
/// warm, verifying payload identity on every pair.
ChurnOutcome run_churn_stream(const AuctionInstance& base,
                              std::size_t variants, std::uint64_t seed) {
  const auto solver = make_solver("lp-rounding");
  SolveOptions options;
  options.seed = 7;
  options.pipeline.rounding_repetitions = 8;

  service::BasisCache cache(64);
  Rng rng(seed);
  ChurnOutcome outcome;
  AuctionInstance churned = base;
  for (std::size_t i = 0; i < variants; ++i) {
    churned = rescale_bidder(churned, i % churned.num_bidders(), rng);

    const SolveReport cold = solver->solve(churned, options);
    outcome.cold_pivots += cold.pivots;
    outcome.cold_seconds += cold.wall_time_seconds;

    // The service's warm path: look the structure up by its structural
    // fingerprint, install the banked basis as a hint, re-bank the export.
    WarmStartContext context;
    service::BasisCacheEntry banked;
    const std::string key = structural_fingerprint(churned).hex();
    if (const service::BasisCacheEntry* entry = cache.lookup(key)) {
      banked = *entry;
      context.hint = &banked.basis;
    }
    SolveOptions warm_options = options;
    warm_options.warm_context = &context;
    const SolveReport warm = solver->solve(churned, warm_options);
    outcome.warm_pivots += warm.pivots;
    outcome.warm_seconds += warm.wall_time_seconds;
    if (warm.warm_started) outcome.warm_rate += 1.0;
    if (!wire::reports_payload_equal(warm, cold)) {
      outcome.payload_identical = false;
    }
    if (context.has_export) {
      cache.insert(key,
                   service::BasisCacheEntry{
                       std::move(context.exported),
                       static_cast<std::uint32_t>(churned.num_bidders()),
                       static_cast<std::uint32_t>(churned.num_channels()),
                       std::move(context.columns_per_bidder)});
    }
  }
  if (variants > 0) {
    outcome.warm_rate /= static_cast<double>(variants);
  }
  return outcome;
}

void churn_experiment(std::size_t scenarios, std::size_t variants,
                      std::vector<double>& ratios) {
  Table table({"scenario", "n", "k", "warm rate", "pivots cold", "pivots warm",
               "ratio", "payload=="});
  for (std::size_t s = 0; s < scenarios; ++s) {
    const std::size_t n = 16 + 4 * (s % 3);
    const int k = 2 + static_cast<int>(s % 2);
    const AuctionInstance base = gen::make_disk_auction(
        n, k, gen::ValuationMix::kMixed, 1400 + 31 * s);
    const ChurnOutcome outcome =
        run_churn_stream(base, variants, 9000 + 17 * s);
    const double ratio =
        outcome.warm_pivots > 0
            ? static_cast<double>(outcome.cold_pivots) /
                  static_cast<double>(outcome.warm_pivots)
            : static_cast<double>(outcome.cold_pivots + 1);
    ratios.push_back(ratio);
    const std::string name = "e14/churn/s" + std::to_string(s);
    table.add_row({name, Table::integer(static_cast<long long>(n)),
                   Table::integer(k), Table::num(outcome.warm_rate, 2),
                   Table::integer(outcome.cold_pivots),
                   Table::integer(outcome.warm_pivots), Table::num(ratio, 2),
                   outcome.payload_identical ? "yes" : "NO"});
    bench::record(bench::BenchRecord{
        name, outcome.warm_seconds, 0.0, "lp-rounding",
        {{"variants", static_cast<double>(variants)},
         {"warm_rate", outcome.warm_rate},
         {"cold_pivots", static_cast<double>(outcome.cold_pivots)},
         {"warm_pivots", static_cast<double>(outcome.warm_pivots)},
         {"pivot_ratio", ratio},
         {"cold_seconds", outcome.cold_seconds},
         {"payload_identical", outcome.payload_identical ? 1.0 : 0.0}}});
  }
  std::vector<double> sorted = ratios;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted.empty() ? 0.0 : sorted[sorted.size() / 2];
  bench::print_experiment(
      "E14: churn stream, cold vs warm-started explicit LP",
      table,
      "median pivot ratio (cold/warm) = " + Table::num(median, 2) +
          " (roadmap target >= 2x)");
  bench::record(bench::BenchRecord{
      "e14/churn/median", 0.0, 0.0, "lp-rounding",
      {{"median_pivot_ratio", median}}});
}

void delta_experiment(std::size_t scenarios) {
  Table table({"scenario", "direction", "warm", "pivots cold", "pivots warm"});
  for (std::size_t s = 0; s < scenarios; ++s) {
    const std::size_t n = 18 + 2 * (s % 3);
    const AuctionInstance big = gen::make_disk_auction(
        n, 3, gen::ValuationMix::kMixed, 2100 + 13 * s);
    const AuctionInstance small = drop_bidder(big, big.num_bidders() - 1);

    // Donor solves (also the cold baselines of the opposite direction).
    LpWarmStart big_donor;
    lp::BasisSnapshot big_basis;
    std::vector<std::uint32_t> big_columns;
    big_donor.exported = &big_basis;
    big_donor.columns_per_bidder = &big_columns;
    const FractionalSolution big_cold = solve_auction_lp(big, {}, &big_donor);

    LpWarmStart small_donor;
    lp::BasisSnapshot small_basis;
    std::vector<std::uint32_t> small_columns;
    small_donor.exported = &small_basis;
    small_donor.columns_per_bidder = &small_columns;
    const FractionalSolution small_cold =
        solve_auction_lp(small, {}, &small_donor);

    // Grow: small's basis remapped onto big (the appended bidder's rows
    // come up slack-basic, phase 1 repairs them).
    const lp::BasisSnapshot grow_hint = remap_basis_for_added_bidder(
        small_basis, small.num_bidders(), big.num_channels(), small_columns,
        positive_bundles(big, big.num_bidders() - 1));
    LpWarmStart grow;
    grow.hint = &grow_hint;
    const FractionalSolution grow_warm = solve_auction_lp(big, {}, &grow);

    // Shrink: big's basis remapped onto small.
    const lp::BasisSnapshot shrink_hint = remap_basis_for_removed_bidder(
        big_basis, big.num_bidders(), big.num_channels(),
        static_cast<int>(big.num_bidders() - 1), big_columns);
    LpWarmStart shrink;
    shrink.hint = &shrink_hint;
    const FractionalSolution shrink_warm = solve_auction_lp(small, {}, &shrink);

    const std::string label = "s" + std::to_string(s);
    table.add_row({label, "add", grow.warm_started ? "yes" : "no",
                   Table::integer(big_cold.pivots),
                   Table::integer(grow_warm.pivots)});
    table.add_row({label, "remove", shrink.warm_started ? "yes" : "no",
                   Table::integer(small_cold.pivots),
                   Table::integer(shrink_warm.pivots)});
    bench::record(bench::BenchRecord{
        "e14/delta/add/" + label, 0.0, 0.0, "lp",
        {{"warm_started", grow.warm_started ? 1.0 : 0.0},
         {"cold_pivots", static_cast<double>(big_cold.pivots)},
         {"warm_pivots", static_cast<double>(grow_warm.pivots)}}});
    bench::record(bench::BenchRecord{
        "e14/delta/remove/" + label, 0.0, 0.0, "lp",
        {{"warm_started", shrink.warm_started ? 1.0 : 0.0},
         {"cold_pivots", static_cast<double>(small_cold.pivots)},
         {"warm_pivots", static_cast<double>(shrink_warm.pivots)}}});
  }
  bench::print_experiment(
      "E14: delta re-solve (one bidder added / removed, remapped basis)",
      table, "");
}

const AuctionInstance& bm_instance() {
  static const AuctionInstance instance =
      gen::make_disk_auction(20, 3, gen::ValuationMix::kMixed, 77);
  return instance;
}

void BM_ColdLpSolve(benchmark::State& state) {
  const AuctionInstance& instance = bm_instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_auction_lp(instance));
  }
}
BENCHMARK(BM_ColdLpSolve);

void BM_WarmLpSolve(benchmark::State& state) {
  const AuctionInstance& instance = bm_instance();
  LpWarmStart donor;
  lp::BasisSnapshot basis;
  donor.exported = &basis;
  (void)solve_auction_lp(instance, {}, &donor);
  for (auto _ : state) {
    LpWarmStart warm;
    warm.hint = &basis;
    benchmark::DoNotOptimize(solve_auction_lp(instance, {}, &warm));
  }
}
BENCHMARK(BM_WarmLpSolve);

}  // namespace

int main(int argc, char** argv) {
  return ssa::bench::run(argc, argv, [] {
    std::vector<double> ratios;
    churn_experiment(env_count("SSA_E14_SCENARIOS", 6),
                     env_count("SSA_E14_VARIANTS", 20), ratios);
    delta_experiment(env_count("SSA_E14_SCENARIOS", 6));
  });
}
