// Experiment E6 (Sections 2.1 + 2.2): LP formulation comparison.
//  (a) On cliques, the classical edge LP has value n/2 against an integral
//      optimum of 1 (gap n/2), while the inductive-independence LP (1)
//      stays <= 2 (gap <= 2): the motivation for the paper's formulation.
//  (b) The demand-oracle column generation solves LP (1) to the same
//      optimum as explicit enumeration while generating only a small
//      fraction of the 2^k * n columns.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/auction_lp.hpp"
#include "core/edge_lp.hpp"
#include "gen/scenario.hpp"
#include "support/random.hpp"

namespace {

using namespace ssa;

void clique_gap_table() {
  Table table({"n", "edge-LP value", "our LP value", "integral OPT",
               "edge-LP gap", "our gap"});
  for (const std::size_t n : {8u, 16u, 32u, 64u}) {
    const AuctionInstance clique = gen::make_clique_auction(n, 0);
    const EdgeLpResult edge = solve_edge_lp(clique);
    const FractionalSolution ours = solve_auction_lp(clique);
    table.add_row({Table::integer(static_cast<long long>(n)),
                   Table::num(edge.lp_value, 1), Table::num(ours.objective, 2),
                   "1", Table::num(edge.lp_value, 1),
                   Table::num(ours.objective, 2)});
  }
  bench::print_experiment(
      "E6a / Section 2.1: integrality gap on cliques (unit bids, k = 1)",
      table,
      "VERDICT: the edge LP gap grows as n/2 while LP (1) stays <= 2 -- the "
      "inductive-independence formulation removes the n/2 pathology");
}

void colgen_table() {
  Table table({"n", "k", "explicit b*", "colgen b*", "columns generated",
               "full column count", "rounds"});
  for (const std::size_t n : {12u, 16u}) {
    for (const int k : {4, 6, 8}) {
      const AuctionInstance instance = gen::make_disk_auction(
          n, k, gen::ValuationMix::kMixed, 90 + n + static_cast<std::size_t>(k));
      const double explicit_value =
          k <= 8 ? solve_auction_lp(instance).objective : -1.0;
      ColGenStats stats;
      const FractionalSolution colgen = solve_auction_lp_colgen(instance, &stats);
      table.add_row(
          {Table::integer(static_cast<long long>(n)), Table::integer(k),
           explicit_value >= 0 ? Table::num(explicit_value, 2) : "n/a",
           Table::num(colgen.objective, 2),
           Table::integer(stats.columns_generated),
           Table::integer(static_cast<long long>(n) *
                          (static_cast<long long>(num_bundles(k)) - 1)),
           Table::integer(stats.rounds)});
    }
  }
  bench::print_experiment(
      "E6b / Section 2.2: demand-oracle column generation vs explicit LP",
      table,
      "VERDICT: identical optima; column generation touches a small "
      "fraction of the exponential column set");
}

void bm_explicit_lp(benchmark::State& state) {
  const AuctionInstance instance = gen::make_disk_auction(
      16, static_cast<int>(state.range(0)), gen::ValuationMix::kMixed, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_auction_lp(instance));
  }
}
BENCHMARK(bm_explicit_lp)->Arg(4)->Arg(6)->Arg(8);

void bm_colgen_lp(benchmark::State& state) {
  const AuctionInstance instance = gen::make_disk_auction(
      16, static_cast<int>(state.range(0)), gen::ValuationMix::kMixed, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_auction_lp_colgen(instance));
  }
}
BENCHMARK(bm_colgen_lp)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  return ssa::bench::run(argc, argv, [] {
    clique_gap_table();
    colgen_table();
  });
}
