// Experiment X1 — probes of the paper's Section 7 open problems.
//
//  (a) "It would be interesting to know if for the physical model it also
//      holds that rho = O(1) in general metrics or for distance-based
//      power assignments." We measure rho(pi) of the fixed-power physical
//      model with the distance-based sqrt scheme on (i) the Euclidean
//      plane and (ii) synthetic hub metrics (far from fading), over a
//      doubling n sweep. Evidence of boundedness or growth is *empirical
//      only* -- no theorem is claimed.
//  (b) "Avoiding the ellipsoid method to make the algorithm more
//      applicable in practice": our demand-oracle column generation IS
//      that ellipsoid-free implementation; we report how many pricing
//      rounds and columns the practical path needs as n scales.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.hpp"
#include "core/auction_lp.hpp"
#include "gen/scenario.hpp"
#include "graph/inductive_independence.hpp"
#include "models/physical.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"

namespace {

using namespace ssa;

double rho_on_plane(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const auto planar = gen::random_links(
      n, 10.0 * std::sqrt(static_cast<double>(n)), 1.0, 3.0, rng);
  const auto [links, metric] = to_metric_links(planar);
  PhysicalParams params;
  const auto powers =
      assign_powers(links, metric, PowerScheme::kSquareRoot, params);
  const ModelGraph graph = physical_conflict_graph(links, metric, powers, params);
  return rho_of_ordering(graph.graph, graph.order, 400'000).value;
}

double rho_on_hub(std::size_t n, std::uint64_t seed) {
  const ExplicitMetric metric = make_hub_metric(2 * n, 6, 4.0, seed);
  std::vector<Link> links;
  for (std::size_t i = 0; i + 1 < 2 * n; i += 2) {
    links.push_back(Link{static_cast<int>(i), static_cast<int>(i + 1)});
  }
  PhysicalParams params;
  const auto powers =
      assign_powers(links, metric, PowerScheme::kSquareRoot, params);
  const ModelGraph graph = physical_conflict_graph(links, metric, powers, params);
  return rho_of_ordering(graph.graph, graph.order, 400'000).value;
}

void open_problem_rho_table() {
  Table table({"metric", "n", "mean rho(pi)", "rho / log2(n)"});
  for (const std::size_t n : {16u, 32u, 64u}) {
    RunningStats plane, hub;
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      plane.add(rho_on_plane(n, 1009 * seed + n));
      hub.add(rho_on_hub(n, 2017 * seed + n));
    }
    table.add_row({"plane", Table::integer(static_cast<long long>(n)),
                   Table::num(plane.mean(), 2),
                   Table::num(plane.mean() / std::log2(static_cast<double>(n)), 2)});
    table.add_row({"hub", Table::integer(static_cast<long long>(n)),
                   Table::num(hub.mean(), 2),
                   Table::num(hub.mean() / std::log2(static_cast<double>(n)), 2)});
  }
  bench::print_experiment(
      "X1a / Section 7 open problem: rho of sqrt (distance-based) powers in "
      "fading vs general metrics",
      table,
      "NOTE: empirical probe only. On these instances rho(pi) stays small "
      "on the plane and bounded on hub metrics -- consistent with (but not "
      "proving) the conjecture that O(1)/O(log n) extends to distance-based "
      "power assignments");
}

void practical_colgen_table() {
  Table table({"n", "k", "pricing rounds", "columns", "b*"});
  for (const std::size_t n : {20u, 40u, 80u}) {
    for (const int k : {8, 16}) {
      const AuctionInstance instance = gen::make_disk_auction(
          n, k, gen::ValuationMix::kMixed, 3u * n + static_cast<std::size_t>(k));
      ColGenStats stats;
      const FractionalSolution lp = solve_auction_lp_colgen(instance, &stats);
      if (lp.status != lp::SolveStatus::kOptimal) continue;
      table.add_row({Table::integer(static_cast<long long>(n)),
                     Table::integer(k), Table::integer(stats.rounds),
                     Table::integer(stats.columns_generated),
                     Table::num(lp.objective, 1)});
    }
  }
  bench::print_experiment(
      "X1b / Section 7 open problem: ellipsoid-free practical LP solving",
      table,
      "NOTE: the demand-oracle column generation converges in a handful of "
      "pricing rounds even at k = 16 (2^16 bundles per bidder), answering "
      "the practicality question raised in the paper");
}

void bm_colgen_k16(benchmark::State& state) {
  const AuctionInstance instance = gen::make_disk_auction(
      static_cast<std::size_t>(state.range(0)), 16, gen::ValuationMix::kMixed,
      11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_auction_lp_colgen(instance));
  }
}
BENCHMARK(bm_colgen_k16)->Arg(20)->Arg(40)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return ssa::bench::run(argc, argv, [] {
    open_problem_rho_table();
    practical_colgen_table();
  });
}
