// Experiment E12: the cross-process serving path under load.
//
// E12a (loopback throughput): a cache-warm mixed request stream measured
// through each rung of the serving ladder on one machine -- LocalClient
// (in-process, the PR-3/PR-4 baseline), TcpClient -> ServiceServer (one
// wire hop), and TcpClient -> FrontDoor -> backend (two wire hops) -- so
// the cost of serialization and loopback RTT is measured, not guessed.
// Requests run on several client threads (one TcpClient each), and every
// wire client drives a pipelined WINDOW of in-flight requests over its
// single multiplexed connection (submit_async/get_async) -- the driving
// pattern the v3 wire protocol exists for; the in-process LocalClient
// rung stays lockstep (its per-call latency is a function call, there is
// no RTT to hide).
//
// E12b (backend scaling): a SOLVE-BOUND concurrent stream against a
// FrontDoor over 1 vs 2 backends' ServiceServers (in-process here, so
// the bench stays self-contained; the wire path is identical). Cache-warm
// requests measure the wire, not the backends -- only a compute-bound
// stream can show the keyspace split buying throughput -- so E12b uses
// its own workload: larger disk auctions pinned to "lp-rounding" with a
// heavy repetition count (milliseconds per solve, uniformly), every
// request carrying a distinct seed (a distinct cache key = a real solve).
// Reported: requests/sec for both backend counts, the scaling ratio, and
// two welfare invariants -- the warm sum across every serving path and
// the solve-bound sum across backend counts. Both must match EXACTLY:
// the split changes placement, never payloads. The scaling ratio is a
// report, not an assertion: it tracks ~2x on multi-core hosts (the CI
// runners) and degenerates to ~1.0 on a single-core machine, where no
// backend count can buy compute.
//
// Both series land in BENCH_bench_e12_front_door.json via bench_util.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "client/client.hpp"
#include "gen/scenario.hpp"
#include "load/workload.hpp"
#include "net/front_door.hpp"
#include "net/service_server.hpp"

namespace {

using namespace ssa;

/// 16 distinct mixed instances from the load harness's deterministic
/// pool -- the shared workload definition (same spec vocabulary as the
/// E13 soak traces).
std::vector<gen::NamedInstance> make_scenarios() {
  load::TraceSpec spec;
  spec.seed = 8800;
  spec.pool_size = 16;
  spec.bidders = 12;
  spec.channels = 2;
  load::ScenarioPool pool(spec);
  std::vector<gen::NamedInstance> scenarios;
  scenarios.reserve(pool.size());
  for (std::uint32_t s = 0; s < static_cast<std::uint32_t>(pool.size());
       ++s) {
    scenarios.push_back(pool.instance(s));
  }
  return scenarios;
}

service::ServiceOptions backend_options() {
  service::ServiceOptions config;
  config.shards = 2;
  config.threads_per_shard = 1;
  return config;
}

SolveOptions stream_options() {
  SolveOptions options;
  options.pipeline.rounding_repetitions = 12;
  return options;
}

constexpr int kClientThreads = 8;
constexpr int kWarmRequestsPerThread = 64;
constexpr int kSolveRequestsPerThread = 24;

/// One measured run: warms every scenario once through \p make_client,
/// then drives the concurrent phase across kClientThreads clients.
struct StreamResult {
  double seconds = 0.0;
  int requests = 0;       ///< measured-phase request count
  double welfare = 0.0;   ///< warm-phase welfare: cross-topology invariant
  double measured = 0.0;  ///< measured-phase welfare sum
  double hit_rate = 0.0;

  [[nodiscard]] double rate() const {
    return static_cast<double>(requests) / seconds;
  }
};

/// Per-request options: the warm stream replays the fixed scenario keys;
/// the solve-bound stream makes every request a distinct cache key
/// ("lp-rounding", heavy repetitions, unique seed), so every request is
/// a real, milliseconds-scale solve and backend compute dominates the
/// loopback RTT -- otherwise the scaling ratio would measure the door.
struct StreamKind {
  bool distinct_seeds = false;
  const char* solver = client::kAutoSolver;
};

template <typename MakeClient>
StreamResult drive(const std::vector<gen::NamedInstance>& scenarios,
                   const MakeClient& make_client,
                   const StreamKind& kind = {}) {
  const SolveOptions options = stream_options();
  const int per_thread =
      kind.distinct_seeds ? kSolveRequestsPerThread : kWarmRequestsPerThread;
  StreamResult result;
  result.requests = kClientThreads * per_thread;
  // Warm phase (single client, lockstep): every distinct scenario solves
  // once; its welfare sum is the cross-topology invariant.
  {
    const std::unique_ptr<client::AuctionClient> warm = make_client();
    for (const gen::NamedInstance& scenario : scenarios) {
      result.welfare +=
          warm->get(warm->submit(scenario.view(), client::kAutoSolver,
                                 options))
              .welfare;
    }
  }
  // Measured phase: concurrent clients.
  std::vector<std::unique_ptr<client::AuctionClient>> clients;
  for (int t = 0; t < kClientThreads; ++t) clients.push_back(make_client());
  const auto started = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> hits{0};
  std::vector<double> thread_welfare(kClientThreads, 0.0);
  const auto scenario_for = [&](int t, int r) -> const gen::NamedInstance& {
    return scenarios[static_cast<std::size_t>(r + t) % scenarios.size()];
  };
  const auto options_for = [&](int t, int r) {
    SolveOptions request_options = options;
    if (kind.distinct_seeds) {
      request_options.seed = 1000u + static_cast<std::uint64_t>(t) * 1000u +
                             static_cast<std::uint64_t>(r);
      request_options.pipeline.rounding_repetitions = 256;
    }
    return request_options;
  };
  const auto account = [&](int t, const SolveReport& report) {
    if (report.cache_hit) hits.fetch_add(1);
    thread_welfare[static_cast<std::size_t>(t)] += report.welfare;
  };
  for (int t = 0; t < kClientThreads; ++t) {
    threads.emplace_back([&, t] {
      client::AuctionClient& client = *clients[static_cast<std::size_t>(t)];
      if (auto* piped = dynamic_cast<client::TcpClient*>(&client)) {
        // Wire clients pipeline a window of requests over the single
        // multiplexed connection: the loopback RTT amortizes across the
        // window instead of gating every request.
        constexpr int kWindow = 32;
        for (int base = 0; base < per_thread; base += kWindow) {
          const int count = std::min(kWindow, per_thread - base);
          std::vector<std::future<client::RequestId>> submits;
          submits.reserve(static_cast<std::size_t>(count));
          for (int i = 0; i < count; ++i) {
            submits.push_back(piped->submit_async(
                scenario_for(t, base + i).view(), kind.solver,
                options_for(t, base + i)));
          }
          std::vector<std::future<SolveReport>> gets;
          gets.reserve(static_cast<std::size_t>(count));
          for (auto& submit : submits) {
            gets.push_back(piped->get_async(submit.get()));
          }
          for (auto& get : gets) account(t, get.get());
        }
      } else {
        for (int r = 0; r < per_thread; ++r) {
          account(t, client.get(client.submit(scenario_for(t, r).view(),
                                              kind.solver, options_for(t, r))));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  result.hit_rate =
      static_cast<double>(hits.load()) / static_cast<double>(result.requests);
  for (const double welfare : thread_welfare) result.measured += welfare;
  return result;
}

/// The E12b workload: disk auctions too big for the exact solvers'
/// auto-policy reach, so every request runs the LP + rounding pipeline --
/// uniformly heavy, which is what makes backend compute the bottleneck.
std::vector<gen::NamedInstance> make_solve_scenarios() {
  std::vector<gen::NamedInstance> scenarios;
  for (std::uint64_t i = 0; i < 8; ++i) {
    scenarios.push_back(gen::NamedInstance{
        "disk40#" + std::to_string(i),
        gen::make_disk_auction(40, 2, gen::ValuationMix::kMixed, 9900 + i)});
  }
  return scenarios;
}

void front_door_tables() {
  const std::vector<gen::NamedInstance> scenarios = make_scenarios();
  const std::vector<gen::NamedInstance> solve_scenarios =
      make_solve_scenarios();

  // Shared in-process service for the LocalClient rung (all client
  // threads hit one service, like all connections hit one server).
  const auto shared_service =
      std::make_shared<service::AuctionService>(backend_options());
  const StreamResult local = drive(scenarios, [&] {
    return std::make_unique<client::LocalClient>(shared_service);
  });
  shared_service->shutdown();

  // One wire hop: TcpClient straight at a ServiceServer.
  net::ServiceServer direct_server({backend_options(), 0});
  const StreamResult direct = drive(scenarios, [&] {
    return std::make_unique<client::TcpClient>(direct_server.port());
  });
  direct_server.stop();

  // Two wire hops, 1 and 2 backends behind a FrontDoor: once cache-warm
  // (E12a, measures the wire) and once solve-bound (E12b, measures the
  // split buying compute).
  const auto door_run = [&](int backend_count, const StreamKind& kind) {
    std::vector<std::unique_ptr<net::ServiceServer>> backends;
    std::vector<net::Endpoint> endpoints;
    for (int b = 0; b < backend_count; ++b) {
      backends.push_back(std::make_unique<net::ServiceServer>(
          net::ServiceServerOptions{backend_options(), 0}));
      endpoints.push_back(
          net::Endpoint{net::kLoopbackHost, backends.back()->port()});
    }
    net::FrontDoor door({endpoints, 0});
    const StreamResult result = drive(
        kind.distinct_seeds ? solve_scenarios : scenarios,
        [&] { return std::make_unique<client::TcpClient>(door.port()); },
        kind);
    door.stop();
    for (const auto& backend : backends) backend->stop();
    return result;
  };
  const StreamKind warm_kind;
  const StreamKind solve_kind{true, "lp-rounding"};
  const StreamResult one_backend = door_run(1, warm_kind);
  const StreamResult two_backends = door_run(2, warm_kind);
  const StreamResult one_backend_solve = door_run(1, solve_kind);
  const StreamResult two_backends_solve = door_run(2, solve_kind);
  const double scaling = two_backends_solve.rate() / one_backend_solve.rate();

  Table table({"path", "req/s", "cache hit %", "warm welfare"});
  const auto row = [&](const char* label, const StreamResult& result) {
    table.add_row({label, Table::num(result.rate(), 0),
                   Table::num(100.0 * result.hit_rate, 1),
                   Table::num(result.welfare, 2)});
  };
  row("LocalClient (in-process)", local);
  row("TcpClient -> ServiceServer", direct);
  row("TcpClient -> FrontDoor -> 1 backend", one_backend);
  row("TcpClient -> FrontDoor -> 2 backends", two_backends);
  row("FrontDoor, solve-bound, 1 backend", one_backend_solve);
  row("FrontDoor, solve-bound, 2 backends", two_backends_solve);

  bench::record({"e12/local", local.seconds, local.welfare, "auto",
                 {{"requests_per_sec", local.rate()},
                  {"cache_hit_rate", local.hit_rate}}});
  bench::record({"e12/direct", direct.seconds, direct.welfare, "auto",
                 {{"requests_per_sec", direct.rate()},
                  {"cache_hit_rate", direct.hit_rate}}});
  // Acceptance ratios, recorded whichever way they land: the door's
  // cache-warm throughput against the in-process ceiling, and the warm
  // wire path's 1 -> 2 backend scaling.
  bench::record({"e12/door/backends=1", one_backend.seconds,
                 one_backend.welfare, "auto",
                 {{"requests_per_sec", one_backend.rate()},
                  {"cache_hit_rate", one_backend.hit_rate},
                  {"door_over_local", one_backend.rate() / local.rate()}}});
  bench::record({"e12/door/backends=2", two_backends.seconds,
                 two_backends.welfare, "auto",
                 {{"requests_per_sec", two_backends.rate()},
                  {"cache_hit_rate", two_backends.hit_rate},
                  {"door_over_local", two_backends.rate() / local.rate()},
                  {"scaling_vs_1_backend",
                   two_backends.rate() / one_backend.rate()}}});
  bench::record({"e12/door/solve/backends=1", one_backend_solve.seconds,
                 one_backend_solve.measured, "lp-rounding",
                 {{"requests_per_sec", one_backend_solve.rate()}}});
  bench::record({"e12/door/solve/backends=2", two_backends_solve.seconds,
                 two_backends_solve.measured, "lp-rounding",
                 {{"requests_per_sec", two_backends_solve.rate()},
                  {"scaling_vs_1_backend", scaling}}});

  // Two exact invariants: the warm welfare across every serving path, and
  // the solve-bound stream's welfare across backend counts (same request
  // stream, same seeds: the split must not change a single payload bit).
  const bool welfare_invariant =
      local.welfare == direct.welfare &&
      local.welfare == one_backend.welfare &&
      local.welfare == two_backends.welfare &&
      one_backend_solve.measured == two_backends_solve.measured;
  bench::print_experiment(
      "E12: loopback wire throughput and front-door backend scaling", table,
      std::string("VERDICT: welfare ") +
          (welfare_invariant ? "EXACTLY invariant" : "DIVERGED") +
          " across serving paths and backend counts; solve-bound 2-backend "
          "scaling x" +
          Table::num(scaling, 2) + " over 1 backend");
}

void bm_front_door_roundtrip(benchmark::State& state) {
  // Per-request wire cost on a warm cache: one scenario, one backend.
  const std::vector<gen::NamedInstance> scenarios = make_scenarios();
  net::ServiceServer server({backend_options(), 0});
  client::TcpClient client(server.port());
  const SolveOptions options = stream_options();
  (void)client.get(
      client.submit(scenarios[0].view(), client::kAutoSolver, options));
  for (auto _ : state) {
    const SolveReport report = client.get(
        client.submit(scenarios[0].view(), client::kAutoSolver, options));
    benchmark::DoNotOptimize(report.welfare);
  }
  client.shutdown();
}
BENCHMARK(bm_front_door_roundtrip)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return ssa::bench::run(argc, argv, [] { front_door_tables(); });
}
