// Experiment E7 (Section 5): the Lavi-Swamy truthful-in-expectation
// mechanism, run through the unified "mechanism" solver. Reports the
// decomposition size and residual, the expected welfare of the random
// allocation against the b*/alpha target, and a misreport sweep measuring
// the expected-utility delta of deviating bidders (truthfulness predicts no
// positive delta).

#include <benchmark/benchmark.h>

#include "api/api.hpp"
#include "bench_util.hpp"
#include "gen/scenario.hpp"
#include "mechanism/mechanism.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"

namespace {

using namespace ssa;

MechanismOutcome registry_mechanism(const AuctionInstance& instance,
                                 std::uint64_t seed = 1) {
  SolveOptions options;
  options.seed = seed;
  return *make_solver("mechanism")->solve(instance, options).mechanism;
}

void decomposition_table() {
  Table table({"n", "k", "alpha", "b*", "E[welfare]", "b*/alpha",
               "#allocations", "residual"});
  for (const std::size_t n : {6u, 8u, 10u}) {
    for (const int k : {1, 2}) {
      const AuctionInstance instance = gen::make_disk_auction(
          n, k, gen::ValuationMix::kMixed, 33 * n + static_cast<std::size_t>(k));
      const SolveReport report = make_solver("mechanism")->solve(instance);
      const Decomposition& decomposition = report.mechanism->decomposition;
      double expected_welfare = 0.0;
      for (const DecompositionEntry& entry : decomposition.entries) {
        expected_welfare += entry.probability * instance.welfare(entry.allocation);
      }
      table.add_row({Table::integer(static_cast<long long>(n)),
                     Table::integer(k), Table::num(decomposition.alpha, 2),
                     Table::num(*report.lp_upper_bound, 2),
                     Table::num(expected_welfare, 3),
                     Table::num(report.guarantee, 3),
                     Table::integer(static_cast<long long>(
                         decomposition.entries.size())),
                     Table::num(decomposition.residual, 8)});
      // The mechanism path lands in the perf trajectory like every other
      // solve (BENCH_bench_e7_mechanism.json via the shared helper).
      bench::record_report(
          "e7/n=" + std::to_string(n) + "/k=" + std::to_string(k), report,
          {{"lp_upper_bound", *report.lp_upper_bound},
           {"expected_welfare", expected_welfare},
           {"decomposition_entries",
            static_cast<double>(decomposition.entries.size())},
           {"decomposition_residual", decomposition.residual}});
    }
  }
  bench::print_experiment(
      "E7a / Section 5: Lavi-Swamy decomposition of x*/alpha", table,
      "VERDICT: residual ~ 0 (exact convex decomposition) and E[welfare] = "
      "b*/alpha (the SolveReport guarantee) as the construction requires");
}

void truthfulness_table() {
  Table table({"seed", "bidder", "misreport", "E[u] truthful", "E[u] misreport",
               "gain"});
  double max_gain = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const AuctionInstance truth =
        gen::make_disk_auction(8, 2, gen::ValuationMix::kMixed, 900 + seed);
    const MechanismOutcome truthful_outcome = registry_mechanism(truth);
    const std::vector<double> truthful_utility =
        expected_utilities(truthful_outcome, truth, truth);
    for (const std::size_t v : {0u, 3u, 6u}) {
      for (const double factor : {0.25, 4.0}) {
        std::vector<double> scaled(num_bundles(truth.num_channels()), 0.0);
        for (Bundle t = 1; t < num_bundles(truth.num_channels()); ++t) {
          scaled[t] = factor * truth.value(v, t);
        }
        const AuctionInstance reported = truth.with_valuation(
            v, std::make_shared<ExplicitValuation>(truth.num_channels(),
                                                   std::move(scaled)));
        const MechanismOutcome lie_outcome = registry_mechanism(reported);
        const std::vector<double> lie_utility =
            expected_utilities(lie_outcome, truth, reported);
        const double gain = lie_utility[v] - truthful_utility[v];
        max_gain = std::max(max_gain, gain);
        table.add_row({Table::integer(static_cast<long long>(seed)),
                       Table::integer(static_cast<long long>(v)),
                       "x" + Table::num(factor, 2),
                       Table::num(truthful_utility[v], 4),
                       Table::num(lie_utility[v], 4), Table::num(gain, 5)});
      }
    }
  }
  bench::print_experiment(
      "E7b / Section 5: misreport sweep (truthfulness in expectation)", table,
      max_gain <= 1e-3
          ? "VERDICT: no bidder gains by misreporting (max gain " +
                Table::num(max_gain, 6) + ")"
          : "VERDICT: POSITIVE deviation gain found: " + Table::num(max_gain, 6));
  bench::record({"e7/misreport_sweep", 0.0, 0.0, "mechanism",
                 {{"max_misreport_gain", max_gain}}});
}

void bm_mechanism(benchmark::State& state) {
  const AuctionInstance instance = gen::make_disk_auction(
      static_cast<std::size_t>(state.range(0)), 2, gen::ValuationMix::kMixed, 3);
  const auto solver = make_solver("mechanism");
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver->solve(instance));
  }
}
BENCHMARK(bm_mechanism)->Arg(6)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return ssa::bench::run(argc, argv, [] {
    decomposition_table();
    truthfulness_table();
  });
}
