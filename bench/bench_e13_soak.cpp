// Experiment E13: minutes-long open-loop soak of the serving stack.
//
// A seed-pinned bursty trace (load::generate_trace: on/off bursts, a
// diurnal ramp, Zipf popularity over a 12-scenario pool, churn variants,
// tight/loose/none deadline classes) replays open-loop (load::run_trace)
// against two transports of the SAME serving configuration:
//   e13/local -- LocalClient over an in-process AuctionService;
//   e13/door  -- TcpClient -> FrontDoor -> 2 in-process ServiceServer
//                backends (one multiplexed connection per driver thread).
// The offered rate and the deadline budgets are calibrated from a probe
// phase (median real-solve cost of the pool on this machine), so the soak
// stresses comparably on fast and slow hosts. SSA_SOAK_SECONDS scales the
// horizon (default 60; the CI smoke runs 10). SSA_SWEEP_RATES (e.g.
// "0.5,1,2,4") adds an offered-rate sweep: one extra door soak per entry
// at that multiple of the calibrated rate, so the JSON carries the
// rate-vs-p50/p99 curve whose knee is the capacity estimate.
//
// Reported per transport: p50/p99/p999 service latency, p99 turnaround,
// driver lateness (schedule slip, kept in its own histogram so it cannot
// be booked as service time), shed/degrade/timeout/coalesce/cache-hit
// rates and per-class deadline hit rates. A final invariant phase replays
// a prefix of the same trace with budgets stripped through FRESH instances
// of both transports: total welfare must match EXACTLY -- the
// location-transparency guarantee. (Only the budget-free replay is
// comparable bitwise: degraded payloads are timing-dependent and are
// never cached for the same reason.)
//
// Every row lands in BENCH_bench_e13_soak.json via bench_util.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "client/client.hpp"
#include "load/load.hpp"
#include "net/front_door.hpp"
#include "net/service_server.hpp"
#include "obs/telemetry.hpp"

namespace {

using namespace ssa;

double soak_seconds() {
  if (const char* env = std::getenv("SSA_SOAK_SECONDS")) {
    const double value = std::atof(env);
    if (value > 0.0) return value;
  }
  return 60.0;
}

/// Offered-rate sweep mode: SSA_SWEEP_RATES="0.5,1,2,4" runs one extra
/// door-topology soak per entry, each at that MULTIPLE of the calibrated
/// rate, recording the rate-vs-latency curve (the knee locates the wire
/// path's capacity on this machine). Unset or empty = no sweep.
std::vector<double> sweep_multipliers() {
  std::vector<double> multipliers;
  const char* env = std::getenv("SSA_SWEEP_RATES");
  if (env == nullptr) return multipliers;
  std::string text(env);
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string token =
        text.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!token.empty()) {
      const double value = std::atof(token.c_str());
      if (value > 0.0) multipliers.push_back(value);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return multipliers;
}

/// The serving configuration under test -- identical for the local
/// service and for each door backend, so the transports differ only in
/// the wire between the driver and the solvers.
service::ServiceOptions backend_options() {
  service::ServiceOptions config;
  config.shards = 2;
  config.threads_per_shard = 1;
  return config;  // admission kDegrade: unmeetable deadlines degrade
}

/// AuctionClient adapter that opens one TcpClient per calling thread.
/// Since v3 a single TcpClient pipelines concurrent calls on one
/// multiplexed connection, so sharing one would be correct; per-thread
/// connections are kept so the soak also exercises the server's
/// many-connection path (and removes the shared send mutex from the
/// driver's critical path). Door/server request ids are process-wide, so
/// any connection may claim any id. Entries are never erased;
/// unordered_map node stability keeps handed-out references valid for the
/// adapter's lifetime.
class PerThreadTcpClient final : public client::AuctionClient {
 public:
  explicit PerThreadTcpClient(std::uint16_t port) : port_(port) {}

  [[nodiscard]] client::RequestId submit(const AnyInstance& instance,
                                         const std::string& solver,
                                         const SolveOptions& options) override {
    return connection().submit(instance, solver, options);
  }
  [[nodiscard]] SolveReport get(client::RequestId id) override {
    return connection().get(id);
  }
  [[nodiscard]] std::optional<SolveReport> try_get(
      client::RequestId id) override {
    return connection().try_get(id);
  }
  [[nodiscard]] client::ServiceStats stats() override {
    return connection().stats();
  }
  [[nodiscard]] obs::TelemetrySnapshot telemetry() override {
    return connection().telemetry();
  }
  void shutdown() override { connection().shutdown(); }

 private:
  [[nodiscard]] client::TcpClient& connection() {
    const std::thread::id thread = std::this_thread::get_id();
    const std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<client::TcpClient>& slot = connections_[thread];
    if (!slot) slot = std::make_unique<client::TcpClient>(port_);
    return *slot;
  }

  std::uint16_t port_;
  std::mutex mutex_;
  std::unordered_map<std::thread::id, std::unique_ptr<client::TcpClient>>
      connections_;
};

/// Median wall time of one real solve per pool scenario, measured through
/// a throwaway service: the machine-speed yardstick the offered rate and
/// the deadline budgets are expressed in.
double probe_solve_seconds(load::ScenarioPool& pool) {
  client::LocalClient client{backend_options()};
  std::vector<double> costs;
  for (std::uint32_t s = 0; s < static_cast<std::uint32_t>(pool.size());
       ++s) {
    const SolveReport report =
        client.get(client.submit(pool.instance(s).view()));
    costs.push_back(std::max(report.wall_time_seconds, 1e-6));
  }
  client.shutdown();
  std::nth_element(costs.begin(), costs.begin() + costs.size() / 2,
                   costs.end());
  return costs[costs.size() / 2];
}

load::TraceSpec soak_spec(double horizon_seconds) {
  load::TraceSpec spec;
  spec.seed = 20260808;
  spec.duration_seconds = horizon_seconds;
  spec.rate_per_second = 1.0;  // placeholder; calibrated after the probe
  spec.arrivals = load::ArrivalProcess::kOnOffBurst;
  spec.burst_rate_multiplier = 4.0;
  spec.idle_rate_multiplier = 0.25;
  spec.mean_burst_seconds = 2.0;
  spec.mean_idle_seconds = 6.0;
  spec.diurnal_amplitude = 0.25;
  spec.diurnal_period_seconds = std::max(10.0, horizon_seconds / 3.0);
  spec.pool_size = 12;
  spec.zipf_exponent = 1.1;
  spec.churn_probability = 0.15;
  spec.max_variants = 3;
  spec.tight_fraction = 0.25;
  spec.loose_fraction = 0.25;
  spec.bidders = 12;
  spec.channels = 2;
  return spec;
}

double rate_of(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0
                    : static_cast<double>(part) / static_cast<double>(whole);
}

double met_rate(const load::ClassOutcome& outcome) {
  const std::uint64_t scored = outcome.deadline_met + outcome.deadline_missed;
  return rate_of(outcome.deadline_met, scored);
}

/// Per-phase telemetry section in the BENCH json: the serving-side view
/// of the phase (how many solver runs, warm starts, admission verdicts
/// and spans the export carries), flattened from the exact snapshot the
/// kGetTelemetry path (or the in-process registry) returned. The full
/// snapshots additionally land in TELEMETRY_bench_e13_soak.json.
void record_telemetry(const std::string& phase,
                      const obs::TelemetrySnapshot& snapshot) {
  bench::record(
      {"e13/telemetry/" + phase,
       0.0,
       0.0,
       "auto",
       {{"submitted", static_cast<double>(
             snapshot.counter_or("service.submitted"))},
        {"completed", static_cast<double>(
             snapshot.counter_or("service.completed"))},
        {"solves", static_cast<double>(snapshot.counter_or("service.solves"))},
        {"cache_hits", static_cast<double>(
             snapshot.counter_or("service.cache_hits"))},
        {"coalesced", static_cast<double>(
             snapshot.counter_or("service.coalesced"))},
        {"warm_starts", static_cast<double>(
             snapshot.counter_or("service.warm_starts"))},
        {"basis_hits", static_cast<double>(
             snapshot.counter_or("service.basis_hits"))},
        {"scheduler_admitted", static_cast<double>(
             snapshot.counter_or("scheduler.admitted"))},
        {"scheduler_degraded", static_cast<double>(
             snapshot.counter_or("scheduler.degraded"))},
        {"scheduler_rejected", static_cast<double>(
             snapshot.counter_or("scheduler.rejected"))},
        {"door_submits", static_cast<double>(
             snapshot.counter_or("door.submits"))},
        {"door_route_cache_hits", static_cast<double>(
             snapshot.counter_or("door.route_cache_hits"))},
        {"spans", static_cast<double>(snapshot.spans.size())}}});
}

/// Writes the phase-keyed full telemetry snapshots next to the BENCH json
/// (CI uploads it as an artifact beside the BENCH files).
void write_telemetry_json(
    const std::vector<std::pair<std::string, obs::TelemetrySnapshot>>&
        phases) {
  const std::string path = "TELEMETRY_bench_e13_soak.json";
  std::ofstream out(path);
  if (!out) return;
  out << "{";
  bool first = true;
  for (const auto& [phase, snapshot] : phases) {
    out << (first ? "\n" : ",\n") << "  \"" << phase
        << "\": " << obs::to_json(snapshot);
    first = false;
  }
  out << "\n}\n";
  std::cout << "wrote " << path << " (" << phases.size() << " phases)\n";
}

void record_soak(const std::string& name, const load::LoadReport& report) {
  const load::ClassOutcome& tight =
      report.by_class[static_cast<int>(load::DeadlineClass::kTight)];
  const load::ClassOutcome& loose =
      report.by_class[static_cast<int>(load::DeadlineClass::kLoose)];
  bench::record(
      {name,
       report.elapsed_seconds,
       report.total_welfare,
       "auto",
       {{"requests", static_cast<double>(report.requests)},
        {"completed", static_cast<double>(report.completed)},
        {"errors", static_cast<double>(report.errors)},
        {"offered_rate", report.offered_rate},
        {"achieved_rate", report.achieved_rate()},
        {"service_p50", report.service_latency.p50()},
        {"service_p99", report.service_latency.p99()},
        {"service_p999", report.service_latency.p999()},
        {"turnaround_p99", report.turnaround.p99()},
        {"lateness_p99", report.lateness.p99()},
        {"lateness_max", report.lateness.max()},
        {"cache_hit_rate", rate_of(report.cache_hits, report.completed)},
        {"coalesce_rate", rate_of(report.coalesced, report.completed)},
        {"degrade_rate", rate_of(report.degraded, report.completed)},
        {"shed_rate", rate_of(report.rejected, report.requests)},
        {"timeout_rate", rate_of(report.timed_out, report.completed)},
        {"tight_met_rate", met_rate(tight)},
        {"loose_met_rate", met_rate(loose)}}});
}

void soak_tables() {
  const double horizon = soak_seconds();
  load::TraceSpec spec = soak_spec(horizon);

  // The pool shape ignores the rate, so it can be built (and probed)
  // before calibration fills the rate in.
  load::ScenarioPool pool(spec);
  const double probe = probe_solve_seconds(pool);
  spec.rate_per_second = std::clamp(3.0 / probe, 4.0, 400.0);
  const load::Trace trace = load::generate_trace(spec);
  pool.materialize(trace);

  load::DriverOptions options;
  options.submitters = 4;
  options.tight_budget_seconds = 30.0 * probe;
  options.loose_budget_seconds = 1000.0 * probe;

  std::vector<std::pair<std::string, obs::TelemetrySnapshot>> telemetry_phases;

  // Phase a: in-process transport.
  load::LoadReport local_report;
  {
    client::LocalClient client{backend_options()};
    local_report = load::run_trace(client, pool, trace, options);
    telemetry_phases.emplace_back("local", client.telemetry());
    client.shutdown();
  }
  record_soak("e13/local", local_report);
  record_telemetry("local", telemetry_phases.back().second);

  // Phase b: the full wire path, 2 backends behind a front door.
  const auto door_run = [&](const load::Trace& events,
                            const load::DriverOptions& run_options,
                            obs::TelemetrySnapshot* telemetry_out = nullptr) {
    std::vector<std::unique_ptr<net::ServiceServer>> backends;
    std::vector<net::Endpoint> endpoints;
    for (int b = 0; b < 2; ++b) {
      backends.push_back(std::make_unique<net::ServiceServer>(
          net::ServiceServerOptions{backend_options(), 0}));
      endpoints.push_back(
          net::Endpoint{net::kLoopbackHost, backends.back()->port()});
    }
    net::FrontDoor door({endpoints, 0});
    load::LoadReport report;
    {
      PerThreadTcpClient client(door.port());
      report = load::run_trace(client, pool, events, run_options);
      // The deployment-wide snapshot (door merge of both backends plus
      // the door's own registry), fetched over the wire BEFORE shutdown
      // drains the backends away.
      if (telemetry_out != nullptr) *telemetry_out = client.telemetry();
      client.shutdown();  // wire kShutdown: drains backends, stops door
    }
    door.stop();
    for (const std::unique_ptr<net::ServiceServer>& backend : backends) {
      backend->stop();
    }
    return report;
  };
  obs::TelemetrySnapshot door_telemetry;
  const load::LoadReport door_report = door_run(trace, options, &door_telemetry);
  record_soak("e13/door", door_report);
  record_telemetry("door", door_telemetry);
  telemetry_phases.emplace_back("door", std::move(door_telemetry));
  write_telemetry_json(telemetry_phases);

  // Optional phase: the offered-rate sweep. Each point is a fresh
  // seed-pinned trace at multiplier x calibrated rate, replayed through
  // the full door topology; the per-point horizon is capped so a wide
  // sweep stays affordable.
  std::vector<std::pair<double, load::LoadReport>> sweep_results;
  for (const double multiplier : sweep_multipliers()) {
    load::TraceSpec sweep_spec = spec;
    sweep_spec.duration_seconds = std::min(horizon, 20.0);
    sweep_spec.rate_per_second = spec.rate_per_second * multiplier;
    const load::Trace sweep_trace = load::generate_trace(sweep_spec);
    pool.materialize(sweep_trace);
    const load::LoadReport report = door_run(sweep_trace, options);
    bench::record({"e13/sweep/x" + Table::num(multiplier, 2),
                   report.elapsed_seconds,
                   report.total_welfare,
                   "auto",
                   {{"rate_multiplier", multiplier},
                    {"offered_rate", report.offered_rate},
                    {"achieved_rate", report.achieved_rate()},
                    {"service_p50", report.service_latency.p50()},
                    {"service_p99", report.service_latency.p99()},
                    {"lateness_p99", report.lateness.p99()},
                    {"shed_rate", rate_of(report.rejected, report.requests)},
                    {"timeout_rate",
                     rate_of(report.timed_out, report.completed)}}});
    sweep_results.emplace_back(multiplier, report);
  }

  // Phase c: the location-transparency invariant. The same trace prefix
  // with budgets stripped (no deadlines -> no degraded, timing-dependent
  // payloads) replays unpaced through fresh instances of both transports;
  // total welfare must match EXACTLY.
  load::Trace prefix;
  prefix.spec = spec;
  const std::size_t prefix_events =
      std::min<std::size_t>(trace.events.size(), 300);
  prefix.events.assign(trace.events.begin(),
                       trace.events.begin() +
                           static_cast<std::ptrdiff_t>(prefix_events));
  load::DriverOptions replay;
  replay.submitters = 4;
  replay.time_scale = 0.0;  // unpaced: replay as fast as possible
  load::LoadReport invariant_local;
  {
    client::LocalClient client{backend_options()};
    invariant_local = load::run_trace(client, pool, prefix, replay);
    client.shutdown();
  }
  const load::LoadReport invariant_door = door_run(prefix, replay);
  const bool invariant =
      invariant_local.total_welfare == invariant_door.total_welfare &&
      invariant_local.completed == invariant_door.completed;
  bench::record({"e13/invariant", invariant_local.elapsed_seconds,
                 invariant_local.total_welfare, "auto",
                 {{"events", static_cast<double>(prefix_events)},
                  {"door_welfare", invariant_door.total_welfare},
                  {"welfare_invariant", invariant ? 1.0 : 0.0}}});

  Table table({"phase", "req/s", "p50 ms", "p99 ms", "p999 ms", "shed %",
               "hit %", "late p99 ms", "tight met %", "loose met %"});
  const auto row = [&](const char* label, const load::LoadReport& report) {
    table.add_row(
        {label, Table::num(report.achieved_rate(), 0),
         Table::num(1e3 * report.service_latency.p50(), 3),
         Table::num(1e3 * report.service_latency.p99(), 3),
         Table::num(1e3 * report.service_latency.p999(), 3),
         Table::num(100.0 * rate_of(report.rejected, report.requests), 1),
         Table::num(100.0 * rate_of(report.cache_hits, report.completed), 1),
         Table::num(1e3 * report.lateness.p99(), 3),
         Table::num(
             100.0 * met_rate(report.by_class[static_cast<int>(
                         load::DeadlineClass::kTight)]),
             1),
         Table::num(
             100.0 * met_rate(report.by_class[static_cast<int>(
                         load::DeadlineClass::kLoose)]),
             1)});
  };
  row("LocalClient (in-process)", local_report);
  row("FrontDoor -> 2 backends", door_report);
  for (const auto& [multiplier, report] : sweep_results) {
    const std::string label = "door sweep x" + Table::num(multiplier, 2);
    row(label.c_str(), report);
  }

  bench::print_experiment(
      "E13: open-loop soak, " + Table::num(horizon, 0) + " s horizon at " +
          Table::num(spec.rate_per_second, 0) +
          " req/s offered (probe-calibrated)",
      table,
      std::string("VERDICT: budget-free replay welfare ") +
          (invariant ? "EXACTLY invariant" : "DIVERGED") +
          " across transports (" + std::to_string(prefix_events) +
          " events); soak errors local=" +
          std::to_string(local_report.errors) +
          " door=" + std::to_string(door_report.errors));
}

void bm_generate_trace(benchmark::State& state) {
  // Generator throughput: one 10 s bursty trace per iteration.
  load::TraceSpec spec = soak_spec(10.0);
  spec.rate_per_second = 200.0;
  for (auto _ : state) {
    const load::Trace trace = load::generate_trace(spec);
    benchmark::DoNotOptimize(trace.events.size());
  }
}
BENCHMARK(bm_generate_trace)->Unit(benchmark::kMillisecond);

void bm_histogram_add(benchmark::State& state) {
  // The per-claim telemetry cost inside the driver's collector loop.
  LatencyHistogram histogram;
  double value = 1e-6;
  for (auto _ : state) {
    histogram.add(value);
    value = value < 1.0 ? value * 1.001 : 1e-6;
    benchmark::DoNotOptimize(histogram.count());
  }
}
BENCHMARK(bm_histogram_add);

}  // namespace

int main(int argc, char** argv) {
  return ssa::bench::run(argc, argv, [] { soak_tables(); });
}
