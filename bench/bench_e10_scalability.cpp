// Experiment E10: wall-clock scalability of the full pipeline (conflict
// graph build, rho verification, LP solve, column generation, rounding) as
// n and k grow, on disk-graph auctions. The interesting series is the LP
// solve, which dominates; rounding is near-linear.

#include <benchmark/benchmark.h>

#include <chrono>

#include "api/api.hpp"
#include "bench_util.hpp"
#include "core/rounding.hpp"
#include "gen/scenario.hpp"
#include "support/random.hpp"

namespace {

using namespace ssa;

double seconds_of(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

void experiment_table() {
  Table table({"n", "k", "graph+rho [ms]", "LP explicit [ms]",
               "LP colgen [ms]", "round x32 [ms]", "solver e2e [ms]", "b*"});
  const auto solver = make_solver("lp-rounding");
  SolveOptions options;
  options.pipeline.rounding_repetitions = 32;
  for (const std::size_t n : {40u, 80u, 160u, 240u}) {
    for (const int k : {2, 4}) {
      double build_s = 0.0;
      double lp_value = 0.0;
      AuctionInstance instance = [&] {
        const auto start = std::chrono::steady_clock::now();
        AuctionInstance built = gen::make_disk_auction(
            n, k, gen::ValuationMix::kMixed, 3 * n + static_cast<std::size_t>(k));
        build_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
        return built;
      }();
      FractionalSolution lp;
      const double explicit_s =
          seconds_of([&] { lp = solve_auction_lp(instance); });
      lp_value = lp.objective;
      const double colgen_s =
          seconds_of([&] { (void)solve_auction_lp_colgen(instance); });
      const double round_s =
          seconds_of([&] { (void)best_of_rounds(instance, lp, 32, 1); });
      // End-to-end through the unified API (LP choice + rounding + report).
      const SolveReport report = solver->solve(instance, options);
      table.add_row({Table::integer(static_cast<long long>(n)),
                     Table::integer(k), Table::num(1e3 * build_s, 2),
                     Table::num(1e3 * explicit_s, 2),
                     Table::num(1e3 * colgen_s, 2),
                     Table::num(1e3 * round_s, 2),
                     Table::num(1e3 * report.wall_time_seconds, 2),
                     Table::num(lp_value, 1)});
      bench::record_report(
          "e10/n=" + std::to_string(n) + "/k=" + std::to_string(k), report,
          {{"lp_upper_bound", lp_value},
           {"lp_explicit_seconds", explicit_s},
           {"lp_colgen_seconds", colgen_s}});
    }
  }
  bench::print_experiment(
      "E10: end-to-end scalability (disk-graph auctions)", table,
      "VERDICT: the LP solve dominates and rounding is cheap; explicit "
      "enumeration is competitive for small k, while column generation is "
      "the only option beyond k = 12 (see E6b)");
}

void bm_end_to_end(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const AuctionInstance instance =
      gen::make_disk_auction(n, 2, gen::ValuationMix::kMixed, 7);
  const auto solver = make_solver("lp-rounding");
  SolveOptions options;
  options.pipeline.rounding_repetitions = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver->solve(instance, options));
  }
}
BENCHMARK(bm_end_to_end)->Arg(20)->Arg(40)->Arg(80)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return ssa::bench::run(argc, argv, experiment_table);
}
