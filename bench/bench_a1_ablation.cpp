// Ablation A1: why the rounding is designed the way it is.
//
//  (a) Scaling ablation: Algorithm 1 samples with probability
//      x_{v,T} / (c * sqrt(k) * rho). The paper sets c = 2. Smaller c
//      rounds more aggressively (more conflicts removed), larger c rounds
//      fewer vertices; we sweep c and report the realized expected welfare.
//      The theory only guarantees the bound at c >= 2 -- the sweep shows
//      where the empirical optimum sits.
//  (b) Decomposition ablation: the sqrt(k) split into small/large bundles
//      is what turns an O(k) loss into O(sqrt(k)). We compare the paper's
//      two-way split against "no split" rounding that treats all bundles
//      uniformly (still feasible, but the per-channel collision accounting
//      degrades for mixed bundle sizes).

#include <benchmark/benchmark.h>

#include <cmath>

#include "api/api.hpp"
#include "bench_util.hpp"
#include "core/rounding.hpp"
#include "gen/scenario.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"

namespace {

using namespace ssa;

/// LP optimum via the unified solver (it owns the explicit-vs-colgen
/// choice the ablations used to duplicate); one rounding pass is wasted.
/// The registry is the only LP entry point this bench touches -- the raw
/// round_unweighted calls below are the ablation subject itself.
FractionalSolution lp_of(const AuctionInstance& instance) {
  SolveOptions options;
  options.pipeline.rounding_repetitions = 1;
  options.pipeline.explicit_limit = 6;
  return *make_solver("lp-rounding")->solve(instance, options).fractional;
}

void scaling_table() {
  Table table({"model", "n", "k", "c (scale)", "E[welfare]", "rel. to c=2"});
  for (const std::size_t n : {30u}) {
    for (const int k : {4, 8}) {
      const AuctionInstance instance = gen::make_disk_auction(
          n, k, gen::ValuationMix::kMixed, 21u * n + static_cast<std::size_t>(k));
      const FractionalSolution lp = lp_of(instance);
      if (lp.status != lp::SolveStatus::kOptimal) continue;
      const double sqrt_k = std::sqrt(static_cast<double>(k));
      double baseline = 0.0;
      for (const double c : {0.5, 1.0, 2.0, 4.0, 8.0}) {
        Rng rng(5u * n + static_cast<std::uint64_t>(10 * c));
        RunningStats stats;
        for (int trial = 0; trial < 200; ++trial) {
          stats.add(instance.welfare(round_unweighted(
              instance, lp, rng, c * sqrt_k * instance.rho())));
        }
        if (c == 2.0) baseline = stats.mean();
        table.add_row({"disk", Table::integer(static_cast<long long>(n)),
                       Table::integer(k), Table::num(c, 1),
                       Table::num(stats.mean(), 1),
                       baseline > 0 ? Table::num(stats.mean() / baseline, 2)
                                    : "-"});
      }
    }
  }
  bench::print_experiment(
      "A1a: rounding-scale ablation (probability x / (c sqrt(k) rho))", table,
      "NOTE: welfare decreases monotonically in c on these benign random "
      "instances (aggressive rounding wins empirically); the paper's c = 2 "
      "is what makes the WORST-CASE proof work (removal probability <= 1/2 "
      "via Markov). Practical deployments can anneal c downward and keep "
      "the guarantee by taking the better of the two allocations");
}

/// "No split" rounding: sample every bundle with x/(2 sqrt(k) rho) in one
/// pass (no small/large separation), then resolve conflicts as Algorithm 1.
Allocation round_without_split(const AuctionInstance& instance,
                               const FractionalSolution& lp, Rng& rng) {
  const double denominator =
      2.0 * std::sqrt(static_cast<double>(instance.num_channels())) *
      instance.rho();
  const std::size_t n = instance.num_bidders();
  std::vector<std::vector<const FractionalColumn*>> by_bidder(n);
  for (const FractionalColumn& column : lp.columns) {
    by_bidder[static_cast<std::size_t>(column.bidder)].push_back(&column);
  }
  Allocation allocation;
  allocation.bundles.assign(n, kEmptyBundle);
  for (std::size_t v = 0; v < n; ++v) {
    const double u = rng.uniform();
    double cumulative = 0.0;
    for (const FractionalColumn* column : by_bidder[v]) {
      cumulative += column->x / denominator;
      if (u < cumulative) {
        allocation.bundles[v] = column->bundle;
        break;
      }
    }
  }
  const auto& graph = instance.graph();
  const auto& position = instance.positions();
  for (int v : instance.order()) {
    const std::size_t sv = static_cast<std::size_t>(v);
    if (allocation.bundles[sv] == kEmptyBundle) continue;
    for (int u : graph.neighbors(sv)) {
      const std::size_t su = static_cast<std::size_t>(u);
      if (position[su] < position[sv] &&
          (allocation.bundles[su] & allocation.bundles[sv]) != kEmptyBundle) {
        allocation.bundles[sv] = kEmptyBundle;
        break;
      }
    }
  }
  return allocation;
}

void split_table() {
  Table table(
      {"n", "k", "E[welfare] split (Alg 1)", "E[welfare] no split", "ratio"});
  for (const std::size_t n : {30u}) {
    for (const int k : {4, 8}) {
      const AuctionInstance instance = gen::make_disk_auction(
          n, k, gen::ValuationMix::kMixed, 77u * n + static_cast<std::size_t>(k));
      const FractionalSolution lp = lp_of(instance);
      if (lp.status != lp::SolveStatus::kOptimal) continue;
      Rng rng_a(1), rng_b(1);
      RunningStats with_split, without_split;
      for (int trial = 0; trial < 300; ++trial) {
        with_split.add(instance.welfare(round_unweighted(instance, lp, rng_a)));
        without_split.add(
            instance.welfare(round_without_split(instance, lp, rng_b)));
      }
      table.add_row({Table::integer(static_cast<long long>(n)),
                     Table::integer(k), Table::num(with_split.mean(), 1),
                     Table::num(without_split.mean(), 1),
                     Table::num(without_split.mean() > 0
                                    ? with_split.mean() / without_split.mean()
                                    : 0.0,
                                2)});
    }
  }
  bench::print_experiment(
      "A1b: sqrt(k) bundle-split ablation", table,
      "NOTE: both variants are feasible; on benign instances the unsplit "
      "variant can even win (the split discards one half's samples per "
      "pass). The split's role is the WORST-CASE O(sqrt(k)) factor -- "
      "adversarial mixes of tiny and huge bundles break the unsplit "
      "analysis (collision probability per channel scales with k)");
}

void bm_round_with_split(benchmark::State& state) {
  const AuctionInstance instance =
      gen::make_disk_auction(40, 8, gen::ValuationMix::kMixed, 5);
  const FractionalSolution lp = lp_of(instance);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(round_unweighted(instance, lp, rng));
  }
}
BENCHMARK(bm_round_with_split);

/// Registry round-trip timing for the Section 6 solver: LP + 16 rounding
/// passes behind "asymmetric-lp-rounding" (the path the a1 ablations
/// isolate pieces of, asymmetric edition).
void bm_asymmetric_registry_solve(benchmark::State& state) {
  const AsymmetricInstance instance = gen::make_random_asymmetric(
      24, 3, 0.25, gen::ValuationMix::kMixed, 5);
  const auto solver = make_solver("asymmetric-lp-rounding");
  SolveOptions options;
  options.pipeline.rounding_repetitions = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver->solve(instance, options));
  }
}
BENCHMARK(bm_asymmetric_registry_solve);

}  // namespace

int main(int argc, char** argv) {
  return ssa::bench::run(argc, argv, [] {
    scaling_table();
    split_table();
  });
}
