// Experiment E8 (Section 6 + Theorem 18): asymmetric channels through the
// unified registry. The "asymmetric-lp-rounding" solver provides the LP
// optimum b* (payload), the best-of-64 welfare and the guarantee; the
// E[round] column re-rounds the solver's fractional payload to estimate
// the expectation the O(k rho) analysis bounds.

#include <benchmark/benchmark.h>

#include "api/api.hpp"
#include "bench_util.hpp"
#include "core/asymmetric.hpp"
#include "gen/scenario.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"

namespace {

using namespace ssa;

void add_experiment_row(Table& table, const char* label,
                        const AsymmetricInstance& instance, std::size_t n,
                        std::uint64_t trial_seed, bool& all_ok) {
  SolveOptions options;
  options.seed = 5;
  options.pipeline.rounding_repetitions = 64;
  const SolveReport report =
      make_solver("asymmetric-lp-rounding")->solve(instance, options);
  if (!report.error.empty() || !report.fractional) return;
  const FractionalSolution& lp = *report.fractional;
  const int k = instance.num_channels();
  Rng rng(trial_seed);
  RunningStats stats;
  for (int trial = 0; trial < 60; ++trial) {
    stats.add(instance.welfare(round_asymmetric(instance, lp, rng)));
  }
  const double factor = 4.0 * static_cast<double>(k) * instance.rho();
  const bool ok = stats.mean() >= lp.objective / factor - 1e-9;
  all_ok = all_ok && ok;
  table.add_row({label, Table::integer(static_cast<long long>(n)),
                 Table::integer(k), Table::num(instance.rho(), 1),
                 Table::num(lp.objective, 1), Table::num(stats.mean(), 1),
                 Table::num(report.welfare, 1),
                 Table::num(stats.mean() > 0 ? lp.objective / stats.mean()
                                             : 0.0,
                            2),
                 Table::num(factor, 1), ok ? "yes" : "NO"});
}

void experiment_table() {
  Table table({"instance", "n", "k", "rho", "b*", "E[round]", "best64",
               "b*/E[round]", "4*k*rho", "bound ok"});
  bool all_ok = true;
  for (const std::size_t n : {12u, 20u}) {
    for (const int k : {2, 3}) {
      const AsymmetricInstance instance = gen::make_random_asymmetric(
          n, k, 0.25, gen::ValuationMix::kMixed, 17 * n + static_cast<std::size_t>(k));
      add_experiment_row(table, "random", instance, n, 3 * n, all_ok);
    }
  }
  // Theorem 18 construction: welfare counts independent-set vertices.
  for (const std::size_t n : {16u, 24u}) {
    const AsymmetricInstance instance =
        gen::make_hardness_instance(n, 6, 3, 5 * n);
    add_experiment_row(table, "thm18(d=6)", instance, n, 7 * n, all_ok);
  }
  bench::print_experiment(
      "E8 / Section 6 + Theorem 18: asymmetric channels", table,
      all_ok ? "VERDICT: E[welfare] >= b*/(4 k rho) on every row (the "
               "O(k rho) analysis holds; Theorem 18 says no algorithm can "
               "beat ~k rho in general)"
             : "VERDICT: bound VIOLATED on some row");
}

void bm_asymmetric_lp(benchmark::State& state) {
  const AsymmetricInstance instance = gen::make_random_asymmetric(
      static_cast<std::size_t>(state.range(0)), 3, 0.25,
      gen::ValuationMix::kMixed, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_asymmetric_lp(instance));
  }
}
BENCHMARK(bm_asymmetric_lp)->Arg(12)->Arg(20);

}  // namespace

int main(int argc, char** argv) {
  return ssa::bench::run(argc, argv, experiment_table);
}
