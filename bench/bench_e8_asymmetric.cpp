// Experiment E8 (Section 6 + Theorem 18): asymmetric channels. On random
// per-channel graphs and on the Theorem 18 hardness construction we report
// the LP value, the rounded welfare with the 1/(2 k rho) scaling, the
// realized ratio, and the O(k rho) factor the analysis guarantees.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/asymmetric.hpp"
#include "gen/scenario.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"

namespace {

using namespace ssa;

void experiment_table() {
  Table table({"instance", "n", "k", "rho", "b*", "E[round]", "best64",
               "b*/E[round]", "4*k*rho", "bound ok"});
  bool all_ok = true;
  for (const std::size_t n : {12u, 20u}) {
    for (const int k : {2, 3}) {
      const AsymmetricInstance instance = gen::make_random_asymmetric(
          n, k, 0.25, gen::ValuationMix::kMixed, 17 * n + static_cast<std::size_t>(k));
      const FractionalSolution lp = solve_asymmetric_lp(instance);
      if (lp.status != lp::SolveStatus::kOptimal) continue;
      Rng rng(3 * n);
      RunningStats stats;
      for (int trial = 0; trial < 60; ++trial) {
        stats.add(instance.welfare(round_asymmetric(instance, lp, rng)));
      }
      const Allocation best = best_asymmetric_rounds(instance, lp, 64, 5);
      const double factor = 4.0 * static_cast<double>(k) * instance.rho();
      const bool ok = stats.mean() >= lp.objective / factor - 1e-9;
      all_ok = all_ok && ok;
      table.add_row({"random", Table::integer(static_cast<long long>(n)),
                     Table::integer(k), Table::num(instance.rho(), 1),
                     Table::num(lp.objective, 1), Table::num(stats.mean(), 1),
                     Table::num(instance.welfare(best), 1),
                     Table::num(stats.mean() > 0 ? lp.objective / stats.mean()
                                                 : 0.0,
                                2),
                     Table::num(factor, 1), ok ? "yes" : "NO"});
    }
  }
  // Theorem 18 construction: welfare counts independent-set vertices.
  for (const std::size_t n : {16u, 24u}) {
    const int d = 6, k = 3;
    const AsymmetricInstance instance =
        gen::make_hardness_instance(n, d, k, 5 * n);
    const FractionalSolution lp = solve_asymmetric_lp(instance);
    if (lp.status != lp::SolveStatus::kOptimal) continue;
    Rng rng(7 * n);
    RunningStats stats;
    for (int trial = 0; trial < 60; ++trial) {
      stats.add(instance.welfare(round_asymmetric(instance, lp, rng)));
    }
    const Allocation best = best_asymmetric_rounds(instance, lp, 64, 5);
    const double factor = 4.0 * static_cast<double>(k) * instance.rho();
    const bool ok = stats.mean() >= lp.objective / factor - 1e-9;
    all_ok = all_ok && ok;
    table.add_row({"thm18(d=6)", Table::integer(static_cast<long long>(n)),
                   Table::integer(k), Table::num(instance.rho(), 1),
                   Table::num(lp.objective, 1), Table::num(stats.mean(), 1),
                   Table::num(instance.welfare(best), 1),
                   Table::num(stats.mean() > 0 ? lp.objective / stats.mean()
                                               : 0.0,
                              2),
                   Table::num(factor, 1), ok ? "yes" : "NO"});
  }
  bench::print_experiment(
      "E8 / Section 6 + Theorem 18: asymmetric channels", table,
      all_ok ? "VERDICT: E[welfare] >= b*/(4 k rho) on every row (the "
               "O(k rho) analysis holds; Theorem 18 says no algorithm can "
               "beat ~k rho in general)"
             : "VERDICT: bound VIOLATED on some row");
}

void bm_asymmetric_lp(benchmark::State& state) {
  const AsymmetricInstance instance = gen::make_random_asymmetric(
      static_cast<std::size_t>(state.range(0)), 3, 0.25,
      gen::ValuationMix::kMixed, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_asymmetric_lp(instance));
  }
}
BENCHMARK(bm_asymmetric_lp)->Arg(12)->Arg(20);

}  // namespace

int main(int argc, char** argv) {
  return ssa::bench::run(argc, argv, experiment_table);
}
