// Experiment E2 (Lemmas 7 + 8): approximation quality of Algorithms 2 + 3
// on edge-weighted conflict graphs from the physical model with fixed
// powers. The LP optimum and the proven 16 sqrt(k) rho ceil(log n) factor
// come from the unified "lp-rounding" solver; the partial/finalized
// expectation series reuses its fractional payload with the raw Algorithm
// 2 + 3 primitives.

#include <benchmark/benchmark.h>

#include "api/api.hpp"
#include "bench_util.hpp"
#include "core/rounding.hpp"
#include "gen/scenario.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"

namespace {

using namespace ssa;

void experiment_table() {
  Table table({"power", "n", "k", "rho(pi)", "b*", "E[partial]", "E[final]",
               "16*sqrt(k)*rho*logn", "bound ok"});
  bool all_ok = true;
  struct SchemeRow {
    PowerScheme scheme;
    const char* name;
  };
  const auto solver = make_solver("lp-rounding");
  SolveOptions options;
  options.pipeline.rounding_repetitions = 1;  // the series below re-rounds
  for (const SchemeRow scheme : {SchemeRow{PowerScheme::kUniform, "uniform"},
                                 SchemeRow{PowerScheme::kLinear, "linear"},
                                 SchemeRow{PowerScheme::kSquareRoot, "sqrt"}}) {
    for (const std::size_t n : {20u, 40u}) {
      for (const int k : {1, 2, 4}) {
        const AuctionInstance instance = gen::make_physical_auction(
            n, k, scheme.scheme, gen::ValuationMix::kMixed, 11u * n + k);
        const SolveReport report = solver->solve(instance, options);
        if (report.fractional->status != lp::SolveStatus::kOptimal) continue;
        Rng rng(77 + n);
        RunningStats partial_stats, final_stats;
        for (int trial = 0; trial < 40; ++trial) {
          const Allocation partial =
              round_weighted_partial(instance, *report.fractional, rng);
          partial_stats.add(instance.welfare(partial));
          final_stats.add(instance.welfare(finalize_partial(instance, partial)));
        }
        const bool ok = final_stats.mean() >= report.guarantee - 1e-9;
        all_ok = all_ok && ok;
        table.add_row(
            {scheme.name, Table::integer(static_cast<long long>(n)),
             Table::integer(k), Table::num(instance.rho(), 2),
             Table::num(*report.lp_upper_bound, 1),
             Table::num(partial_stats.mean(), 1),
             Table::num(final_stats.mean(), 1), Table::num(report.factor, 1),
             ok ? "yes" : "NO"});
      }
    }
  }
  bench::print_experiment(
      "E2 / Lemmas 7+8: Algorithms 2+3 on the physical model (fixed powers)",
      table,
      all_ok ? "VERDICT: E[welfare] >= b*/(16 sqrt(k) rho ceil(log n)) on "
               "every row"
             : "VERDICT: bound VIOLATED on some row");
}

void bm_weighted_round_and_finalize(benchmark::State& state) {
  const AuctionInstance instance = gen::make_physical_auction(
      static_cast<std::size_t>(state.range(0)), 2, PowerScheme::kLinear,
      gen::ValuationMix::kMixed, 5);
  const FractionalSolution lp = solve_auction_lp(instance);
  Rng rng(1);
  for (auto _ : state) {
    const Allocation partial = round_weighted_partial(instance, lp, rng);
    benchmark::DoNotOptimize(finalize_partial(instance, partial));
  }
}
BENCHMARK(bm_weighted_round_and_finalize)->Arg(20)->Arg(40);

}  // namespace

int main(int argc, char** argv) {
  return ssa::bench::run(argc, argv, experiment_table);
}
