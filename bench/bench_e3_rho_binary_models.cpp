// Experiment E3 (Propositions 9, 11, 12, 13; 802.11; Corollary 14):
// measured inductive independence rho(pi) of every binary interference
// model against the paper's bound, across instance sizes. The claims hold
// when measured <= bound for every row, and the measured values should stay
// flat as n grows (the bounds are independent of n).

#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.hpp"
#include "gen/scenario.hpp"
#include "graph/inductive_independence.hpp"
#include "models/distance2_matching.hpp"
#include "models/protocol.hpp"
#include "models/transmitter.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"

namespace {

using namespace ssa;

struct ModelResult {
  double measured = 0.0;
  double bound = 0.0;
};

ModelResult measure(const std::string& model, std::size_t n,
                    std::uint64_t seed) {
  Rng rng(seed);
  if (model == "disk") {
    const auto tx = gen::random_transmitters(n, 40.0, 1.0, 5.0, rng);
    const ModelGraph graph = disk_graph(tx);
    return {rho_of_ordering(graph.graph, graph.order).value,
            graph.theoretical_rho};
  }
  if (model == "dist2-disk") {
    const auto tx = gen::random_transmitters(n, 40.0, 1.0, 3.0, rng);
    const ModelGraph graph = distance2_disk_graph(tx);
    return {rho_of_ordering(graph.graph, graph.order).value,
            graph.theoretical_rho};
  }
  if (model == "civilized") {
    // Jittered grid with separation s = 1, radius r = 2.
    std::vector<Point> points;
    const std::size_t side = 1;
    (void)side;
    std::size_t edge = 2;
    while (edge * edge < n) ++edge;
    for (std::size_t x = 0; x < edge && points.size() < n; ++x) {
      for (std::size_t y = 0; y < edge && points.size() < n; ++y) {
        points.push_back(Point{1.5 * static_cast<double>(x) +
                                   0.2 * rng.uniform(),
                               1.5 * static_cast<double>(y) +
                                   0.2 * rng.uniform()});
      }
    }
    const ModelGraph graph = distance2_civilized_graph(points, 2.0, 1.0);
    return {rho_of_ordering(graph.graph, graph.order).value,
            graph.theoretical_rho};
  }
  if (model == "protocol") {
    const auto planar = gen::random_links(n, 30.0, 1.0, 4.0, rng);
    const auto [links, metric] = to_metric_links(planar);
    const ModelGraph graph = protocol_conflict_graph(links, metric, 1.0);
    return {rho_of_ordering(graph.graph, graph.order).value,
            graph.theoretical_rho};
  }
  if (model == "802.11") {
    const auto planar = gen::random_links(n, 30.0, 1.0, 4.0, rng);
    const auto [links, metric] = to_metric_links(planar);
    const ModelGraph graph = ieee80211_conflict_graph(links, metric, 0.5);
    return {rho_of_ordering(graph.graph, graph.order).value, 23.0};
  }
  // distance-2 matching
  const auto tx = gen::random_transmitters(n / 2 + 4, 30.0, 1.0, 2.5, rng);
  const auto edges = disk_graph_edges(tx);
  const ModelGraph graph = distance2_matching_graph(tx, edges);
  return {rho_of_ordering(graph.graph, graph.order).value, 40.0};
}

void experiment_table() {
  Table table({"model", "n", "measured rho(pi)", "paper bound", "within"});
  bool all_ok = true;
  for (const std::string model :
       {"disk", "dist2-disk", "civilized", "protocol", "802.11", "d2-match"}) {
    for (const std::size_t n : {20u, 40u, 80u}) {
      RunningStats stats;
      double bound = 0.0;
      for (std::uint64_t seed = 0; seed < 5; ++seed) {
        const ModelResult result = measure(model, n, 97 * seed + n);
        stats.add(result.measured);
        bound = result.bound;
      }
      const bool ok = stats.max() <= bound + 1e-9;
      all_ok = all_ok && ok;
      table.add_row({model, Table::integer(static_cast<long long>(n)),
                     Table::num(stats.max(), 1), Table::num(bound, 1),
                     ok ? "yes" : "NO"});
    }
  }
  bench::print_experiment(
      "E3 / Props 9-13, 802.11, Cor 14: rho(pi) of the binary models", table,
      all_ok ? "VERDICT: measured rho(pi) within the paper bound on every "
               "row, and flat in n (the bounds are constants)"
             : "VERDICT: bound VIOLATED on some row");
}

void bm_rho_verifier(benchmark::State& state) {
  Rng rng(3);
  const auto tx = gen::random_transmitters(
      static_cast<std::size_t>(state.range(0)), 40.0, 1.0, 5.0, rng);
  const ModelGraph graph = disk_graph(tx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rho_of_ordering(graph.graph, graph.order));
  }
}
BENCHMARK(bm_rho_verifier)->Arg(40)->Arg(80)->Arg(160);

}  // namespace

int main(int argc, char** argv) {
  return ssa::bench::run(argc, argv, experiment_table);
}
