// Experiment E11: throughput of the long-lived AuctionService on mixed
// symmetric/asymmetric scenario streams. A fixed stream of requests
// (distinct scenarios from gen::mixed_scenario_suite, each recurring after
// a cache-warming first rotation) is pushed through service configurations
// of increasing concurrency; the series reports sustained requests/sec and
// the cache hit rate. The welfare column doubles as a cross-configuration
// invariant: results must not depend on the shard/worker layout.
//
// Concurrency is configurable: SSA_BENCH_SHARDS (comma-separated shard
// counts, default "1,2,4,8") and SSA_BENCH_WORKERS (workers per shard,
// default 1).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "gen/scenario.hpp"
#include "service/service.hpp"

namespace {

using namespace ssa;

std::vector<int> shard_counts_from_env() {
  const char* env = std::getenv("SSA_BENCH_SHARDS");
  if (env == nullptr) return {1, 2, 4, 8};
  std::vector<int> counts;
  std::string token;
  for (const char* p = env;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) counts.push_back(std::max(1, std::atoi(token.c_str())));
      token.clear();
      if (*p == '\0') break;
    } else {
      token += *p;
    }
  }
  return counts.empty() ? std::vector<int>{1, 2, 4, 8} : counts;
}

int workers_from_env() {
  const char* env = std::getenv("SSA_BENCH_WORKERS");
  return env == nullptr ? 1 : std::max(1, std::atoi(env));
}

/// The benchmark workload: 5 mixed suites = 20 distinct scenarios.
std::vector<gen::NamedInstance> make_scenarios() {
  std::vector<gen::NamedInstance> scenarios;
  for (std::uint64_t suite = 0; suite < 5; ++suite) {
    for (gen::NamedInstance& named :
         gen::mixed_scenario_suite(12, 2, 4200 + 31 * suite)) {
      scenarios.push_back(std::move(named));
    }
  }
  return scenarios;
}

struct StreamOutcome {
  double seconds = 0.0;
  double welfare = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t requests = 0;
};

/// Streams rotations of the scenario set through one service
/// configuration: first rotation computes (cache warmup), later rotations
/// replay. Claims every report and accumulates welfare.
StreamOutcome drive_stream(const std::vector<gen::NamedInstance>& scenarios,
                           int shards, int workers, int rotations) {
  service::ServiceOptions config;
  config.shards = shards;
  config.threads_per_shard = workers;
  service::AuctionService service(config);

  SolveOptions options;
  options.pipeline.rounding_repetitions = 12;

  StreamOutcome outcome;
  const auto start = std::chrono::steady_clock::now();
  std::vector<service::RequestId> ids;
  ids.reserve(scenarios.size() * static_cast<std::size_t>(rotations));
  for (int rotation = 0; rotation < rotations; ++rotation) {
    for (const gen::NamedInstance& scenario : scenarios) {
      ids.push_back(
          service.submit(scenario.view(), service::kAutoSolver, options));
    }
    if (rotation == 0) service.drain();  // warm the caches once
  }
  for (const service::RequestId id : ids) {
    outcome.welfare += service.get(id).welfare;
  }
  outcome.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const service::ServiceStats stats = service.stats();
  outcome.cache_hits = stats.cache_hits;
  outcome.requests = stats.submitted;
  return outcome;
}

void experiment_table() {
  const std::vector<gen::NamedInstance> scenarios = make_scenarios();
  const std::vector<int> shard_counts = shard_counts_from_env();
  const int workers = workers_from_env();
  const int rotations = 10;  // 20 scenarios x 10 = 200 requests per config

  Table table({"shards", "workers/shard", "requests", "req/s", "cache hit %",
               "total welfare", "ms"});
  for (const int shards : shard_counts) {
    const StreamOutcome outcome =
        drive_stream(scenarios, shards, workers, rotations);
    const double rate =
        static_cast<double>(outcome.requests) / outcome.seconds;
    const double hit_rate = 100.0 * static_cast<double>(outcome.cache_hits) /
                            static_cast<double>(outcome.requests);
    table.add_row({Table::integer(shards), Table::integer(workers),
                   Table::integer(static_cast<long long>(outcome.requests)),
                   Table::num(rate, 1), Table::num(hit_rate, 1),
                   Table::num(outcome.welfare, 2),
                   Table::num(1e3 * outcome.seconds, 1)});
    bench::record(
        {"e11/shards=" + std::to_string(shards) +
             "/workers=" + std::to_string(workers),
         outcome.seconds, outcome.welfare, "auto",
         {{"requests", static_cast<double>(outcome.requests)},
          {"requests_per_sec", rate},
          {"cache_hit_rate", hit_rate / 100.0},
          {"shards", static_cast<double>(shards)},
          {"workers_per_shard", static_cast<double>(workers)}}});
  }
  bench::print_experiment(
      "E11: auction service throughput (mixed scenario stream)", table,
      "VERDICT: after the warmup rotation the stream is cache-dominated, so "
      "requests/sec tracks fingerprint+lookup cost; total welfare is "
      "invariant across shard/worker layouts (determinism), and shard "
      "counts trade lock contention against cache fragmentation");
}

void bm_service_stream(benchmark::State& state) {
  const std::vector<gen::NamedInstance> scenarios = make_scenarios();
  const int shards = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const StreamOutcome outcome = drive_stream(scenarios, shards, 1, 3);
    benchmark::DoNotOptimize(outcome.welfare);
  }
}
BENCHMARK(bm_service_stream)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return ssa::bench::run(argc, argv, experiment_table);
}
