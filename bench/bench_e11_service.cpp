// Experiment E11: the long-lived AuctionService under three lenses.
//
// E11a (throughput): a fixed stream of requests (distinct scenarios from
// the load harness's deterministic pool, load::ScenarioPool, each
// recurring after a cache-warming first rotation) is pushed through
// service configurations of increasing
// concurrency; the series reports sustained requests/sec and the cache hit
// rate. The welfare column doubles as a cross-configuration invariant:
// results must not depend on the shard/worker layout.
//
// E11b (deadline mix): a burst of distinct requests with alternating tight
// and loose time budgets through one worker, once under the FIFO baseline
// and once under deadline ordering (QueuePolicy). Deadlines met are scored
// server-side (queue wait + solve wall time vs budget). Deadline ordering
// must meet strictly more deadlines than FIFO on the same stream, and a
// shard-layout sweep of the same stream must keep total welfare invariant
// (scheduling changes latency, never payloads). Budgets are calibrated
// from a measured solve so the bench is machine-independent: tight = 30x
// one solve (FIFO misses the tail of the tight requests, deadline ordering
// meets them all), loose = 1000x.
//
// E11c (restart): the throughput stream with a service kill/restart in the
// middle, persisting the result caches through a snapshot file. The
// combined hit rate across the restart must stay within 5 points of the
// uninterrupted run (warm-cache resume), and welfare must match exactly.
//
// Concurrency is configurable: SSA_BENCH_SHARDS (comma-separated shard
// counts, default "1,2,4,8") and SSA_BENCH_WORKERS (workers per shard,
// default 1).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "bench_util.hpp"
#include "gen/scenario.hpp"
#include "load/workload.hpp"
#include "service/service.hpp"

namespace {

using namespace ssa;

std::vector<int> shard_counts_from_env() {
  const char* env = std::getenv("SSA_BENCH_SHARDS");
  if (env == nullptr) return {1, 2, 4, 8};
  std::vector<int> counts;
  std::string token;
  for (const char* p = env;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) counts.push_back(std::max(1, std::atoi(token.c_str())));
      token.clear();
      if (*p == '\0') break;
    } else {
      token += *p;
    }
  }
  return counts.empty() ? std::vector<int>{1, 2, 4, 8} : counts;
}

int workers_from_env() {
  const char* env = std::getenv("SSA_BENCH_WORKERS");
  return env == nullptr ? 1 : std::max(1, std::atoi(env));
}

/// The benchmark workload: 20 distinct scenarios from the load harness's
/// deterministic pool (load::ScenarioPool cycles the five generator
/// families per derived seed), so the mixed-stream definition lives in
/// the same spec vocabulary E13's soak traces replay.
std::vector<gen::NamedInstance> make_scenarios() {
  load::TraceSpec spec;
  spec.seed = 4200;
  spec.pool_size = 20;
  spec.bidders = 12;
  spec.channels = 2;
  load::ScenarioPool pool(spec);
  std::vector<gen::NamedInstance> scenarios;
  scenarios.reserve(pool.size());
  for (std::uint32_t s = 0; s < static_cast<std::uint32_t>(pool.size());
       ++s) {
    scenarios.push_back(pool.instance(s));
  }
  return scenarios;
}

struct StreamOutcome {
  double seconds = 0.0;
  double welfare = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t requests = 0;
};

/// Streams rotations of the scenario set through one service
/// configuration: first rotation computes (cache warmup), later rotations
/// replay. Claims every report and accumulates welfare.
StreamOutcome drive_stream(const std::vector<gen::NamedInstance>& scenarios,
                           int shards, int workers, int rotations,
                           std::uint32_t span_sample_every = 1) {
  service::ServiceOptions config;
  config.shards = shards;
  config.threads_per_shard = workers;
  config.span_sample_every = span_sample_every;
  service::AuctionService service(config);

  SolveOptions options;
  options.pipeline.rounding_repetitions = 12;

  StreamOutcome outcome;
  const auto start = std::chrono::steady_clock::now();
  std::vector<service::RequestId> ids;
  ids.reserve(scenarios.size() * static_cast<std::size_t>(rotations));
  for (int rotation = 0; rotation < rotations; ++rotation) {
    for (const gen::NamedInstance& scenario : scenarios) {
      ids.push_back(
          service.submit(scenario.view(), service::kAutoSolver, options));
    }
    if (rotation == 0) service.drain();  // warm the caches once
  }
  for (const service::RequestId id : ids) {
    outcome.welfare += service.get(id).welfare;
  }
  outcome.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const service::ServiceStats stats = service.stats();
  outcome.cache_hits = stats.cache_hits;
  outcome.requests = stats.submitted;
  return outcome;
}

void throughput_table() {
  const std::vector<gen::NamedInstance> scenarios = make_scenarios();
  const std::vector<int> shard_counts = shard_counts_from_env();
  const int workers = workers_from_env();
  const int rotations = 10;  // 20 scenarios x 10 = 200 requests per config

  Table table({"shards", "workers/shard", "requests", "req/s", "cache hit %",
               "total welfare", "ms"});
  for (const int shards : shard_counts) {
    const StreamOutcome outcome =
        drive_stream(scenarios, shards, workers, rotations);
    const double rate =
        static_cast<double>(outcome.requests) / outcome.seconds;
    const double hit_rate = 100.0 * static_cast<double>(outcome.cache_hits) /
                            static_cast<double>(outcome.requests);
    table.add_row({Table::integer(shards), Table::integer(workers),
                   Table::integer(static_cast<long long>(outcome.requests)),
                   Table::num(rate, 1), Table::num(hit_rate, 1),
                   Table::num(outcome.welfare, 2),
                   Table::num(1e3 * outcome.seconds, 1)});
    bench::record(
        {"e11/shards=" + std::to_string(shards) +
             "/workers=" + std::to_string(workers),
         outcome.seconds, outcome.welfare, "auto",
         {{"requests", static_cast<double>(outcome.requests)},
          {"requests_per_sec", rate},
          {"cache_hit_rate", hit_rate / 100.0},
          {"shards", static_cast<double>(shards)},
          {"workers_per_shard", static_cast<double>(workers)}}});
  }
  bench::print_experiment(
      "E11a: auction service throughput (mixed scenario stream)", table,
      "VERDICT: after the warmup rotation the stream is cache-dominated, so "
      "requests/sec tracks fingerprint+lookup cost; total welfare is "
      "invariant across shard/worker layouts (determinism), and shard "
      "counts trade lock contention against cache fragmentation");
}

// --------------------------------------------------------------- E11d

void telemetry_overhead_table() {
  // The obs acceptance criterion: with tracing fully on (every request
  // records spans + latency histograms) the cache-warm request rate must
  // stay within 3% of the minimal-metrics run. span_sample_every = 0
  // disables span recording and histogram sampling; the COUNTERS stay on
  // in both runs -- they are the same atomics the service always
  // maintained, so they are not an overhead source to measure.
  const std::vector<gen::NamedInstance> scenarios = make_scenarios();
  constexpr int kShards = 2;
  constexpr int kRotations = 20;  // cache-dominated: the hot path measured
  constexpr int kReps = 3;        // best-of to shave scheduler noise

  const auto best_rate = [&](std::uint32_t sample_every) {
    double best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      const StreamOutcome outcome =
          drive_stream(scenarios, kShards, 1, kRotations, sample_every);
      best = std::max(best, static_cast<double>(outcome.requests) /
                                outcome.seconds);
    }
    return best;
  };

  const double rate_off = best_rate(0);
  const double rate_on = best_rate(1);
  const double overhead_percent = 100.0 * (1.0 - rate_on / rate_off);

  Table table({"telemetry", "req/s", "overhead %"});
  table.add_row({"off (sample=0)", Table::num(rate_off, 1), "-"});
  table.add_row(
      {"on (sample=1)", Table::num(rate_on, 1),
       Table::num(overhead_percent, 2)});
  bench::record({"e11/telemetry_overhead", 0.0, 0.0, "auto",
                 {{"requests_per_sec_spans_off", rate_off},
                  {"requests_per_sec_spans_on", rate_on},
                  {"overhead_percent", overhead_percent}}});
  bench::print_experiment(
      "E11d: telemetry overhead on the cache-warm path", table,
      overhead_percent <= 3.0
          ? "VERDICT: full span+histogram sampling costs <= 3% of cache-warm "
            "throughput (acceptance bound)"
          : "VERDICT: REGRESSION: telemetry overhead " +
                Table::num(overhead_percent, 2) + "% exceeds the 3% bound");
}

// --------------------------------------------------------------- E11b

/// Distinct symmetric instances for the deadline mix (no cache hits, no
/// coalescing: every request is a real solve).
std::vector<AuctionInstance> make_deadline_workload(std::size_t count) {
  std::vector<AuctionInstance> instances;
  instances.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    instances.push_back(
        gen::make_disk_auction(20, 2, gen::ValuationMix::kMixed, 7000 + i));
  }
  return instances;
}

struct DeadlineMixOutcome {
  int tight_met = 0;
  int loose_met = 0;
  int tight_total = 0;
  int loose_total = 0;
  double welfare = 0.0;
};

/// Drives the alternating tight/loose burst through one configuration and
/// scores deadlines server-side: met when queue wait + solve wall time fit
/// inside the request's budget. Admission stays kAcceptAll so the two
/// queue policies solve identical work (welfare must match exactly).
DeadlineMixOutcome drive_deadline_mix(
    const std::vector<AuctionInstance>& instances, QueuePolicy queue,
    int shards, double tight_budget, double loose_budget) {
  service::ServiceOptions config;
  config.shards = shards;
  config.threads_per_shard = 1;
  config.queue = queue;
  config.admission = AdmissionPolicy::kAcceptAll;
  config.cache_bytes_per_shard = 0;  // every request is a real solve
  service::AuctionService service(config);

  std::vector<service::RequestId> ids;
  std::vector<double> budgets;
  ids.reserve(instances.size());
  budgets.reserve(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    SolveOptions options;
    options.pipeline.rounding_repetitions = 12;
    options.time_budget_seconds =
        (i % 2 == 0) ? tight_budget : loose_budget;
    budgets.push_back(options.time_budget_seconds);
    ids.push_back(service.submit(instances[i], "lp-rounding", options));
  }

  DeadlineMixOutcome outcome;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const SolveReport report = service.get(ids[i]);
    outcome.welfare += report.welfare;
    const bool tight = i % 2 == 0;
    const bool met =
        report.queue_wait_seconds + report.wall_time_seconds <= budgets[i];
    (tight ? outcome.tight_total : outcome.loose_total) += 1;
    if (met) (tight ? outcome.tight_met : outcome.loose_met) += 1;
  }
  return outcome;
}

void deadline_mix_table() {
  constexpr std::size_t kRequests = 48;
  const std::vector<AuctionInstance> instances =
      make_deadline_workload(kRequests);

  // Calibrate the budgets from one measured solve so the tight/loose split
  // means the same thing on every machine: tight covers ~30 solves (FIFO
  // head-of-line blocking misses the tail of the 24 tight requests,
  // deadline ordering runs them first and meets them all), loose covers
  // the whole burst many times over.
  SolveOptions probe_options;
  probe_options.pipeline.rounding_repetitions = 12;
  double probe_seconds = 0.0;
  for (int i = 0; i < 3; ++i) {  // average over warm runs: the budgets
    probe_seconds +=              // should track the steady-state cost
        make_solver("lp-rounding")->solve(instances[i], probe_options)
            .wall_time_seconds;
  }
  const double solve_seconds = std::max(probe_seconds / 3.0, 1e-5);
  const double tight_budget = 30.0 * solve_seconds;
  const double loose_budget = 1000.0 * solve_seconds;

  Table table({"queue", "shards", "tight met", "loose met", "deadlines met",
               "total welfare"});
  DeadlineMixOutcome fifo;
  DeadlineMixOutcome deadline;
  std::vector<double> welfare_by_layout;
  const auto run = [&](QueuePolicy queue, int shards) {
    const DeadlineMixOutcome outcome = drive_deadline_mix(
        instances, queue, shards, tight_budget, loose_budget);
    const std::string queue_name =
        queue == QueuePolicy::kDeadline ? "deadline" : "fifo";
    table.add_row(
        {queue_name, Table::integer(shards),
         Table::num(outcome.tight_met, 0) + "/" +
             Table::num(outcome.tight_total, 0),
         Table::num(outcome.loose_met, 0) + "/" +
             Table::num(outcome.loose_total, 0),
         Table::integer(outcome.tight_met + outcome.loose_met),
         Table::num(outcome.welfare, 2)});
    bench::record(
        {"e11/deadline_mix/queue=" + queue_name +
             "/shards=" + std::to_string(shards),
         0.0, outcome.welfare, "lp-rounding",
         {{"deadlines_met",
           static_cast<double>(outcome.tight_met + outcome.loose_met)},
          {"tight_met", static_cast<double>(outcome.tight_met)},
          {"tight_total", static_cast<double>(outcome.tight_total)},
          {"loose_met", static_cast<double>(outcome.loose_met)},
          {"tight_budget_seconds", tight_budget}}});
    return outcome;
  };

  // The head-to-head comparison runs on one shard/worker, where
  // head-of-line blocking is sharpest; the layout sweep checks welfare
  // invariance under deadline ordering.
  fifo = run(QueuePolicy::kFifo, 1);
  deadline = run(QueuePolicy::kDeadline, 1);
  welfare_by_layout.push_back(deadline.welfare);
  for (const int shards : {2, 4}) {
    welfare_by_layout.push_back(run(QueuePolicy::kDeadline, shards).welfare);
  }

  const int fifo_met = fifo.tight_met + fifo.loose_met;
  const int deadline_met = deadline.tight_met + deadline.loose_met;
  bool welfare_invariant = true;
  for (const double welfare : welfare_by_layout) {
    welfare_invariant =
        welfare_invariant && welfare == welfare_by_layout.front();
  }
  bench::print_experiment(
      "E11b: deadline mix, FIFO baseline vs deadline-ordered queue", table,
      std::string(deadline_met > fifo_met
                      ? "VERDICT: deadline ordering meets strictly more "
                        "deadlines than FIFO ("
                      : "VERDICT: REGRESSION: deadline ordering did NOT beat "
                        "FIFO (") +
          std::to_string(deadline_met) + " vs " + std::to_string(fifo_met) +
          " of " + std::to_string(kRequests) + "); welfare " +
          (welfare_invariant ? "invariant" : "NOT invariant") +
          " across shard layouts");
}

// --------------------------------------------------------------- E11c

void restart_table() {
  const std::vector<gen::NamedInstance> scenarios = make_scenarios();
  const std::string snapshot_path = "BENCH_e11_snapshot.bin";
  std::remove(snapshot_path.c_str());
  SolveOptions options;
  options.pipeline.rounding_repetitions = 12;

  const auto run_rotations = [&](service::AuctionService& service,
                                 int rotations, double& welfare) {
    for (int rotation = 0; rotation < rotations; ++rotation) {
      std::vector<service::RequestId> ids;
      ids.reserve(scenarios.size());
      for (const gen::NamedInstance& scenario : scenarios) {
        ids.push_back(
            service.submit(scenario.view(), service::kAutoSolver, options));
      }
      // Draining between rotations keeps repeats out of the coalescing
      // window: replays must be cache hits, the metric under test.
      for (const service::RequestId id : ids) {
        welfare += service.get(id).welfare;
      }
    }
  };

  // Uninterrupted baseline: 3 rotations, one warmup + two replays.
  double baseline_welfare = 0.0;
  double baseline_hit_rate = 0.0;
  std::uint64_t baseline_requests = 0;
  {
    service::ServiceOptions config;
    config.shards = 2;
    service::AuctionService service(config);
    run_rotations(service, 3, baseline_welfare);
    const service::ServiceStats stats = service.stats();
    baseline_requests = stats.submitted;
    baseline_hit_rate = static_cast<double>(stats.cache_hits) /
                        static_cast<double>(stats.submitted);
  }

  // Kill/restart: rotations 1+2 in the first process-life, snapshot on
  // shutdown, rotation 3 in the second. The second life changes the shard
  // layout on purpose: snapshot entries re-route on restore.
  double restart_welfare = 0.0;
  std::uint64_t restart_hits = 0;
  std::uint64_t restart_requests = 0;
  std::uint64_t restored = 0;
  {
    service::ServiceOptions config;
    config.shards = 2;
    config.snapshot_path = snapshot_path;
    service::AuctionService first_life(config);
    run_rotations(first_life, 2, restart_welfare);
    const service::ServiceStats stats = first_life.stats();
    restart_hits += stats.cache_hits;
    restart_requests += stats.submitted;
    first_life.shutdown();  // writes the snapshot ("kill")
  }
  bool clean_baseline = true;
  {
    service::ServiceOptions config;
    config.shards = 4;  // different layout: restore must re-route
    config.snapshot_path = snapshot_path;
    service::AuctionService second_life(config);
    const service::ServiceStats at_restore = second_life.stats();
    restored = at_restore.snapshot_restored;
    // Post-restore hit rates must be computed from a clean baseline: the
    // restore brings cache entries, never traffic counters.
    clean_baseline = at_restore.cache_hits == 0 && at_restore.submitted == 0 &&
                     at_restore.completed == 0;
    run_rotations(second_life, 1, restart_welfare);
    const service::ServiceStats stats = second_life.stats();
    restart_hits += stats.cache_hits;
    restart_requests += stats.submitted;
  }
  std::remove(snapshot_path.c_str());
  const double restart_hit_rate = static_cast<double>(restart_hits) /
                                  static_cast<double>(restart_requests);
  const double gap_points =
      100.0 * (baseline_hit_rate - restart_hit_rate);

  Table table({"run", "requests", "cache hit %", "restored entries",
               "total welfare"});
  table.add_row({"no restart",
                 Table::integer(static_cast<long long>(baseline_requests)),
                 Table::num(100.0 * baseline_hit_rate, 1), "-",
                 Table::num(baseline_welfare, 2)});
  table.add_row({"kill+restart",
                 Table::integer(static_cast<long long>(restart_requests)),
                 Table::num(100.0 * restart_hit_rate, 1),
                 Table::integer(static_cast<long long>(restored)),
                 Table::num(restart_welfare, 2)});
  bench::record({"e11/restart/baseline", 0.0, baseline_welfare, "auto",
                 {{"cache_hit_rate", baseline_hit_rate}}});
  bench::record({"e11/restart/resumed", 0.0, restart_welfare, "auto",
                 {{"cache_hit_rate", restart_hit_rate},
                  {"snapshot_restored", static_cast<double>(restored)},
                  {"hit_rate_gap_points", gap_points},
                  {"clean_stats_baseline", clean_baseline ? 1.0 : 0.0}}});
  bench::print_experiment(
      "E11c: kill/restart with cache snapshot persistence", table,
      (gap_points <= 5.0 && gap_points >= -5.0
           ? std::string("VERDICT: the restarted service resumes warm (hit "
                         "rate within 5 points of the uninterrupted run")
           : std::string("VERDICT: REGRESSION: restart lost the cache (gap ") +
                 Table::num(gap_points, 1) + " points") +
          "); welfare " +
          (baseline_welfare == restart_welfare ? "matches exactly"
                                               : "DIVERGED") +
          " across the restart; post-restore counters " +
          (clean_baseline ? "start from a clean baseline"
                          : "REGRESSION: inherited stale traffic"));
}

void bm_service_stream(benchmark::State& state) {
  const std::vector<gen::NamedInstance> scenarios = make_scenarios();
  const int shards = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const StreamOutcome outcome = drive_stream(scenarios, shards, 1, 3);
    benchmark::DoNotOptimize(outcome.welfare);
  }
}
BENCHMARK(bm_service_stream)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return ssa::bench::run(argc, argv, [] {
    throughput_table();
    telemetry_overhead_table();
    deadline_mix_table();
    restart_table();
  });
}
