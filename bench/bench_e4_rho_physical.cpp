// Experiment E4 (Proposition 15): the inductive independence number of the
// physical model with fixed monotone powers grows at most logarithmically
// in n. We measure rho(pi) for uniform / linear / sqrt power schemes over a
// doubling sweep of n and fit rho against log2(n): the claim predicts a
// good linear fit and a bounded measured/log2(n) ratio.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "bench_util.hpp"
#include "gen/scenario.hpp"
#include "graph/inductive_independence.hpp"
#include "models/physical.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"

namespace {

using namespace ssa;

double measured_rho(std::size_t n, PowerScheme scheme, std::uint64_t seed) {
  Rng rng(seed);
  const auto planar = gen::random_links(
      n, 10.0 * std::sqrt(static_cast<double>(n)), 1.0, 3.0, rng);
  const auto [links, metric] = to_metric_links(planar);
  PhysicalParams params;
  const auto powers = assign_powers(links, metric, scheme, params);
  const ModelGraph graph = physical_conflict_graph(links, metric, powers, params);
  // Dense weighted backward neighborhoods: cap the per-vertex search budget
  // (values reported are exact whenever the budget is not exhausted, which
  // holds for these sizes with the incremental branch and bound).
  return rho_of_ordering(graph.graph, graph.order, 400'000).value;
}

void experiment_table() {
  Table table({"power", "n", "mean rho(pi)", "rho / log2(n)"});
  struct SchemeRow {
    PowerScheme scheme;
    const char* name;
  };
  for (const SchemeRow scheme : {SchemeRow{PowerScheme::kUniform, "uniform"},
                                 SchemeRow{PowerScheme::kLinear, "linear"},
                                 SchemeRow{PowerScheme::kSquareRoot, "sqrt"}}) {
    std::vector<double> log_ns, rhos;
    for (const std::size_t n : {16u, 32u, 64u, 96u}) {
      RunningStats stats;
      for (std::uint64_t seed = 0; seed < 3; ++seed) {
        stats.add(measured_rho(n, scheme.scheme, 131 * seed + n));
      }
      log_ns.push_back(std::log2(static_cast<double>(n)));
      rhos.push_back(stats.mean());
      table.add_row({scheme.name, Table::integer(static_cast<long long>(n)),
                     Table::num(stats.mean(), 2),
                     Table::num(stats.mean() / std::log2(static_cast<double>(n)),
                                2)});
    }
    const LinearFit fit = fit_line(log_ns, rhos);
    table.add_row({scheme.name, "fit",
                   "slope " + Table::num(fit.slope, 2),
                   "R2 " + Table::num(fit.r2, 2)});
  }
  bench::print_experiment(
      "E4 / Proposition 15: rho(pi) of the physical model vs log n", table,
      "VERDICT: rho/log2(n) stays bounded (O(log n) growth) for all three "
      "monotone power schemes");
}

void bm_physical_graph_build(benchmark::State& state) {
  Rng rng(5);
  const auto planar = gen::random_links(
      static_cast<std::size_t>(state.range(0)), 60.0, 1.0, 3.0, rng);
  const auto [links, metric] = to_metric_links(planar);
  PhysicalParams params;
  const auto powers = assign_powers(links, metric, PowerScheme::kLinear, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        physical_conflict_graph(links, metric, powers, params));
  }
}
BENCHMARK(bm_physical_graph_build)->Arg(32)->Arg(64)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  return ssa::bench::run(argc, argv, experiment_table);
}
