#include "lp/benders.hpp"

namespace ssa::lp {

BendersResult solve_with_benders(LinearProgram& master,
                                 const PricingOracle& oracle,
                                 const std::vector<SeedColumn>& seeds,
                                 const BendersOptions& options,
                                 BasisSnapshot* export_basis) {
  BendersResult result;
  if (export_basis != nullptr) *export_basis = BasisSnapshot{};
  for (const SeedColumn& seed : seeds) {
    master.add_column(seed.cost, seed.entries);
  }

  SimplexEngine engine(options.simplex);
  if (options.basis_hint != nullptr && !options.basis_hint->empty()) {
    result.solution =
        engine.solve(master, *options.basis_hint, &result.warm_started);
  } else {
    result.solution = engine.solve(master);
  }

  for (result.rounds = 1; result.rounds <= options.max_rounds;
       ++result.rounds) {
    if (result.solution.status != SolveStatus::kOptimal) {
      result.pivots = engine.pivots();
      return result;
    }
    const std::vector<PricedColumn> columns = oracle(result.solution);
    if (columns.empty()) {
      result.proved_optimal = true;
      result.pivots = engine.pivots();
      if (export_basis != nullptr) *export_basis = engine.export_basis();
      return result;
    }
    for (const auto& column : columns) {
      master.add_column(column.cost, column.entries);
      engine.add_column(column.cost, column.entries);
      ++result.columns_added;
    }
    result.solution = engine.resolve();
  }
  result.pivots = engine.pivots();
  return result;
}

}  // namespace ssa::lp
