#pragma once
/// \file simplex.hpp
/// Two-phase revised primal simplex with a dense basis inverse.
///
/// Design notes
///  - All variables are non-negative; rows are <=, =, or >=. Internally the
///    problem is converted to max c x, A x = b, b >= 0 with slack/surplus
///    columns and phase-1 artificials.
///  - The basis inverse is maintained with eta (Gauss-Jordan) updates and
///    periodically refactorized from scratch to bound numerical drift.
///  - Dantzig pricing with an automatic switch to Bland's rule after a run
///    of degenerate pivots guarantees termination in practice.
///  - Columns can be appended after a solve and the engine resumes from the
///    current basis, which is what the column-generation loops need: adding
///    a column keeps the current basis primal feasible.

#include <cstddef>
#include <vector>

#include "lp/lp_model.hpp"
#include "support/deadline.hpp"
#include "support/matrix.hpp"

namespace ssa::lp {

/// Solver tunables. Defaults are suitable for the auction LPs in this
/// library (hundreds to a few thousand rows).
struct SimplexOptions {
  double tolerance = 1e-9;        ///< feasibility/optimality tolerance
  int max_iterations = 200000;    ///< total pivot limit
  int refactor_period = 256;      ///< pivots between basis refactorizations
  int bland_after_stalls = 64;    ///< degenerate pivots before Bland's rule
  /// Cooperative wall-clock deadline, polled every few pivots; an expired
  /// deadline makes the solve return SolveStatus::kTimeLimit. Default:
  /// unlimited.
  Deadline deadline = {};
};

/// Stateful simplex engine supporting incremental column addition.
class SimplexEngine {
 public:
  explicit SimplexEngine(SimplexOptions options = {});

  /// Loads and solves \p lp from scratch.
  Solution solve(const LinearProgram& lp);

  /// Appends a structural column (same semantics as LinearProgram::
  /// add_column) and returns its index. Call resolve() afterwards.
  int add_column(double cost, const std::vector<ColumnEntry>& entries);

  /// Re-optimizes after add_column calls, warm-starting from the current
  /// basis. Requires a previous successful solve().
  Solution resolve();

  /// Number of simplex pivots performed over the lifetime of the engine.
  [[nodiscard]] long long pivots() const noexcept { return pivots_; }

 private:
  enum class ColKind { kStructural, kSlack, kArtificial };

  struct InternalColumn {
    double cost = 0.0;  // phase-2 objective (internal max convention)
    std::vector<ColumnEntry> entries;  // row-scaled
    ColKind kind = ColKind::kStructural;
  };

  void load(const LinearProgram& lp);
  void append_internal_structural(double cost,
                                  const std::vector<ColumnEntry>& entries);
  [[nodiscard]] std::vector<double> phase_costs(int phase) const;
  /// Runs primal simplex pivots for the given phase. Returns status.
  SolveStatus iterate(int phase);
  void refactorize();
  [[nodiscard]] std::vector<double> ftran(const InternalColumn& col) const;
  Solution extract_solution(SolveStatus status);

  SimplexOptions options_;

  // Problem data in internal form.
  Objective original_objective_ = Objective::kMaximize;
  std::size_t m_ = 0;                       // rows
  std::vector<double> rhs_;                 // b >= 0
  std::vector<double> row_scale_;           // +-1 applied to original rows
  std::vector<InternalColumn> cols_;        // structural, then slack, artificial
  std::vector<int> structural_;             // indices of structural columns
  std::size_t original_rows_ = 0;

  // Basis state.
  std::vector<int> basis_;      // column index per row
  std::vector<int> position_;   // row position per column, -1 if non-basic
  Matrix binv_;
  std::vector<double> beta_;    // basic variable values
  long long pivots_ = 0;
  int pivots_since_refactor_ = 0;
  bool has_solution_ = false;
  bool phase1_needed_ = false;
};

/// One-shot convenience wrapper.
[[nodiscard]] Solution solve(const LinearProgram& lp, SimplexOptions options = {});

}  // namespace ssa::lp
