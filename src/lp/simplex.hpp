#pragma once
/// \file simplex.hpp
/// Two-phase revised primal simplex with a dense basis inverse.
///
/// Design notes
///  - All variables are non-negative; rows are <=, =, or >=. Internally the
///    problem is converted to max c x, A x = b, b >= 0 with slack/surplus
///    columns and phase-1 artificials.
///  - The basis inverse is maintained with eta (Gauss-Jordan) updates and
///    periodically refactorized from scratch to bound numerical drift.
///  - Dantzig pricing with an automatic switch to Bland's rule after a run
///    of degenerate pivots guarantees termination in practice.
///  - Columns can be appended after a solve and the engine resumes from the
///    current basis, which is what the column-generation loops need: adding
///    a column keeps the current basis primal feasible.
///  - An optimal basis can be exported as a BasisSnapshot and installed
///    into a later solve of a similar LP (warm start): the engine rebuilds
///    the basis inverse, repairs primal feasibility with a phase 1
///    restricted to the violated rows, and re-optimizes. Incompatible or
///    singular snapshots fall back to a cold solve, so a warm solve never
///    fails where a cold one would succeed.
///  - Canonical extraction: at optimality the positive support's values are
///    recomputed from the active-row system by a deterministic elimination
///    that depends only on the LP data and the optimal vertex -- NOT on the
///    pivot path or the final basis. Warm- and cold-started solves of the
///    same LP therefore return bitwise-identical x and objective whenever
///    the optimal vertex is unique (generic instances), which is what lets
///    the serving layer reuse bases without perturbing payloads.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lp/lp_model.hpp"
#include "support/deadline.hpp"
#include "support/matrix.hpp"

namespace ssa::lp {

/// Solver tunables. Defaults are suitable for the auction LPs in this
/// library (hundreds to a few thousand rows).
struct SimplexOptions {
  double tolerance = 1e-9;        ///< feasibility/optimality tolerance
  int max_iterations = 200000;    ///< total pivot limit
  int refactor_period = 256;      ///< pivots between basis refactorizations
  int bland_after_stalls = 64;    ///< degenerate pivots before Bland's rule
  /// Cooperative wall-clock deadline, polled every few pivots; an expired
  /// deadline makes the solve return SolveStatus::kTimeLimit. Default:
  /// unlimited.
  Deadline deadline = {};
};

/// A compact, engine-independent description of a simplex basis: one entry
/// per row position recording which variable occupies it. Structural
/// variables are identified by their LP column index, slack/surplus and
/// artificial variables by the row they belong to, so a snapshot exported
/// from one engine can be installed into a fresh engine that loaded an LP
/// of the same shape (same row count and structural column count).
struct BasisSnapshot {
  enum class Kind : std::uint8_t {
    kStructural = 0,  ///< index = LP column
    kSlack = 1,       ///< index = owning row (slack or surplus)
    kArtificial = 2,  ///< index = owning row (basic at zero at export time)
  };
  struct Entry {
    Kind kind = Kind::kSlack;
    std::int32_t index = 0;
  };
  std::uint32_t rows = 0;         ///< row count of the donor LP
  std::uint32_t structurals = 0;  ///< structural column count of the donor LP
  std::vector<Entry> basic;       ///< one entry per basis position

  [[nodiscard]] bool empty() const noexcept { return basic.empty(); }
};

/// Stateful simplex engine supporting incremental column addition.
class SimplexEngine {
 public:
  explicit SimplexEngine(SimplexOptions options = {});

  /// Loads and solves \p lp from scratch.
  Solution solve(const LinearProgram& lp);

  /// Loads \p lp and warm-starts from \p hint: installs the snapshot's
  /// basis, repairs primal feasibility (phase 1 restricted to the violated
  /// positions), and re-optimizes. Falls back to a cold solve -- reported
  /// through \p warm_used, when given -- if the snapshot's dimensions do
  /// not match the LP, the basis matrix is singular, or the repair cannot
  /// reach feasibility. The returned payload is identical to the cold
  /// solve's whenever the optimal vertex is unique (see the file comment).
  Solution solve(const LinearProgram& lp, const BasisSnapshot& hint,
                 bool* warm_used = nullptr);

  /// Exports the current basis after an optimal solve()/resolve(). Throws
  /// std::logic_error without a prior optimal solve.
  [[nodiscard]] BasisSnapshot export_basis() const;

  /// Appends a structural column (same semantics as LinearProgram::
  /// add_column) and returns its index. Call resolve() afterwards.
  int add_column(double cost, const std::vector<ColumnEntry>& entries);

  /// Re-optimizes after add_column calls, warm-starting from the current
  /// basis. Requires a previous successful solve().
  Solution resolve();

  /// Number of simplex pivots performed over the lifetime of the engine.
  [[nodiscard]] long long pivots() const noexcept { return pivots_; }

 private:
  enum class ColKind { kStructural, kSlack, kArtificial };

  struct InternalColumn {
    double cost = 0.0;  // phase-2 objective (internal max convention)
    std::vector<ColumnEntry> entries;  // row-scaled
    ColKind kind = ColKind::kStructural;
  };

  void load(const LinearProgram& lp);
  void append_internal_structural(double cost,
                                  const std::vector<ColumnEntry>& entries);
  [[nodiscard]] std::vector<double> phase_costs(int phase) const;
  /// Runs primal simplex pivots for the given phase. Returns status.
  SolveStatus iterate(int phase);
  void refactorize();
  [[nodiscard]] std::vector<double> ftran(const InternalColumn& col) const;
  Solution extract_solution(SolveStatus status);
  /// Cold solve of the already-loaded problem (phase 1 if needed, phase 2).
  Solution solve_loaded();
  /// Installs \p hint as the starting basis of the loaded problem,
  /// rebuilding the inverse and repairing infeasible positions with
  /// restricted artificials. False when the snapshot is incompatible or
  /// its basis matrix is singular (engine state is then unspecified;
  /// callers reload and solve cold).
  [[nodiscard]] bool try_install(const BasisSnapshot& hint);
  /// Deterministic recomputation of the optimal x from the active-row
  /// system; basis-independent (see the file comment). Requires an optimal
  /// basis; leaves \p x untouched when the polish system is unusable.
  void polish_vertex(std::vector<double>& x) const;

  SimplexOptions options_;

  // Problem data in internal form.
  Objective original_objective_ = Objective::kMaximize;
  std::size_t m_ = 0;                       // rows
  std::vector<double> rhs_;                 // b >= 0
  std::vector<double> row_scale_;           // +-1 applied to original rows
  std::vector<InternalColumn> cols_;        // structural, then slack, artificial
  std::vector<int> structural_;             // indices of structural columns
  std::vector<int> row_aux_;                // slack/surplus column per row, -1 if none
  std::size_t original_rows_ = 0;

  // Basis state.
  std::vector<int> basis_;      // column index per row
  std::vector<int> position_;   // row position per column, -1 if non-basic
  Matrix binv_;
  std::vector<double> beta_;    // basic variable values
  long long pivots_ = 0;
  int pivots_since_refactor_ = 0;
  bool has_solution_ = false;
  bool phase1_needed_ = false;
};

/// One-shot convenience wrapper.
[[nodiscard]] Solution solve(const LinearProgram& lp, SimplexOptions options = {});

}  // namespace ssa::lp
