#include "lp/column_generation.hpp"

namespace ssa::lp {

ColumnGenerationResult solve_with_column_generation(
    LinearProgram& master, const PricingOracle& oracle,
    const ColumnGenerationOptions& options) {
  ColumnGenerationResult result;
  SimplexEngine engine(options.simplex);
  result.solution = engine.solve(master);

  for (result.rounds = 1; result.rounds <= options.max_rounds; ++result.rounds) {
    if (result.solution.status != SolveStatus::kOptimal) return result;
    const std::vector<PricedColumn> columns = oracle(result.solution);
    if (columns.empty()) {
      result.proved_optimal = true;
      return result;
    }
    for (const auto& column : columns) {
      master.add_column(column.cost, column.entries);
      engine.add_column(column.cost, column.entries);
      ++result.columns_added;
    }
    result.solution = engine.resolve();
  }
  return result;
}

}  // namespace ssa::lp
