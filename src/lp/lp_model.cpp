#include "lp/lp_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ssa::lp {

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
    case SolveStatus::kTimeLimit: return "time-limit";
  }
  return "unknown";
}

int LinearProgram::add_row(RowSense sense, double rhs) {
  sense_.push_back(sense);
  rhs_.push_back(rhs);
  return static_cast<int>(rhs_.size()) - 1;
}

int LinearProgram::add_column(double cost, std::vector<ColumnEntry> entries) {
  // Merge duplicates and validate row references.
  std::sort(entries.begin(), entries.end(),
            [](const ColumnEntry& a, const ColumnEntry& b) { return a.row < b.row; });
  std::vector<ColumnEntry> merged;
  merged.reserve(entries.size());
  for (const auto& entry : entries) {
    if (entry.row < 0 || entry.row >= static_cast<int>(num_rows())) {
      throw std::out_of_range("LinearProgram::add_column: bad row index");
    }
    if (!merged.empty() && merged.back().row == entry.row) {
      merged.back().coeff += entry.coeff;
    } else {
      merged.push_back(entry);
    }
  }
  cost_.push_back(cost);
  columns_.push_back(std::move(merged));
  return static_cast<int>(cost_.size()) - 1;
}

double LinearProgram::objective_value(std::span<const double> x) const {
  if (x.size() != num_columns()) {
    throw std::invalid_argument("objective_value: size mismatch");
  }
  double value = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) value += cost_[j] * x[j];
  return value;
}

double LinearProgram::max_violation(std::span<const double> x) const {
  if (x.size() != num_columns()) {
    throw std::invalid_argument("max_violation: size mismatch");
  }
  std::vector<double> activity(num_rows(), 0.0);
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (x[j] == 0.0) continue;
    for (const auto& entry : columns_[j]) activity[entry.row] += entry.coeff * x[j];
  }
  double violation = 0.0;
  for (std::size_t i = 0; i < num_rows(); ++i) {
    const double slack = rhs_[i] - activity[i];
    switch (sense_[i]) {
      case RowSense::kLessEqual: violation = std::max(violation, -slack); break;
      case RowSense::kGreaterEqual: violation = std::max(violation, slack); break;
      case RowSense::kEqual: violation = std::max(violation, std::abs(slack)); break;
    }
  }
  for (std::size_t j = 0; j < x.size(); ++j) {
    violation = std::max(violation, -x[j]);
  }
  return violation;
}

}  // namespace ssa::lp
