#pragma once
/// \file lp_model.hpp
/// Column-oriented linear-program container. All LPs in this library are
/// built column by column (the auction LPs (1)/(4) have one column per
/// bidder/bundle pair, the Lavi-Swamy decomposition LP one column per
/// integral allocation), which matches the column-generation solvers.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ssa::lp {

/// Direction of optimization.
enum class Objective { kMaximize, kMinimize };

/// Row (constraint) sense.
enum class RowSense { kLessEqual, kEqual, kGreaterEqual };

/// One nonzero of a column.
struct ColumnEntry {
  int row = 0;
  double coeff = 0.0;
};

/// Outcome of a solve. kTimeLimit means the cooperative deadline
/// (SimplexOptions::deadline) fired before optimality was proven.
enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kTimeLimit
};

[[nodiscard]] std::string to_string(SolveStatus status);

/// Primal/dual solution. Duals follow the convention that for a
/// maximization problem with a <= row the dual is >= 0 and at optimality
/// every column j satisfies c_j - y^T A_j <= 0 (within tolerance).
struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;      ///< value per structural column
  std::vector<double> duals;  ///< value per row
  /// Simplex pivots the producing engine has performed over its lifetime
  /// when this solution was extracted (for an engine solving one LP, the
  /// cost of this solve; across resolve() calls, the running total). A
  /// run diagnostic, not part of the mathematical payload.
  long long pivots = 0;
};

/// Sparse LP: max/min c^T x subject to row senses, x >= 0.
///
/// Variables are non-negative; upper bounds, when needed, are expressed as
/// explicit rows (the auction LPs carry them as rows anyway).
class LinearProgram {
 public:
  explicit LinearProgram(Objective objective) : objective_(objective) {}

  /// Adds a constraint row; returns its index.
  int add_row(RowSense sense, double rhs);

  /// Adds a column with objective coefficient \p cost and sparse entries;
  /// returns its index. Entries must reference existing rows; duplicate row
  /// indices within a column are summed.
  int add_column(double cost, std::vector<ColumnEntry> entries);

  [[nodiscard]] Objective objective() const noexcept { return objective_; }
  [[nodiscard]] std::size_t num_rows() const noexcept { return rhs_.size(); }
  [[nodiscard]] std::size_t num_columns() const noexcept { return cost_.size(); }
  [[nodiscard]] RowSense row_sense(std::size_t row) const { return sense_.at(row); }
  [[nodiscard]] double rhs(std::size_t row) const { return rhs_.at(row); }
  [[nodiscard]] double cost(std::size_t col) const { return cost_.at(col); }
  [[nodiscard]] std::span<const ColumnEntry> column(std::size_t col) const {
    return columns_.at(col);
  }

  /// Objective value of an explicit point (no feasibility check).
  [[nodiscard]] double objective_value(std::span<const double> x) const;

  /// Max constraint violation of an explicit point (0 when feasible).
  [[nodiscard]] double max_violation(std::span<const double> x) const;

 private:
  Objective objective_;
  std::vector<RowSense> sense_;
  std::vector<double> rhs_;
  std::vector<double> cost_;
  std::vector<std::vector<ColumnEntry>> columns_;
};

}  // namespace ssa::lp
