#pragma once
/// \file column_generation.hpp
/// Generic column-generation (Dantzig-Wolfe / delayed column) loop.
///
/// This is the simplex-based equivalent of the paper's ellipsoid-plus-
/// separation approach (Section 2.2): solving the restricted master gives
/// dual prices, the pricing oracle (a demand oracle for the auction LPs)
/// either proves optimality or returns columns with positive reduced cost.

#include <functional>
#include <vector>

#include "lp/lp_model.hpp"
#include "lp/simplex.hpp"

namespace ssa::lp {

/// A column proposed by a pricing oracle.
struct PricedColumn {
  double cost = 0.0;
  std::vector<ColumnEntry> entries;
};

/// Pricing callback: receives the current master solution (notably its row
/// duals) and returns columns with positive reduced cost (maximization
/// masters) / negative reduced cost (minimization masters); an empty result
/// certifies optimality of the master over the full column set.
using PricingOracle = std::function<std::vector<PricedColumn>(const Solution&)>;

struct ColumnGenerationOptions {
  int max_rounds = 500;          ///< pricing rounds before giving up
  SimplexOptions simplex = {};   ///< master solver options
};

struct ColumnGenerationResult {
  Solution solution;        ///< final master solution (x spans all columns)
  int rounds = 0;           ///< pricing rounds performed
  int columns_added = 0;    ///< columns generated in total
  bool proved_optimal = false;  ///< oracle returned empty on the last round
};

/// Solves \p master to optimality over the (implicit) full column set.
/// Generated columns are appended to \p master in the order returned by the
/// oracle, so the caller can map indices >= initial column count back to
/// whatever the oracle proposed.
[[nodiscard]] ColumnGenerationResult solve_with_column_generation(
    LinearProgram& master, const PricingOracle& oracle,
    const ColumnGenerationOptions& options = {});

}  // namespace ssa::lp
