#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ssa::lp {

SimplexEngine::SimplexEngine(SimplexOptions options) : options_(options) {}

void SimplexEngine::load(const LinearProgram& lp) {
  original_objective_ = lp.objective();
  m_ = lp.num_rows();
  original_rows_ = m_;
  rhs_.assign(m_, 0.0);
  row_scale_.assign(m_, 1.0);
  cols_.clear();
  structural_.clear();
  phase1_needed_ = false;

  // Scale rows so that b >= 0; senses flip with the scale.
  std::vector<RowSense> sense(m_);
  for (std::size_t i = 0; i < m_; ++i) {
    double b = lp.rhs(i);
    RowSense s = lp.row_sense(i);
    if (b < 0.0) {
      b = -b;
      row_scale_[i] = -1.0;
      if (s == RowSense::kLessEqual) {
        s = RowSense::kGreaterEqual;
      } else if (s == RowSense::kGreaterEqual) {
        s = RowSense::kLessEqual;
      }
    }
    rhs_[i] = b;
    sense[i] = s;
  }

  // Structural columns (row-scaled, objective in internal max convention).
  const double obj_sign = original_objective_ == Objective::kMaximize ? 1.0 : -1.0;
  for (std::size_t j = 0; j < lp.num_columns(); ++j) {
    InternalColumn col;
    col.kind = ColKind::kStructural;
    col.cost = obj_sign * lp.cost(j);
    for (const auto& entry : lp.column(j)) {
      col.entries.push_back({entry.row, entry.coeff * row_scale_[entry.row]});
    }
    structural_.push_back(static_cast<int>(cols_.size()));
    cols_.push_back(std::move(col));
  }

  // Slack/surplus columns and the initial basis. Rows whose slack cannot
  // start basic (>=, =) get an artificial and trigger phase 1.
  basis_.assign(m_, -1);
  for (std::size_t i = 0; i < m_; ++i) {
    if (sense[i] == RowSense::kLessEqual) {
      InternalColumn slack;
      slack.kind = ColKind::kSlack;
      slack.entries = {{static_cast<int>(i), 1.0}};
      basis_[i] = static_cast<int>(cols_.size());
      cols_.push_back(std::move(slack));
    } else if (sense[i] == RowSense::kGreaterEqual) {
      InternalColumn surplus;
      surplus.kind = ColKind::kSlack;
      surplus.entries = {{static_cast<int>(i), -1.0}};
      cols_.push_back(std::move(surplus));
    }
  }
  for (std::size_t i = 0; i < m_; ++i) {
    if (basis_[i] != -1) continue;
    InternalColumn artificial;
    artificial.kind = ColKind::kArtificial;
    artificial.entries = {{static_cast<int>(i), 1.0}};
    basis_[i] = static_cast<int>(cols_.size());
    cols_.push_back(std::move(artificial));
    phase1_needed_ = true;
  }

  position_.assign(cols_.size(), -1);
  for (std::size_t i = 0; i < m_; ++i) position_[basis_[i]] = static_cast<int>(i);
  binv_ = Matrix::identity(m_);
  beta_ = rhs_;
  pivots_since_refactor_ = 0;
  has_solution_ = false;
}

std::vector<double> SimplexEngine::phase_costs(int phase) const {
  std::vector<double> costs(cols_.size(), 0.0);
  for (std::size_t j = 0; j < cols_.size(); ++j) {
    if (phase == 1) {
      costs[j] = cols_[j].kind == ColKind::kArtificial ? -1.0 : 0.0;
    } else {
      costs[j] = cols_[j].kind == ColKind::kStructural ? cols_[j].cost : 0.0;
    }
  }
  return costs;
}

std::vector<double> SimplexEngine::ftran(const InternalColumn& col) const {
  std::vector<double> d(m_, 0.0);
  for (const auto& entry : col.entries) {
    const double coeff = entry.coeff;
    if (coeff == 0.0) continue;
    const std::size_t row = static_cast<std::size_t>(entry.row);
    for (std::size_t i = 0; i < m_; ++i) d[i] += coeff * binv_(i, row);
  }
  return d;
}

void SimplexEngine::refactorize() {
  if (m_ == 0) return;
  Matrix basis_matrix(m_, m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    for (const auto& entry : cols_[basis_[i]].entries) {
      basis_matrix(static_cast<std::size_t>(entry.row), i) += entry.coeff;
    }
  }
  Matrix inverse;
  if (!invert(basis_matrix, inverse)) {
    throw std::runtime_error("simplex: singular basis during refactorization");
  }
  binv_ = std::move(inverse);
  beta_ = binv_.multiply(rhs_);
  pivots_since_refactor_ = 0;
}

SolveStatus SimplexEngine::iterate(int phase) {
  const std::vector<double> costs = phase_costs(phase);
  const double tol = options_.tolerance;
  int consecutive_degenerate = 0;
  bool bland = false;

  for (;;) {
    if (pivots_ >= options_.max_iterations) return SolveStatus::kIterationLimit;
    // Cooperative deadline: polled every 32 pivots (and on entry, so an
    // already-expired budget returns before the first BTRAN).
    if ((pivots_ & 31) == 0 && options_.deadline.expired()) {
      return SolveStatus::kTimeLimit;
    }

    // BTRAN: y = c_B B^-1.
    std::vector<double> y(m_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      const double cb = costs[basis_[i]];
      if (cb == 0.0) continue;
      for (std::size_t j = 0; j < m_; ++j) y[j] += cb * binv_(i, j);
    }

    // Pricing. In phase 2 artificials may not enter.
    int entering = -1;
    double best_rc = tol;
    for (std::size_t j = 0; j < cols_.size(); ++j) {
      if (position_[j] >= 0) continue;
      if (phase == 2 && cols_[j].kind == ColKind::kArtificial) continue;
      double rc = costs[j];
      for (const auto& entry : cols_[j].entries) rc -= y[entry.row] * entry.coeff;
      if (rc > best_rc) {
        entering = static_cast<int>(j);
        best_rc = rc;
        if (bland) break;  // Bland: first improving index
      }
    }
    if (entering < 0) return SolveStatus::kOptimal;

    // FTRAN and ratio test.
    std::vector<double> d = ftran(cols_[entering]);
    int leaving_pos = -1;
    double theta = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m_; ++i) {
      if (d[i] > tol) {
        const double ratio = std::max(beta_[i], 0.0) / d[i];
        if (ratio < theta - tol ||
            (ratio < theta + tol &&
             (leaving_pos < 0 ||
              (bland ? basis_[i] < basis_[leaving_pos]
                     : d[i] > d[leaving_pos])))) {
          theta = ratio;
          leaving_pos = static_cast<int>(i);
        }
      }
    }
    if (leaving_pos < 0) {
      // No blocking row: unbounded in phase 2; in phase 1 the objective is
      // bounded by 0 so this indicates numerical trouble -> refactor once.
      if (phase == 1) {
        refactorize();
        continue;
      }
      return SolveStatus::kUnbounded;
    }

    // Pivot.
    const int leaving_col = basis_[leaving_pos];
    const double pivot_value = d[leaving_pos];
    const std::size_t r = static_cast<std::size_t>(leaving_pos);

    // Update basic values.
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == r) continue;
      beta_[i] -= theta * d[i];
      if (beta_[i] < 0.0 && beta_[i] > -1e-7) beta_[i] = 0.0;
    }
    beta_[r] = theta;

    // Eta update of B^-1.
    const double inv_pivot = 1.0 / pivot_value;
    for (std::size_t j = 0; j < m_; ++j) binv_(r, j) *= inv_pivot;
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == r) continue;
      const double factor = d[i];
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j < m_; ++j) binv_(i, j) -= factor * binv_(r, j);
    }

    position_[leaving_col] = -1;
    position_[entering] = leaving_pos;
    basis_[leaving_pos] = entering;
    ++pivots_;
    ++pivots_since_refactor_;

    if (theta <= tol) {
      if (++consecutive_degenerate >= options_.bland_after_stalls) bland = true;
    } else {
      consecutive_degenerate = 0;
      bland = false;
    }

    if (pivots_since_refactor_ >= options_.refactor_period) refactorize();
  }
}

Solution SimplexEngine::extract_solution(SolveStatus status) {
  Solution solution;
  solution.status = status;
  solution.x.assign(structural_.size(), 0.0);
  solution.duals.assign(original_rows_, 0.0);
  if (status == SolveStatus::kInfeasible) {
    has_solution_ = false;
    return solution;
  }

  for (std::size_t s = 0; s < structural_.size(); ++s) {
    const int pos = position_[structural_[s]];
    if (pos >= 0) solution.x[s] = std::max(0.0, beta_[pos]);
  }

  // Duals from phase-2 costs: y_int = c_B B^-1, mapped back to the original
  // row scaling and objective sense so that strong duality holds as stated
  // in lp_model.hpp.
  const std::vector<double> costs = phase_costs(2);
  std::vector<double> y(m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    const double cb = costs[basis_[i]];
    if (cb == 0.0) continue;
    for (std::size_t j = 0; j < m_; ++j) y[j] += cb * binv_(i, j);
  }
  const double sign = original_objective_ == Objective::kMaximize ? 1.0 : -1.0;
  for (std::size_t i = 0; i < original_rows_; ++i) {
    solution.duals[i] = sign * y[i] * row_scale_[i];
  }

  double objective = 0.0;
  for (std::size_t s = 0; s < structural_.size(); ++s) {
    objective += cols_[structural_[s]].cost * solution.x[s];
  }
  solution.objective = sign * objective;
  has_solution_ = status == SolveStatus::kOptimal;
  return solution;
}

Solution SimplexEngine::solve(const LinearProgram& lp) {
  load(lp);
  if (phase1_needed_) {
    const SolveStatus phase1 = iterate(1);
    if (phase1 != SolveStatus::kOptimal) return extract_solution(phase1);
    double infeasibility = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      if (cols_[basis_[i]].kind == ColKind::kArtificial) {
        infeasibility += std::max(0.0, beta_[i]);
      }
    }
    if (infeasibility > 1e-7) return extract_solution(SolveStatus::kInfeasible);
  }
  return extract_solution(iterate(2));
}

int SimplexEngine::add_column(double cost,
                              const std::vector<ColumnEntry>& entries) {
  const double obj_sign = original_objective_ == Objective::kMaximize ? 1.0 : -1.0;
  InternalColumn col;
  col.kind = ColKind::kStructural;
  col.cost = obj_sign * cost;
  for (const auto& entry : entries) {
    if (entry.row < 0 || entry.row >= static_cast<int>(original_rows_)) {
      throw std::out_of_range("SimplexEngine::add_column: bad row");
    }
    col.entries.push_back({entry.row, entry.coeff * row_scale_[entry.row]});
  }
  structural_.push_back(static_cast<int>(cols_.size()));
  cols_.push_back(std::move(col));
  position_.push_back(-1);
  return static_cast<int>(structural_.size()) - 1;
}

Solution SimplexEngine::resolve() {
  if (!has_solution_) {
    throw std::logic_error("SimplexEngine::resolve: no prior optimal solve");
  }
  return extract_solution(iterate(2));
}

Solution solve(const LinearProgram& lp, SimplexOptions options) {
  SimplexEngine engine(options);
  return engine.solve(lp);
}

}  // namespace ssa::lp
