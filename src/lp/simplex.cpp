#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ssa::lp {

SimplexEngine::SimplexEngine(SimplexOptions options) : options_(options) {}

void SimplexEngine::load(const LinearProgram& lp) {
  original_objective_ = lp.objective();
  m_ = lp.num_rows();
  original_rows_ = m_;
  rhs_.assign(m_, 0.0);
  row_scale_.assign(m_, 1.0);
  cols_.clear();
  structural_.clear();
  phase1_needed_ = false;

  // Scale rows so that b >= 0; senses flip with the scale.
  std::vector<RowSense> sense(m_);
  for (std::size_t i = 0; i < m_; ++i) {
    double b = lp.rhs(i);
    RowSense s = lp.row_sense(i);
    if (b < 0.0) {
      b = -b;
      row_scale_[i] = -1.0;
      if (s == RowSense::kLessEqual) {
        s = RowSense::kGreaterEqual;
      } else if (s == RowSense::kGreaterEqual) {
        s = RowSense::kLessEqual;
      }
    }
    rhs_[i] = b;
    sense[i] = s;
  }

  // Structural columns (row-scaled, objective in internal max convention).
  const double obj_sign = original_objective_ == Objective::kMaximize ? 1.0 : -1.0;
  for (std::size_t j = 0; j < lp.num_columns(); ++j) {
    InternalColumn col;
    col.kind = ColKind::kStructural;
    col.cost = obj_sign * lp.cost(j);
    for (const auto& entry : lp.column(j)) {
      col.entries.push_back({entry.row, entry.coeff * row_scale_[entry.row]});
    }
    structural_.push_back(static_cast<int>(cols_.size()));
    cols_.push_back(std::move(col));
  }

  // Slack/surplus columns and the initial basis. Rows whose slack cannot
  // start basic (>=, =) get an artificial and trigger phase 1.
  basis_.assign(m_, -1);
  row_aux_.assign(m_, -1);
  for (std::size_t i = 0; i < m_; ++i) {
    if (sense[i] == RowSense::kLessEqual) {
      InternalColumn slack;
      slack.kind = ColKind::kSlack;
      slack.entries = {{static_cast<int>(i), 1.0}};
      basis_[i] = static_cast<int>(cols_.size());
      row_aux_[i] = static_cast<int>(cols_.size());
      cols_.push_back(std::move(slack));
    } else if (sense[i] == RowSense::kGreaterEqual) {
      InternalColumn surplus;
      surplus.kind = ColKind::kSlack;
      surplus.entries = {{static_cast<int>(i), -1.0}};
      row_aux_[i] = static_cast<int>(cols_.size());
      cols_.push_back(std::move(surplus));
    }
  }
  for (std::size_t i = 0; i < m_; ++i) {
    if (basis_[i] != -1) continue;
    InternalColumn artificial;
    artificial.kind = ColKind::kArtificial;
    artificial.entries = {{static_cast<int>(i), 1.0}};
    basis_[i] = static_cast<int>(cols_.size());
    cols_.push_back(std::move(artificial));
    phase1_needed_ = true;
  }

  position_.assign(cols_.size(), -1);
  for (std::size_t i = 0; i < m_; ++i) position_[basis_[i]] = static_cast<int>(i);
  binv_ = Matrix::identity(m_);
  beta_ = rhs_;
  pivots_since_refactor_ = 0;
  has_solution_ = false;
}

std::vector<double> SimplexEngine::phase_costs(int phase) const {
  std::vector<double> costs(cols_.size(), 0.0);
  for (std::size_t j = 0; j < cols_.size(); ++j) {
    if (phase == 1) {
      costs[j] = cols_[j].kind == ColKind::kArtificial ? -1.0 : 0.0;
    } else {
      costs[j] = cols_[j].kind == ColKind::kStructural ? cols_[j].cost : 0.0;
    }
  }
  return costs;
}

std::vector<double> SimplexEngine::ftran(const InternalColumn& col) const {
  std::vector<double> d(m_, 0.0);
  for (const auto& entry : col.entries) {
    const double coeff = entry.coeff;
    if (coeff == 0.0) continue;
    const std::size_t row = static_cast<std::size_t>(entry.row);
    for (std::size_t i = 0; i < m_; ++i) d[i] += coeff * binv_(i, row);
  }
  return d;
}

void SimplexEngine::refactorize() {
  if (m_ == 0) return;
  Matrix basis_matrix(m_, m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    for (const auto& entry : cols_[basis_[i]].entries) {
      basis_matrix(static_cast<std::size_t>(entry.row), i) += entry.coeff;
    }
  }
  Matrix inverse;
  if (!invert(basis_matrix, inverse)) {
    throw std::runtime_error("simplex: singular basis during refactorization");
  }
  binv_ = std::move(inverse);
  beta_ = binv_.multiply(rhs_);
  pivots_since_refactor_ = 0;
}

SolveStatus SimplexEngine::iterate(int phase) {
  const std::vector<double> costs = phase_costs(phase);
  const double tol = options_.tolerance;
  int consecutive_degenerate = 0;
  bool bland = false;

  for (;;) {
    if (pivots_ >= options_.max_iterations) return SolveStatus::kIterationLimit;
    // Cooperative deadline: polled every 32 pivots (and on entry, so an
    // already-expired budget returns before the first BTRAN).
    if ((pivots_ & 31) == 0 && options_.deadline.expired()) {
      return SolveStatus::kTimeLimit;
    }

    // BTRAN: y = c_B B^-1.
    std::vector<double> y(m_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      const double cb = costs[basis_[i]];
      if (cb == 0.0) continue;
      for (std::size_t j = 0; j < m_; ++j) y[j] += cb * binv_(i, j);
    }

    // Pricing. In phase 2 artificials may not enter.
    int entering = -1;
    double best_rc = tol;
    for (std::size_t j = 0; j < cols_.size(); ++j) {
      if (position_[j] >= 0) continue;
      if (phase == 2 && cols_[j].kind == ColKind::kArtificial) continue;
      double rc = costs[j];
      for (const auto& entry : cols_[j].entries) rc -= y[entry.row] * entry.coeff;
      if (rc > best_rc) {
        entering = static_cast<int>(j);
        best_rc = rc;
        if (bland) break;  // Bland: first improving index
      }
    }
    if (entering < 0) return SolveStatus::kOptimal;

    // FTRAN and ratio test.
    std::vector<double> d = ftran(cols_[entering]);
    int leaving_pos = -1;
    double theta = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m_; ++i) {
      if (d[i] > tol) {
        const double ratio = std::max(beta_[i], 0.0) / d[i];
        if (ratio < theta - tol ||
            (ratio < theta + tol &&
             (leaving_pos < 0 ||
              (bland ? basis_[i] < basis_[leaving_pos]
                     : d[i] > d[leaving_pos])))) {
          theta = ratio;
          leaving_pos = static_cast<int>(i);
        }
      }
    }
    if (leaving_pos < 0) {
      // No blocking row: unbounded in phase 2; in phase 1 the objective is
      // bounded by 0 so this indicates numerical trouble -> refactor once.
      if (phase == 1) {
        refactorize();
        continue;
      }
      return SolveStatus::kUnbounded;
    }

    // Pivot.
    const int leaving_col = basis_[leaving_pos];
    const double pivot_value = d[leaving_pos];
    const std::size_t r = static_cast<std::size_t>(leaving_pos);

    // Update basic values.
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == r) continue;
      beta_[i] -= theta * d[i];
      if (beta_[i] < 0.0 && beta_[i] > -1e-7) beta_[i] = 0.0;
    }
    beta_[r] = theta;

    // Eta update of B^-1.
    const double inv_pivot = 1.0 / pivot_value;
    for (std::size_t j = 0; j < m_; ++j) binv_(r, j) *= inv_pivot;
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == r) continue;
      const double factor = d[i];
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j < m_; ++j) binv_(i, j) -= factor * binv_(r, j);
    }

    position_[leaving_col] = -1;
    position_[entering] = leaving_pos;
    basis_[leaving_pos] = entering;
    ++pivots_;
    ++pivots_since_refactor_;

    if (theta <= tol) {
      if (++consecutive_degenerate >= options_.bland_after_stalls) bland = true;
    } else {
      consecutive_degenerate = 0;
      bland = false;
    }

    if (pivots_since_refactor_ >= options_.refactor_period) refactorize();
  }
}

void SimplexEngine::polish_vertex(std::vector<double>& x) const {
  constexpr double kSupportTol = 1e-9;  // x above this is "positive"
  constexpr double kActiveTol = 1e-9;   // slack below this is "tight"
  constexpr double kPivotTol = 1e-11;   // elimination rank threshold
  constexpr double kAgreeTol = 1e-6;    // max drift from the basis values

  std::vector<std::size_t> support;
  for (std::size_t s = 0; s < structural_.size(); ++s) {
    if (x[s] > kSupportTol) support.push_back(s);
  }
  if (support.empty()) return;  // the all-zero vertex is already canonical

  // Active rows: equality rows always, inequality rows whose slack/surplus
  // sits at (numerical) zero. At a unique optimal vertex this set does not
  // depend on which optimal basis the pivot path terminated in.
  std::vector<std::size_t> active;
  std::vector<int> row_of(m_, -1);
  for (std::size_t i = 0; i < m_; ++i) {
    double slack = 0.0;
    if (row_aux_[i] >= 0) {
      const int pos = position_[row_aux_[i]];
      if (pos >= 0) slack = std::max(0.0, beta_[static_cast<std::size_t>(pos)]);
    }
    if (slack <= kActiveTol) {
      row_of[i] = static_cast<int>(active.size());
      active.push_back(i);
    }
  }
  if (active.size() < support.size()) return;

  // Augmented system [A_{active,support} | b_active] in the internal row
  // scaling -- a deterministic function of the loaded LP alone.
  const std::size_t rows = active.size();
  const std::size_t cols = support.size();
  Matrix system(rows, cols + 1, 0.0);
  for (std::size_t c = 0; c < cols; ++c) {
    for (const auto& entry : cols_[structural_[support[c]]].entries) {
      const int r = row_of[static_cast<std::size_t>(entry.row)];
      if (r >= 0) system(static_cast<std::size_t>(r), c) += entry.coeff;
    }
  }
  for (std::size_t r = 0; r < rows; ++r) system(r, cols) = rhs_[active[r]];

  // Gauss-Jordan with deterministic partial pivoting (largest |pivot|,
  // earliest row on exact ties). Any rank deficiency keeps the basis x.
  std::vector<std::size_t> pivot_row(cols, 0);
  std::size_t next = 0;
  for (std::size_t c = 0; c < cols; ++c) {
    std::size_t best = next;
    double best_abs = std::abs(system(next, c));
    for (std::size_t r = next + 1; r < rows; ++r) {
      const double a = std::abs(system(r, c));
      if (a > best_abs) {
        best_abs = a;
        best = r;
      }
    }
    if (best_abs < kPivotTol) return;
    if (best != next) {
      for (std::size_t k = 0; k <= cols; ++k) {
        std::swap(system(next, k), system(best, k));
      }
    }
    const double inv_pivot = 1.0 / system(next, c);
    for (std::size_t k = c; k <= cols; ++k) system(next, k) *= inv_pivot;
    for (std::size_t r = 0; r < rows; ++r) {
      if (r == next) continue;
      const double factor = system(r, c);
      if (factor == 0.0) continue;
      for (std::size_t k = c; k <= cols; ++k) {
        system(r, k) -= factor * system(next, k);
      }
    }
    pivot_row[c] = next;
    ++next;
  }

  // Commit only when the canonical values agree with the basis values:
  // disagreement means the support/active detection misfired (degenerate
  // tie at a tolerance boundary), where keeping the basis x is the honest
  // answer.
  std::vector<double> polished(cols, 0.0);
  for (std::size_t c = 0; c < cols; ++c) {
    polished[c] = std::max(0.0, system(pivot_row[c], cols));
    if (std::abs(polished[c] - x[support[c]]) > kAgreeTol) return;
  }
  for (std::size_t c = 0; c < cols; ++c) x[support[c]] = polished[c];
}

Solution SimplexEngine::extract_solution(SolveStatus status) {
  Solution solution;
  solution.status = status;
  solution.pivots = pivots_;
  solution.x.assign(structural_.size(), 0.0);
  solution.duals.assign(original_rows_, 0.0);
  if (status == SolveStatus::kInfeasible) {
    has_solution_ = false;
    return solution;
  }

  // Canonical extraction, step 1: rebuild the inverse from the final basis
  // so the extracted values do not depend on the eta-update history of the
  // pivot path. (A numerically singular basis keeps the eta state; the
  // polish below then rejects itself through its agreement check.)
  if (status == SolveStatus::kOptimal && m_ > 0) {
    try {
      refactorize();
    } catch (const std::runtime_error&) {
    }
  }

  for (std::size_t s = 0; s < structural_.size(); ++s) {
    const int pos = position_[structural_[s]];
    if (pos >= 0) solution.x[s] = std::max(0.0, beta_[pos]);
    // Snap basic-at-zero values so a variable that is zero at the vertex
    // extracts as exactly 0.0 whether it ended basic or non-basic.
    if (solution.x[s] < 1e-9) solution.x[s] = 0.0;
  }
  // Canonical extraction, step 2: recompute the positive support from the
  // active-row system, a basis-independent function of the LP and the
  // optimal vertex -- warm and cold pivot paths then extract bitwise-equal
  // payloads (file comment in simplex.hpp).
  if (status == SolveStatus::kOptimal) polish_vertex(solution.x);

  // Duals from phase-2 costs: y_int = c_B B^-1, mapped back to the original
  // row scaling and objective sense so that strong duality holds as stated
  // in lp_model.hpp.
  const std::vector<double> costs = phase_costs(2);
  std::vector<double> y(m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    const double cb = costs[basis_[i]];
    if (cb == 0.0) continue;
    for (std::size_t j = 0; j < m_; ++j) y[j] += cb * binv_(i, j);
  }
  const double sign = original_objective_ == Objective::kMaximize ? 1.0 : -1.0;
  for (std::size_t i = 0; i < original_rows_; ++i) {
    solution.duals[i] = sign * y[i] * row_scale_[i];
  }

  double objective = 0.0;
  for (std::size_t s = 0; s < structural_.size(); ++s) {
    objective += cols_[structural_[s]].cost * solution.x[s];
  }
  solution.objective = sign * objective;
  has_solution_ = status == SolveStatus::kOptimal;
  return solution;
}

Solution SimplexEngine::solve_loaded() {
  if (phase1_needed_) {
    const SolveStatus phase1 = iterate(1);
    if (phase1 != SolveStatus::kOptimal) return extract_solution(phase1);
    double infeasibility = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      if (cols_[basis_[i]].kind == ColKind::kArtificial) {
        infeasibility += std::max(0.0, beta_[i]);
      }
    }
    if (infeasibility > 1e-7) return extract_solution(SolveStatus::kInfeasible);
  }
  return extract_solution(iterate(2));
}

Solution SimplexEngine::solve(const LinearProgram& lp) {
  load(lp);
  return solve_loaded();
}

Solution SimplexEngine::solve(const LinearProgram& lp,
                              const BasisSnapshot& hint, bool* warm_used) {
  if (warm_used) *warm_used = false;
  load(lp);
  if (!try_install(hint)) {
    load(lp);  // try_install may have half-mutated the basis state
    return solve_loaded();
  }
  if (phase1_needed_) {
    // Restricted phase 1: only the repair artificials installed at the
    // violated positions carry phase-1 cost, so the drive-out touches the
    // infeasible part of the basis and leaves the rest in place.
    const SolveStatus phase1 = iterate(1);
    if (phase1 == SolveStatus::kIterationLimit ||
        phase1 == SolveStatus::kTimeLimit) {
      return extract_solution(phase1);
    }
    double infeasibility = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      if (cols_[basis_[i]].kind == ColKind::kArtificial) {
        infeasibility += std::max(0.0, beta_[i]);
      }
    }
    if (phase1 != SolveStatus::kOptimal || infeasibility > 1e-7) {
      // The repair could not reach feasibility from this hint; the LP may
      // still be feasible from scratch, so the fallback owns the verdict.
      load(lp);
      return solve_loaded();
    }
  }
  if (warm_used) *warm_used = true;
  return extract_solution(iterate(2));
}

bool SimplexEngine::try_install(const BasisSnapshot& hint) {
  if (hint.rows != m_ || hint.basic.size() != m_ ||
      hint.structurals != structural_.size() || m_ == 0) {
    return false;
  }

  // Resolve snapshot entries to internal columns; artificial entries are
  // materialized on demand (an exported optimal basis can carry them at
  // zero, e.g. on equality rows).
  std::vector<int> desired(m_, -1);
  for (std::size_t i = 0; i < m_; ++i) {
    const BasisSnapshot::Entry& entry = hint.basic[i];
    switch (entry.kind) {
      case BasisSnapshot::Kind::kStructural:
        if (entry.index < 0 ||
            entry.index >= static_cast<std::int32_t>(structural_.size())) {
          return false;
        }
        desired[i] = structural_[static_cast<std::size_t>(entry.index)];
        break;
      case BasisSnapshot::Kind::kSlack:
        if (entry.index < 0 ||
            entry.index >= static_cast<std::int32_t>(m_) ||
            row_aux_[static_cast<std::size_t>(entry.index)] < 0) {
          return false;
        }
        desired[i] = row_aux_[static_cast<std::size_t>(entry.index)];
        break;
      case BasisSnapshot::Kind::kArtificial: {
        if (entry.index < 0 || entry.index >= static_cast<std::int32_t>(m_)) {
          return false;
        }
        InternalColumn artificial;
        artificial.kind = ColKind::kArtificial;
        artificial.entries = {{entry.index, 1.0}};
        desired[i] = static_cast<int>(cols_.size());
        cols_.push_back(std::move(artificial));
        position_.push_back(-1);
        break;
      }
      default:
        return false;
    }
  }
  std::vector<char> used(cols_.size(), 0);
  for (const int col : desired) {
    if (used[static_cast<std::size_t>(col)]) return false;  // duplicate
    used[static_cast<std::size_t>(col)] = 1;
  }

  // Rebuild the inverse for the candidate basis; singular means the
  // donor's basis does not span this LP's row space.
  Matrix basis_matrix(m_, m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    for (const auto& entry : cols_[desired[i]].entries) {
      basis_matrix(static_cast<std::size_t>(entry.row), i) += entry.coeff;
    }
  }
  Matrix inverse;
  if (!invert(basis_matrix, inverse)) return false;

  basis_ = desired;
  std::fill(position_.begin(), position_.end(), -1);
  for (std::size_t i = 0; i < m_; ++i) {
    position_[basis_[i]] = static_cast<int>(i);
  }
  binv_ = std::move(inverse);
  beta_ = binv_.multiply(rhs_);
  pivots_since_refactor_ = 0;

  // Feasibility repair restricted to the violated positions: swap the
  // basic column at a negative position for its own negation, kept as an
  // artificial. B' = B D with D = diag(1,..,-1,..,1), so the inverse needs
  // only that row negated and the basic value flips positive; phase 1 then
  // drives exactly these artificials out.
  phase1_needed_ = false;
  for (std::size_t i = 0; i < m_; ++i) {
    if (beta_[i] >= -options_.tolerance) {
      if (beta_[i] < 0.0) beta_[i] = 0.0;
      if (cols_[basis_[i]].kind == ColKind::kArtificial &&
          beta_[i] > options_.tolerance) {
        phase1_needed_ = true;  // installed artificial at a positive value
      }
      continue;
    }
    InternalColumn negated;
    negated.kind = ColKind::kArtificial;
    for (const auto& entry : cols_[basis_[i]].entries) {
      negated.entries.push_back({entry.row, -entry.coeff});
    }
    const int col = static_cast<int>(cols_.size());
    cols_.push_back(std::move(negated));
    position_.push_back(-1);
    position_[basis_[i]] = -1;
    basis_[i] = col;
    position_[col] = static_cast<int>(i);
    for (std::size_t j = 0; j < m_; ++j) binv_(i, j) = -binv_(i, j);
    beta_[i] = -beta_[i];
    phase1_needed_ = true;
  }
  return true;
}

BasisSnapshot SimplexEngine::export_basis() const {
  if (!has_solution_) {
    throw std::logic_error("SimplexEngine::export_basis: no prior optimal solve");
  }
  BasisSnapshot snapshot;
  snapshot.rows = static_cast<std::uint32_t>(m_);
  snapshot.structurals = static_cast<std::uint32_t>(structural_.size());
  snapshot.basic.resize(m_);
  for (std::size_t i = 0; i < m_; ++i) {
    const int col = basis_[i];
    BasisSnapshot::Entry entry;
    switch (cols_[col].kind) {
      case ColKind::kStructural: {
        const auto it =
            std::lower_bound(structural_.begin(), structural_.end(), col);
        entry.kind = BasisSnapshot::Kind::kStructural;
        entry.index = static_cast<std::int32_t>(it - structural_.begin());
        break;
      }
      case ColKind::kSlack:
        entry.kind = BasisSnapshot::Kind::kSlack;
        entry.index = cols_[col].entries.front().row;
        break;
      case ColKind::kArtificial:
        // Repair artificials span several rows; the canonical stand-in is
        // the unit artificial of the position they occupy (install
        // re-validates and re-repairs anyway).
        entry.kind = BasisSnapshot::Kind::kArtificial;
        entry.index = static_cast<std::int32_t>(i);
        break;
    }
    snapshot.basic[i] = entry;
  }
  return snapshot;
}

int SimplexEngine::add_column(double cost,
                              const std::vector<ColumnEntry>& entries) {
  const double obj_sign = original_objective_ == Objective::kMaximize ? 1.0 : -1.0;
  InternalColumn col;
  col.kind = ColKind::kStructural;
  col.cost = obj_sign * cost;
  for (const auto& entry : entries) {
    if (entry.row < 0 || entry.row >= static_cast<int>(original_rows_)) {
      throw std::out_of_range("SimplexEngine::add_column: bad row");
    }
    col.entries.push_back({entry.row, entry.coeff * row_scale_[entry.row]});
  }
  structural_.push_back(static_cast<int>(cols_.size()));
  cols_.push_back(std::move(col));
  position_.push_back(-1);
  return static_cast<int>(structural_.size()) - 1;
}

Solution SimplexEngine::resolve() {
  if (!has_solution_) {
    throw std::logic_error("SimplexEngine::resolve: no prior optimal solve");
  }
  return extract_solution(iterate(2));
}

Solution solve(const LinearProgram& lp, SimplexOptions options) {
  SimplexEngine engine(options);
  return engine.solve(lp);
}

}  // namespace ssa::lp
