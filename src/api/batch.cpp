#include "api/batch.hpp"

#include <exception>

#include "api/registry.hpp"
#include "support/parallel.hpp"

namespace ssa {

const SolveReport* BatchResult::find(const std::string& label,
                                     const std::string& solver) const {
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (labels[i] == label && reports[i].solver == solver &&
        reports[i].error.empty()) {
      return &reports[i];
    }
  }
  return nullptr;
}

Table BatchResult::table(int precision) const {
  Table table({"instance", "solver", "welfare", "feasible", "guarantee",
               "LP b*", "ms", "note"});
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const SolveReport& r = reports[i];
    if (!r.error.empty()) {
      table.add_row({labels[i], r.solver, "-", "-", "-", "-", "-", r.error});
      continue;
    }
    table.add_row({labels[i], r.solver, Table::num(r.welfare, precision),
                   r.feasible ? "yes" : "no",
                   r.guarantee > 0.0 ? Table::num(r.guarantee, precision) : "-",
                   r.lp_upper_bound ? Table::num(*r.lp_upper_bound, precision)
                                    : "-",
                   Table::num(r.wall_time_seconds * 1e3, 1),
                   r.exact ? "exact"
                   : r.timed_out ? r.params + " [timed out]"
                                 : r.params});
  }
  return table;
}

BatchResult solve_batch(std::span<const BatchJob> jobs,
                        const BatchOptions& options) {
  BatchResult result;
  result.labels.resize(jobs.size());
  result.reports.resize(jobs.size());

  const auto run_one = [&](std::ptrdiff_t i) {
    const BatchJob& job = jobs[static_cast<std::size_t>(i)];
    SolveReport& report = result.reports[static_cast<std::size_t>(i)];
    result.labels[static_cast<std::size_t>(i)] = job.instance_label;
    try {
      if (job.instance.empty()) {
        throw std::invalid_argument("solve_batch: empty instance");
      }
      report = make_solver(job.solver)->solve(job.instance, job.options);
    } catch (const std::exception& e) {
      report = SolveReport{};
      report.solver = job.solver;
      report.error = e.what();
    }
  };

  if (options.threads == 1) {
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(jobs.size());
         ++i) {
      run_one(i);
    }
  } else {
    // threads > 1 caps the worker pool; 0 keeps the runtime default.
    const ThreadCountScope thread_scope(options.threads);
    parallel_for(static_cast<std::ptrdiff_t>(jobs.size()), run_one);
  }
  return result;
}

std::vector<BatchJob> cross_jobs(std::span<const LabelledInstance> instances,
                                 std::span<const std::string> solvers,
                                 const SolveOptions& options) {
  std::vector<BatchJob> jobs;
  jobs.reserve(instances.size() * solvers.size());
  for (const LabelledInstance& instance : instances) {
    for (const std::string& solver : solvers) {
      jobs.push_back(
          BatchJob{solver, instance.instance, instance.label, options});
    }
  }
  return jobs;
}

}  // namespace ssa
