#include "api/batch.hpp"

#include <algorithm>
#include <exception>

#include "api/registry.hpp"
#include "api/scheduler.hpp"
#include "support/deadline.hpp"
#include "support/parallel.hpp"

namespace ssa {

const SolveReport* BatchResult::find(const std::string& label,
                                     const std::string& solver) const {
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (labels[i] == label && reports[i].solver == solver &&
        reports[i].error.empty()) {
      return &reports[i];
    }
  }
  return nullptr;
}

Table BatchResult::table(int precision) const {
  Table table({"instance", "solver", "welfare", "feasible", "guarantee",
               "LP b*", "ms", "note"});
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const SolveReport& r = reports[i];
    if (!r.error.empty()) {
      table.add_row({labels[i], r.solver, "-", "-", "-", "-", "-", r.error});
      continue;
    }
    table.add_row({labels[i], r.solver, Table::num(r.welfare, precision),
                   r.feasible ? "yes" : "no",
                   r.guarantee > 0.0 ? Table::num(r.guarantee, precision) : "-",
                   r.lp_upper_bound ? Table::num(*r.lp_upper_bound, precision)
                                    : "-",
                   Table::num(r.wall_time_seconds * 1e3, 1),
                   r.exact ? "exact"
                   : r.timed_out ? r.params + " [timed out]"
                                 : r.params});
  }
  return table;
}

BatchResult solve_batch(std::span<const BatchJob> jobs,
                        const BatchOptions& options) {
  BatchResult result;
  result.labels.resize(jobs.size());
  result.reports.resize(jobs.size());

  const auto run_one = [&](std::size_t i, double queue_wait_seconds) {
    const BatchJob& job = jobs[i];
    SolveReport& report = result.reports[i];
    result.labels[i] = job.instance_label;
    try {
      if (job.instance.empty()) {
        throw std::invalid_argument("solve_batch: empty instance");
      }
      report = make_solver(job.solver)->solve(job.instance, job.options);
    } catch (const std::exception& e) {
      // Job-level failures (unknown solver, empty instance) degrade to a
      // per-row error in the same normalized format the solvers use.
      report = SolveReport{};
      report.solver = job.solver;
      report.solver_selected = job.solver;
      report.error = detail::normalized_solver_error(job.solver, e.what());
    }
    report.queue_wait_seconds = queue_wait_seconds;
  };

  if (options.threads == 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      run_one(i, 0.0);
    }
  } else {
    // The shared scheduling core (also behind the AuctionService shard
    // pools): one worker per requested thread drains the job queue. Each
    // worker caps its solver's internal OpenMP loops at one thread --
    // batch-level parallelism replaces loop-level parallelism, exactly as
    // the old single OpenMP region did via non-nested teams. Results never
    // depend on the thread count (job i always produces reports[i]).
    // Never spawn more workers than jobs (the scheduler is per-call, so
    // idle threads would be pure create/join overhead), but at least one:
    // SolveScheduler reads 0 as "hardware concurrency".
    const int requested =
        options.threads == 0 ? parallel_threads() : options.threads;
    const std::size_t workers = std::max<std::size_t>(
        1, std::min(static_cast<std::size_t>(requested), jobs.size()));
    SolveScheduler scheduler(static_cast<int>(workers));
    const bool cap_inner_loops = scheduler.threads() > 1;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      // Deadline-ordered execution: a job's time budget is its effective
      // deadline, so tightly-budgeted jobs start first. Pure scheduling --
      // reports[i] never depends on the execution order, and batch jobs
      // are never rejected or degraded (AdmissionPolicy::kAcceptAll). The
      // budget resolves with the same shared-vs-section precedence the
      // solvers apply (support/deadline.hpp), so a job budgeted only
      // through its pipeline section still sorts by that budget.
      (void)scheduler.submit(
          [&run_one, cap_inner_loops, i](double wait) {
            const ThreadCountScope inner_scope(cap_inner_loops ? 1 : 0);
            run_one(i, wait);
          },
          SolveScheduler::TaskOptions{
              effective_budget(jobs[i].options.time_budget_seconds,
                               jobs[i].options.pipeline.time_budget_seconds),
              // Train the keyed cost model even though batch runs never
              // reject (kAcceptAll): a service sharing patterns with
              // batch-calibrated tests sees the same keys.
              admission_cost_key(jobs[i].solver,
                                 jobs[i].instance.empty()
                                     ? 0
                                     : jobs[i].instance.num_bidders())});
    }
    scheduler.drain();
  }
  return result;
}

std::vector<BatchJob> cross_jobs(std::span<const LabelledInstance> instances,
                                 std::span<const std::string> solvers,
                                 const SolveOptions& options) {
  std::vector<BatchJob> jobs;
  jobs.reserve(instances.size() * solvers.size());
  for (const LabelledInstance& instance : instances) {
    for (const std::string& solver : solvers) {
      jobs.push_back(
          BatchJob{solver, instance.instance, instance.label, options});
    }
  }
  return jobs;
}

}  // namespace ssa
