#pragma once
/// \file api.hpp
/// Umbrella header for the unified solving API: include this and use
///     auto report = ssa::make_solver("lp-rounding")->solve(instance);
/// or solve_batch() for multi-solver comparisons.

#include "api/any_instance.hpp"  // IWYU pragma: export
#include "api/batch.hpp"         // IWYU pragma: export
#include "api/registry.hpp"      // IWYU pragma: export
#include "api/solver.hpp"        // IWYU pragma: export
