#include "api/registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace ssa {

namespace detail {
// Defined in solvers.cpp; registers the built-in adapters.
void register_builtin_solvers(SolverRegistry& registry);
}  // namespace detail

SolverRegistry& SolverRegistry::global() {
  static SolverRegistry* registry = [] {
    auto* r = new SolverRegistry;
    detail::register_builtin_solvers(*r);
    return r;
  }();
  return *registry;
}

void SolverRegistry::add(const std::string& name, SolverFactory factory) {
  if (name.empty()) {
    throw std::invalid_argument("SolverRegistry::add: empty name");
  }
  if (!factory) {
    throw std::invalid_argument("SolverRegistry::add: null factory");
  }
  if (contains(name)) {
    throw std::invalid_argument("SolverRegistry::add: duplicate name '" +
                                name + "'");
  }
  entries_.push_back(Entry{name, std::move(factory)});
}

bool SolverRegistry::contains(const std::string& name) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const Entry& e) { return e.name == name; });
}

std::unique_ptr<Solver> SolverRegistry::create(const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return entry.factory();
  }
  std::string known;
  for (const std::string& n : names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::out_of_range("SolverRegistry::create: unknown solver '" + name +
                          "' (registered: " + known + ")");
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(entries_.size());
  for (const Entry& entry : entries_) result.push_back(entry.name);
  std::sort(result.begin(), result.end());
  return result;
}

SolverRegistry& registry() { return SolverRegistry::global(); }

std::unique_ptr<Solver> make_solver(const std::string& name) {
  return SolverRegistry::global().create(name);
}

std::vector<std::string> available_solvers() {
  return SolverRegistry::global().names();
}

}  // namespace ssa
