/// \file solvers.cpp
/// Adapters exposing every algorithm of the reproduction through the
/// unified Solver interface, and their registration with the global
/// SolverRegistry. Adding an algorithm = one adapter class + one add() line
/// in register_builtin_solvers.

#include <algorithm>
#include <string>

#include "api/registry.hpp"
#include "api/solver.hpp"
#include "core/exact.hpp"
#include "core/greedy.hpp"
#include "core/pipeline.hpp"
#include "mechanism/decomposition.hpp"
#include "mechanism/mechanism.hpp"

// The adapters are the one sanctioned caller of the deprecated entry
// points while the wrappers ride out their final release.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

namespace ssa {
namespace {

class LpRoundingSolver final : public Solver {
 public:
  std::string name() const override { return "lp-rounding"; }
  std::string description() const override {
    return "LP relaxation + randomized rounding (Algorithms 1-3); expected "
           "welfare >= b*/(8 sqrt(k) rho) unweighted, b*/(16 sqrt(k) rho "
           "ceil(log n)) weighted";
  }

 protected:
  SolveReport solve_impl(const AuctionInstance& instance,
                         const SolveOptions& options) const override {
    PipelineOptions pipeline = options.pipeline;
    pipeline.seed = options.seed;
    const PipelineResult result = run_auction(instance, pipeline);
    SolveReport report;
    report.params = "reps=" + std::to_string(pipeline.rounding_repetitions) +
                    (pipeline.derandomize ? " derand" : "") +
                    (result.used_column_generation ? " lp=colgen"
                                                   : " lp=explicit");
    report.allocation = result.allocation;
    report.guarantee = result.guarantee;
    report.factor = result.factor;
    report.lp_upper_bound = result.fractional.objective;
    report.fractional = result.fractional;
    return report;
  }
};

class ExactSolver final : public Solver {
 public:
  std::string name() const override { return "exact"; }
  std::string description() const override {
    return "exact winner determination by branch and bound (OPT reference; "
           "exponential, small instances only)";
  }

 protected:
  SolveReport solve_impl(const AuctionInstance& instance,
                         const SolveOptions& options) const override {
    ExactOptions exact = options.exact;
    if (options.time_budget_seconds > 0.0) {
      // Advisory time budget -> node budget at an assumed ~2M nodes/s. Only
      // tighten when the scaled value is representable and smaller (a huge
      // budget must not overflow the cast into a tiny one).
      const double scaled = options.time_budget_seconds * 2e6;
      if (scaled < static_cast<double>(exact.node_budget)) {
        exact.node_budget = std::max(1LL, static_cast<long long>(scaled));
      }
    }
    const ExactResult result = solve_exact(instance, exact);
    SolveReport report;
    report.params = "node_budget=" + std::to_string(exact.node_budget);
    report.allocation = result.allocation;
    report.exact = result.exact;
    if (result.exact) {
      report.guarantee = result.welfare;
      report.factor = 1.0;
    }
    return report;
  }
};

class GreedyValueSolver final : public Solver {
 public:
  std::string name() const override { return "greedy-value"; }
  std::string description() const override {
    return "greedy by bidder max value, each taking its best feasible "
           "bundle (heuristic baseline, no guarantee)";
  }

 protected:
  SolveReport solve_impl(const AuctionInstance& instance,
                         const SolveOptions&) const override {
    SolveReport report;
    report.allocation = greedy_by_value(instance);
    return report;
  }
};

class GreedyDensitySolver final : public Solver {
 public:
  std::string name() const override { return "greedy-density"; }
  std::string description() const override {
    return "greedy over (bidder, bundle) pairs by value/|T| density "
           "(heuristic baseline, no guarantee)";
  }

 protected:
  SolveReport solve_impl(const AuctionInstance& instance,
                         const SolveOptions&) const override {
    SolveReport report;
    report.allocation = greedy_by_density(instance);
    return report;
  }
};

class LocalRatioSingleChannelSolver final : public Solver {
 public:
  std::string name() const override { return "local-ratio-k1"; }
  std::string description() const override {
    return "local-ratio MWIS for k = 1 on unweighted graphs; welfare >= "
           "OPT / rho(pi)";
  }

 protected:
  SolveReport solve_impl(const AuctionInstance& instance,
                         const SolveOptions&) const override {
    SolveReport report;
    report.allocation = local_ratio_single_channel(instance);
    report.factor = instance.rho();
    return report;
  }
};

class LocalRatioPerChannelSolver final : public Solver {
 public:
  std::string name() const override { return "local-ratio-per-channel"; }
  std::string description() const override {
    return "channel-by-channel local ratio on marginal values, unweighted "
           "graphs, any k (heuristic baseline, no guarantee)";
  }

 protected:
  SolveReport solve_impl(const AuctionInstance& instance,
                         const SolveOptions&) const override {
    SolveReport report;
    report.allocation = local_ratio_per_channel(instance);
    return report;
  }
};

class MechanismSolver final : public Solver {
 public:
  std::string name() const override { return "mechanism"; }
  std::string description() const override {
    return "truthful-in-expectation mechanism (Section 5): fractional VCG + "
           "Lavi-Swamy decomposition; E[welfare] = b*/alpha";
  }

 protected:
  SolveReport solve_impl(const AuctionInstance& instance,
                         const SolveOptions& options) const override {
    MechanismOptions mechanism = options.mechanism;
    mechanism.sample_seed = options.seed;
    mechanism.decomposition.seed = options.seed;
    MechanismOutcome outcome = run_mechanism(instance, mechanism);
    SolveReport report;
    report.params = "alpha=" + std::to_string(outcome.decomposition.alpha) +
                    (outcome.used_colgen ? " lp=colgen" : " lp=explicit");
    report.allocation = outcome.allocation;
    // The realized draw carries the expectation bound E[welfare] = b*/alpha
    // (Section 5); the factor holds in expectation, not per realization.
    report.guarantee =
        outcome.vcg.optimum.objective / outcome.decomposition.alpha;
    report.factor = outcome.decomposition.alpha;
    report.lp_upper_bound = outcome.vcg.optimum.objective;
    report.fractional = outcome.vcg.optimum;
    report.mechanism = std::move(outcome);
    return report;
  }
};

template <typename S>
SolverFactory factory_of() {
  return [] { return std::make_unique<S>(); };
}

}  // namespace

namespace detail {

void register_builtin_solvers(SolverRegistry& registry) {
  registry.add("lp-rounding", factory_of<LpRoundingSolver>());
  registry.add("exact", factory_of<ExactSolver>());
  registry.add("greedy-value", factory_of<GreedyValueSolver>());
  registry.add("greedy-density", factory_of<GreedyDensitySolver>());
  registry.add("local-ratio-k1", factory_of<LocalRatioSingleChannelSolver>());
  registry.add("local-ratio-per-channel",
               factory_of<LocalRatioPerChannelSolver>());
  registry.add("mechanism", factory_of<MechanismSolver>());
}

}  // namespace detail
}  // namespace ssa
