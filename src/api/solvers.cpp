/// \file solvers.cpp
/// Adapters exposing every algorithm of the reproduction through the
/// unified Solver interface, and their registration with the global
/// SolverRegistry. Adding an algorithm = one adapter class + one add() line
/// in register_builtin_solvers. Symmetric (Problem 1) algorithms derive
/// from SymmetricSolver, the Section-6 family from AsymmetricSolver; the
/// bases own the instance-type domain check.

#include <algorithm>
#include <stdexcept>
#include <string>

#include "api/registry.hpp"
#include "api/solver.hpp"
#include "core/asymmetric.hpp"
#include "core/asymmetric_colgen.hpp"
#include "core/exact.hpp"
#include "core/greedy.hpp"
#include "core/pipeline.hpp"
#include "mechanism/decomposition.hpp"
#include "mechanism/mechanism.hpp"
#include "support/deadline.hpp"

namespace ssa {
namespace {

/// ExactOptions with the shared time budget folded in, remembering whether
/// the node budget was actually derived from it (exact_report needs that
/// to attribute an inexact search correctly).
struct BudgetedExactOptions {
  ExactOptions options;
  bool node_budget_from_time = false;
};

/// Advisory time budget -> B&B node budget at an assumed ~2M nodes/s. Only
/// tightens when the scaled value is representable and smaller (a huge
/// budget must not overflow the cast into a tiny one). The deadline in
/// ExactOptions provides the hard cooperative stop on top; an unset shared
/// budget leaves a caller-armed section deadline alone (the shared-seed
/// precedent).
BudgetedExactOptions exact_options_with_budget(const SolveOptions& options) {
  BudgetedExactOptions budgeted;
  budgeted.options = options.exact;
  if (options.time_budget_seconds > 0.0) {
    budgeted.options.deadline = Deadline::after(options.time_budget_seconds);
    const double scaled = options.time_budget_seconds * 2e6;
    if (scaled < static_cast<double>(budgeted.options.node_budget)) {
      budgeted.options.node_budget =
          std::max(1LL, static_cast<long long>(scaled));
      budgeted.node_budget_from_time = true;
    }
  }
  return budgeted;
}

/// Shared report assembly for both B&B adapters: the exact/timed_out
/// mapping and the OPT diagnostics must never diverge between families.
SolveReport exact_report(const ExactResult& result,
                         const BudgetedExactOptions& budgeted) {
  SolveReport report;
  report.params =
      "node_budget=" + std::to_string(budgeted.options.node_budget);
  report.allocation = result.allocation;
  report.exact = result.exact;
  // Time truncation: the deadline fired, or the node budget that stopped
  // the search was itself derived from the time budget. A search that
  // merely exhausted its caller-set node budget is not "timed out".
  report.timed_out =
      result.timed_out || (budgeted.node_budget_from_time && !result.exact);
  if (result.exact) {
    report.guarantee = result.welfare;
    report.factor = 1.0;
  }
  return report;
}

class LpRoundingSolver final : public SymmetricSolver {
 public:
  std::string name() const override { return "lp-rounding"; }
  std::string description() const override {
    return "LP relaxation + randomized rounding (Algorithms 1-3); expected "
           "welfare >= b*/(8 sqrt(k) rho) unweighted, b*/(16 sqrt(k) rho "
           "ceil(log n)) weighted";
  }

 protected:
  SolveReport solve_symmetric(const AuctionInstance& instance,
                              const SolveOptions& options) const override {
    PipelineOptions pipeline = options.pipeline;
    pipeline.seed = options.seed;
    // Shared-vs-section budget precedence pinned in support/deadline.hpp.
    pipeline.time_budget_seconds = effective_budget(
        options.time_budget_seconds, pipeline.time_budget_seconds);
    // Bridge the runtime-only warm-start side channel into the pipeline.
    // The hint is honored only when warm_start allows it; the export side
    // always runs so a cold solve still banks its basis for the next call.
    LpWarmStart warm;
    if (options.warm_context != nullptr) {
      if (options.warm_start) warm.hint = options.warm_context->hint;
      warm.exported = &options.warm_context->exported;
      warm.columns_per_bidder = &options.warm_context->columns_per_bidder;
      pipeline.warm = &warm;
    }
    const PipelineResult result = solve_pipeline(instance, pipeline);
    if (options.warm_context != nullptr) {
      options.warm_context->has_export = !options.warm_context->exported.empty();
    }
    // An LP that failed for any reason other than the time budget (pivot
    // limit, infeasibility) is an error, not a silent zero-welfare report.
    if (result.fractional.status != lp::SolveStatus::kOptimal &&
        !result.timed_out) {
      throw std::runtime_error("lp-rounding: LP solve failed (" +
                               lp::to_string(result.fractional.status) + ")");
    }
    SolveReport report;
    report.params = "reps=" + std::to_string(pipeline.rounding_repetitions) +
                    (pipeline.derandomize ? " derand" : "") +
                    (result.used_column_generation ? " lp=colgen"
                                                   : " lp=explicit");
    report.allocation = result.allocation;
    report.timed_out = result.timed_out;
    report.warm_started = result.warm_started;
    report.pivots = result.pivots;
    report.oracle_rounds = static_cast<std::uint32_t>(result.oracle_rounds);
    report.columns_generated =
        static_cast<std::uint32_t>(result.columns_generated);
    // Rounding ran, so the fractional payload is always worth reporting;
    // the b* bound and the guarantee derived from it are published only
    // when the LP optimum is proven (explicit solve or certified colgen) --
    // a restricted-master objective is not an upper bound on OPT.
    report.fractional = result.fractional;
    if (result.lp_bound_proven) {
      report.guarantee = result.guarantee;
      report.factor = result.factor;
      report.lp_upper_bound = result.fractional.objective;
    }
    return report;
  }
};

class ExactSolver final : public SymmetricSolver {
 public:
  std::string name() const override { return "exact"; }
  std::string description() const override {
    return "exact winner determination by branch and bound (OPT reference; "
           "exponential, small instances only)";
  }

 protected:
  SolveReport solve_symmetric(const AuctionInstance& instance,
                              const SolveOptions& options) const override {
    const BudgetedExactOptions budgeted = exact_options_with_budget(options);
    return exact_report(solve_exact(instance, budgeted.options), budgeted);
  }
};

class GreedyValueSolver final : public SymmetricSolver {
 public:
  std::string name() const override { return "greedy-value"; }
  std::string description() const override {
    return "greedy by bidder max value, each taking its best feasible "
           "bundle (heuristic baseline, no guarantee)";
  }

 protected:
  SolveReport solve_symmetric(const AuctionInstance& instance,
                              const SolveOptions&) const override {
    SolveReport report;
    report.allocation = greedy_by_value(instance);
    return report;
  }
};

class GreedyDensitySolver final : public SymmetricSolver {
 public:
  std::string name() const override { return "greedy-density"; }
  std::string description() const override {
    return "greedy over (bidder, bundle) pairs by value/|T| density "
           "(heuristic baseline, no guarantee)";
  }

 protected:
  SolveReport solve_symmetric(const AuctionInstance& instance,
                              const SolveOptions&) const override {
    SolveReport report;
    report.allocation = greedy_by_density(instance);
    return report;
  }
};

class SubmodularGreedySolver final : public SymmetricSolver {
 public:
  std::string name() const override { return "submodular-greedy"; }
  std::string description() const override {
    return "marginal-value greedy over (bidder, channel) pairs for the "
           "submodular-bidder setting of Hoefer-Kesselheim "
           "(arXiv:1110.5753); heuristic on arbitrary valuations";
  }

 protected:
  SolveReport solve_symmetric(const AuctionInstance& instance,
                              const SolveOptions&) const override {
    SolveReport report;
    report.allocation = greedy_submodular(instance);
    return report;
  }
};

class LocalRatioSingleChannelSolver final : public SymmetricSolver {
 public:
  std::string name() const override { return "local-ratio-k1"; }
  std::string description() const override {
    return "local-ratio MWIS for k = 1 on unweighted graphs; welfare >= "
           "OPT / rho(pi)";
  }

 protected:
  SolveReport solve_symmetric(const AuctionInstance& instance,
                              const SolveOptions&) const override {
    SolveReport report;
    report.allocation = local_ratio_single_channel(instance);
    report.factor = instance.rho();
    return report;
  }
};

class LocalRatioPerChannelSolver final : public SymmetricSolver {
 public:
  std::string name() const override { return "local-ratio-per-channel"; }
  std::string description() const override {
    return "channel-by-channel local ratio on marginal values, unweighted "
           "graphs, any k (heuristic baseline, no guarantee)";
  }

 protected:
  SolveReport solve_symmetric(const AuctionInstance& instance,
                              const SolveOptions&) const override {
    SolveReport report;
    report.allocation = local_ratio_per_channel(instance);
    return report;
  }
};

class MechanismSolver final : public SymmetricSolver {
 public:
  std::string name() const override { return "mechanism"; }
  std::string description() const override {
    return "truthful-in-expectation mechanism (Section 5): fractional VCG + "
           "Lavi-Swamy decomposition; E[welfare] = b*/alpha";
  }

 protected:
  SolveReport solve_symmetric(const AuctionInstance& instance,
                              const SolveOptions& options) const override {
    MechanismOptions mechanism = options.mechanism;
    mechanism.sample_seed = options.seed;
    mechanism.decomposition.seed = options.seed;
    MechanismOutcome outcome = solve_mechanism(instance, mechanism);
    SolveReport report;
    report.params = "alpha=" + std::to_string(outcome.decomposition.alpha) +
                    (outcome.used_colgen ? " lp=colgen" : " lp=explicit");
    report.allocation = outcome.allocation;
    // The realized draw carries the expectation bound E[welfare] = b*/alpha
    // (Section 5); the factor holds in expectation, not per realization.
    report.guarantee =
        outcome.vcg.optimum.objective / outcome.decomposition.alpha;
    report.factor = outcome.decomposition.alpha;
    report.lp_upper_bound = outcome.vcg.optimum.objective;
    report.fractional = outcome.vcg.optimum;
    report.pivots = outcome.vcg.pivots + outcome.decomposition.pivots;
    report.mechanism = std::move(outcome);
    return report;
  }
};

// -- Section 6: asymmetric channels -----------------------------------------

class AsymmetricLpRoundingSolver final : public AsymmetricSolver {
 public:
  std::string name() const override { return "asymmetric-lp-rounding"; }
  std::string description() const override {
    return "Section 6 LP (per-channel wbar_j rows) + rounding at the "
           "1/(2 k rho) scale; E[welfare] >= b*/(4 k rho), unweighted "
           "per-channel graphs";
  }

 protected:
  SolveReport solve_asymmetric(const AsymmetricInstance& instance,
                               const SolveOptions& options) const override {
    // Domain check before the (expensive) explicit LP: the rounding stage
    // would reject weighted graphs anyway, so fail in O(1) up front.
    if (!instance.unweighted()) {
      throw std::invalid_argument(
          "asymmetric-lp-rounding: unweighted per-channel graphs only");
    }
    PipelineOptions pipeline = options.pipeline;
    pipeline.seed = options.seed;
    // Shared-vs-section budget precedence pinned in support/deadline.hpp.
    const double budget_seconds = effective_budget(
        options.time_budget_seconds, pipeline.time_budget_seconds);
    const Deadline deadline = Deadline::after(budget_seconds);
    lp::SimplexOptions simplex;
    simplex.deadline = deadline;

    SolveReport report;
    report.params =
        "reps=" + std::to_string(pipeline.rounding_repetitions) + " lp=explicit";
    // The common diagnostics carry the Section 6 sampling scale 2 k rho as
    // the factor; conflict resolution costs another survival factor <= 2,
    // so the proven expectation bound (the guarantee) is b* / (2 * factor)
    // = b* / (4 k rho).
    report.factor =
        2.0 * static_cast<double>(instance.num_channels()) * instance.rho();

    const FractionalSolution lp = solve_asymmetric_lp(instance, simplex);
    if (lp.status == lp::SolveStatus::kTimeLimit) {
      report.timed_out = true;
      report.factor = 0.0;  // no bound can be claimed without the LP
      return report;
    }
    if (lp.status != lp::SolveStatus::kOptimal) {
      // Pivot limit / infeasibility: an error, not a silent zero report.
      throw std::runtime_error("asymmetric-lp-rounding: LP solve failed (" +
                               lp::to_string(lp.status) + ")");
    }
    bool timed_out = false;
    report.allocation =
        best_asymmetric_rounds(instance, lp, pipeline.rounding_repetitions,
                               pipeline.seed, deadline, &timed_out);
    report.timed_out = timed_out;
    report.lp_upper_bound = lp.objective;
    report.fractional = lp;
    report.pivots = lp.pivots;
    report.guarantee = lp.objective / (2.0 * report.factor);
    return report;
  }
};

class AsymmetricColgenSolver final : public AsymmetricSolver {
 public:
  std::string name() const override { return "asymmetric-colgen"; }
  std::string description() const override {
    return "Section 6 LP by demand-oracle column generation (Benders cuts "
           "on the dual): any k, weighted per-channel graphs admitted; "
           "unweighted instances keep E[welfare] >= b*/(4 k rho), weighted "
           "ones get a heuristic greedy fit of the fractional support";
  }

 protected:
  SolveReport solve_asymmetric(const AsymmetricInstance& instance,
                               const SolveOptions& options) const override {
    PipelineOptions pipeline = options.pipeline;
    pipeline.seed = options.seed;
    // Shared-vs-section budget precedence pinned in support/deadline.hpp.
    const double budget_seconds = effective_budget(
        options.time_budget_seconds, pipeline.time_budget_seconds);
    const Deadline deadline = Deadline::after(budget_seconds);

    AsymmetricColGenOptions colgen;
    colgen.simplex.deadline = deadline;
    // Bridge the runtime-only column-pool side channel. The donor pool is
    // honored only when warm_start allows it; the export side always runs
    // so a cold solve still banks its pool for the next churn variant.
    if (options.warm_context != nullptr) {
      if (options.warm_start) colgen.pool = options.warm_context->pool_hint;
      colgen.pool_export = &options.warm_context->pool_exported;
    }
    AsymmetricColGenStats stats;
    const FractionalSolution lp =
        solve_asymmetric_lp_colgen(instance, &stats, colgen);
    if (options.warm_context != nullptr) {
      options.warm_context->has_pool_export =
          !options.warm_context->pool_exported.empty();
    }

    SolveReport report;
    report.params = "reps=" + std::to_string(pipeline.rounding_repetitions) +
                    " lp=colgen";
    report.warm_started = stats.pool_warm_started;
    report.pivots = stats.pivots;
    report.oracle_rounds = static_cast<std::uint32_t>(stats.rounds);
    report.columns_generated =
        static_cast<std::uint32_t>(stats.columns_generated);
    if (lp.status == lp::SolveStatus::kTimeLimit) {
      report.timed_out = true;
      return report;
    }
    if (lp.status != lp::SolveStatus::kOptimal) {
      // Pivot limit / infeasibility: an error, not a silent zero report.
      throw std::runtime_error("asymmetric-colgen: LP solve failed (" +
                               lp::to_string(lp.status) + ")");
    }
    report.fractional = lp;
    // A restricted-master objective (pricing rounds exhausted) is only a
    // LOWER bound on b*, so the upper bound and any guarantee derived from
    // it ride on the oracle's optimality certificate.
    if (stats.proved_optimal) report.lp_upper_bound = lp.objective;

    if (instance.unweighted()) {
      // Same rounding stage and Section 6 bookkeeping as
      // asymmetric-lp-rounding: sampling scale 2 k rho, conflict survival
      // <= 2, E[welfare] >= b* / (4 k rho).
      bool timed_out = false;
      report.allocation =
          best_asymmetric_rounds(instance, lp, pipeline.rounding_repetitions,
                                 pipeline.seed, deadline, &timed_out);
      report.timed_out = timed_out;
      if (stats.proved_optimal) {
        report.factor = 2.0 * static_cast<double>(instance.num_channels()) *
                        instance.rho();
        report.guarantee = lp.objective / (2.0 * report.factor);
      }
    } else {
      // Weighted graphs: randomized rounding's survival analysis does not
      // apply; fit the fractional support greedily instead (deterministic,
      // conservative, no proven factor).
      report.allocation = greedy_fit_from_columns(instance, lp.columns);
    }
    return report;
  }
};

class AsymmetricExactSolver final : public AsymmetricSolver {
 public:
  std::string name() const override { return "asymmetric-exact"; }
  std::string description() const override {
    return "exact winner determination over per-channel conflict graphs by "
           "branch and bound (OPT reference; exponential, small instances "
           "only)";
  }

 protected:
  SolveReport solve_asymmetric(const AsymmetricInstance& instance,
                               const SolveOptions& options) const override {
    const BudgetedExactOptions budgeted = exact_options_with_budget(options);
    return exact_report(solve_asymmetric_exact(instance, budgeted.options),
                        budgeted);
  }
};

class AsymmetricGreedyValueSolver final : public AsymmetricSolver {
 public:
  std::string name() const override { return "asymmetric-greedy-value"; }
  std::string description() const override {
    return "greedy by bidder max value over per-channel graphs (heuristic "
           "baseline, no guarantee)";
  }

 protected:
  SolveReport solve_asymmetric(const AsymmetricInstance& instance,
                               const SolveOptions&) const override {
    SolveReport report;
    report.allocation = greedy_by_value_asymmetric(instance);
    return report;
  }
};

class AsymmetricGreedyDensitySolver final : public AsymmetricSolver {
 public:
  std::string name() const override { return "asymmetric-greedy-density"; }
  std::string description() const override {
    return "greedy over (bidder, bundle) pairs by value/|T| density with "
           "per-channel feasibility (heuristic baseline, no guarantee)";
  }

 protected:
  SolveReport solve_asymmetric(const AsymmetricInstance& instance,
                               const SolveOptions&) const override {
    SolveReport report;
    report.allocation = greedy_by_density_asymmetric(instance);
    return report;
  }
};

template <typename S>
SolverFactory factory_of() {
  return [] { return std::make_unique<S>(); };
}

}  // namespace

namespace detail {

void register_builtin_solvers(SolverRegistry& registry) {
  registry.add("lp-rounding", factory_of<LpRoundingSolver>());
  registry.add("exact", factory_of<ExactSolver>());
  registry.add("greedy-value", factory_of<GreedyValueSolver>());
  registry.add("greedy-density", factory_of<GreedyDensitySolver>());
  // Follow-up paper entry (arXiv:1110.5753): a plain registry add() over
  // the existing SymmetricSolver adapter -- new algorithms need no new
  // entry points, which is exactly what keeps them servable through every
  // AuctionClient transport unchanged.
  registry.add("submodular-greedy", factory_of<SubmodularGreedySolver>());
  registry.add("local-ratio-k1", factory_of<LocalRatioSingleChannelSolver>());
  registry.add("local-ratio-per-channel",
               factory_of<LocalRatioPerChannelSolver>());
  registry.add("mechanism", factory_of<MechanismSolver>());
  registry.add("asymmetric-lp-rounding",
               factory_of<AsymmetricLpRoundingSolver>());
  // Decomposition entry (ROADMAP "solve path: decomposition"): demand-
  // oracle column generation over the Section 6 master, which is what
  // lifts the explicit-enumeration channel cap and admits weighted
  // asymmetric instances.
  registry.add("asymmetric-colgen", factory_of<AsymmetricColgenSolver>());
  registry.add("asymmetric-exact", factory_of<AsymmetricExactSolver>());
  registry.add("asymmetric-greedy-value",
               factory_of<AsymmetricGreedyValueSolver>());
  registry.add("asymmetric-greedy-density",
               factory_of<AsymmetricGreedyDensitySolver>());
}

}  // namespace detail
}  // namespace ssa
