#include "api/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "support/deadline.hpp"

namespace ssa {

SolveScheduler::SolveScheduler(const SchedulerOptions& options)
    : queue_policy_(options.queue), admission_policy_(options.admission) {
  if (options.metrics != nullptr) {
    queue_depth_ = &options.metrics->gauge("scheduler.queue_depth");
    admitted_ = &options.metrics->counter("scheduler.admitted");
    degraded_ = &options.metrics->counter("scheduler.degraded");
    rejected_ = &options.metrics->counter("scheduler.rejected");
  }
  int threads = options.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SolveScheduler::~SolveScheduler() { shutdown(); }

bool SolveScheduler::runs_after(const QueuedTask& a,
                                const QueuedTask& b) const {
  if (queue_policy_ == QueuePolicy::kDeadline && a.deadline != b.deadline) {
    return a.deadline > b.deadline;
  }
  return a.sequence > b.sequence;
}

void SolveScheduler::push_locked(QueuedTask task) {
  queue_.push_back(std::move(task));
  std::push_heap(queue_.begin(), queue_.end(), heap_comparator());
}

bool SolveScheduler::deadline_unmeetable_locked(
    std::chrono::steady_clock::time_point now,
    std::chrono::steady_clock::time_point deadline,
    const std::string& cost_key) const {
  // The new task's own cost comes from its key (global fallback for an
  // unseen key); the queue ahead of it drains at the global average --
  // its tasks are a mix of keys, so the mixed-workload EMA is the honest
  // drain-rate signal.
  const double own_cost = cost_model_.estimate(cost_key);
  const double drain_cost = cost_model_.global_estimate();
  if (own_cost <= 0.0 && drain_cost <= 0.0) return false;  // no signal yet
  const double workers =
      static_cast<double>(std::max<std::size_t>(1, workers_.size()));
  const auto projected = [&](std::size_t ahead) {
    const double seconds =
        (static_cast<double>(ahead) / workers) * drain_cost + own_cost;
    return now +
           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(seconds));
  };
  // Tasks that will be served before the new one: everything already
  // running, plus -- under deadline ordering -- the queued tasks with an
  // earlier-or-equal deadline (under FIFO, the whole queue). First try
  // the conservative upper bound (the whole queue ahead): when even that
  // fits the deadline -- the common case -- admission is O(1) and the
  // heap never needs scanning.
  const std::size_t worst_case_ahead = running_ + queue_.size();
  if (projected(worst_case_ahead) <= deadline) return false;
  if (queue_policy_ == QueuePolicy::kFifo) return true;  // bound is exact
  std::size_t ahead = running_;
  for (const QueuedTask& queued : queue_) {
    if (queued.deadline <= deadline) ++ahead;
  }
  return projected(ahead) > deadline;
}

void SolveScheduler::submit(Task task) {
  (void)submit(std::move(task), TaskOptions{});
}

Admission SolveScheduler::submit(Task task, const TaskOptions& options) {
  if (!task) {
    throw std::invalid_argument("SolveScheduler::submit: empty task");
  }
  Admission admission = Admission::kAccepted;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_) {
      throw std::runtime_error("SolveScheduler::submit: scheduler shut down");
    }
    const auto now = std::chrono::steady_clock::now();
    const auto deadline = deadline_at(now, options.deadline_seconds);
    if (deadline != std::chrono::steady_clock::time_point::max() &&
        admission_policy_ != AdmissionPolicy::kAcceptAll &&
        deadline_unmeetable_locked(now, deadline, options.cost_key)) {
      if (admission_policy_ == AdmissionPolicy::kReject) {
        if (rejected_ != nullptr) rejected_->add();
        return Admission::kRejected;  // never enqueued; caller completes it
      }
      admission = Admission::kDegraded;
    }
    push_locked(QueuedTask{std::move(task), now, deadline, next_sequence_++,
                           options.cost_key,
                           /*count_in_cost_ema=*/admission !=
                               Admission::kDegraded});
  }
  if (queue_depth_ != nullptr) queue_depth_->add();
  if (admission == Admission::kDegraded) {
    if (degraded_ != nullptr) degraded_->add();
  } else if (admitted_ != nullptr) {
    admitted_->add();
  }
  work_ready_.notify_one();
  return admission;
}

void SolveScheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void SolveScheduler::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
    terminate_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::size_t SolveScheduler::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

double SolveScheduler::estimated_task_seconds() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cost_model_.global_estimate();
}

double SolveScheduler::estimated_task_seconds(
    const std::string& cost_key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cost_model_.estimate(cost_key);
}

void SolveScheduler::worker_loop() {
  for (;;) {
    QueuedTask item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [this] { return terminate_ || !queue_.empty(); });
      if (queue_.empty()) {
        // terminate_ is set and the queue is drained: exit for good.
        return;
      }
      std::pop_heap(queue_.begin(), queue_.end(), heap_comparator());
      item = std::move(queue_.back());
      queue_.pop_back();
      ++running_;
    }
    if (queue_depth_ != nullptr) queue_depth_->sub();
    const auto started = std::chrono::steady_clock::now();
    const double queue_wait_seconds =
        std::chrono::duration<double>(started - item.enqueued).count();
    try {
      item.task(queue_wait_seconds);
    } catch (...) {
      // Tasks are required not to throw (see header); swallowing here keeps
      // the worker alive for the remaining queue.
    }
    const double task_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (item.count_in_cost_ema) {
        cost_model_.observe(item.cost_key, task_seconds);
      }
      --running_;
      if (queue_.empty() && running_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace ssa
