#include "api/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ssa {

SolveScheduler::SolveScheduler(int threads) {
  if (threads <= 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SolveScheduler::~SolveScheduler() { shutdown(); }

void SolveScheduler::submit(Task task) {
  if (!task) {
    throw std::invalid_argument("SolveScheduler::submit: empty task");
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_) {
      throw std::runtime_error("SolveScheduler::submit: scheduler shut down");
    }
    queue_.push_back(
        QueuedTask{std::move(task), std::chrono::steady_clock::now()});
  }
  work_ready_.notify_one();
}

void SolveScheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void SolveScheduler::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
    terminate_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::size_t SolveScheduler::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void SolveScheduler::worker_loop() {
  for (;;) {
    QueuedTask item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [this] { return terminate_ || !queue_.empty(); });
      if (queue_.empty()) {
        // terminate_ is set and the queue is drained: exit for good.
        return;
      }
      item = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    const double queue_wait_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      item.enqueued)
            .count();
    try {
      item.task(queue_wait_seconds);
    } catch (...) {
      // Tasks are required not to throw (see header); swallowing here keeps
      // the worker alive for the remaining queue.
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      if (queue_.empty() && running_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace ssa
