#pragma once
/// \file batch.hpp
/// Batch execution over the unified Solver API: a set of (instance, solver)
/// jobs -- mixing symmetric AuctionInstances and Section-6
/// AsymmetricInstances freely -- is run concurrently through the shared
/// SolveScheduler worker pool (api/scheduler.hpp, the same deadline-aware
/// core the long-lived AuctionService shards run on) and the resulting
/// SolveReports are aggregated into one comparison table. Jobs with a
/// time budget are started in deadline order (tightest budget first);
/// ordering never changes reports[i], and batch jobs are never rejected
/// or degraded by admission. A job pairing a solver with
/// the wrong instance type renders as a per-row error, not a batch abort.
/// This replaces the hand-rolled "call every algorithm, collect a row"
/// loops every bench and example used to carry.

#include <span>
#include <string>
#include <vector>

#include "api/any_instance.hpp"
#include "api/solver.hpp"
#include "support/table.hpp"

namespace ssa {

/// One unit of work: solve \p instance with the registry solver \p solver.
/// \p instance is a non-owning view (over either instance type) and the
/// viewed object must outlive solve_batch.
struct BatchJob {
  std::string solver;
  AnyInstance instance = {};
  std::string instance_label;  ///< row label in the comparison table
  SolveOptions options = {};
};

struct BatchOptions {
  /// Worker count for the batch scheduler: 0 = runtime default, 1 =
  /// strictly serial (no worker threads spawned), > 1 = that many queue
  /// workers. Reports are identical for any value: job i always produces
  /// reports[i].
  int threads = 0;
};

/// Aggregated outcome of a batch run. reports[i] belongs to jobs[i]; a job
/// whose solver threw has reports[i].error set (and zero welfare) instead
/// of aborting the batch.
struct BatchResult {
  std::vector<std::string> labels;  ///< instance label per report
  std::vector<SolveReport> reports;

  /// Report of (instance_label, solver), or nullptr when absent/failed.
  [[nodiscard]] const SolveReport* find(const std::string& label,
                                        const std::string& solver) const;

  /// Comparison table: one row per job with the common diagnostics block.
  [[nodiscard]] Table table(int precision = 2) const;
};

/// Runs all jobs (concurrently unless options.threads == 1) and collects
/// their reports in job order. Deterministic for fixed job options
/// regardless of thread count.
[[nodiscard]] BatchResult solve_batch(std::span<const BatchJob> jobs,
                                      const BatchOptions& options = {});

/// Convenience: the cross product of labelled instances and solver names,
/// all sharing \p options.
struct LabelledInstance {
  std::string label;
  AnyInstance instance = {};
};
[[nodiscard]] std::vector<BatchJob> cross_jobs(
    std::span<const LabelledInstance> instances,
    std::span<const std::string> solvers, const SolveOptions& options = {});

}  // namespace ssa
