#pragma once
/// \file solver.hpp
/// The unified solving surface: every algorithm in the library -- the
/// LP+rounding pipeline, exact branch and bound, the greedy and local-ratio
/// baselines, and the truthful mechanism -- is exposed as an ssa::Solver
/// with one entry point,
///     solve(instance, options) -> SolveReport,
/// so benches, examples and downstream operators compare algorithms through
/// one interface instead of five ad-hoc entry points. Solvers are obtained
/// by name from the SolverRegistry (registry.hpp) and can be executed in
/// bulk with solve_batch (batch.hpp).

#include <cstdint>
#include <optional>
#include <string>

#include "core/auction_lp.hpp"
#include "core/exact.hpp"
#include "core/instance.hpp"
#include "core/pipeline.hpp"
#include "mechanism/mechanism.hpp"

namespace ssa {

/// Options for a single solve. The shared fields apply to every solver; the
/// per-solver sections configure the algorithm behind the adapter. The
/// shared \p seed subsumes the section-level seed fields (PipelineOptions::
/// seed, MechanismOptions::sample_seed, DecompositionOptions::seed): adapters
/// overwrite them with \p seed so one knob reproduces any run.
struct SolveOptions {
  // -- shared ---------------------------------------------------------------
  std::uint64_t seed = 1;  ///< single source of randomness for the run
  /// Soft wall-time target in seconds (0 = unlimited). Advisory: solvers
  /// with an internal budget (exact B&B node budget) scale it from this;
  /// others ignore it.
  double time_budget_seconds = 0.0;
  /// Worker threads for the solver's internal parallel loops (0 = runtime
  /// default). Applied by Solver::solve as a scoped OpenMP thread count;
  /// results never depend on it (parallel_for keeps a fixed
  /// iteration-to-result mapping). No effect in non-OpenMP builds.
  int threads = 0;

  // -- per-solver sections --------------------------------------------------
  PipelineOptions pipeline = {};    ///< "lp-rounding"
  ExactOptions exact = {};          ///< "exact"
  MechanismOptions mechanism = {};  ///< "mechanism"
};

/// Result of a single solve: a common diagnostics block every solver fills,
/// plus optional solver-specific payloads.
struct SolveReport {
  // -- common diagnostics ---------------------------------------------------
  std::string solver;  ///< registry name of the solver that produced this
  std::string params;  ///< one-line parameter summary of the run
  Allocation allocation;
  double welfare = 0.0;
  bool feasible = false;
  /// Proven absolute lower bound on the welfare this solver guarantees for
  /// this instance (0 when the solver is heuristic / has no absolute bound).
  double guarantee = 0.0;
  /// Proven worst-case approximation factor alpha: welfare >= OPT / alpha
  /// (1 = exact, 0 = heuristic with no proven factor). For randomized
  /// solvers the factor holds in expectation.
  double factor = 0.0;
  /// LP optimum b* (an upper bound on OPT) when the solver computed it.
  std::optional<double> lp_upper_bound;
  bool exact = false;  ///< welfare proven equal to OPT
  double wall_time_seconds = 0.0;
  /// Empty on success; solve_batch stores the failure reason here instead
  /// of propagating the exception.
  std::string error;

  // -- solver-specific payloads ---------------------------------------------
  std::optional<FractionalSolution> fractional;  ///< LP-based solvers
  std::optional<MechanismOutcome> mechanism;     ///< "mechanism"
};

/// Abstract solver. Subclasses implement solve_impl; the public solve()
/// wraps it with wall-clock timing and fills the welfare/feasibility block
/// from the returned allocation, so adapters only report what is specific
/// to their algorithm.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Registry name ("lp-rounding", "exact", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// One-line human description including the proven guarantee.
  [[nodiscard]] virtual std::string description() const = 0;

  /// Runs the algorithm. Throws std::invalid_argument when the instance is
  /// outside the solver's domain (e.g. local-ratio-k1 on k > 1).
  [[nodiscard]] SolveReport solve(const AuctionInstance& instance,
                                  const SolveOptions& options = {}) const;

 protected:
  /// Algorithm body. Must fill allocation and any payloads/bounds; solver
  /// name, welfare, feasibility and wall time are filled by solve().
  [[nodiscard]] virtual SolveReport solve_impl(
      const AuctionInstance& instance, const SolveOptions& options) const = 0;
};

}  // namespace ssa
