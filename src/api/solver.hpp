#pragma once
/// \file solver.hpp
/// The unified solving surface: every algorithm in the library -- the
/// LP+rounding pipeline, exact branch and bound, the greedy and local-ratio
/// baselines, the truthful mechanism, and the Section-6 asymmetric-channel
/// family -- is exposed as an ssa::Solver with one entry point,
///     solve(instance, options) -> SolveReport,
/// where `instance` is an AnyInstance view over either a symmetric
/// AuctionInstance or an AsymmetricInstance. Benches, examples and
/// downstream operators compare algorithms through one interface instead of
/// per-family entry points. Solvers are obtained by name from the
/// SolverRegistry (registry.hpp) and can be executed in bulk with
/// solve_batch (batch.hpp). A solver handed an instance outside its domain
/// (wrong instance type, k out of range, weighted graph, ...) reports the
/// reason in SolveReport::error -- solve() never lets a domain mismatch
/// escape as an exception.

#include <cstdint>
#include <optional>
#include <string>

#include "api/admission.hpp"
#include "api/any_instance.hpp"
#include "core/asymmetric_colgen.hpp"
#include "core/auction_lp.hpp"
#include "core/exact.hpp"
#include "core/instance.hpp"
#include "core/pipeline.hpp"
#include "mechanism/mechanism.hpp"
#include "obs/span.hpp"

namespace ssa {

/// Options for a single solve. The shared fields apply to every solver; the
/// per-solver sections configure the algorithm behind the adapter. The
/// shared \p seed subsumes the section-level seed fields (PipelineOptions::
/// seed, MechanismOptions::sample_seed, DecompositionOptions::seed): adapters
/// overwrite them with \p seed so one knob reproduces any run.
/// Runtime-only warm-start side channel a caller (the AuctionService worker,
/// the E14 bench) threads through SolveOptions::warm_context. Never
/// serialized and never part of any cache key: a warm-started solve is
/// payload-identical to the cold solve of the same instance (lp/simplex.hpp
/// explains why), so the hint cannot change what a cached report would say.
/// `hint` is consumed when SolveOptions::warm_start allows it; `exported` /
/// `columns_per_bidder` are filled (has_export = true) after an optimal
/// explicit-path LP solve so the caller can bank the basis for the next
/// structurally identical instance.
struct WarmStartContext {
  const lp::BasisSnapshot* hint = nullptr;  ///< in: basis to install, or null
  lp::BasisSnapshot exported;               ///< out: optimal basis of this run
  bool has_export = false;                  ///< out: `exported` is valid
  /// out: structural column span per bidder (delta-remap input).
  std::vector<std::uint32_t> columns_per_bidder;
  /// in: donor column pool for "asymmetric-colgen" (null for other solvers
  /// or cold solves) -- seeds the restricted master and warm-starts its
  /// first basis. Same discipline as `hint`: runtime-only, never a cache
  /// key, payload-invariant by construction.
  const AsymmetricColumnPool* pool_hint = nullptr;
  /// out: this run's generated column pool + terminal basis, for banking
  /// in the service's per-shard ColumnPoolCache.
  AsymmetricColumnPool pool_exported;
  bool has_pool_export = false;  ///< out: `pool_exported` is valid
};

struct SolveOptions {
  // -- shared ---------------------------------------------------------------
  std::uint64_t seed = 1;  ///< single source of randomness for the run
  /// Soft wall-time target in seconds (0 = unlimited). Enforced
  /// cooperatively by the budget-aware solvers -- "exact" and
  /// "asymmetric-exact" scale their node budget from it and poll a
  /// deadline between search nodes; "lp-rounding" and
  /// "asymmetric-lp-rounding" poll it between simplex pivots and between
  /// rounding repetitions. A run the budget truncated sets
  /// SolveReport::timed_out and still returns a feasible (possibly
  /// partial or empty) allocation. The remaining solvers ignore it: the
  /// greedy/local-ratio baselines finish in milliseconds anyway, and
  /// "mechanism" does not yet thread a deadline through its VCG +
  /// decomposition stages.
  double time_budget_seconds = 0.0;
  /// Worker threads for the solver's internal parallel loops (0 = runtime
  /// default). Applied by Solver::solve as a scoped OpenMP thread count;
  /// results never depend on it (parallel_for keeps a fixed
  /// iteration-to-result mapping). No effect in non-OpenMP builds.
  int threads = 0;
  /// Allow warm-starting the LP from a cached basis when the caller supplies
  /// one through \p warm_context. Off forces a cold solve even with a hint
  /// present. Serialized (a client may pin cold solves for benchmarking);
  /// NOT part of the service cache key -- the payload is warm/cold-invariant
  /// by construction, so both settings map to the same cached report.
  bool warm_start = true;
  /// Runtime-only basis side channel (see WarmStartContext). Null for plain
  /// solves; the wire codec never carries it and the service result cache
  /// never keys on it. "lp-rounding"'s explicit LP path consumes the basis
  /// fields and "asymmetric-colgen" the column-pool fields; every other
  /// solver leaves it untouched.
  WarmStartContext* warm_context = nullptr;
  /// Runtime-only trace coordinates of the submitting hop (obs/span.hpp):
  /// {trace id, parent span id} the service's per-request spans link
  /// under. Same discipline as warm_context -- never serialized by the
  /// SolveOptions codec (the wire carries it in the frame ENVELOPE
  /// instead), never part of any cache key, and results never depend on
  /// it. {0, 0} = untraced; the service then mints a fresh trace.
  obs::SpanContext span_context = {};

  // -- per-solver sections --------------------------------------------------
  PipelineOptions pipeline = {};    ///< "lp-rounding", "asymmetric-lp-rounding"
  ExactOptions exact = {};          ///< "exact", "asymmetric-exact"
  MechanismOptions mechanism = {};  ///< "mechanism"
};

/// Result of a single solve: a common diagnostics block every solver fills,
/// plus optional solver-specific payloads.
struct SolveReport {
  // -- common diagnostics ---------------------------------------------------
  std::string solver;  ///< registry name of the solver that produced this
  std::string params;  ///< one-line parameter summary of the run
  Allocation allocation;
  double welfare = 0.0;
  bool feasible = false;
  /// Proven absolute lower bound on the welfare this solver guarantees for
  /// this instance (0 when the solver is heuristic / has no absolute bound).
  double guarantee = 0.0;
  /// Proven worst-case approximation factor alpha: welfare >= OPT / alpha
  /// (1 = exact, 0 = heuristic with no proven factor). For randomized
  /// solvers the factor holds in expectation. The asymmetric LP-rounding
  /// solver reports the Section 6 sampling scale 2 k rho here (see
  /// api/solvers.cpp for how it relates to the expectation bound).
  double factor = 0.0;
  /// LP optimum b* (an upper bound on OPT) when the solver computed it.
  std::optional<double> lp_upper_bound;
  bool exact = false;  ///< welfare proven equal to OPT
  /// SolveOptions::time_budget_seconds fired: the result was truncated
  /// (fewer rounding repetitions, an unfinished LP or B&B search) but is
  /// still feasible. Never set by an unlimited budget.
  bool timed_out = false;
  double wall_time_seconds = 0.0;
  /// The LP behind this report re-optimized from a caller-provided basis
  /// hint instead of pivoting from scratch. A run diagnostic like
  /// wall_time_seconds: serialized for observability, but ignored by
  /// wire::reports_payload_equal -- warm and cold runs of one instance
  /// produce the same payload by construction.
  bool warm_started = false;
  /// Simplex pivots the solve spent across its LP(s): the pipeline LP for
  /// "lp-rounding" / "asymmetric-lp-rounding", the n+1 VCG LPs plus the
  /// decomposition LP for "mechanism", 0 for the LP-free solvers. Like
  /// warm_started, a timing-class diagnostic excluded from payload equality.
  std::int64_t pivots = 0;
  /// Pricing rounds a column-generation solve performed ("lp-rounding"'s
  /// colgen path, "asymmetric-colgen"); 0 for explicit/LP-free solvers.
  /// Like pivots, a run diagnostic excluded from payload equality: a
  /// pool-warm colgen run converges in fewer rounds than its cold twin
  /// while producing the identical payload.
  std::uint32_t oracle_rounds = 0;
  /// Columns the pricing oracle generated during this run (pool seeds
  /// excluded). Same diagnostics class as oracle_rounds.
  std::uint32_t columns_generated = 0;
  /// Empty on success. Filled (by solve() itself) when the instance is
  /// outside the solver's domain or the algorithm failed; solve_batch
  /// additionally stores job-level failures (unknown solver, empty
  /// instance) here instead of propagating the exception. Always in the
  /// normalized "<solver-key>: <reason>" format -- the service's fallback
  /// chains key off that prefix, so every layer (adapter domain checks,
  /// solve(), solve_batch) enforces it.
  std::string error;

  // -- provenance (filled by the execution layers) --------------------------
  /// Registry key the execution layer resolved for this run. Solver::solve
  /// sets it to the solver's own name; the AuctionService overwrites it
  /// with the key its selection policy chose -- after fallbacks, that is
  /// the solver which actually produced this report.
  std::string solver_selected;
  /// The report was answered from the service result cache: the payload --
  /// including wall_time_seconds, which keeps documenting what the result
  /// cost to compute originally -- is bitwise the originating run's; only
  /// this flag and queue_wait_seconds are fresh.
  bool cache_hit = false;
  /// Seconds the request waited in a scheduler queue before a worker
  /// picked it up (0 for direct Solver::solve calls and for cache hits).
  /// For coalesced followers (coalesced = true) this is the attach-to-
  /// completion latency instead -- the follower never entered a queue,
  /// and the leader's solve overlaps it, so do not add wall_time_seconds
  /// on top for coalesced reports.
  double queue_wait_seconds = 0.0;
  /// Verdict of the deadline-aware admission check (api/admission.hpp).
  /// kAccepted for direct Solver::solve calls, batch jobs, cache hits and
  /// every request whose deadline looked meetable at submission. kDegraded:
  /// the service clamped the solver's time budget to the wall time left
  /// before the deadline (degraded reports are never cached). kRejected:
  /// the request was never executed; error carries the reason.
  Admission admission = Admission::kAccepted;
  /// The request attached to an identical in-flight computation instead of
  /// running a solver itself: the payload is the leader's, bitwise (the
  /// leader's own report has coalesced = false and cache_hit = false).
  bool coalesced = false;

  // -- solver-specific payloads ---------------------------------------------
  std::optional<FractionalSolution> fractional;  ///< LP-based solvers
  std::optional<MechanismOutcome> mechanism;     ///< "mechanism"
};

/// Abstract solver over AnyInstance. Subclasses implement solve_impl (or,
/// far more commonly, derive from SymmetricSolver / AsymmetricSolver below
/// and implement the typed hook); the public solve() wraps it with
/// wall-clock timing, fills the welfare/feasibility block from the returned
/// allocation, and converts domain-check failures (std::exception escaping
/// solve_impl) into SolveReport::error so mixed-type batch runs degrade to
/// per-job errors instead of aborting.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Registry name ("lp-rounding", "asymmetric-exact", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// One-line human description including the proven guarantee.
  [[nodiscard]] virtual std::string description() const = 0;

  /// Runs the algorithm. Never throws for out-of-domain instances; the
  /// failure reason lands in SolveReport::error and the report carries an
  /// empty (feasible = false) allocation.
  [[nodiscard]] SolveReport solve(const AnyInstance& instance,
                                  const SolveOptions& options = {}) const;

 protected:
  /// Algorithm body. Must fill allocation and any payloads/bounds; solver
  /// name, welfare, feasibility and wall time are filled by solve(). May
  /// throw std::invalid_argument for out-of-domain instances -- solve()
  /// captures it as SolveReport::error.
  [[nodiscard]] virtual SolveReport solve_impl(
      const AnyInstance& instance, const SolveOptions& options) const = 0;
};

/// Adapter base for algorithms over the symmetric AuctionInstance: performs
/// the instance-type domain check (reported via SolveReport::error by
/// Solver::solve) and dispatches to the typed hook.
class SymmetricSolver : public Solver {
 protected:
  [[nodiscard]] SolveReport solve_impl(
      const AnyInstance& instance, const SolveOptions& options) const final;

  [[nodiscard]] virtual SolveReport solve_symmetric(
      const AuctionInstance& instance, const SolveOptions& options) const = 0;
};

namespace detail {
/// Enforces the normalized SolveReport::error format
/// "<solver-key>: <reason>": prepends the key unless \p reason already
/// carries it. Shared by Solver::solve, solve_batch and the service.
[[nodiscard]] std::string normalized_solver_error(const std::string& solver,
                                                  const std::string& reason);
}  // namespace detail

/// Adapter base for the Section-6 algorithms over AsymmetricInstance.
class AsymmetricSolver : public Solver {
 protected:
  [[nodiscard]] SolveReport solve_impl(
      const AnyInstance& instance, const SolveOptions& options) const final;

  [[nodiscard]] virtual SolveReport solve_asymmetric(
      const AsymmetricInstance& instance, const SolveOptions& options)
      const = 0;
};

}  // namespace ssa
