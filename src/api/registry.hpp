#pragma once
/// \file registry.hpp
/// String-keyed factory registry for ssa::Solver implementations. The
/// algorithms of the paper reproduction -- both the symmetric Problem-1
/// family and the Section-6 asymmetric-channel family -- register
/// themselves under stable names; follow-up papers (symmetric/submodular
/// bidders, universally truthful auctions) plug in beside them without new
/// entry points:
///
///     auto solver = ssa::make_solver("lp-rounding");
///     SolveReport report = solver->solve(instance);
///
/// Built-in names: "lp-rounding", "exact", "greedy-value", "greedy-density",
/// "submodular-greedy", "local-ratio-k1", "local-ratio-per-channel",
/// "mechanism", "asymmetric-lp-rounding", "asymmetric-exact",
/// "asymmetric-greedy-value", "asymmetric-greedy-density".

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/solver.hpp"

namespace ssa {

using SolverFactory = std::function<std::unique_ptr<Solver>()>;

/// Process-wide registry of solver factories. Thread-compatible: register
/// at startup, look up from anywhere afterwards.
class SolverRegistry {
 public:
  /// The global registry, with all built-in solvers registered.
  [[nodiscard]] static SolverRegistry& global();

  /// Registers \p factory under \p name; throws std::invalid_argument on a
  /// duplicate name so two algorithms can never shadow each other.
  void add(const std::string& name, SolverFactory factory);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Constructs a fresh solver; throws std::out_of_range for unknown names
  /// (the message lists the registered names).
  [[nodiscard]] std::unique_ptr<Solver> create(const std::string& name) const;

  /// Registered names in sorted order.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  struct Entry {
    std::string name;
    SolverFactory factory;
  };
  std::vector<Entry> entries_;
};

/// Shorthand for SolverRegistry::global().
[[nodiscard]] SolverRegistry& registry();

/// Shorthand for SolverRegistry::global().create(name).
[[nodiscard]] std::unique_ptr<Solver> make_solver(const std::string& name);

/// Shorthand for SolverRegistry::global().names().
[[nodiscard]] std::vector<std::string> available_solvers();

}  // namespace ssa
