#include "api/solver.hpp"

#include <chrono>

#include "support/parallel.hpp"

namespace ssa {

SolveReport Solver::solve(const AuctionInstance& instance,
                          const SolveOptions& options) const {
  // Bound the solver's internal parallel loops; never changes the report.
  const ThreadCountScope thread_scope(options.threads);
  const auto start = std::chrono::steady_clock::now();
  SolveReport report = solve_impl(instance, options);
  const auto stop = std::chrono::steady_clock::now();
  report.solver = name();
  if (report.allocation.bundles.empty()) {
    report.allocation.bundles.assign(instance.num_bidders(), kEmptyBundle);
  }
  report.welfare = instance.welfare(report.allocation);
  report.feasible = instance.feasible(report.allocation);
  report.wall_time_seconds =
      std::chrono::duration<double>(stop - start).count();
  return report;
}

}  // namespace ssa
