#include "api/solver.hpp"

#include <chrono>
#include <exception>
#include <stdexcept>

#include "support/parallel.hpp"

namespace ssa {

SolveReport Solver::solve(const AnyInstance& instance,
                          const SolveOptions& options) const {
  // Bound the solver's internal parallel loops; never changes the report.
  const ThreadCountScope thread_scope(options.threads);
  const auto start = std::chrono::steady_clock::now();
  SolveReport report;
  try {
    report = solve_impl(instance, options);
    if (report.allocation.bundles.empty()) {
      report.allocation.bundles.assign(instance.num_bidders(), kEmptyBundle);
    }
    report.welfare = instance.welfare(report.allocation);
    report.feasible = instance.feasible(report.allocation);
  } catch (const std::exception& e) {
    // Domain mismatches (wrong instance type, k out of range, weighted
    // graph, bad options) surface as a structured error, not an exception:
    // mixed-type batches keep running and tables render the reason.
    report = SolveReport{};
    report.error = e.what();
    if (!instance.empty()) {
      report.allocation.bundles.assign(instance.num_bidders(), kEmptyBundle);
    }
  }
  const auto stop = std::chrono::steady_clock::now();
  report.solver = name();
  report.wall_time_seconds =
      std::chrono::duration<double>(stop - start).count();
  return report;
}

SolveReport SymmetricSolver::solve_impl(const AnyInstance& instance,
                                        const SolveOptions& options) const {
  if (!instance.is_symmetric()) {
    throw std::invalid_argument("solver '" + name() +
                                "' requires a symmetric AuctionInstance, got " +
                                instance.kind() + " instance");
  }
  return solve_symmetric(instance.symmetric(), options);
}

SolveReport AsymmetricSolver::solve_impl(const AnyInstance& instance,
                                         const SolveOptions& options) const {
  if (!instance.is_asymmetric()) {
    throw std::invalid_argument(
        "solver '" + name() +
        "' requires an AsymmetricInstance (Section 6), got " +
        instance.kind() + " instance");
  }
  return solve_asymmetric(instance.asymmetric(), options);
}

}  // namespace ssa
