#include "api/solver.hpp"

#include <chrono>
#include <exception>
#include <stdexcept>

#include "support/parallel.hpp"

namespace ssa {

namespace detail {

std::string normalized_solver_error(const std::string& solver,
                                    const std::string& reason) {
  const std::string prefix = solver + ": ";
  if (reason.rfind(prefix, 0) == 0) return reason;
  return prefix + reason;
}

}  // namespace detail

SolveReport Solver::solve(const AnyInstance& instance,
                          const SolveOptions& options) const {
  // Bound the solver's internal parallel loops; never changes the report.
  const ThreadCountScope thread_scope(options.threads);
  const auto start = std::chrono::steady_clock::now();
  SolveReport report;
  try {
    report = solve_impl(instance, options);
    if (report.allocation.bundles.empty()) {
      report.allocation.bundles.assign(instance.num_bidders(), kEmptyBundle);
    }
    report.welfare = instance.welfare(report.allocation);
    report.feasible = instance.feasible(report.allocation);
  } catch (const std::exception& e) {
    // Domain mismatches (wrong instance type, k out of range, weighted
    // graph, bad options) surface as a structured error, not an exception:
    // mixed-type batches keep running and tables render the reason. The
    // message is normalized to "<solver-key>: <reason>" -- the service
    // fallback chains and operators key off that format.
    report = SolveReport{};
    report.error = detail::normalized_solver_error(name(), e.what());
    if (!instance.empty()) {
      report.allocation.bundles.assign(instance.num_bidders(), kEmptyBundle);
    }
  }
  const auto stop = std::chrono::steady_clock::now();
  report.solver = name();
  report.solver_selected = name();
  report.wall_time_seconds =
      std::chrono::duration<double>(stop - start).count();
  return report;
}

SolveReport SymmetricSolver::solve_impl(const AnyInstance& instance,
                                        const SolveOptions& options) const {
  if (!instance.is_symmetric()) {
    // Same "<solver-key>: <reason>" shape as the asymmetric base below:
    // domain-mismatch errors of the two families must never diverge (the
    // selection policy's fallback logic parses them).
    throw std::invalid_argument(name() +
                                ": expected a symmetric AuctionInstance, got " +
                                instance.kind() + " instance");
  }
  return solve_symmetric(instance.symmetric(), options);
}

SolveReport AsymmetricSolver::solve_impl(const AnyInstance& instance,
                                         const SolveOptions& options) const {
  if (!instance.is_asymmetric()) {
    throw std::invalid_argument(name() +
                                ": expected an AsymmetricInstance, got " +
                                instance.kind() + " instance");
  }
  return solve_asymmetric(instance.asymmetric(), options);
}

}  // namespace ssa
