#pragma once
/// \file admission.hpp
/// Shared vocabulary of the deadline-aware scheduling core: how a queue
/// orders runnable tasks (QueuePolicy), what to do with a task whose
/// deadline is already unmeetable when it is submitted (AdmissionPolicy),
/// and the per-task verdict the scheduler hands back (Admission). Kept in
/// its own small header because both the generic SolveScheduler
/// (api/scheduler.hpp) and the SolveReport provenance block
/// (api/solver.hpp) speak this vocabulary.

#include <bit>
#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>

namespace ssa {

/// How a scheduler queue orders runnable tasks.
enum class QueuePolicy {
  /// Earliest effective deadline (submit time + time budget) first;
  /// submission order breaks ties and orders tasks without a deadline
  /// (which sort after every deadlined task).
  kDeadline,
  /// Strict submission order, ignoring deadlines (the pre-deadline
  /// behavior; kept as the measurable baseline for the e11 bench).
  kFifo,
};

/// What a scheduler does with a task whose effective deadline is already
/// unmeetable at submission time, given the queue depth and the measured
/// cost of recent tasks.
enum class AdmissionPolicy {
  /// Never reject or degrade; every task is enqueued as submitted.
  kAcceptAll,
  /// Enqueue the task but report Admission::kDegraded so the caller can
  /// shrink the work (the AuctionService clamps the solver's time budget
  /// to the wall time remaining before the deadline).
  kDegrade,
  /// Do not enqueue the task at all; the caller completes it immediately
  /// as rejected instead of wasting a worker on a missed deadline.
  kReject,
};

/// Per-task admission verdict. Tasks without a deadline, and every task
/// under AdmissionPolicy::kAcceptAll, are always kAccepted.
enum class Admission {
  kAccepted,
  kDegraded,
  kRejected,
};

[[nodiscard]] constexpr std::string_view to_string(Admission admission) {
  switch (admission) {
    case Admission::kAccepted: return "accepted";
    case Admission::kDegraded: return "degraded";
    case Admission::kRejected: return "rejected";
  }
  return "unknown";
}

/// Cost model behind the admission estimate: exponential moving averages
/// of completed-task wall time, kept PER COST KEY -- canonically
/// "(solver key, instance-size bucket)", see admission_cost_key -- with a
/// global EMA as the fallback for keys that have not completed a task
/// yet. A single global EMA (the original model) let a stream of
/// millisecond greedy solves collapse the estimate and wave every
/// branch-and-bound request through (or, worse, a B&B burst inflate the
/// estimate and reject cheap greedy requests); keyed EMAs keep the two
/// workloads' cost signals apart while the global average still gives a
/// new key a sane first guess.
///
/// Not thread-safe: the owner (SolveScheduler) serializes access under
/// its queue mutex.
class AdmissionCostModel {
 public:
  /// Records a completed task of \p seconds under \p key ("" = global
  /// only). Both the keyed and the global EMA update: the global stays a
  /// meaningful fallback because it keeps seeing every workload.
  void observe(const std::string& key, double seconds) {
    update(global_, seconds);
    if (!key.empty()) update(by_key_[key], seconds);
  }

  /// Expected cost of the next task under \p key: the keyed EMA when that
  /// key has history, the global EMA otherwise (0 until anything at all
  /// completed -- admission then accepts, having no signal).
  [[nodiscard]] double estimate(const std::string& key) const {
    if (!key.empty()) {
      if (const auto it = by_key_.find(key); it != by_key_.end()) {
        return it->second;
      }
    }
    return global_;
  }

  [[nodiscard]] double global_estimate() const { return global_; }

 private:
  static void update(double& ema, double seconds) {
    // Smooth enough to ride out one outlier, fresh enough to track a
    // workload shift within a handful of tasks.
    ema = ema <= 0.0 ? seconds : 0.8 * ema + 0.2 * seconds;
  }

  double global_ = 0.0;
  std::unordered_map<std::string, double> by_key_;
};

/// Canonical cost key for the model above: the requested solver key plus
/// a power-of-two bidder-count bucket, e.g. "exact/n16..31". Bucketing by
/// size keeps the key space small while separating the regimes where one
/// solver's cost differs by orders of magnitude; bucketing by solver
/// separates algorithms (the ROADMAP-named gap). An explicit request and
/// "auto" bucket separately -- "auto"'s realized chain depends on the
/// instance, so its cost profile is its own.
[[nodiscard]] inline std::string admission_cost_key(std::string_view solver,
                                                    std::size_t num_bidders) {
  const int width = num_bidders == 0 ? 0 : std::bit_width(num_bidders);
  const std::size_t low = width == 0 ? 0 : (std::size_t{1} << (width - 1));
  const std::size_t high = width == 0 ? 0 : (std::size_t{1} << width) - 1;
  return std::string(solver) + "/n" + std::to_string(low) + ".." +
         std::to_string(high);
}

}  // namespace ssa
