#pragma once
/// \file admission.hpp
/// Shared vocabulary of the deadline-aware scheduling core: how a queue
/// orders runnable tasks (QueuePolicy), what to do with a task whose
/// deadline is already unmeetable when it is submitted (AdmissionPolicy),
/// and the per-task verdict the scheduler hands back (Admission). Kept in
/// its own small header because both the generic SolveScheduler
/// (api/scheduler.hpp) and the SolveReport provenance block
/// (api/solver.hpp) speak this vocabulary.

#include <string_view>

namespace ssa {

/// How a scheduler queue orders runnable tasks.
enum class QueuePolicy {
  /// Earliest effective deadline (submit time + time budget) first;
  /// submission order breaks ties and orders tasks without a deadline
  /// (which sort after every deadlined task).
  kDeadline,
  /// Strict submission order, ignoring deadlines (the pre-deadline
  /// behavior; kept as the measurable baseline for the e11 bench).
  kFifo,
};

/// What a scheduler does with a task whose effective deadline is already
/// unmeetable at submission time, given the queue depth and the measured
/// cost of recent tasks.
enum class AdmissionPolicy {
  /// Never reject or degrade; every task is enqueued as submitted.
  kAcceptAll,
  /// Enqueue the task but report Admission::kDegraded so the caller can
  /// shrink the work (the AuctionService clamps the solver's time budget
  /// to the wall time remaining before the deadline).
  kDegrade,
  /// Do not enqueue the task at all; the caller completes it immediately
  /// as rejected instead of wasting a worker on a missed deadline.
  kReject,
};

/// Per-task admission verdict. Tasks without a deadline, and every task
/// under AdmissionPolicy::kAcceptAll, are always kAccepted.
enum class Admission {
  kAccepted,
  kDegraded,
  kRejected,
};

[[nodiscard]] constexpr std::string_view to_string(Admission admission) {
  switch (admission) {
    case Admission::kAccepted: return "accepted";
    case Admission::kDegraded: return "degraded";
    case Admission::kRejected: return "rejected";
  }
  return "unknown";
}

}  // namespace ssa
