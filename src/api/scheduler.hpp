#pragma once
/// \file scheduler.hpp
/// The deadline-aware scheduling core shared by solve_batch (api/batch.cpp)
/// and the long-lived AuctionService (service/auction_service.hpp): a
/// priority queue ordered by effective deadline (submit time + time budget,
/// submission order as the tie-break; tasks without a budget sort last among
/// themselves in FIFO order) drained by a fixed pool of worker threads, plus
/// an admission check that flags tasks whose deadline is already unmeetable
/// when they are submitted. solve_batch used to carry its own OpenMP loop;
/// extracting the queue + worker loop here means the one-shot batch driver
/// and the service shard pools run the exact same code, and both can report
/// how long a task waited in the queue (SolveReport::queue_wait_seconds).
///
/// Admission estimates the completion time of a new task as
///     (tasks scheduled before it / workers) * global cost EMA
///         + the task's own keyed cost EMA
/// and compares the projection against the task's deadline. Costs are
/// keyed: tasks carry a cost key (TaskOptions::cost_key, canonically the
/// "(solver, size bucket)" of admission_cost_key) and the new task's own
/// cost prefers its key's history, falling back to the global average
/// for unseen keys (AdmissionCostModel, api/admission.hpp) -- a
/// cheap-solver stream can no longer collapse the estimate under an
/// expensive solver's requests or vice versa. The queue ahead drains at
/// the global average (it is a mix of keys). The estimate stays
/// deliberately rough; it exists to keep obviously dead requests out of
/// the queue under load, not to promise SLOs. Until the first task
/// completes, every estimate is zero and everything is admitted.
///
/// Tasks receive their measured queue wait in seconds. Tasks must not
/// throw; a throwing task is caught and dropped (workers stay alive), which
/// is acceptable because every caller in this library already converts
/// solver failures into SolveReport::error before the task returns.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "api/admission.hpp"
#include "obs/registry.hpp"

namespace ssa {

/// Configuration of a SolveScheduler beyond the worker count.
struct SchedulerOptions {
  /// Worker threads (0 = hardware concurrency, clamped to at least 1).
  int threads = 0;
  /// Queue order; kDeadline is the default, kFifo the measurable baseline.
  QueuePolicy queue = QueuePolicy::kDeadline;
  /// Handling of tasks whose deadline is unmeetable at submission.
  AdmissionPolicy admission = AdmissionPolicy::kAcceptAll;
  /// Observability sink (obs/registry.hpp): when set, the scheduler keeps
  /// the "scheduler.queue_depth" gauge (tasks enqueued, not yet started;
  /// shared across every scheduler wired to one registry, so the service's
  /// gauge reads as total backlog across shards) and the
  /// "scheduler.admitted"/"scheduler.degraded"/"scheduler.rejected"
  /// verdict counters. Null = uninstrumented (the pre-obs behavior; zero
  /// added work per task). The registry must outlive the scheduler.
  obs::Registry* metrics = nullptr;
};

/// Fixed-size worker pool over a deadline-ordered queue. Thread-safe;
/// submission from any thread. Destruction finishes all queued work, then
/// joins.
class SolveScheduler {
 public:
  /// Runs with \p threads workers and the default deadline ordering.
  /// Workers start immediately and sleep until work arrives.
  explicit SolveScheduler(int threads = 0)
      : SolveScheduler(SchedulerOptions{threads, QueuePolicy::kDeadline,
                                        AdmissionPolicy::kAcceptAll}) {}

  explicit SolveScheduler(const SchedulerOptions& options);

  /// Equivalent to shutdown(): every already-queued task still runs.
  ~SolveScheduler();

  SolveScheduler(const SolveScheduler&) = delete;
  SolveScheduler& operator=(const SolveScheduler&) = delete;

  using Task = std::function<void(double queue_wait_seconds)>;

  /// Per-task scheduling parameters.
  struct TaskOptions {
    /// Wall-time budget in seconds; the task's effective deadline is its
    /// submission time plus this budget. <= 0 (or >= the
    /// kUnlimitedBudgetSeconds clamp, see support/deadline.hpp) means no
    /// deadline: the task is always admitted and sorts after every
    /// deadlined task.
    double deadline_seconds = 0.0;
    /// Cost-model key (admission_cost_key); its EMA learns this task's
    /// measured duration and prices future admissions of the same key.
    /// Empty trains and consults only the global fallback EMA.
    std::string cost_key;
  };

  /// Enqueues a task (no deadline, always Admission::kAccepted); throws
  /// std::runtime_error after shutdown() began.
  void submit(Task task);

  /// Enqueues a task under the admission policy. Returns the verdict:
  /// kAccepted or kDegraded mean the task was enqueued and will run;
  /// kRejected (policy AdmissionPolicy::kReject only) means the task was
  /// NOT enqueued and will never run -- the caller owns completing it.
  /// Throws std::runtime_error after shutdown() began.
  Admission submit(Task task, const TaskOptions& options);

  /// Blocks until the queue is empty and no worker is mid-task. New work
  /// may be submitted afterwards (the pool stays alive).
  void drain();

  /// Stops accepting new tasks, finishes everything already queued or
  /// in flight, and joins the workers. Idempotent.
  void shutdown();

  [[nodiscard]] int threads() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Tasks queued but not yet started (diagnostics only; racy by nature).
  [[nodiscard]] std::size_t pending() const;

  /// Global exponential moving average of completed task durations in
  /// seconds (0 until the first completion) -- the admission fallback for
  /// unseen cost keys. Exposed for diagnostics and tests.
  [[nodiscard]] double estimated_task_seconds() const;

  /// Cost estimate for \p cost_key: its own EMA when tasks of that key
  /// have completed, the global average otherwise (the exact value the
  /// admission check would use for a task submitted with this key now).
  [[nodiscard]] double estimated_task_seconds(const std::string& cost_key) const;

 private:
  struct QueuedTask {
    Task task;
    std::chrono::steady_clock::time_point enqueued;
    /// Effective deadline; time_point::max() = none.
    std::chrono::steady_clock::time_point deadline;
    /// Submission order: the FIFO tie-break within equal deadlines.
    std::uint64_t sequence = 0;
    /// Cost-model key the measured duration trains (TaskOptions::cost_key).
    std::string cost_key;
    /// Degraded tasks run with caller-shrunk work, so their duration says
    /// nothing about the true task cost: keep them out of the EMA, or
    /// sustained overload would collapse the estimate and disarm the very
    /// admission check that degraded them.
    bool count_in_cost_ema = true;
  };

  /// True when \p a should run after \p b (std heap comparator: the heap
  /// top is the task that runs next).
  [[nodiscard]] bool runs_after(const QueuedTask& a, const QueuedTask& b) const;

  /// The one heap comparator (push and pop must always agree).
  [[nodiscard]] auto heap_comparator() const {
    return [this](const QueuedTask& a, const QueuedTask& b) {
      return runs_after(a, b);
    };
  }

  /// Admission estimate for a task with \p deadline and \p cost_key
  /// submitted now; must be called with mutex_ held.
  [[nodiscard]] bool deadline_unmeetable_locked(
      std::chrono::steady_clock::time_point now,
      std::chrono::steady_clock::time_point deadline,
      const std::string& cost_key) const;

  void push_locked(QueuedTask task);
  void worker_loop();

  const QueuePolicy queue_policy_;
  const AdmissionPolicy admission_policy_;

  // Instrument handles, resolved once at construction (null when the
  // scheduler runs uninstrumented). The queue-depth gauge tracks
  // enqueue -> dequeue, so it reads live backlog, not in-flight work.
  obs::Gauge* queue_depth_ = nullptr;
  obs::Counter* admitted_ = nullptr;
  obs::Counter* degraded_ = nullptr;
  obs::Counter* rejected_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;  // workers wait here
  std::condition_variable all_idle_;    // drain()/shutdown() wait here
  std::vector<QueuedTask> queue_;       // heap under runs_after
  std::vector<std::thread> workers_;
  std::uint64_t next_sequence_ = 0;
  AdmissionCostModel cost_model_;  // completed-task cost estimates
  std::size_t running_ = 0;        // tasks currently executing
  bool accepting_ = true;          // submit() allowed
  bool terminate_ = false;         // workers exit once the queue is empty
};

}  // namespace ssa
