#pragma once
/// \file scheduler.hpp
/// The scheduling core shared by solve_batch (api/batch.cpp) and the
/// long-lived AuctionService (service/auction_service.hpp): a FIFO task
/// queue drained by a fixed pool of worker threads. solve_batch used to
/// carry its own OpenMP loop; extracting the queue + worker loop here means
/// the one-shot batch driver and the service shard pools run the exact same
/// code, and both can report how long a task waited in the queue
/// (SolveReport::queue_wait_seconds).
///
/// Tasks receive their measured queue wait in seconds. Tasks must not
/// throw; a throwing task is caught and dropped (workers stay alive), which
/// is acceptable because every caller in this library already converts
/// solver failures into SolveReport::error before the task returns.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ssa {

/// Fixed-size worker pool over a FIFO queue. Thread-safe; submission from
/// any thread. Destruction finishes all queued work, then joins.
class SolveScheduler {
 public:
  /// Runs with \p threads workers (0 = hardware concurrency, clamped to at
  /// least 1). Workers start immediately and sleep until work arrives.
  explicit SolveScheduler(int threads = 0);

  /// Equivalent to shutdown(): every already-queued task still runs.
  ~SolveScheduler();

  SolveScheduler(const SolveScheduler&) = delete;
  SolveScheduler& operator=(const SolveScheduler&) = delete;

  using Task = std::function<void(double queue_wait_seconds)>;

  /// Enqueues a task; throws std::runtime_error after shutdown() began.
  void submit(Task task);

  /// Blocks until the queue is empty and no worker is mid-task. New work
  /// may be submitted afterwards (the pool stays alive).
  void drain();

  /// Stops accepting new tasks, finishes everything already queued or
  /// in flight, and joins the workers. Idempotent.
  void shutdown();

  [[nodiscard]] int threads() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Tasks queued but not yet started (diagnostics only; racy by nature).
  [[nodiscard]] std::size_t pending() const;

 private:
  struct QueuedTask {
    Task task;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;  // workers wait here
  std::condition_variable all_idle_;    // drain()/shutdown() wait here
  std::deque<QueuedTask> queue_;
  std::vector<std::thread> workers_;
  std::size_t running_ = 0;   // tasks currently executing
  bool accepting_ = true;     // submit() allowed
  bool terminate_ = false;    // workers exit once the queue is empty
};

}  // namespace ssa
