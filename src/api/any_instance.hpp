#pragma once
/// \file any_instance.hpp
/// Type-erased (variant-based) view over the library's instance types, so
/// one Solver::solve entry point serves both the symmetric Problem-1
/// auction (AuctionInstance) and the Section-6 per-channel-graph auction
/// (AsymmetricInstance). AnyInstance is a non-owning view: it stores a
/// pointer to the caller's instance, which must outlive every solve/batch
/// call it is passed to. It converts implicitly from either instance type
/// (by reference or pointer), so existing call sites keep reading
/// solver->solve(instance, options).

#include <cstddef>
#include <stdexcept>
#include <variant>

#include "core/asymmetric.hpp"
#include "core/instance.hpp"

namespace ssa {

class AnyInstance {
 public:
  /// Empty view; solving it reports an error. Exists so BatchJob can be
  /// default-constructed.
  AnyInstance() = default;

  // Implicit views over caller-owned instances. Temporaries are rejected:
  // a view over an rvalue would dangle before solve() runs.
  AnyInstance(const AuctionInstance& instance) : ref_(&instance) {}
  AnyInstance(const AsymmetricInstance& instance) : ref_(&instance) {}
  AnyInstance(AuctionInstance&&) = delete;
  AnyInstance(AsymmetricInstance&&) = delete;

  /// Pointer forms for aggregate call sites ({"label", &instance, ...});
  /// nullptr yields the empty view.
  AnyInstance(const AuctionInstance* instance) {
    if (instance != nullptr) ref_ = instance;
  }
  AnyInstance(const AsymmetricInstance* instance) {
    if (instance != nullptr) ref_ = instance;
  }

  [[nodiscard]] bool empty() const noexcept {
    return std::holds_alternative<std::monostate>(ref_);
  }
  [[nodiscard]] bool is_symmetric() const noexcept {
    return std::holds_alternative<const AuctionInstance*>(ref_);
  }
  [[nodiscard]] bool is_asymmetric() const noexcept {
    return std::holds_alternative<const AsymmetricInstance*>(ref_);
  }

  /// "symmetric", "asymmetric" or "empty" -- used in domain-error messages.
  [[nodiscard]] const char* kind() const noexcept {
    if (is_symmetric()) return "symmetric";
    if (is_asymmetric()) return "asymmetric";
    return "empty";
  }

  /// The underlying symmetric instance; throws std::invalid_argument when
  /// the view holds something else (callers turn this into a structured
  /// SolveReport::error, never an unguarded crash).
  [[nodiscard]] const AuctionInstance& symmetric() const {
    if (!is_symmetric()) {
      throw std::invalid_argument(
          "AnyInstance: expected a symmetric AuctionInstance, holds " +
          std::string(kind()));
    }
    return *std::get<const AuctionInstance*>(ref_);
  }

  [[nodiscard]] const AsymmetricInstance& asymmetric() const {
    if (!is_asymmetric()) {
      throw std::invalid_argument(
          "AnyInstance: expected an AsymmetricInstance, holds " +
          std::string(kind()));
    }
    return *std::get<const AsymmetricInstance*>(ref_);
  }

  // -- common surface, dispatched over the held type ------------------------

  /// Applies \p fn to the held instance (either type); throws
  /// std::invalid_argument on the empty view. Defined before its users so
  /// the deduced return type is available to them.
  template <typename Fn>
  decltype(auto) visit(Fn&& fn) const {
    if (is_symmetric()) return fn(*std::get<const AuctionInstance*>(ref_));
    if (is_asymmetric()) return fn(*std::get<const AsymmetricInstance*>(ref_));
    throw std::invalid_argument("AnyInstance: empty instance view");
  }

  [[nodiscard]] std::size_t num_bidders() const {
    return visit([](const auto& instance) { return instance.num_bidders(); });
  }
  [[nodiscard]] int num_channels() const {
    return visit([](const auto& instance) { return instance.num_channels(); });
  }
  [[nodiscard]] double rho() const {
    return visit([](const auto& instance) { return instance.rho(); });
  }
  [[nodiscard]] bool unweighted() const {
    return visit([](const auto& instance) { return instance.unweighted(); });
  }
  [[nodiscard]] double welfare(const Allocation& allocation) const {
    return visit(
        [&](const auto& instance) { return instance.welfare(allocation); });
  }
  [[nodiscard]] bool feasible(const Allocation& allocation) const {
    return visit(
        [&](const auto& instance) { return instance.feasible(allocation); });
  }

 private:
  std::variant<std::monostate, const AuctionInstance*,
               const AsymmetricInstance*>
      ref_ = std::monostate{};
};

}  // namespace ssa
