#include "mechanism/mechanism.hpp"

#include <stdexcept>

#include "support/random.hpp"

namespace ssa {

namespace {
/// Realized payment of bidder v for allocation S under the scaled-VCG rule.
double payment_for(const FractionalVcg& vcg,
                   const AuctionInstance& reported_instance, std::size_t v,
                   const Allocation& allocation) {
  if (vcg.bidder_value[v] <= 1e-12) return 0.0;
  const Bundle bundle = allocation.bundles[v];
  if (bundle == kEmptyBundle) return 0.0;
  return vcg.payments[v] * reported_instance.value(v, bundle) /
         vcg.bidder_value[v];
}
}  // namespace

MechanismOutcome solve_mechanism(const AuctionInstance& instance,
                                 MechanismOptions options) {
  // Auto-select the demand-oracle path beyond the explicit-enumeration
  // limit (the explicit LP rejects k > 12 on its own).
  if (instance.num_channels() > options.explicit_limit) {
    options.use_colgen = true;
  }
  MechanismOutcome outcome;
  outcome.used_colgen = options.use_colgen;
  outcome.vcg = fractional_vcg(instance, options.use_colgen);
  outcome.decomposition = decompose_fractional(instance, outcome.vcg.optimum,
                                               options.decomposition);
  if (outcome.decomposition.entries.empty()) {
    throw std::runtime_error("solve_mechanism: empty decomposition");
  }

  // Draw an allocation.
  Rng rng(options.sample_seed);
  const double u = rng.uniform();
  double cumulative = 0.0;
  outcome.sampled_index = outcome.decomposition.entries.size() - 1;
  for (std::size_t l = 0; l < outcome.decomposition.entries.size(); ++l) {
    cumulative += outcome.decomposition.entries[l].probability;
    if (u < cumulative) {
      outcome.sampled_index = l;
      break;
    }
  }
  outcome.allocation =
      outcome.decomposition.entries[outcome.sampled_index].allocation;

  const std::size_t n = instance.num_bidders();
  outcome.payments.assign(n, 0.0);
  outcome.expected_payments.assign(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    outcome.payments[v] =
        payment_for(outcome.vcg, instance, v, outcome.allocation);
    outcome.expected_payments[v] =
        outcome.vcg.payments[v] / outcome.decomposition.alpha;
  }
  return outcome;
}

std::vector<double> expected_utilities(const MechanismOutcome& outcome,
                                       const AuctionInstance& true_instance,
                                       const AuctionInstance& reported_instance) {
  const std::size_t n = true_instance.num_bidders();
  std::vector<double> utilities(n, 0.0);
  for (const DecompositionEntry& entry : outcome.decomposition.entries) {
    for (std::size_t v = 0; v < n; ++v) {
      const Bundle bundle = entry.allocation.bundles[v];
      if (bundle == kEmptyBundle) continue;
      const double value = true_instance.value(v, bundle);
      const double payment =
          payment_for(outcome.vcg, reported_instance, v, entry.allocation);
      utilities[v] += entry.probability * (value - payment);
    }
  }
  return utilities;
}

}  // namespace ssa
