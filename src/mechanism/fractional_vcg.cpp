#include "mechanism/fractional_vcg.hpp"

#include <algorithm>

namespace ssa {

FractionalVcg fractional_vcg(const AuctionInstance& instance, bool use_colgen) {
  const auto solve = [&](const AuctionInstance& in) {
    return use_colgen ? solve_auction_lp_colgen(in) : solve_auction_lp(in);
  };

  FractionalVcg result;
  result.optimum = solve(instance);
  result.pivots += result.optimum.pivots;
  const std::size_t n = instance.num_bidders();
  result.bidder_value.assign(n, 0.0);
  for (const FractionalColumn& column : result.optimum.columns) {
    result.bidder_value[static_cast<std::size_t>(column.bidder)] +=
        instance.value(static_cast<std::size_t>(column.bidder), column.bundle) *
        column.x;
  }

  result.payments.assign(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    const FractionalSolution without = solve(instance.without_bidder(v));
    result.pivots += without.pivots;
    const double externality =
        without.objective - (result.optimum.objective - result.bidder_value[v]);
    result.payments[v] = std::max(0.0, externality);
  }
  return result;
}

}  // namespace ssa
