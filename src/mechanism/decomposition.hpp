#pragma once
/// \file decomposition.hpp
/// Lavi-Swamy convex decomposition (Section 5): writes x*/alpha as a
/// probability distribution over feasible integral allocations.
///
/// The master is the phase-1 style equality LP
///     min  sum_c (s+_c + s-_c)
///     s.t. sum_l lambda_l chi_l(c) + s+_c - s-_c = x*_c / alpha   (c in supp x*)
///          sum_l lambda_l = 1,   lambda, s >= 0,
/// solved by column generation. The pricing problem -- find an integral
/// allocation maximizing the dual weights -- is answered by the paper's own
/// rounding algorithm run on x* with the dual weights as valuations (it
/// verifies the integrality gap alpha), backed by a pairwise-independent
/// derandomized sweep and, on small instances, the exact solver.

#include <cstdint>

#include "core/auction_lp.hpp"
#include "core/instance.hpp"

namespace ssa {

struct DecompositionOptions {
  double alpha = 0.0;        ///< 0 = paper default (8 sqrt(k) rho unweighted,
                             ///< 16 sqrt(k) rho ceil(log n) weighted)
  int rounding_repetitions = 96;  ///< Monte-Carlo pricing attempts per round
  int max_rounds = 300;      ///< column-generation rounds
  bool use_exact_pricing = true;  ///< allow exact B&B pricing on small cases
  std::uint64_t seed = 0x5eed;
};

struct DecompositionEntry {
  Allocation allocation;
  double probability = 0.0;
};

struct Decomposition {
  std::vector<DecompositionEntry> entries;
  double alpha = 1.0;
  /// Final master objective = total absolute mismatch between
  /// sum_l lambda_l chi_l and x*/alpha (0 for a perfect decomposition).
  double residual = 0.0;
  int rounds = 0;
  int columns_generated = 0;
  /// Simplex pivots the master LP engine spent across all restarts. A run
  /// diagnostic, not serialized.
  long long pivots = 0;
};

/// The paper's default integrality-gap factor for this instance.
[[nodiscard]] double default_alpha(const AuctionInstance& instance);

/// Decomposes x*/alpha into a distribution over feasible allocations.
[[nodiscard]] Decomposition decompose_fractional(
    const AuctionInstance& instance, const FractionalSolution& fractional,
    DecompositionOptions options = {});

}  // namespace ssa
