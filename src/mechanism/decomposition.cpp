#include "mechanism/decomposition.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "core/exact.hpp"
#include "core/rounding.hpp"
#include "lp/simplex.hpp"

namespace ssa {

namespace {

/// Valuation defined by a sparse (bundle -> value) table; used to turn the
/// decomposition duals into a pricing auction over supp(x*).
class SparseValuation final : public Valuation {
 public:
  SparseValuation(int num_channels, std::map<Bundle, double> values)
      : Valuation(num_channels), values_(std::move(values)) {}

  [[nodiscard]] double value(Bundle bundle) const override {
    const auto it = values_.find(bundle);
    return it == values_.end() ? 0.0 : it->second;
  }

  [[nodiscard]] DemandResult demand(std::span<const double> prices) const override {
    DemandResult best;
    for (const auto& [bundle, value] : values_) {
      double utility = value;
      for (int j = 0; j < k_; ++j) {
        if (bundle_has(bundle, j)) utility -= prices[j];
      }
      if (utility > best.utility) best = DemandResult{bundle, utility};
    }
    return best;
  }

  [[nodiscard]] double max_value() const override {
    double best = 0.0;
    for (const auto& [bundle, value] : values_) best = std::max(best, value);
    return best;
  }

 private:
  std::map<Bundle, double> values_;
};

}  // namespace

double default_alpha(const AuctionInstance& instance) {
  const double sqrt_k =
      std::sqrt(static_cast<double>(instance.num_channels()));
  if (instance.unweighted()) return 8.0 * sqrt_k * instance.rho();
  const double log_n = std::ceil(
      std::log2(std::max<std::size_t>(instance.num_bidders(), 2)));
  return 16.0 * sqrt_k * instance.rho() * log_n;
}

Decomposition decompose_fractional(const AuctionInstance& instance,
                                   const FractionalSolution& fractional,
                                   DecompositionOptions options) {
  Decomposition result;
  result.alpha = options.alpha > 0.0 ? options.alpha : default_alpha(instance);

  // Coordinates = support of x*.
  std::vector<FractionalColumn> support;
  for (const FractionalColumn& column : fractional.columns) {
    if (column.x > 1e-9) support.push_back(column);
  }
  const std::size_t num_coords = support.size();
  std::map<std::pair<int, Bundle>, int> coord_of;
  for (std::size_t c = 0; c < num_coords; ++c) {
    coord_of[{support[c].bidder, support[c].bundle}] = static_cast<int>(c);
  }

  // Master: coordinate equality rows + convexity row; s+/s- and the empty
  // allocation as initial columns.
  lp::LinearProgram master(lp::Objective::kMinimize);
  for (std::size_t c = 0; c < num_coords; ++c) {
    master.add_row(lp::RowSense::kEqual, support[c].x / result.alpha);
  }
  const int convexity_row = master.add_row(lp::RowSense::kEqual, 1.0);
  for (std::size_t c = 0; c < num_coords; ++c) {
    master.add_column(1.0, {{static_cast<int>(c), 1.0}});   // s+
    master.add_column(1.0, {{static_cast<int>(c), -1.0}});  // s-
  }
  std::vector<Allocation> allocation_columns;
  std::vector<int> allocation_master_index;
  const auto add_allocation_column = [&](lp::SimplexEngine& engine,
                                         const Allocation& allocation) {
    std::vector<lp::ColumnEntry> entries{{convexity_row, 1.0}};
    for (std::size_t v = 0; v < allocation.size(); ++v) {
      if (allocation.bundles[v] == kEmptyBundle) continue;
      const auto it =
          coord_of.find({static_cast<int>(v), allocation.bundles[v]});
      if (it == coord_of.end()) {
        throw std::logic_error("decompose: allocation outside supp(x*)");
      }
      entries.push_back({it->second, 1.0});
    }
    master.add_column(0.0, entries);
    engine.add_column(0.0, entries);
    allocation_columns.push_back(allocation);
    allocation_master_index.push_back(static_cast<int>(master.num_columns()) - 1);
  };

  lp::SimplexEngine engine;
  // Seed with the empty allocation so the convexity row is satisfiable.
  {
    Allocation empty;
    empty.bundles.assign(instance.num_bidders(), kEmptyBundle);
    std::vector<lp::ColumnEntry> entries{{convexity_row, 1.0}};
    master.add_column(0.0, entries);
    allocation_columns.push_back(empty);
    allocation_master_index.push_back(static_cast<int>(master.num_columns()) - 1);
  }
  lp::Solution solution = engine.solve(master);

  const bool exact_pricing_possible =
      options.use_exact_pricing && instance.num_channels() <= 6 &&
      instance.num_bidders() <= 14;

  for (result.rounds = 0; result.rounds < options.max_rounds; ++result.rounds) {
    if (solution.status != lp::SolveStatus::kOptimal) break;
    if (solution.objective < 1e-8) break;  // decomposition complete

    // Dual weights w_c and theta.
    std::vector<double> weights(num_coords, 0.0);
    for (std::size_t c = 0; c < num_coords; ++c) weights[c] = solution.duals[c];
    const double theta = solution.duals[static_cast<std::size_t>(convexity_row)];

    // Pricing instance: bidder v values bundle T at max(w_{(v,T)}, 0).
    std::vector<ValuationPtr> pricing_valuations;
    std::vector<std::map<Bundle, double>> tables(instance.num_bidders());
    for (std::size_t c = 0; c < num_coords; ++c) {
      if (weights[c] > 0.0) {
        tables[static_cast<std::size_t>(support[c].bidder)][support[c].bundle] =
            weights[c];
      }
    }
    pricing_valuations.reserve(instance.num_bidders());
    for (std::size_t v = 0; v < instance.num_bidders(); ++v) {
      pricing_valuations.push_back(std::make_shared<SparseValuation>(
          instance.num_channels(), std::move(tables[v])));
    }
    const AuctionInstance pricing_instance(instance.graph(), instance.order(),
                                           instance.num_channels(),
                                           std::move(pricing_valuations),
                                           instance.rho());

    // Candidate allocations from the rounding verifier (and exact B&B).
    Allocation candidate = best_of_rounds(
        pricing_instance, fractional, options.rounding_repetitions,
        options.seed + static_cast<std::uint64_t>(result.rounds));
    if (exact_pricing_possible) {
      const ExactResult exact = solve_exact(pricing_instance);
      if (exact.welfare > pricing_instance.welfare(candidate)) {
        candidate = exact.allocation;
      }
    }
    // Drop coordinates whose true (signed) weight is non-positive; this
    // only raises the score and keeps feasibility (downward closure).
    for (std::size_t v = 0; v < candidate.size(); ++v) {
      if (candidate.bundles[v] == kEmptyBundle) continue;
      const auto it = coord_of.find({static_cast<int>(v), candidate.bundles[v]});
      if (it == coord_of.end() ||
          weights[static_cast<std::size_t>(it->second)] <= 0.0) {
        candidate.bundles[v] = kEmptyBundle;
      }
    }

    double score = theta;
    for (std::size_t v = 0; v < candidate.size(); ++v) {
      if (candidate.bundles[v] == kEmptyBundle) continue;
      const auto it = coord_of.find({static_cast<int>(v), candidate.bundles[v]});
      score += weights[static_cast<std::size_t>(it->second)];
    }
    if (score <= 1e-8) break;  // no improving allocation found

    add_allocation_column(engine, candidate);
    ++result.columns_generated;
    solution = engine.resolve();
  }

  result.residual = std::max(0.0, solution.objective);
  result.pivots = solution.pivots;  // engine-lifetime count across resolves

  // Extract the distribution.
  double total = 0.0;
  for (std::size_t a = 0; a < allocation_columns.size(); ++a) {
    const double lambda =
        solution.x[static_cast<std::size_t>(allocation_master_index[a])];
    if (lambda > 1e-9) {
      result.entries.push_back(
          DecompositionEntry{allocation_columns[a], lambda});
      total += lambda;
    }
  }
  if (total > 0.0) {
    for (DecompositionEntry& entry : result.entries) {
      entry.probability /= total;
    }
  }
  return result;
}

}  // namespace ssa
