#pragma once
/// \file fractional_vcg.hpp
/// Fractional VCG over the LP relaxation: the first ingredient of the
/// Lavi-Swamy construction (Section 5). Payments are the classical VCG
/// externalities computed on LP optima:
///     p^f_v = opt(LP without v) - (opt(LP) - bar{b}_v),
/// where bar{b}_v is v's value share in the LP optimum.

#include <vector>

#include "core/auction_lp.hpp"
#include "core/instance.hpp"

namespace ssa {

struct FractionalVcg {
  FractionalSolution optimum;        ///< x*
  std::vector<double> bidder_value;  ///< bar{b}_v = sum_T b_{v,T} x*_{v,T}
  std::vector<double> payments;      ///< p^f_v, clamped to >= 0
  /// Simplex pivots summed over all n+1 LP solves (the optimum plus one
  /// without-v LP per bidder). A run diagnostic, not serialized.
  long long pivots = 0;
};

/// Computes the fractional VCG outcome; \p use_colgen selects the
/// demand-oracle LP path (required when k > 12).
[[nodiscard]] FractionalVcg fractional_vcg(const AuctionInstance& instance,
                                           bool use_colgen = false);

}  // namespace ssa
