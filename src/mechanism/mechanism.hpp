#pragma once
/// \file mechanism.hpp
/// The truthful-in-expectation mechanism of Section 5: fractional VCG on
/// the LP, Lavi-Swamy decomposition of x*/alpha, a random draw from the
/// decomposition, and payments scaled so the expected payment equals the
/// fractional VCG payment divided by alpha:
///     p_v(S) = p^f_v * b_v(S(v)) / bar{b}_v          (0 when bar{b}_v = 0),
/// which gives E[p_v] = p^f_v / alpha because E[b_v(S)] = bar{b}_v / alpha.

#include <cstdint>

#include "core/instance.hpp"
#include "mechanism/decomposition.hpp"
#include "mechanism/fractional_vcg.hpp"

namespace ssa {

struct MechanismOptions {
  bool use_colgen = false;  ///< force the demand-oracle LP path
  /// Largest k solved by explicit enumeration; beyond it the demand-oracle
  /// path is selected automatically (mirrors PipelineOptions). The explicit
  /// LP itself rejects k > 12, so raising this past 12 surfaces that error
  /// instead of silently switching paths.
  int explicit_limit = 12;
  DecompositionOptions decomposition = {};
  std::uint64_t sample_seed = 0xa11c;
};

struct MechanismOutcome {
  FractionalVcg vcg;
  Decomposition decomposition;
  /// Which LP path actually ran (the demand-oracle path is auto-selected
  /// when k exceeds MechanismOptions::explicit_limit).
  bool used_colgen = false;
  std::size_t sampled_index = 0;          ///< entry drawn from the distribution
  Allocation allocation;                  ///< the realized allocation
  std::vector<double> payments;           ///< realized payments
  std::vector<double> expected_payments;  ///< p^f_v / alpha
};

/// Runs the full mechanism on the reported instance. Prefer
/// `make_solver("mechanism")->solve(instance, options)` (api/api.hpp),
/// whose report carries this outcome as SolveReport::mechanism, unless you
/// need the raw payload. (The old deprecated run_mechanism entry point is
/// gone.)
[[nodiscard]] MechanismOutcome solve_mechanism(const AuctionInstance& instance,
                                               MechanismOptions options = {});

/// Expected utility of every bidder under \p true_instance when the
/// mechanism ran on (possibly misreported) valuations:
///     E[u_v] = sum_l lambda_l (true_b_v(S_l(v)) - p_v(S_l)).
[[nodiscard]] std::vector<double> expected_utilities(
    const MechanismOutcome& outcome, const AuctionInstance& true_instance,
    const AuctionInstance& reported_instance);

}  // namespace ssa
