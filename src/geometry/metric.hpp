#pragma once
/// \file metric.hpp
/// Metric spaces for the physical (SINR) model. The paper distinguishes
/// "fading metrics" (bounded-growth, e.g. the Euclidean plane with alpha
/// larger than the doubling dimension) from "general metrics" in Theorem 17;
/// we support both: a Euclidean metric over points and an arbitrary explicit
/// distance-matrix metric.

#include <cstddef>
#include <vector>

#include "geometry/point.hpp"

namespace ssa {

/// Distance oracle over a finite set of sites [0, size).
class Metric {
 public:
  virtual ~Metric() = default;
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;
  /// Distance between sites \p a and \p b; symmetric, zero on the diagonal.
  [[nodiscard]] virtual double distance(std::size_t a, std::size_t b) const = 0;
};

/// Euclidean metric over explicit planar sites.
class EuclideanMetric final : public Metric {
 public:
  explicit EuclideanMetric(std::vector<Point> sites);

  [[nodiscard]] std::size_t size() const noexcept override {
    return sites_.size();
  }
  [[nodiscard]] double distance(std::size_t a, std::size_t b) const override;
  [[nodiscard]] const Point& site(std::size_t i) const { return sites_.at(i); }

 private:
  std::vector<Point> sites_;
};

/// General metric given by an explicit symmetric distance matrix.
/// Validates symmetry, non-negativity and the triangle inequality.
class ExplicitMetric final : public Metric {
 public:
  /// \p distances is a size x size row-major matrix.
  ExplicitMetric(std::size_t size, std::vector<double> distances);

  [[nodiscard]] std::size_t size() const noexcept override { return n_; }
  [[nodiscard]] double distance(std::size_t a, std::size_t b) const override;

 private:
  std::size_t n_;
  std::vector<double> d_;
};

/// A "general metric" stress case used in E5: a uniform metric blown up on a
/// few hub sites, which is far from any fading metric. Hub pairs are at
/// distance \p hub_scale, all other pairs at 1 (plus tiny jitter to break
/// ties deterministically from \p seed).
[[nodiscard]] ExplicitMetric make_hub_metric(std::size_t size,
                                             std::size_t hubs,
                                             double hub_scale,
                                             unsigned long long seed);

}  // namespace ssa
