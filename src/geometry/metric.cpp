#include "geometry/metric.hpp"

#include <cmath>
#include <stdexcept>

#include "support/random.hpp"

namespace ssa {

EuclideanMetric::EuclideanMetric(std::vector<Point> sites)
    : sites_(std::move(sites)) {}

double EuclideanMetric::distance(std::size_t a, std::size_t b) const {
  return ssa::distance(sites_.at(a), sites_.at(b));
}

ExplicitMetric::ExplicitMetric(std::size_t size, std::vector<double> distances)
    : n_(size), d_(std::move(distances)) {
  if (d_.size() != n_ * n_) {
    throw std::invalid_argument("ExplicitMetric: matrix size mismatch");
  }
  for (std::size_t i = 0; i < n_; ++i) {
    if (d_[i * n_ + i] != 0.0) {
      throw std::invalid_argument("ExplicitMetric: nonzero diagonal");
    }
    for (std::size_t j = 0; j < n_; ++j) {
      if (d_[i * n_ + j] < 0.0) {
        throw std::invalid_argument("ExplicitMetric: negative distance");
      }
      if (std::abs(d_[i * n_ + j] - d_[j * n_ + i]) > 1e-9) {
        throw std::invalid_argument("ExplicitMetric: asymmetric");
      }
    }
  }
  // Triangle inequality (O(n^3); metrics here are small).
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      for (std::size_t l = 0; l < n_; ++l) {
        if (d_[i * n_ + j] > d_[i * n_ + l] + d_[l * n_ + j] + 1e-9) {
          throw std::invalid_argument("ExplicitMetric: triangle violation");
        }
      }
    }
  }
}

double ExplicitMetric::distance(std::size_t a, std::size_t b) const {
  if (a >= n_ || b >= n_) throw std::out_of_range("ExplicitMetric::distance");
  return d_[a * n_ + b];
}

ExplicitMetric make_hub_metric(std::size_t size, std::size_t hubs,
                               double hub_scale, unsigned long long seed) {
  if (hubs > size) throw std::invalid_argument("make_hub_metric: hubs > size");
  if (hub_scale < 1.0) {
    throw std::invalid_argument("make_hub_metric: hub_scale must be >= 1");
  }
  Rng rng(seed);
  std::vector<double> d(size * size, 0.0);
  // Base distance 1 between distinct sites keeps the triangle inequality for
  // any per-pair stretch in [1, 2]; hub pairs use hub_scale compressed into
  // that band via d = 1 + (1 - 1/hub_scale), staying metric while making hub
  // neighborhoods look "far" under the power-law gain 1/d^alpha.
  for (std::size_t i = 0; i < size; ++i) {
    for (std::size_t j = i + 1; j < size; ++j) {
      double dist = 1.0 + 0.05 * rng.uniform();
      if (i < hubs && j < hubs) dist = 1.0 + (1.0 - 1.0 / hub_scale);
      d[i * size + j] = dist;
      d[j * size + i] = dist;
    }
  }
  return ExplicitMetric(size, std::move(d));
}

}  // namespace ssa
