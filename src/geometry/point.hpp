#pragma once
/// \file point.hpp
/// Plane geometry for the wireless models: transmitters and links live at
/// points in R^2 (the paper's transmitter scenarios and the fading-metric
/// case of Theorem 17).

#include <cmath>

namespace ssa {

/// Point in the Euclidean plane.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point&, const Point&) = default;
};

/// Euclidean distance.
[[nodiscard]] inline double distance(const Point& a, const Point& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Squared Euclidean distance (cheaper for comparisons).
[[nodiscard]] inline double distance_sq(const Point& a, const Point& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Angle of the vector from \p from to \p to, in radians in (-pi, pi].
[[nodiscard]] inline double angle(const Point& from, const Point& to) noexcept {
  return std::atan2(to.y - from.y, to.x - from.x);
}

}  // namespace ssa
