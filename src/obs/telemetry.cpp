#include "obs/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace ssa::obs {

namespace {

/// Merges two name-sorted (name, value) vectors, combining equal names
/// with \p combine. Linear two-pointer walk; output stays sorted.
template <typename V, typename Combine>
void merge_sorted(std::vector<std::pair<std::string, V>>& into,
                  const std::vector<std::pair<std::string, V>>& from,
                  Combine&& combine) {
  std::vector<std::pair<std::string, V>> out;
  out.reserve(into.size() + from.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < into.size() && j < from.size()) {
    if (into[i].first < from[j].first) {
      out.push_back(std::move(into[i++]));
    } else if (from[j].first < into[i].first) {
      out.push_back(from[j++]);
    } else {
      out.emplace_back(std::move(into[i].first),
                       combine(into[i].second, from[j].second));
      ++i;
      ++j;
    }
  }
  for (; i < into.size(); ++i) out.push_back(std::move(into[i]));
  for (; j < from.size(); ++j) out.push_back(from[j]);
  into = std::move(out);
}

std::string json_escaped(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.9g", value);
  return buffer;
}

}  // namespace

std::uint64_t TelemetrySnapshot::counter_or(std::string_view name,
                                            std::uint64_t fallback) const {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  return fallback;
}

std::int64_t TelemetrySnapshot::gauge_or(std::string_view name,
                                         std::int64_t fallback) const {
  for (const auto& [key, value] : gauges) {
    if (key == name) return value;
  }
  return fallback;
}

void merge(TelemetrySnapshot& into, const TelemetrySnapshot& from) {
  merge_sorted(into.counters, from.counters,
               [](std::uint64_t a, std::uint64_t b) { return a + b; });
  merge_sorted(into.gauges, from.gauges,
               [](std::int64_t a, std::int64_t b) { return a + b; });
  merge_sorted(into.histograms, from.histograms,
               [](LatencyHistogram a, const LatencyHistogram& b) {
                 a.merge(b);  // integer buckets: exact, order-free
                 return a;
               });
  into.spans.insert(into.spans.end(), from.spans.begin(), from.spans.end());
}

std::string to_json(const TelemetrySnapshot& snapshot) {
  std::ostringstream out;
  out << "{\"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i) out << ", ";
    out << '"' << json_escaped(snapshot.counters[i].first)
        << "\": " << snapshot.counters[i].second;
  }
  out << "}, \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i) out << ", ";
    out << '"' << json_escaped(snapshot.gauges[i].first)
        << "\": " << snapshot.gauges[i].second;
  }
  out << "}, \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    if (i) out << ", ";
    const LatencyHistogram& h = snapshot.histograms[i].second;
    out << '"' << json_escaped(snapshot.histograms[i].first) << "\": {"
        << "\"count\": " << h.count() << ", \"sum\": " << json_double(h.sum())
        << ", \"min\": " << json_double(h.min())
        << ", \"max\": " << json_double(h.max())
        << ", \"p50\": " << json_double(h.p50())
        << ", \"p99\": " << json_double(h.p99())
        << ", \"p999\": " << json_double(h.p999()) << '}';
  }
  out << "}, \"spans\": [";
  for (std::size_t i = 0; i < snapshot.spans.size(); ++i) {
    if (i) out << ", ";
    const SpanRecord& span = snapshot.spans[i];
    out << "{\"trace_id\": " << span.trace_id
        << ", \"span_id\": " << span.span_id
        << ", \"parent_span_id\": " << span.parent_span_id << ", \"name\": \""
        << json_escaped(span.name) << "\", \"note\": \""
        << json_escaped(span.note)
        << "\", \"start\": " << json_double(span.start_unix_seconds)
        << ", \"duration\": " << json_double(span.duration_seconds) << '}';
  }
  out << "]}";
  return out.str();
}

std::string format(const TelemetrySnapshot& snapshot) {
  std::ostringstream out;
  out << "telemetry snapshot\n";
  if (!snapshot.counters.empty()) {
    out << "  counters:\n";
    for (const auto& [name, value] : snapshot.counters) {
      out << "    " << name << " = " << value << '\n';
    }
  }
  if (!snapshot.gauges.empty()) {
    out << "  gauges:\n";
    for (const auto& [name, value] : snapshot.gauges) {
      out << "    " << name << " = " << value << '\n';
    }
  }
  if (!snapshot.histograms.empty()) {
    out << "  histograms:\n";
    for (const auto& [name, histogram] : snapshot.histograms) {
      char line[160];
      std::snprintf(line, sizeof line,
                    "    %s: count=%llu mean=%.3gs p50=%.3gs p99=%.3gs",
                    name.c_str(),
                    static_cast<unsigned long long>(histogram.count()),
                    histogram.mean(), histogram.p50(), histogram.p99());
      out << line << '\n';
    }
  }
  if (!snapshot.spans.empty()) {
    // Span-tree sketch: group by trace, newest traces first, roots before
    // children (children indent under their parent when it is present in
    // the ring; orphans -- parent already overwritten -- print flat).
    std::map<std::uint64_t, std::vector<const SpanRecord*>> traces;
    for (const SpanRecord& span : snapshot.spans) {
      traces[span.trace_id].push_back(&span);
    }
    out << "  recent traces (" << traces.size() << " traces, "
        << snapshot.spans.size() << " spans):\n";
    std::size_t printed = 0;
    for (auto it = traces.rbegin(); it != traces.rend() && printed < 8; ++it) {
      out << "    trace " << std::hex << it->first << std::dec << ":\n";
      std::vector<const SpanRecord*> spans = it->second;
      std::sort(spans.begin(), spans.end(),
                [](const SpanRecord* a, const SpanRecord* b) {
                  return a->start_unix_seconds < b->start_unix_seconds;
                });
      for (const SpanRecord* span : spans) {
        const bool parent_present =
            std::any_of(spans.begin(), spans.end(), [&](const SpanRecord* s) {
              return s->span_id == span->parent_span_id;
            });
        out << (parent_present ? "        - " : "      - ") << span->name;
        if (!span->note.empty()) out << " [" << span->note << ']';
        char timing[48];
        std::snprintf(timing, sizeof timing, " (%.3g ms)",
                      span->duration_seconds * 1e3);
        out << timing << '\n';
      }
      ++printed;
    }
  }
  return out.str();
}

}  // namespace ssa::obs
