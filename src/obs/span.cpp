#include "obs/span.hpp"

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <utility>

namespace ssa::obs {

namespace {

/// splitmix64 finalizer: decorrelates the sequential tick below so ids
/// from different processes (different entropy bases) virtually never
/// collide, and ids within one process are visibly unordered.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fresh_id() noexcept {
  // Entropy base: wall-clock nanoseconds at first use, distinct per
  // process; the atomic tick keeps ids unique within the process.
  static const std::uint64_t base = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  static std::atomic<std::uint64_t> tick{1};
  const std::uint64_t id =
      mix(base ^ mix(tick.fetch_add(1, std::memory_order_relaxed)));
  return id == 0 ? 1 : id;  // 0 means "untraced"; never mint it
}

constexpr std::size_t kRingStripes = 8;

}  // namespace

std::uint64_t next_trace_id() noexcept { return fresh_id(); }
std::uint64_t next_span_id() noexcept { return fresh_id(); }

double unix_now_seconds() noexcept {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

SpanRing::SpanRing(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) return;
  const std::size_t stripes =
      capacity_ < kRingStripes ? 1 : kRingStripes;
  per_stripe_ = (capacity_ + stripes - 1) / stripes;
  stripes_ = std::vector<Stripe>(stripes);
}

void SpanRing::record(SpanRecord span) {
  if (capacity_ == 0) return;
  thread_local const std::size_t home =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  Stripe& stripe = stripes_[home % stripes_.size()];
  const std::lock_guard<std::mutex> lock(stripe.mutex);
  if (stripe.slots.size() < per_stripe_) {
    stripe.slots.push_back(std::move(span));
    return;
  }
  // Full: overwrite the oldest slot (bounded memory is the contract).
  stripe.slots[stripe.next] = std::move(span);
  stripe.next = (stripe.next + 1) % per_stripe_;
}

std::vector<SpanRecord> SpanRing::recent() const {
  std::vector<SpanRecord> out;
  for (const Stripe& stripe : stripes_) {
    const std::lock_guard<std::mutex> lock(stripe.mutex);
    out.insert(out.end(), stripe.slots.begin(), stripe.slots.end());
  }
  return out;
}

std::size_t SpanRing::size() const {
  std::size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    const std::lock_guard<std::mutex> lock(stripe.mutex);
    total += stripe.slots.size();
  }
  return total;
}

}  // namespace ssa::obs
