#pragma once
/// \file registry.hpp
/// The process metrics registry of the observability subsystem (ssa::obs):
/// named counters, gauges and log-bucketed latency histograms behind
/// handle-based hot paths. A component looks its instruments up ONCE
/// (registration takes a registry-wide lock) and then increments through
/// the returned reference forever -- the handle is pointer-stable for the
/// registry's lifetime, and an increment is one relaxed atomic add on a
/// cache-line-padded stripe chosen by thread identity, so concurrent
/// writers on different cores do not bounce a shared line.
///
///     obs::Registry registry;
///     obs::Counter& hits = registry.counter("service.cache_hits");
///     hits.add();                        // hot path: one striped atomic add
///     obs::TelemetrySnapshot snap = registry.snapshot();
///
/// Exactness contract: counters and histograms are EXACT under concurrency
/// -- every add lands in some stripe, snapshot() sums the stripes, and
/// LatencyHistogram's integer bucket counts make the merge associative and
/// commutative. Snapshots of distinct registries (different processes, the
/// front door's backends) therefore merge exactly: merge() in
/// telemetry.hpp sums counters and gauges by name and folds histograms
/// bucket-for-bucket, and any merge order yields identical totals. Gauges
/// are point-in-time levels (queue depth, cache bytes); summing them
/// across processes reads as the fleet-wide level.
///
/// The registry also owns the span ring of its process/component
/// (span.hpp): snapshot() carries the recent spans next to the metric
/// values, which is what the kGetTelemetry wire frame exports.
///
/// Naming scheme: dot-separated "<component>.<metric>" lowercase names
/// ("service.cache_hits", "scheduler.queue_depth", "door.submits").
/// Histogram names end in a unit suffix ("service.solve_seconds"). Names
/// are the merge keys across processes, so components must not embed
/// per-process identifiers in them.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "support/histogram.hpp"

namespace ssa::obs {

namespace detail {

/// Stripes per instrument: enough that the handful of worker threads a
/// shard runs rarely collide, small enough that a snapshot sum is trivial.
inline constexpr std::size_t kStripes = 16;

/// Stable per-thread stripe index (thread-id hash); two threads may share
/// a stripe, which costs contention, never correctness.
[[nodiscard]] std::size_t stripe_of_this_thread() noexcept;

}  // namespace detail

/// Monotonic counter with striped relaxed adds; exact on read.
class Counter {
 public:
  /// Hot path: one relaxed atomic add on this thread's stripe.
  void add(std::uint64_t delta = 1) noexcept {
    stripes_[detail::stripe_of_this_thread()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Exact sum of every stripe. Reads concurrent with adds see each add
  /// either fully or not at all (each add is one atomic).
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Stripe& stripe : stripes_) {
      total += stripe.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Rebases the counter to \p value (snapshot-restore zeroing). Not
  /// atomic against concurrent adds -- callers rebase only in quiescent
  /// phases (construction, restore), exactly like the atomics it replaced.
  void store(std::uint64_t value) noexcept {
    stripes_[0].value.store(value, std::memory_order_relaxed);
    for (std::size_t i = 1; i < detail::kStripes; ++i) {
      stripes_[i].value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> value{0};
  };
  Stripe stripes_[detail::kStripes];
};

/// Point-in-time signed level (queue depth, cache bytes): set/add/sub on
/// one atomic -- gauges are low-rate by nature, striping buys nothing.
class Gauge {
 public:
  void set(std::int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void sub(std::int64_t delta = 1) noexcept {
    value_.fetch_sub(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Striped LatencyHistogram: record() takes ONE stripe's mutex (almost
/// always uncontended -- stripes are picked by thread), snapshot() merges
/// the stripes exactly. The histogram type is the load harness's
/// log-bucketed LatencyHistogram verbatim, so service-side and
/// driver-side latency distributions merge and compare on one grid.
class Histogram {
 public:
  void record(double seconds) noexcept {
    Stripe& stripe = stripes_[detail::stripe_of_this_thread()];
    const std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.histogram.add(seconds);
  }

  /// Exact bucket-wise merge of every stripe.
  [[nodiscard]] LatencyHistogram snapshot() const {
    LatencyHistogram merged;
    for (const Stripe& stripe : stripes_) {
      const std::lock_guard<std::mutex> lock(stripe.mutex);
      merged.merge(stripe.histogram);
    }
    return merged;
  }

 private:
  struct alignas(64) Stripe {
    mutable std::mutex mutex;
    LatencyHistogram histogram;
  };
  Stripe stripes_[detail::kStripes];
};

struct RegistryOptions {
  /// Capacity of the span ring (recent spans kept for export); 0 disables
  /// span recording entirely (record() becomes a no-op).
  std::size_t span_capacity = kDefaultSpanCapacity;
};

/// Named-instrument registry; one per process or per serving component
/// (AuctionService and FrontDoor each own one, so in-process multi-backend
/// tests see the same per-component snapshots a multi-process deployment
/// would). Thread-safe throughout; instrument handles are pointer-stable
/// and outlive every lookup (they die with the registry).
class Registry {
 public:
  explicit Registry(RegistryOptions options = {}) : spans_(options.span_capacity) {}

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Finds or creates the named instrument. O(map) under a lock: call at
  /// setup time, keep the reference for the hot path.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// The registry's bounded span ring (span.hpp).
  [[nodiscard]] SpanRing& spans() noexcept { return spans_; }

  /// Point-in-time export: every instrument by name (sorted -- the codec
  /// golden pin depends on the order) plus the recent spans. Exactly
  /// mergeable with any other registry's snapshot (telemetry.hpp).
  [[nodiscard]] TelemetrySnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  // node-based maps: values never move, so handed-out references stay
  // valid across later registrations.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  SpanRing spans_;
};

}  // namespace ssa::obs
