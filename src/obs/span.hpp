#pragma once
/// \file span.hpp
/// Per-request tracing primitives: the SpanContext that rides the wire
/// envelope and the bounded ring buffers spans are recorded into.
///
/// Model: a trace is a tree of spans sharing one trace id. Every span has
/// a process-unique span id and the span id of its parent (0 = root). The
/// CONTEXT {trace id, span id} travels in the v6 wire envelope
/// (wire/protocol.hpp): a hop that receives a frame opens its own span
/// with parent = the incoming context's span id, and forwards its own
/// span id downstream -- so one request through
/// TcpClient -> FrontDoor -> backend yields client-root -> door span ->
/// backend spans, linked without any global coordination. A zero context
/// means "untraced"; the first traced hop mints a fresh trace id.
///
/// Spans are RECORDS, not RAII guards: a component computes the start
/// time and duration it already measures (queue wait, solve wall time)
/// and records one finished SpanRecord into its registry's ring. The ring
/// is bounded and striped: recording is one short uncontended lock + a
/// slot overwrite, old spans are overwritten silently, and export copies
/// out whatever is retained -- telemetry must never be able to exhaust
/// memory or stall the serving path.
///
/// Ids: span/trace ids are process-unique, never zero, and decorrelated
/// across processes by mixing a per-process entropy base into a splitmix64
/// sequence. They are NOT deterministic across runs (tracing is
/// observability, results never depend on it).

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ssa::obs {

/// Default SpanRing capacity (spans retained for export), in total across
/// stripes.
inline constexpr std::size_t kDefaultSpanCapacity = 1024;

/// The trace coordinates a frame carries: which trace the request belongs
/// to and the sender's span id (the receiver's parent). Zero = untraced.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;

  [[nodiscard]] bool traced() const noexcept { return trace_id != 0; }

  friend bool operator==(const SpanContext&, const SpanContext&) = default;
};

/// One finished span: tree coordinates, a short name following the
/// "<component>/<step>" scheme ("door/submit", "service/solve"), a
/// free-form annotation ("solver=asymmetric-colgen warm=1 pivots=42"),
/// and wall-clock timing (Unix seconds so spans from different hosts
/// align on one axis).
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;  ///< 0 = trace root
  std::string name;
  std::string note;
  double start_unix_seconds = 0.0;
  double duration_seconds = 0.0;
};

/// Fresh process-unique ids (never 0).
[[nodiscard]] std::uint64_t next_trace_id() noexcept;
[[nodiscard]] std::uint64_t next_span_id() noexcept;

/// Wall clock now, Unix seconds (span start stamps).
[[nodiscard]] double unix_now_seconds() noexcept;

/// Bounded overwrite-oldest span store, striped by thread so concurrent
/// workers rarely contend. recent() merges the stripes (unordered across
/// stripes; callers sort by start time if they care). Capacity 0 disables
/// recording entirely.
class SpanRing {
 public:
  explicit SpanRing(std::size_t capacity = kDefaultSpanCapacity);

  void record(SpanRecord span);

  /// Copies out every retained span.
  [[nodiscard]] std::vector<SpanRecord> recent() const;

  /// Total retained spans (diagnostics/tests).
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Stripe {
    mutable std::mutex mutex;
    std::vector<SpanRecord> slots;  ///< ring storage, grown up to per-stripe cap
    std::size_t next = 0;           ///< overwrite cursor once full
  };

  std::size_t capacity_ = 0;
  std::size_t per_stripe_ = 0;
  std::vector<Stripe> stripes_;
};

}  // namespace ssa::obs
