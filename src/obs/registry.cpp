#include "obs/registry.hpp"

#include <thread>

namespace ssa::obs {

namespace detail {

std::size_t stripe_of_this_thread() noexcept {
  // One hash per thread lifetime: thread::id hashes are stable, and the
  // static local costs a branch, not a hash, after the first call.
  thread_local const std::size_t stripe =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kStripes;
  return stripe;
}

}  // namespace detail

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_.emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

TelemetrySnapshot Registry::snapshot() const {
  TelemetrySnapshot snap;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // std::map iterates sorted by name: the canonical (golden-pinnable)
    // instrument order falls out of the container choice.
    snap.counters.reserve(counters_.size());
    for (const auto& [name, counter] : counters_) {
      snap.counters.emplace_back(name, counter->value());
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, gauge] : gauges_) {
      snap.gauges.emplace_back(name, gauge->value());
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_) {
      snap.histograms.emplace_back(name, histogram->snapshot());
    }
  }
  // Outside the registry lock: the ring has its own striped locks.
  snap.spans = spans_.recent();
  return snap;
}

}  // namespace ssa::obs
