#pragma once
/// \file telemetry.hpp
/// The exported form of a registry: every instrument by name plus the
/// recent spans, as plain data -- the payload of the kGetTelemetry wire
/// frame (wire/telemetry_codec.hpp), the merge unit the FrontDoor folds
/// across its backends, and the object the JSON exporter renders for
/// bench artifacts and the demo --telemetry flag.
///
/// Merge contract: merge(into, from) is EXACT -- counters and gauges sum
/// by name, histograms fold bucket-for-bucket (LatencyHistogram's integer
/// buckets make this associative and commutative), spans concatenate.
/// Merging the same snapshots in any order or grouping therefore yields
/// identical metric totals (tests/test_obs.cpp pins associativity), which
/// is what makes a door-aggregated snapshot trustworthy: it reads as ONE
/// fleet-wide registry, not an approximation.
///
/// Instrument vectors are kept sorted by name (Registry::snapshot emits
/// them sorted; merge preserves sortedness), so the wire encoding of a
/// snapshot is canonical and golden-pinnable.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/span.hpp"
#include "support/histogram.hpp"

namespace ssa::obs {

/// Point-in-time registry export; see the file comment.
struct TelemetrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, LatencyHistogram>> histograms;
  std::vector<SpanRecord> spans;

  /// Named counter's value, 0 when absent (exporter/test convenience).
  [[nodiscard]] std::uint64_t counter_or(std::string_view name,
                                         std::uint64_t fallback = 0) const;
  /// Named gauge's value, \p fallback when absent.
  [[nodiscard]] std::int64_t gauge_or(std::string_view name,
                                      std::int64_t fallback = 0) const;
};

/// Exact accumulation of \p from into \p into (see the file comment).
void merge(TelemetrySnapshot& into, const TelemetrySnapshot& from);

/// Machine-readable JSON object: {"counters": {...}, "gauges": {...},
/// "histograms": {name: {count, sum, min, max, p50, p99, p999}},
/// "spans": [...]}. Deterministic field order (sorted names).
[[nodiscard]] std::string to_json(const TelemetrySnapshot& snapshot);

/// Human-readable multi-line rendering (the demos' --telemetry output):
/// aligned name/value tables and a span-tree sketch of the most recent
/// traces.
[[nodiscard]] std::string format(const TelemetrySnapshot& snapshot);

}  // namespace ssa::obs
