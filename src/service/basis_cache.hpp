#pragma once
/// \file basis_cache.hpp
/// Per-shard LRU cache of optimal simplex bases, keyed by the STRUCTURAL
/// fingerprint of an instance (support/fingerprint.hpp): graph, ordering,
/// rho and dimensions -- valuations excluded. The auction LP's constraint
/// matrix depends only on that structure; valuations enter the objective
/// alone, so the optimal basis of one instance is a primal-feasible (often
/// still optimal) starting basis for every value-perturbed variant. The
/// AuctionService worker banks the exported basis of each clean explicit-path
/// solve here and hands it back as a SolveOptions::warm_context hint on the
/// next structurally identical request.
///
/// The cache stores hints, not answers: a stale / mismatched / singular
/// entry costs one failed install and a cold solve, never a wrong result
/// (lp/simplex.hpp owns the fallback). That is why entries can be evicted
/// or dropped freely -- and why bases are deliberately NOT part of the
/// ResultCache snapshot: after restore_snapshot the basis caches start
/// cold and simply refill (see service/result_cache.hpp).
///
/// Not thread-safe; the owning shard serializes access under its own lock.

#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "lp/simplex.hpp"

namespace ssa::service {

/// One banked basis plus the shape data the delta remaps need.
struct BasisCacheEntry {
  lp::BasisSnapshot basis;
  std::uint32_t num_bidders = 0;
  std::uint32_t num_channels = 0;
  /// Structural column span per bidder of the donor solve (input of
  /// remap_basis_for_added_bidder / remap_basis_for_removed_bidder).
  std::vector<std::uint32_t> columns_per_bidder;
};

/// Entry-count-bounded LRU map fingerprint-hex -> BasisCacheEntry.
class BasisCache {
 public:
  /// \p max_entries = 0 disables the cache (lookups miss, inserts drop).
  explicit BasisCache(std::size_t max_entries) : max_entries_(max_entries) {}

  /// Returns the entry for \p key and marks it most recently used, or
  /// nullptr on a miss. The pointer is invalidated by the next insert().
  [[nodiscard]] const BasisCacheEntry* lookup(const std::string& key);

  /// Inserts or replaces the entry for \p key as most recently used,
  /// evicting the least recently used entry when full.
  void insert(const std::string& key, BasisCacheEntry entry);

  [[nodiscard]] std::size_t entries() const noexcept { return map_.size(); }
  [[nodiscard]] std::size_t max_entries() const noexcept {
    return max_entries_;
  }

 private:
  struct Node {
    std::string key;
    BasisCacheEntry entry;
  };

  std::size_t max_entries_;
  std::list<Node> order_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Node>::iterator> map_;
};

}  // namespace ssa::service
