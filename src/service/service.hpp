#pragma once
/// \file service.hpp
/// Umbrella header for the long-lived auction-serving layer:
///     ssa::service::AuctionService service;
///     auto id = service.submit(instance);            // "auto" selection
///     SolveReport report = service.get(id);
/// See auction_service.hpp for the request lifecycle, selection_policy.hpp
/// for solver selection and result_cache.hpp for the cache semantics.

#include "service/auction_service.hpp"   // IWYU pragma: export
#include "service/result_cache.hpp"      // IWYU pragma: export
#include "service/selection_policy.hpp"  // IWYU pragma: export
