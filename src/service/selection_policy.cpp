#include "service/selection_policy.hpp"

namespace ssa::service {

std::vector<std::string> DefaultSelectionPolicy::chain(
    const std::string& requested, const AnyInstance& instance,
    const SolveOptions& /*options*/) const {
  if (requested != kAutoSolver) {
    // Explicit requests are a contract: run that solver, surface its error.
    return {requested};
  }
  if (instance.empty()) {
    // Nothing to inspect; let the primary solver report the empty view.
    return {"greedy-value"};
  }

  const bool small =
      instance.num_bidders() <= reach_.max_bidders &&
      instance.num_channels() <= reach_.max_channels;

  std::vector<std::string> chain;
  if (instance.is_asymmetric()) {
    const bool explicit_ok = instance.num_channels() <=
                             AsymmetricInstance::kExplicitChannelLimit;
    if (small) chain.push_back("asymmetric-exact");
    // The Section 6 rounding is proven for unweighted per-channel graphs
    // only; on weighted instances it would reject, so skip it up front.
    // Its explicit LP additionally caps the channel count.
    if (instance.unweighted() && explicit_ok) {
      chain.push_back("asymmetric-lp-rounding");
    }
    // The decomposition path covers what the explicit solvers cannot:
    // weighted graphs and k beyond the enumeration cap.
    chain.push_back("asymmetric-colgen");
    if (explicit_ok) {
      chain.push_back("asymmetric-greedy-density");
      chain.push_back("asymmetric-greedy-value");
    }
    return chain;
  }

  if (small) chain.push_back("exact");
  if (instance.num_channels() == 1 && instance.unweighted()) {
    chain.push_back("local-ratio-k1");  // factor rho, cheaper than the LP
  }
  chain.push_back("lp-rounding");
  chain.push_back("greedy-density");
  chain.push_back("greedy-value");
  return chain;
}

}  // namespace ssa::service
