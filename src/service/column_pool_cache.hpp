#pragma once
/// \file column_pool_cache.hpp
/// Per-shard LRU cache of asymmetric column-generation pools, keyed by the
/// STRUCTURAL fingerprint of an instance (support/fingerprint.hpp) -- the
/// sibling of BasisCache for the "asymmetric-colgen" solve path. The
/// asymmetric LP's columns depend only on the instance structure (graphs,
/// ordering, rho, positive-bundle support); valuations enter the objective
/// alone, so the column set one run generated is a valid restricted master
/// for every value-perturbed churn variant, and the donor's terminal basis
/// warm-starts its first solve. The AuctionService worker banks the pool
/// exported by each clean colgen solve here and hands it back through
/// WarmStartContext::pool_hint on the next structurally identical request.
///
/// The cache stores hints, not answers: a stale or mismatched pool costs
/// filtered seeds and a cold first solve, never a wrong result (the oracle
/// loop re-proves optimality regardless of what seeded the master). Like
/// bases, pools are deliberately NOT part of the ResultCache snapshot:
/// after restore_snapshot the pool caches start cold and refill.
///
/// Not thread-safe; the owning shard serializes access under its own lock.

#include <cstddef>
#include <list>
#include <string>
#include <unordered_map>

#include "core/asymmetric_colgen.hpp"

namespace ssa::service {

/// Entry-count-bounded LRU map fingerprint-hex -> AsymmetricColumnPool.
class ColumnPoolCache {
 public:
  /// \p max_entries = 0 disables the cache (lookups miss, inserts drop).
  explicit ColumnPoolCache(std::size_t max_entries)
      : max_entries_(max_entries) {}

  /// Returns the pool for \p key and marks it most recently used, or
  /// nullptr on a miss. The pointer is invalidated by the next insert().
  [[nodiscard]] const AsymmetricColumnPool* lookup(const std::string& key);

  /// Inserts or replaces the pool for \p key as most recently used,
  /// evicting the least recently used entry when full.
  void insert(const std::string& key, AsymmetricColumnPool pool);

  [[nodiscard]] std::size_t entries() const noexcept { return map_.size(); }
  [[nodiscard]] std::size_t max_entries() const noexcept {
    return max_entries_;
  }

 private:
  struct Node {
    std::string key;
    AsymmetricColumnPool pool;
  };

  std::size_t max_entries_;
  std::list<Node> order_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Node>::iterator> map_;
};

}  // namespace ssa::service
