#include "service/auction_service.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <variant>

#include "api/registry.hpp"
#include "api/scheduler.hpp"
#include "service/basis_cache.hpp"
#include "service/column_pool_cache.hpp"
#include "service/result_cache.hpp"
#include "support/deadline.hpp"
#include "support/parallel.hpp"

namespace ssa::service {

namespace {

/// Low bits of a RequestId address the shard; the rest is a sequence
/// number, so ids stay unique service-wide while get() can route to the
/// owning shard without a global table.
constexpr int kShardBits = 8;
constexpr int kMaxShards = 1 << kShardBits;

/// Folds the result-relevant SolveOptions fields into the cache key.
/// Fields that can never change the report payload (threads) stay out, so
/// resubmissions with a different thread cap still hit. time_budget_seconds
/// is included: although timed-out reports are never cached, the budget
/// also scales the exact solvers' node budgets, which changes reports that
/// finish in time.
void mix_options(FingerprintHasher& hasher, const SolveOptions& options) {
  hasher.mix(options.seed);
  hasher.mix(options.time_budget_seconds);
  hasher.mix(options.pipeline.rounding_repetitions);
  hasher.mix(static_cast<std::uint64_t>(options.pipeline.derandomize));
  hasher.mix(static_cast<std::uint64_t>(
      options.pipeline.force_column_generation));
  hasher.mix(options.pipeline.explicit_limit);
  hasher.mix(options.pipeline.time_budget_seconds);
  hasher.mix(options.exact.node_budget);
  hasher.mix(options.exact.max_channels);
  hasher.mix(static_cast<std::uint64_t>(options.mechanism.use_colgen));
  hasher.mix(options.mechanism.explicit_limit);
  hasher.mix(options.mechanism.decomposition.alpha);
  hasher.mix(options.mechanism.decomposition.rounding_repetitions);
  hasher.mix(options.mechanism.decomposition.max_rounds);
  hasher.mix(static_cast<std::uint64_t>(
      options.mechanism.decomposition.use_exact_pricing));
  // Section seeds are subsumed by the shared seed in every adapter, so
  // they do not enter the key.
}

}  // namespace

/// One queued/completed request. Owns a copy of the instance: the service
/// outlives the caller's stack frame, so views would dangle.
struct AuctionService::Request {
  std::variant<std::monostate, AuctionInstance, AsymmetricInstance> instance;
  std::string solver;
  SolveOptions options;
  Fingerprint key;
  /// Basis-cache key: the STRUCTURAL fingerprint hex (valuations excluded),
  /// so value-perturbed variants of one structure share a slot. Unlike
  /// `key`, never used for result lookup -- only for warm-start hints.
  std::string structural_key;
  /// Effective deadline (submit time + time budget; time_point::max() when
  /// unlimited). Degraded runs clamp their solver budget against it.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Admission verdict, written under the shard lock before the worker
  /// task can observe the request.
  Admission admission = Admission::kAccepted;
  /// Span sampling (ServiceOptions::span_sample_every): when set, this
  /// request records its span tree and latencies. `inbound` is the
  /// caller's span context -- the service mints a fresh trace when the
  /// caller sent none -- and `start_unix` the submit wall-clock time
  /// (span timestamps are wall clock; durations stay steady-clock
  /// measured).
  bool traced = false;
  obs::SpanContext inbound;
  double start_unix = 0.0;

  [[nodiscard]] AnyInstance view() const {
    if (const auto* sym = std::get_if<AuctionInstance>(&instance)) {
      return AnyInstance(*sym);
    }
    if (const auto* asym = std::get_if<AsymmetricInstance>(&instance)) {
      return AnyInstance(*asym);
    }
    return AnyInstance();
  }
};

/// Shard: worker pool + result cache + completion and in-flight tables,
/// with one lock. Each request belongs to exactly one shard (chosen by its
/// fingerprint), so shards never contend with each other.
struct AuctionService::Shard {
  Shard(const SchedulerOptions& scheduler_options, std::size_t cache_bytes,
        std::size_t basis_entries, std::size_t pool_entries)
      : cache(cache_bytes), bases(basis_entries), pools(pool_entries),
        scheduler(scheduler_options) {}

  /// A request attached to an in-flight leader; completed from the
  /// leader's report with coalesced = true and its own queue wait.
  struct Follower {
    RequestId id = 0;
    std::chrono::steady_clock::time_point attached;
  };

  std::mutex mutex;
  std::condition_variable completed_cv;
  ResultCache cache;
  /// Warm-start bases keyed by structural fingerprint; guarded by `mutex`
  /// like the result cache. Never snapshotted: restore_snapshot leaves it
  /// empty by design (a basis is a hint, warmth refills from traffic).
  BasisCache bases;
  /// Generated column pools of clean "asymmetric-colgen" solves, keyed by
  /// the same structural fingerprint and under the same never-snapshotted
  /// hint discipline as `bases`.
  ColumnPoolCache pools;
  /// Pending requests (owned until their worker finishes) and completed
  /// reports awaiting their get()/try_get() claim.
  std::unordered_map<RequestId, std::shared_ptr<Request>> pending;
  std::unordered_map<RequestId, SolveReport> completed;
  /// Async completion watchers (watch()), fired outside the lock by the
  /// worker that moves the id from pending to completed.
  std::unordered_map<RequestId, std::vector<std::function<void()>>> watchers;
  /// In-flight table: a key is present from the leader's enqueue until its
  /// completion; duplicate submissions in that window attach here instead
  /// of enqueueing a second computation.
  std::unordered_map<Fingerprint, std::vector<Follower>> inflight;

  /// Moves \p id's watchers into \p fired (invoked by the caller after
  /// unlocking). Requires mutex held.
  void take_watchers(RequestId id,
                     std::vector<std::function<void()>>& fired) {
    const auto it = watchers.find(id);
    if (it == watchers.end()) return;
    for (std::function<void()>& watcher : it->second) {
      fired.push_back(std::move(watcher));
    }
    watchers.erase(it);
  }
  /// Declared last: the scheduler's destructor joins its workers before
  /// the maps above are torn down.
  SolveScheduler scheduler;
};

AuctionService::AuctionService(ServiceOptions options)
    : options_(std::move(options)),
      policy_(options_.policy ? options_.policy
                              : std::make_shared<DefaultSelectionPolicy>()),
      // span_sample_every = 0 means "no spans, ever": size the ring to
      // zero so even untraced code paths cannot record by accident.
      registry_(obs::RegistryOptions{
          options_.span_sample_every == 0 ? 0 : options_.span_capacity}),
      submitted_(registry_.counter("service.submitted")),
      completed_(registry_.counter("service.completed")),
      cache_hits_(registry_.counter("service.cache_hits")),
      fallbacks_(registry_.counter("service.fallbacks")),
      coalesced_(registry_.counter("service.coalesced")),
      admission_degraded_(registry_.counter("service.admission_degraded")),
      admission_rejected_(registry_.counter("service.admission_rejected")),
      timed_out_(registry_.counter("service.timed_out")),
      warm_starts_(registry_.counter("service.warm_starts")),
      colgen_warm_(registry_.counter("service.colgen_warm")),
      snapshot_restored_(registry_.counter("service.snapshot_restored")),
      basis_hits_(registry_.counter("service.basis_hits")),
      pool_hits_(registry_.counter("service.pool_hits")),
      solves_(registry_.counter("service.solves")),
      queue_wait_hist_(registry_.histogram("service.queue_wait_seconds")),
      solve_hist_(registry_.histogram("service.solve_seconds")) {
  const int shard_count = std::clamp(options_.shards, 1, kMaxShards);
  SchedulerOptions scheduler_options;
  scheduler_options.threads = std::max(1, options_.threads_per_shard);
  scheduler_options.queue = options_.queue;
  scheduler_options.admission = options_.admission;
  // One registry across every shard scheduler: the queue-depth gauge reads
  // total backlog, the verdict counters total admission decisions.
  scheduler_options.metrics = &registry_;
  shards_.reserve(static_cast<std::size_t>(shard_count));
  for (int s = 0; s < shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>(
        scheduler_options, options_.cache_bytes_per_shard,
        options_.basis_cache_entries_per_shard,
        options_.column_pool_entries_per_shard));
  }
  if (!options_.snapshot_path.empty()) restore_snapshot();
}

AuctionService::~AuctionService() { shutdown(); }

int AuctionService::shards() const noexcept {
  return static_cast<int>(shards_.size());
}

AuctionService::Shard& AuctionService::shard_of(RequestId id) const {
  // The low kShardBits of every id are its shard index (see submit).
  const std::size_t index =
      static_cast<std::size_t>(id) & (static_cast<std::size_t>(kMaxShards) - 1);
  if (index >= shards_.size()) {
    throw std::invalid_argument("AuctionService: malformed request id");
  }
  return *shards_[index];
}

void AuctionService::restore_snapshot() {
  // Restores RESULT caches only. The per-shard basis and column-pool
  // caches deliberately start cold: both are runtime hints tied to this
  // build's simplex internals, and the first solve of each structure
  // simply re-banks one (test_service pins this contract).
  try {
    std::ifstream in(options_.snapshot_path, std::ios::binary);
    if (!in) return;  // no snapshot yet: cold start
    const std::optional<std::vector<SnapshotEntry>> entries =
        read_snapshot(in);
    if (!entries) return;  // corrupt/mismatched snapshot: cold start
    for (const SnapshotEntry& entry : *entries) {
      // Re-route by the CURRENT shard count -- the snapshot may come from
      // a different layout; what must match submit's routing is the
      // modulus.
      Shard& shard = *shards_[static_cast<std::size_t>(
          entry.key.hi % static_cast<std::uint64_t>(shards_.size()))];
      const std::lock_guard<std::mutex> lock(shard.mutex);
      shard.cache.insert(entry.key, entry.report);
    }
    // Report what the caches actually retained, not what the file held:
    // a restart with smaller byte budgets evicts during the loop above,
    // and stats must not claim warmth the cache does not have. (The
    // caches are empty before restore, so the post-restore entry count is
    // exactly the retained set.)
    std::uint64_t retained = 0;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard->mutex);
      retained += shard->cache.entries();
    }
    snapshot_restored_.store(retained);
    // Restored warmth must not inherit measured traffic: the hit/miss
    // counters restart at zero so the post-restore hit rate is computed
    // from a clean baseline (snapshot_restored alone says what carried
    // over). Explicit rather than implied by construction order, so a
    // future restore-at-runtime path keeps the invariant.
    cache_hits_.store(0);
    submitted_.store(0);
    completed_.store(0);
    coalesced_.store(0);
  } catch (...) {
    // The snapshot is a warm-start optimization; whatever went wrong
    // (allocation failure on hostile lengths, filesystem trouble), the
    // contract is "cold start, never a crash".
  }
}

bool AuctionService::save_snapshot(const std::string& path) const {
  // Copy the entries one shard at a time, then serialize and write with
  // no lock held at all: cache entries are immutable content keyed by
  // fingerprint, so cross-shard atomicity buys nothing and a mid-run
  // checkpoint only ever stalls one shard for the duration of its copy,
  // never the whole request path (and never for the disk I/O).
  std::vector<SnapshotEntry> entries;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    append_snapshot_entries(shard->cache, entries);
  }
  // Write-then-rename so a kill mid-write leaves the previous good
  // snapshot intact: losing the latest delta costs some warmth, losing
  // the whole file would cost all of it.
  const std::string staging = path + ".tmp";
  {
    std::ofstream out(staging, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    write_snapshot(out, entries);
    out.flush();
    if (!out.good()) return false;
  }
  if (std::rename(staging.c_str(), path.c_str()) != 0) {
    std::remove(staging.c_str());
    return false;
  }
  return true;
}

RequestId AuctionService::submit(const AnyInstance& instance,
                                 const std::string& solver,
                                 const SolveOptions& options) {
  if (!accepting_.load()) {
    throw std::runtime_error("AuctionService::submit: service shut down");
  }
  if (instance.empty()) {
    throw std::invalid_argument("AuctionService::submit: empty instance view");
  }

  auto request = std::make_shared<Request>();
  if (instance.is_symmetric()) {
    request->instance = instance.symmetric();
  } else {
    request->instance = instance.asymmetric();
  }
  request->solver = solver;
  request->options = options;

  // Canonical request fingerprint: instance content + policy + request key
  // + result-relevant options. Routing by the key keeps equal requests on
  // one shard, which is what makes the per-shard caches and the in-flight
  // coalescing table effective without any cross-shard coordination.
  FingerprintHasher hasher;
  const Fingerprint instance_fp = fingerprint(request->view());
  hasher.mix(instance_fp.hi);
  hasher.mix(instance_fp.lo);
  hasher.mix(std::string_view(policy_->name()));
  hasher.mix(std::string_view(request->solver));
  mix_options(hasher, request->options);
  request->key = hasher.digest();
  // Basis-cache key: structure only, so the thousands of value-perturbed
  // variants of one auction round map to a single warm-start slot.
  request->structural_key = structural_fingerprint(request->view()).hex();

  const std::size_t shard_index = static_cast<std::size_t>(
      request->key.hi % static_cast<std::uint64_t>(shards_.size()));
  Shard& shard = *shards_[shard_index];
  const std::uint64_t sequence = next_sequence_.fetch_add(1);
  const RequestId id = (sequence << kShardBits) | shard_index;
  // submitted_ ticks in every terminal branch below rather than here: the
  // registry Counter is monotonic (no fetch_sub), so the lost-race-with-
  // shutdown path must simply never have counted instead of rolling back.

  // Span sampling decision. The sampled request carries the caller's span
  // context (TcpClient/FrontDoor stamp the wire envelope; LocalClient
  // passes it through SolveOptions) or mints a fresh trace when untraced.
  if (options_.span_sample_every != 0 &&
      sequence % options_.span_sample_every == 0) {
    request->traced = true;
    request->inbound = options.span_context.traced()
                           ? options.span_context
                           : obs::SpanContext{obs::next_trace_id(), 0};
    request->start_unix = obs::unix_now_seconds();
  }

  const auto now = std::chrono::steady_clock::now();
  // The deadline resolves with the same shared-vs-section precedence the
  // solvers apply (support/deadline.hpp), so a request budgeted only
  // through its pipeline section still sorts and admits by that budget --
  // exactly like solve_batch.
  const double budget_seconds = effective_budget(
      options.time_budget_seconds, options.pipeline.time_budget_seconds);
  request->deadline = deadline_at(now, budget_seconds);

  const std::lock_guard<std::mutex> lock(shard.mutex);
  if (auto cached = shard.cache.lookup(request->key)) {
    // Served from cache: bitwise the originating run's payload; only the
    // provenance/timing fields are fresh. wall_time_seconds stays the
    // originating run's (it documents what the result cost to compute).
    cached->cache_hit = true;
    cached->queue_wait_seconds = 0.0;
    shard.completed.emplace(id, std::move(*cached));
    submitted_.add();
    cache_hits_.add();
    completed_.add();
    if (request->traced) {
      registry_.spans().record(obs::SpanRecord{
          request->inbound.trace_id, obs::next_span_id(),
          request->inbound.parent_span_id, "service/cache_hit", "",
          request->start_unix, 0.0});
    }
    shard.completed_cv.notify_all();
    return id;
  }
  if (const auto inflight = shard.inflight.find(request->key);
      inflight != shard.inflight.end()) {
    // Coalesce: an identical computation is already queued or running.
    // Attach and let the leader's completion fan its report out; no second
    // solver run, no admission check (attaching costs no worker time).
    shard.pending.emplace(id, request);
    inflight->second.push_back(Shard::Follower{id, now});
    submitted_.add();
    coalesced_.add();
    if (request->traced) {
      registry_.spans().record(obs::SpanRecord{
          request->inbound.trace_id, obs::next_span_id(),
          request->inbound.parent_span_id, "service/coalesce", "",
          request->start_unix, 0.0});
    }
    return id;
  }

  // This request is the leader for its key: register it, then enqueue.
  // Everything below happens under the shard lock, so a worker cannot
  // observe the request before its admission verdict is recorded, and
  // duplicate submissions cannot slip between the table insert and the
  // scheduler handoff.
  shard.pending.emplace(id, request);
  shard.inflight.emplace(request->key, std::vector<Shard::Follower>{});
  Admission admission = Admission::kRejected;
  try {
    admission = shard.scheduler.submit(
        [this, &shard, id, request](double queue_wait) {
          // Workers provide request-level parallelism; solvers' internal
          // OpenMP loops run serially per worker (SolveOptions::threads
          // still overrides inside Solver::solve).
          const ThreadCountScope inner_scope(1);
          Admission verdict;
          {
            const std::lock_guard<std::mutex> admission_lock(shard.mutex);
            verdict = request->admission;
          }
          SolveOptions effective = request->options;
          if (verdict == Admission::kDegraded) {
            // The deadline was unmeetable at admission: clamp the solver
            // budget to whatever wall time is left, so the run truncates
            // (and falls back down its chain) instead of blowing the
            // deadline further. A deadline already in the past leaves a
            // near-zero budget: the solver gives up immediately and the
            // chain's never-timing-out tail serves.
            const double remaining =
                std::chrono::duration<double>(
                    request->deadline - std::chrono::steady_clock::now())
                    .count();
            effective.time_budget_seconds = std::max(1e-9, remaining);
          }
          // Warm start: replay the banked optimal basis of this structure,
          // if any. The entry is copied out under the shard lock so the
          // hint stays stable while the solver runs (the next insert may
          // evict the cache's copy); a stale or incompatible hint costs
          // one failed install and a cold solve, never a wrong result.
          WarmStartContext warm;
          BasisCacheEntry banked;
          AsymmetricColumnPool banked_pool;
          {
            const std::lock_guard<std::mutex> basis_lock(shard.mutex);
            if (const BasisCacheEntry* entry =
                    shard.bases.lookup(request->structural_key)) {
              banked = *entry;
              warm.hint = &banked.basis;
            }
            if (const AsymmetricColumnPool* pool =
                    shard.pools.lookup(request->structural_key)) {
              banked_pool = *pool;
              warm.pool_hint = &banked_pool;
            }
          }
          // Hint-serve counters tick on lookup success, not on install
          // success (warm_starts covers the latter): the gap between the
          // two is the stale-hint rate.
          if (warm.hint != nullptr) basis_hits_.add();
          if (warm.pool_hint != nullptr) pool_hits_.add();
          effective.warm_context = &warm;
          solves_.add();
          if (options_.on_solve) {
            try {
              options_.on_solve(request->key);
            } catch (...) {
              // A throwing hook must not take the request down with it.
            }
          }
          // Every request MUST complete, whatever throws on the way (a
          // user-installed policy, allocation failure, ...): get(id) waits
          // on the pending -> completed transition, so an escaping
          // exception here would strand the caller forever.
          SolveReport report;
          try {
            report = execute(*request, effective);
          } catch (const std::exception& e) {
            report = SolveReport{};
            report.error =
                detail::normalized_solver_error("auction-service", e.what());
          } catch (...) {
            report = SolveReport{};
            report.error = "auction-service: unknown failure while executing";
          }
          report.queue_wait_seconds = queue_wait;
          report.cache_hit = false;
          report.coalesced = false;
          report.admission = verdict;
          const bool run_timed_out = report.timed_out;
          const bool run_warm_started = report.warm_started;
          // A warm-started run with pricing rounds is a colgen solve that
          // seeded from a banked pool; explicit-path basis reuse never has
          // oracle rounds, so the two reuse kinds stay distinguishable
          // without another report field.
          const bool run_colgen_warm =
              report.warm_started && report.oracle_rounds > 0;
          // Span material, captured before the report is moved into the
          // completed table.
          const double run_wall = report.wall_time_seconds;
          std::string solve_note;
          if (request->traced) {
            solve_note = "solver=" + report.solver_selected;
            solve_note += " pivots=" + std::to_string(report.pivots);
            if (report.oracle_rounds > 0) {
              solve_note +=
                  " oracle_rounds=" + std::to_string(report.oracle_rounds);
            }
            if (run_warm_started) solve_note += " warm";
            if (run_colgen_warm) solve_note += " colgen_warm";
            if (run_timed_out) solve_note += " timed_out";
            if (verdict == Admission::kDegraded) solve_note += " degraded";
            if (!report.error.empty()) solve_note += " error";
          }
          std::size_t follower_count = 0;
          std::vector<std::function<void()>> fired;
          {
            const std::lock_guard<std::mutex> completion_lock(shard.mutex);
            // Cache only clean, complete, undegraded runs: errors would pin
            // failures, and timed-out or budget-clamped reports depend on
            // wall-clock luck, not content. A cache failure must not lose
            // the report, so it cannot abort completion.
            if (report.error.empty() && !report.timed_out &&
                verdict == Admission::kAccepted) {
              try {
                shard.cache.insert(request->key, report);
              } catch (...) {
                // Uncached is merely slower; the report still completes.
              }
              // Bank the optimal basis under the same "clean run" gate: a
              // truncated or failed LP has no basis worth replaying.
              if (warm.has_export) {
                const AnyInstance solved = request->view();
                shard.bases.insert(
                    request->structural_key,
                    BasisCacheEntry{
                        std::move(warm.exported),
                        static_cast<std::uint32_t>(solved.num_bidders()),
                        static_cast<std::uint32_t>(solved.num_channels()),
                        std::move(warm.columns_per_bidder)});
              }
              // Same gate for the colgen column pool: only a clean run's
              // pool (oracle-certified master, terminal basis) is worth
              // seeding the next churn variant with.
              if (warm.has_pool_export) {
                shard.pools.insert(request->structural_key,
                                   std::move(warm.pool_exported));
              }
            }
            // Fan the report out to every coalesced follower: bitwise the
            // leader's payload, fresh coalesced/queue-wait provenance.
            auto inflight_node = shard.inflight.extract(request->key);
            if (!inflight_node.empty()) {
              const auto completed_at = std::chrono::steady_clock::now();
              for (const Shard::Follower& follower : inflight_node.mapped()) {
                SolveReport fanned = report;
                fanned.coalesced = true;
                fanned.queue_wait_seconds =
                    std::chrono::duration<double>(completed_at -
                                                  follower.attached)
                        .count();
                shard.pending.erase(follower.id);
                shard.completed.emplace(follower.id, std::move(fanned));
                shard.take_watchers(follower.id, fired);
                ++follower_count;
              }
            }
            shard.pending.erase(id);
            shard.completed.emplace(id, std::move(report));
            shard.take_watchers(id, fired);
          }
          completed_.add(1 + follower_count);
          // Followers received the same truncated payload, so they count.
          if (run_timed_out) timed_out_.add(1 + follower_count);
          // Warm starts count solver RUNS, so the leader counts once and
          // its followers never do.
          if (run_warm_started) warm_starts_.add();
          if (run_colgen_warm) colgen_warm_.add();
          if (request->traced) {
            // Two causally-linked spans per sampled solve: the queue wait
            // parented to the caller's span, the solver run parented to
            // the queue span. Followers are represented by their count in
            // the solve note only -- they never ran a solver.
            const std::uint64_t queue_span_id = obs::next_span_id();
            registry_.spans().record(obs::SpanRecord{
                request->inbound.trace_id, queue_span_id,
                request->inbound.parent_span_id, "service/queue",
                follower_count > 0
                    ? "followers=" + std::to_string(follower_count)
                    : "",
                request->start_unix, queue_wait});
            registry_.spans().record(obs::SpanRecord{
                request->inbound.trace_id, obs::next_span_id(),
                queue_span_id, "service/solve", solve_note,
                request->start_unix + queue_wait, run_wall});
            queue_wait_hist_.record(queue_wait);
            solve_hist_.record(run_wall);
          }
          shard.completed_cv.notify_all();
          // Outside every lock: a watcher may call straight back into
          // try_get (it usually does).
          for (const std::function<void()>& watcher : fired) watcher();
        },
        // The cost key separates the admission EMA by requested solver and
        // instance-size bucket (api/admission.hpp): a stream of cheap
        // greedy requests no longer prices a B&B request's admission.
        SolveScheduler::TaskOptions{
            budget_seconds,
            admission_cost_key(request->solver, instance.num_bidders())});
  } catch (...) {
    // Lost the race against shutdown(): the scheduler stopped accepting
    // after our accepting_ check. Roll the registration back so the
    // request is not stranded in pending (and stats stay consistent --
    // submitted_ has deliberately not ticked yet), then surface the
    // shutdown to the caller.
    shard.pending.erase(id);
    shard.inflight.erase(request->key);
    throw;
  }
  submitted_.add();

  if (admission == Admission::kRejected) {
    // The scheduler never took the task (AdmissionPolicy::kReject and an
    // unmeetable deadline): complete the request right here as rejected.
    shard.pending.erase(id);
    shard.inflight.erase(request->key);
    SolveReport report;
    report.admission = Admission::kRejected;
    report.error = detail::normalized_solver_error(
        "auction-service",
        "admission rejected: time budget of " +
            std::to_string(budget_seconds) +
            "s is unmeetable at the current queue depth");
    shard.completed.emplace(id, std::move(report));
    admission_rejected_.add();
    completed_.add();
    if (request->traced) {
      registry_.spans().record(obs::SpanRecord{
          request->inbound.trace_id, obs::next_span_id(),
          request->inbound.parent_span_id, "service/reject", "",
          request->start_unix, 0.0});
    }
    shard.completed_cv.notify_all();
    return id;
  }
  request->admission = admission;
  if (admission == Admission::kDegraded) admission_degraded_.add();
  return id;
}

SolveReport AuctionService::execute(const Request& request,
                                    const SolveOptions& options) {
  const AnyInstance view = request.view();
  const std::vector<std::string> chain =
      policy_->chain(request.solver, view, options);

  // The fallbacks counter means "request not served by its chain head":
  // it ticks exactly when the returned report's producer differs from
  // chain[0] -- an explicit single-solver chain that errors is the head
  // serving the request, not a fallback.
  const auto finish = [&](SolveReport report) {
    if (!chain.empty() && report.solver_selected != chain.front()) {
      fallbacks_.add();
    }
    return report;
  };

  SolveReport first_failure;
  bool have_failure = false;
  SolveReport best_timeout;
  bool have_timeout = false;

  for (const std::string& key : chain) {
    SolveReport report;
    try {
      report = make_solver(key)->solve(view, options);
    } catch (const std::exception& e) {
      // Unknown registry key (bad explicit request or policy bug).
      report.solver = key;
      report.error = detail::normalized_solver_error(key, e.what());
    }
    report.solver_selected = key;
    if (report.error.empty() && !report.timed_out) {
      return finish(std::move(report));
    }
    if (report.error.empty() && report.timed_out) {
      // Truncated but feasible: worth keeping if nothing finishes cleanly.
      if (!have_timeout || report.welfare > best_timeout.welfare) {
        best_timeout = std::move(report);
        have_timeout = true;
      }
    } else if (!have_failure) {
      first_failure = std::move(report);
      have_failure = true;
    }
  }
  // Nothing in the chain finished cleanly: prefer a feasible truncated
  // result over an error; otherwise surface the primary failure.
  if (have_timeout) return finish(std::move(best_timeout));
  if (have_failure) return finish(std::move(first_failure));
  SolveReport report;  // empty chain (policy bug): report it as such
  report.error = "auction-service: selection policy '" + policy_->name() +
                 "' produced an empty chain";
  return report;
}

SolveReport AuctionService::get(RequestId id) {
  Shard& shard = shard_of(id);
  std::unique_lock<std::mutex> lock(shard.mutex);
  shard.completed_cv.wait(lock, [&] {
    return shard.completed.contains(id) || !shard.pending.contains(id);
  });
  const auto it = shard.completed.find(id);
  if (it == shard.completed.end()) {
    throw std::invalid_argument(
        "AuctionService::get: unknown or already-claimed request id");
  }
  SolveReport report = std::move(it->second);
  shard.completed.erase(it);
  return report;
}

std::optional<SolveReport> AuctionService::try_get(RequestId id) {
  Shard& shard = shard_of(id);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.completed.find(id);
  if (it != shard.completed.end()) {
    SolveReport report = std::move(it->second);
    shard.completed.erase(it);
    return report;
  }
  if (shard.pending.contains(id)) return std::nullopt;
  throw std::invalid_argument(
      "AuctionService::try_get: unknown or already-claimed request id");
}

void AuctionService::watch(RequestId id, std::function<void()> callback) {
  const std::size_t index =
      static_cast<std::size_t>(id) & (static_cast<std::size_t>(kMaxShards) - 1);
  if (index < shards_.size()) {
    Shard& shard = *shards_[index];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.pending.contains(id) && !shard.completed.contains(id)) {
      shard.watchers[id].push_back(std::move(callback));
      return;
    }
  }
  // Already completed, claimed, or an id this service never issued: the
  // id is resolved as far as waiting goes -- fire inline and let the
  // callback's own claim surface whichever case it is.
  callback();
}

void AuctionService::drain() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->scheduler.drain();
  }
}

void AuctionService::shutdown() {
  accepting_.store(false);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->scheduler.shutdown();  // finishes queued + in-flight, then joins
  }
  if (!options_.snapshot_path.empty() && !snapshot_written_.exchange(true)) {
    (void)save_snapshot(options_.snapshot_path);
  }
}

ServiceStats AuctionService::stats() const {
  ServiceStats stats;
  stats.submitted = submitted_.value();
  stats.completed = completed_.value();
  stats.cache_hits = cache_hits_.value();
  stats.fallbacks = fallbacks_.value();
  stats.coalesced = coalesced_.value();
  stats.admission_degraded = admission_degraded_.value();
  stats.admission_rejected = admission_rejected_.value();
  stats.timed_out = timed_out_.value();
  stats.warm_starts = warm_starts_.value();
  stats.colgen_warm = colgen_warm_.value();
  stats.snapshot_restored = snapshot_restored_.value();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    stats.cache_entries += shard->cache.entries();
    stats.cache_bytes += shard->cache.bytes();
  }
  return stats;
}

obs::TelemetrySnapshot AuctionService::telemetry() const {
  // Refresh the point-in-time cache gauges, then export. Gauges are set
  // here rather than maintained inline because entry/byte levels already
  // live in the caches themselves -- exporting is the only reader.
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
  std::uint64_t bases = 0;
  std::uint64_t pools = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    entries += shard->cache.entries();
    bytes += shard->cache.bytes();
    bases += shard->bases.entries();
    pools += shard->pools.entries();
  }
  registry_.gauge("service.cache_entries")
      .set(static_cast<std::int64_t>(entries));
  registry_.gauge("service.cache_bytes").set(static_cast<std::int64_t>(bytes));
  registry_.gauge("service.basis_entries")
      .set(static_cast<std::int64_t>(bases));
  registry_.gauge("service.pool_entries").set(static_cast<std::int64_t>(pools));
  return registry_.snapshot();
}

}  // namespace ssa::service
