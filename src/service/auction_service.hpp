#pragma once
/// \file auction_service.hpp
/// The long-lived auction-serving layer over the solver registry: the
/// repeated, online allocation workload of secondary spectrum markets
/// (every auction round is one request) served by a sharded worker pool on
/// top of the same SolveScheduler core that drives solve_batch.
///
///     AuctionService service;                       // 4 shards by default
///     RequestId id = service.submit(instance);      // auto solver selection
///     SolveReport report = service.get(id);         // blocking claim
///
/// Per request the service:
///  1. copies the instance into the request (submit takes the usual
///     non-owning AnyInstance view but the service outlives its callers'
///     stack frames, so requests own their data);
///  2. fingerprints the request (canonical instance hash + solver request +
///     the result-relevant SolveOptions fields, support/fingerprint.hpp)
///     and routes it to the shard the fingerprint selects -- equal requests
///     always meet the same shard and therefore the same cache;
///  3. answers from the shard's LRU result cache on a fingerprint hit
///     (SolveReport::cache_hit = true, allocation bitwise-equal to the
///     originating run) or enqueues it on the shard's worker pool;
///  4. resolves the solver through the installed SelectionPolicy: an
///     explicit registry key, or "auto" with a per-policy fallback chain
///     that advances when a solver rejects the instance or times out
///     (SolveReport::solver_selected records the winner).
///
/// Results are deterministic for a fixed request stream regardless of the
/// shard count and worker counts: sharding and caching change placement and
/// latency, never the report payload (a cached report differs from a fresh
/// one only in the provenance/timing fields).

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/any_instance.hpp"
#include "api/solver.hpp"
#include "service/selection_policy.hpp"

namespace ssa::service {

/// Ticket for a submitted request; claimed exactly once with get/try_get.
using RequestId = std::uint64_t;

struct ServiceOptions {
  /// Independent shards (worker pool + result cache + lock each); clamped
  /// to [1, 256]. More shards = more cache/queue independence, not
  /// different results.
  int shards = 4;
  /// Worker threads per shard (>= 1). Each worker caps its solver's
  /// internal OpenMP loops at one thread, exactly like solve_batch workers
  /// -- request-level parallelism replaces loop-level parallelism.
  int threads_per_shard = 1;
  /// LRU byte budget per shard; 0 disables result caching.
  std::size_t cache_bytes_per_shard = std::size_t{8} << 20;
  /// Solver selection policy; null installs DefaultSelectionPolicy.
  SelectionPolicyPtr policy = nullptr;
};

/// Monotonic service counters (stats()); approximate under concurrency.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;   ///< includes cache hits
  std::uint64_t cache_hits = 0;
  std::uint64_t fallbacks = 0;   ///< requests not served by their chain head
  std::size_t cache_entries = 0;
  std::size_t cache_bytes = 0;
};

/// Sharded, cached, long-lived solving service. Thread-safe: submit/get
/// freely from any thread. Destruction performs a clean shutdown (finishes
/// everything in flight and queued, then joins).
class AuctionService {
 public:
  explicit AuctionService(ServiceOptions options = {});
  ~AuctionService();

  AuctionService(const AuctionService&) = delete;
  AuctionService& operator=(const AuctionService&) = delete;

  /// Enqueues one request. \p solver is a registry key or kAutoSolver; the
  /// instance is copied, so the caller's object may die immediately after.
  /// Throws std::runtime_error once shutdown() began and
  /// std::invalid_argument for an empty instance view.
  RequestId submit(const AnyInstance& instance,
                   const std::string& solver = kAutoSolver,
                   const SolveOptions& options = {});

  /// Blocks until \p id completes and claims its report (each id can be
  /// claimed once; a second claim throws std::invalid_argument).
  [[nodiscard]] SolveReport get(RequestId id);

  /// Non-blocking poll: claims and returns the report when done, nullopt
  /// while still queued/running. Unknown or already-claimed ids throw.
  [[nodiscard]] std::optional<SolveReport> try_get(RequestId id);

  /// Blocks until every submitted request has completed (the service stays
  /// open for new submissions).
  void drain();

  /// Stops accepting submissions, completes everything queued or in
  /// flight, joins the workers. Completed reports stay claimable through
  /// get/try_get. Idempotent.
  void shutdown();

  [[nodiscard]] int shards() const noexcept;
  [[nodiscard]] ServiceStats stats() const;

 private:
  struct Shard;
  struct Request;

  [[nodiscard]] Shard& shard_of(RequestId id) const;
  void enqueue(Shard& shard, RequestId id,
               const std::shared_ptr<Request>& request);
  [[nodiscard]] SolveReport execute(const Request& request);

  ServiceOptions options_;
  SelectionPolicyPtr policy_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_sequence_{1};
  std::atomic<bool> accepting_{true};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> fallbacks_{0};
};

}  // namespace ssa::service
