#pragma once
/// \file auction_service.hpp
/// The long-lived auction-serving layer over the solver registry: the
/// repeated, online allocation workload of secondary spectrum markets
/// (every auction round is one request) served by a sharded worker pool on
/// top of the same deadline-aware SolveScheduler core that drives
/// solve_batch.
///
///     AuctionService service;                       // 4 shards by default
///     RequestId id = service.submit(instance);      // auto solver selection
///     SolveReport report = service.get(id);         // blocking claim
///
/// Per request the service:
///  1. copies the instance into the request (submit takes the usual
///     non-owning AnyInstance view but the service outlives its callers'
///     stack frames, so requests own their data);
///  2. fingerprints the request (canonical instance hash + solver request +
///     the result-relevant SolveOptions fields, support/fingerprint.hpp)
///     and routes it to the shard the fingerprint selects -- equal requests
///     always meet the same shard and therefore the same cache;
///  3. answers from the shard's LRU result cache on a fingerprint hit
///     (SolveReport::cache_hit = true, allocation bitwise-equal to the
///     originating run), attaches to an identical request already queued or
///     running (coalescing, below), or enqueues it on the shard's worker
///     pool under the deadline/admission rules (below);
///  4. resolves the solver through the installed SelectionPolicy: an
///     explicit registry key, or "auto" with a per-policy fallback chain
///     that advances when a solver rejects the instance or times out
///     (SolveReport::solver_selected records the winner).
///
/// Deadlines and admission. A request's SolveOptions::time_budget_seconds
/// doubles as its effective deadline: submit time + budget. The shard queue
/// runs earliest-deadline-first (submission order tie-break; requests
/// without a budget run FIFO after every deadlined request), and the
/// scheduler's admission check projects the wait ahead of a new request
/// (queue depth x measured task cost); a request whose deadline is already
/// unmeetable is, per ServiceOptions::admission, either degraded -- it
/// still runs, but with its solver time budget clamped to the wall time
/// left before the deadline, so it truncates (and falls back down its
/// chain) instead of blowing the deadline further -- or rejected: never
/// executed, completed immediately with SolveReport::admission ==
/// Admission::kRejected and the reason in error. Degraded and rejected
/// requests are never cached (their payload depends on queue timing, not
/// content). ServiceOptions{QueuePolicy::kFifo, AdmissionPolicy::kAcceptAll}
/// reproduces the PR-3 behavior exactly.
///
/// Coalescing. Duplicate submissions of one fingerprint while the original
/// is still queued or in flight attach to it instead of recomputing: one
/// solver run (the leader's) completes every attached request with a
/// bitwise-identical payload. Only the provenance differs: the leader has
/// coalesced = false, followers have coalesced = true with
/// queue_wait_seconds holding their attach-to-completion latency (they
/// never enter a queue, and the leader's solve overlaps it -- see the
/// field doc in solver.hpp); cache_hit is false for all of them (the
/// cache never held the entry). Followers are always admitted --
/// attaching costs no worker time.
///
/// Warm starting. Each shard also keeps a small LRU of optimal simplex
/// bases keyed by the STRUCTURAL fingerprint of the instance (graph,
/// ordering, rho -- valuations excluded, support/fingerprint.hpp): a
/// value-perturbed resubmission of a known structure hands its LP the
/// previous optimal basis as a starting point instead of pivoting from
/// scratch (SolveReport::warm_started, ServiceStats::warm_starts). A
/// second LRU banks the generated column pools of "asymmetric-colgen"
/// solves under the same structural key (column_pool_cache.hpp): a churn
/// variant's restricted master starts from the donor's column set and
/// terminal basis instead of regrowing it oracle round by oracle round
/// (ServiceStats::colgen_warm). Purely latency optimizations: the LP
/// layer guarantees a warm-started solve produces the same payload as a
/// cold one (lp/simplex.hpp, asymmetric_colgen.hpp), and any stale or
/// incompatible hint falls back to a cold solve.
///
/// Persistence. With ServiceOptions::snapshot_path set, the constructor
/// restores the result caches from that file (a missing, truncated,
/// corrupt or version-mismatched snapshot is a clean cold start) and
/// shutdown() writes the merged caches back. Snapshot entries are
/// re-routed by the current shard count on restore, so layouts may change
/// between runs. See result_cache.hpp for the on-disk format and its
/// compatibility policy.
///
/// Results are deterministic for a fixed request stream regardless of the
/// shard count and worker counts as long as no request is degraded:
/// sharding, caching and coalescing change placement and latency, never
/// the report payload (a cached report differs from a fresh one only in
/// the provenance/timing fields; a degraded run depends on queue timing by
/// design, which is why it is never cached).

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/admission.hpp"
#include "api/any_instance.hpp"
#include "api/solver.hpp"
#include "obs/registry.hpp"
#include "service/selection_policy.hpp"
#include "support/fingerprint.hpp"

namespace ssa::service {

/// Ticket for a submitted request; claimed exactly once with get/try_get.
using RequestId = std::uint64_t;

struct ServiceOptions {
  /// Independent shards (worker pool + result cache + lock each); clamped
  /// to [1, 256]. More shards = more cache/queue independence, not
  /// different results.
  int shards = 4;
  /// Worker threads per shard (>= 1). Each worker caps its solver's
  /// internal OpenMP loops at one thread, exactly like solve_batch workers
  /// -- request-level parallelism replaces loop-level parallelism.
  int threads_per_shard = 1;
  /// LRU byte budget per shard; 0 disables result caching.
  std::size_t cache_bytes_per_shard = std::size_t{8} << 20;
  /// LRU entry budget of the per-shard basis cache (service/basis_cache.hpp):
  /// optimal simplex bases banked by STRUCTURAL fingerprint (valuations
  /// excluded) and replayed as warm-start hints for structurally identical
  /// requests. 0 disables warm starting. Purely a speed knob: a warm-started
  /// solve is payload-identical to the cold solve, so this never changes
  /// results -- and bases are not persisted with the result-cache snapshot
  /// (they start cold after a restore and refill from traffic).
  std::size_t basis_cache_entries_per_shard = 64;
  /// LRU entry budget of the per-shard column-pool cache
  /// (service/column_pool_cache.hpp): generated column pools of clean
  /// "asymmetric-colgen" solves banked by STRUCTURAL fingerprint and
  /// replayed to seed the restricted master of structurally identical
  /// requests. 0 disables pool warm starting. The same contract as the
  /// basis cache: a speed knob only, payload-invariant, never snapshotted.
  std::size_t column_pool_entries_per_shard = 64;
  /// Solver selection policy; null installs DefaultSelectionPolicy.
  SelectionPolicyPtr policy = nullptr;
  /// Shard queue order (see the file comment); kFifo is the baseline.
  QueuePolicy queue = QueuePolicy::kDeadline;
  /// Handling of requests whose deadline is unmeetable at submission.
  AdmissionPolicy admission = AdmissionPolicy::kDegrade;
  /// Result-cache persistence: restore from this file at construction,
  /// write it back on shutdown(). Empty disables persistence.
  std::string snapshot_path;
  /// Observability/test hook, called on a worker thread right before a
  /// request actually executes its solver chain -- never for cache hits,
  /// coalesced followers or rejected requests, so it counts real solves.
  /// Must be thread-safe; a slow hook stalls that worker (tests use this
  /// deliberately to hold a leader in flight).
  std::function<void(const Fingerprint&)> on_solve;
  /// Span/latency sampling period: every Nth submission records its span
  /// tree (service/queue, service/solve, ...) into the registry ring and
  /// its queue-wait/solve-wall latencies into the registry histograms.
  /// 1 = every request (the default), 0 = spans and latency histograms off
  /// entirely -- the metrics-disabled baseline of the E11 overhead bench.
  /// The COUNTERS are unaffected: they back stats() and always run (they
  /// are the same atomics the service always maintained). Purely
  /// observability: never changes any report payload.
  std::uint32_t span_sample_every = 1;
  /// Capacity of the registry's span ring (bounded; oldest overwritten).
  std::size_t span_capacity = obs::kDefaultSpanCapacity;
};

/// Monotonic service counters (stats()); approximate under concurrency.
/// A snapshot restore (ServiceOptions::snapshot_path) zeroes the traffic
/// counters (submitted/completed/cache_hits/coalesced): restored warmth
/// is visible as snapshot_restored + cache_entries, while hit rates are
/// always computed over THIS process life's traffic, never inherited.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;   ///< includes cache hits and rejections
  std::uint64_t cache_hits = 0;
  std::uint64_t fallbacks = 0;   ///< requests not served by their chain head
  std::uint64_t coalesced = 0;   ///< followers attached to an in-flight run
  std::uint64_t admission_degraded = 0;
  std::uint64_t admission_rejected = 0;
  /// Completed requests whose solver run was truncated by its time budget
  /// (SolveReport::timed_out; coalesced followers of a timed-out leader
  /// count too -- they received the truncated payload). The load harness
  /// reports timeout rates from this across every transport.
  std::uint64_t timed_out = 0;
  /// Solver runs that warm-started their LP from a banked basis
  /// (SolveReport::warm_started; leaders only -- cache hits and coalesced
  /// followers never run a solver, so they never count).
  std::uint64_t warm_starts = 0;
  /// Column-generation solver runs that seeded their restricted master
  /// from a banked column pool (SolveReport::warm_started with
  /// oracle_rounds > 0; a subset of warm_starts' discipline, counted
  /// separately so pool reuse is observable next to basis reuse).
  std::uint64_t colgen_warm = 0;
  /// Cache entries restored from the snapshot at construction. Note the
  /// snapshot carries result-cache entries only: basis caches always start
  /// cold after a restore (warm_starts builds back up from traffic).
  std::uint64_t snapshot_restored = 0;
  std::size_t cache_entries = 0;
  std::size_t cache_bytes = 0;
};

/// Sharded, cached, long-lived solving service. Thread-safe: submit/get
/// freely from any thread. Destruction performs a clean shutdown (finishes
/// everything in flight and queued, then joins).
class AuctionService {
 public:
  explicit AuctionService(ServiceOptions options = {});
  ~AuctionService();

  AuctionService(const AuctionService&) = delete;
  AuctionService& operator=(const AuctionService&) = delete;

  /// Enqueues one request. \p solver is a registry key or kAutoSolver; the
  /// instance is copied, so the caller's object may die immediately after.
  /// Throws std::runtime_error once shutdown() began and
  /// std::invalid_argument for an empty instance view.
  RequestId submit(const AnyInstance& instance,
                   const std::string& solver = kAutoSolver,
                   const SolveOptions& options = {});

  /// Blocks until \p id completes and claims its report (each id can be
  /// claimed once; a second claim throws std::invalid_argument).
  [[nodiscard]] SolveReport get(RequestId id);

  /// Non-blocking poll: claims and returns the report when done, nullopt
  /// while still queued/running. Unknown or already-claimed ids throw.
  [[nodiscard]] std::optional<SolveReport> try_get(RequestId id);

  /// Async completion hook: invokes \p callback exactly once when \p id
  /// leaves the pending state -- immediately (inline, before returning)
  /// when the id is already completed, claimed or unknown, otherwise on
  /// the worker thread that completes it. The callback claims via
  /// try_get/get itself (an unknown/claimed id then throws there, which
  /// is how the error surfaces). Multiple watchers per id are allowed;
  /// each fires once. This is what lets a wire server answer a BLOCKING
  /// get without parking a thread per waiting client
  /// (net/service_server.cpp). The callback runs under no service lock
  /// but must not block: it stalls a solve worker otherwise.
  void watch(RequestId id, std::function<void()> callback);

  /// Blocks until every submitted request has completed (the service stays
  /// open for new submissions).
  void drain();

  /// Stops accepting submissions, completes everything queued or in
  /// flight, joins the workers, and -- when ServiceOptions::snapshot_path
  /// is set -- writes the cache snapshot. Completed reports stay claimable
  /// through get/try_get. Idempotent.
  void shutdown();

  /// Writes the merged result-cache snapshot to \p path (mid-run
  /// checkpoint; shutdown() does this automatically when
  /// ServiceOptions::snapshot_path is set). Returns false when the file
  /// cannot be written.
  bool save_snapshot(const std::string& path) const;

  [[nodiscard]] int shards() const noexcept;

  /// The PR-3 counter block, now a VIEW over the metrics registry: every
  /// field reads the matching "service.*" counter, so the wire stats
  /// codec and its semantics are unchanged while the counters themselves
  /// live in the registry next to everything else (one source of truth).
  [[nodiscard]] ServiceStats stats() const;

  /// This service's metrics registry ("service.*" counters, the
  /// scheduler's gauge/verdicts, latency histograms, the span ring).
  /// Per-instance rather than process-global so in-process multi-backend
  /// topologies (tests, benches) see the same per-backend snapshots a
  /// multi-process deployment would.
  [[nodiscard]] obs::Registry& registry() noexcept { return registry_; }

  /// Point-in-time telemetry export: the registry snapshot with the
  /// point-in-time cache gauges ("service.cache_entries"/"..._bytes",
  /// "service.basis_entries", "service.pool_entries") refreshed first.
  /// The payload of the kGetTelemetry wire frame.
  [[nodiscard]] obs::TelemetrySnapshot telemetry() const;

 private:
  struct Shard;
  struct Request;

  [[nodiscard]] Shard& shard_of(RequestId id) const;
  [[nodiscard]] SolveReport execute(const Request& request,
                                    const SolveOptions& options);
  void restore_snapshot();

  ServiceOptions options_;
  SelectionPolicyPtr policy_;
  /// Declared before the shards: shard schedulers hold instrument handles
  /// into it, and before the counter references below.
  mutable obs::Registry registry_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_sequence_{1};
  std::atomic<bool> accepting_{true};
  std::atomic<bool> snapshot_written_{false};
  // Stats counters as registry instruments (striped atomics; exact).
  obs::Counter& submitted_;
  obs::Counter& completed_;
  obs::Counter& cache_hits_;
  obs::Counter& fallbacks_;
  obs::Counter& coalesced_;
  obs::Counter& admission_degraded_;
  obs::Counter& admission_rejected_;
  obs::Counter& timed_out_;
  obs::Counter& warm_starts_;
  obs::Counter& colgen_warm_;
  obs::Counter& snapshot_restored_;
  // Warm-hint observability beyond ServiceStats: how often the per-shard
  // basis/column-pool caches actually served a hint, and how many solver
  // chains ran at all.
  obs::Counter& basis_hits_;
  obs::Counter& pool_hits_;
  obs::Counter& solves_;
  // Sampled latency distributions (span_sample_every gates recording).
  obs::Histogram& queue_wait_hist_;
  obs::Histogram& solve_hist_;
};

}  // namespace ssa::service
