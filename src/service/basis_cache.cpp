#include "service/basis_cache.hpp"

#include <utility>

namespace ssa::service {

const BasisCacheEntry* BasisCache::lookup(const std::string& key) {
  const auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  order_.splice(order_.begin(), order_, it->second);
  return &it->second->entry;
}

void BasisCache::insert(const std::string& key, BasisCacheEntry entry) {
  if (max_entries_ == 0) return;
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->entry = std::move(entry);
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  if (map_.size() >= max_entries_) {
    map_.erase(order_.back().key);
    order_.pop_back();
  }
  order_.push_front(Node{key, std::move(entry)});
  map_.emplace(order_.front().key, order_.begin());
}

}  // namespace ssa::service
