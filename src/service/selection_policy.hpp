#pragma once
/// \file selection_policy.hpp
/// Pluggable solver selection for the AuctionService. A request names a
/// registry solver explicitly or asks for kAutoSolver; the installed policy
/// turns the request plus the instance's features (type, size, channel
/// count, weightedness) into an ordered fallback chain of registry keys.
/// The service runs the chain head; when a solver rejects the instance
/// (SolveReport::error, always "<solver-key>: <reason>") or reports
/// timed_out, the next key in the chain is tried.
///
/// Interplay with deadline-aware admission (auction_service.hpp): a
/// degraded request runs its chain with the solver time budget clamped to
/// the wall time left before its deadline, so budget-aware heads truncate
/// quickly and the chain's never-timing-out greedy tail serves -- chains
/// should therefore always end in a solver that ignores the budget.
/// Policies see the effective (possibly clamped) options.

#include <memory>
#include <string>
#include <vector>

#include "api/any_instance.hpp"
#include "api/solver.hpp"

namespace ssa::service {

/// Request sentinel: let the policy pick the solver.
inline constexpr const char* kAutoSolver = "auto";

/// Strategy interface mapping a request onto a fallback chain.
class SelectionPolicy {
 public:
  virtual ~SelectionPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Ordered, non-empty fallback chain for \p requested on \p instance;
  /// chain[0] is the primary. Every entry must be a registered solver key.
  [[nodiscard]] virtual std::vector<std::string> chain(
      const std::string& requested, const AnyInstance& instance,
      const SolveOptions& options) const = 0;
};

using SelectionPolicyPtr = std::shared_ptr<const SelectionPolicy>;

/// The built-in default:
///  - an explicit registry key runs exactly as requested (no fallback;
///    operators asking for one algorithm get that algorithm or its error);
///  - kAutoSolver picks by instance features:
///      symmetric, small (n and k within exact reach)  -> exact first;
///      symmetric, k = 1 and unweighted                -> local-ratio-k1
///                                                        (factor rho) first;
///      symmetric otherwise                            -> lp-rounding first;
///      asymmetric, small                              -> asymmetric-exact
///                                                        first;
///      asymmetric, unweighted                         -> asymmetric-lp-
///                                                        rounding first;
///      asymmetric, weighted                           -> greedy only (the
///                                                        Section 6 rounding
///                                                        rejects weighted
///                                                        per-channel
///                                                        graphs);
///    each chain degrades to the greedy baselines, which accept anything of
///    their instance type and never time out.
class DefaultSelectionPolicy final : public SelectionPolicy {
 public:
  /// Largest instance the auto policy hands to the exact B&B solvers.
  struct ExactReach {
    std::size_t max_bidders = 14;
    int max_channels = 4;
  };

  DefaultSelectionPolicy() = default;
  explicit DefaultSelectionPolicy(ExactReach reach) : reach_(reach) {}

  [[nodiscard]] std::string name() const override { return "default"; }

  [[nodiscard]] std::vector<std::string> chain(
      const std::string& requested, const AnyInstance& instance,
      const SolveOptions& options) const override;

 private:
  ExactReach reach_{};
};

}  // namespace ssa::service
