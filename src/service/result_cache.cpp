#include "service/result_cache.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <string>

namespace ssa::service {

std::size_t estimated_report_bytes(const SolveReport& report) {
  std::size_t bytes = sizeof(SolveReport);
  bytes += report.allocation.bundles.capacity() * sizeof(Bundle);
  bytes += report.solver.size() + report.params.size() + report.error.size() +
           report.solver_selected.size();
  if (report.fractional) {
    bytes += report.fractional->columns.capacity() * sizeof(FractionalColumn);
  }
  if (report.mechanism) {
    const MechanismOutcome& m = *report.mechanism;
    bytes += m.vcg.optimum.columns.capacity() * sizeof(FractionalColumn);
    bytes += (m.vcg.bidder_value.capacity() + m.vcg.payments.capacity() +
              m.payments.capacity() + m.expected_payments.capacity()) *
             sizeof(double);
    for (const DecompositionEntry& entry : m.decomposition.entries) {
      bytes += sizeof(DecompositionEntry) +
               entry.allocation.bundles.capacity() * sizeof(Bundle);
    }
  }
  return bytes;
}

std::optional<SolveReport> ResultCache::lookup(const Fingerprint& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->report;
}

void ResultCache::insert(const Fingerprint& key, SolveReport report) {
  if (byte_budget_ == 0) return;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh in place (same key implies an equivalent report; keep the
    // newer one anyway so provenance fields stay current).
    bytes_ -= it->second->bytes;
    it->second->bytes = estimated_report_bytes(report);
    bytes_ += it->second->bytes;
    it->second->report = std::move(report);
    lru_.splice(lru_.begin(), lru_, it->second);
    evict_to_budget();
    return;
  }
  const std::size_t cost = estimated_report_bytes(report);
  if (cost > byte_budget_) return;  // would evict everything and still miss
  lru_.push_front(Entry{key, std::move(report), cost});
  index_.emplace(key, lru_.begin());
  bytes_ += cost;
  evict_to_budget();
}

void ResultCache::evict_to_budget() {
  while (bytes_ > byte_budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

// ---------------------------------------------------------------- snapshots

namespace {

/// First 8 bytes of every snapshot file.
constexpr char kSnapshotMagic[8] = {'S', 'S', 'A', 'R', 'C', 'S', 'N', 'P'};

/// Upper bound on any serialized count (entries, vector sizes, string
/// lengths). Far above anything a real cache holds; its only job is to
/// stop a corrupt length field from driving a multi-gigabyte allocation.
constexpr std::uint64_t kMaxCount = std::uint64_t{1} << 26;

/// Scalar-by-scalar binary writer (host byte order; see the header's
/// format notes).
class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  void u8(std::uint8_t value) { raw(&value, sizeof value); }
  void u32(std::uint32_t value) { raw(&value, sizeof value); }
  void u64(std::uint64_t value) { raw(&value, sizeof value); }
  void f64(double value) { raw(&value, sizeof value); }
  void boolean(bool value) { u8(value ? 1 : 0); }

  void str(const std::string& text) {
    u64(text.size());
    raw(text.data(), text.size());
  }

  template <typename T, typename Fn>
  void vec(const std::vector<T>& values, Fn&& element) {
    u64(values.size());
    for (const T& value : values) element(value);
  }

 private:
  void raw(const void* data, std::size_t size) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(size));
  }

  std::ostream& out_;
};

/// Bounds-checked reader: any short read or implausible size latches
/// failed() and every subsequent read returns a zero value, so parsers can
/// run straight through and check once at the end.
class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  [[nodiscard]] bool failed() const { return failed_; }

  std::uint8_t u8() { return scalar<std::uint8_t>(); }
  std::uint32_t u32() { return scalar<std::uint32_t>(); }
  std::uint64_t u64() { return scalar<std::uint64_t>(); }
  double f64() { return scalar<double>(); }
  bool boolean() { return u8() != 0; }

  std::string str() {
    const std::uint64_t size = count();
    std::string text(static_cast<std::size_t>(size), '\0');
    raw(text.data(), text.size());
    if (failed_) return {};
    return text;
  }

  /// A size field sanity-capped at kMaxCount.
  std::uint64_t count() {
    const std::uint64_t value = u64();
    if (value > kMaxCount) failed_ = true;
    return failed_ ? 0 : value;
  }

  template <typename T, typename Fn>
  std::vector<T> vec(Fn&& element) {
    const std::uint64_t size = count();
    std::vector<T> values;
    // Deliberately no reserve(size): the count came off disk, and a
    // corrupt value below the kMaxCount sanity cap could still drive a
    // huge speculative allocation. Growing as elements actually parse
    // bounds memory by the real stream length (a short read fails fast).
    for (std::uint64_t i = 0; i < size && !failed_; ++i) {
      values.push_back(element());
    }
    return values;
  }

 private:
  template <typename T>
  T scalar() {
    T value{};
    raw(&value, sizeof value);
    return failed_ ? T{} : value;
  }

  void raw(void* data, std::size_t size) {
    if (failed_) return;
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
    if (static_cast<std::size_t>(in_.gcount()) != size) failed_ = true;
  }

  std::istream& in_;
  bool failed_ = false;
};

void write_allocation(Writer& writer, const Allocation& allocation) {
  writer.vec(allocation.bundles,
             [&](Bundle bundle) { writer.u32(bundle); });
}

Allocation read_allocation(Reader& reader) {
  Allocation allocation;
  allocation.bundles =
      reader.vec<Bundle>([&] { return static_cast<Bundle>(reader.u32()); });
  return allocation;
}

void write_fractional(Writer& writer, const FractionalSolution& fractional) {
  writer.u8(static_cast<std::uint8_t>(fractional.status));
  writer.f64(fractional.objective);
  writer.vec(fractional.columns, [&](const FractionalColumn& column) {
    writer.u32(static_cast<std::uint32_t>(column.bidder));
    writer.u32(column.bundle);
    writer.f64(column.x);
  });
}

FractionalSolution read_fractional(Reader& reader) {
  FractionalSolution fractional;
  fractional.status = static_cast<lp::SolveStatus>(reader.u8());
  fractional.objective = reader.f64();
  fractional.columns = reader.vec<FractionalColumn>([&] {
    FractionalColumn column;
    column.bidder = static_cast<int>(reader.u32());
    column.bundle = static_cast<Bundle>(reader.u32());
    column.x = reader.f64();
    return column;
  });
  return fractional;
}

void write_doubles(Writer& writer, const std::vector<double>& values) {
  writer.vec(values, [&](double value) { writer.f64(value); });
}

std::vector<double> read_doubles(Reader& reader) {
  return reader.vec<double>([&] { return reader.f64(); });
}

void write_mechanism(Writer& writer, const MechanismOutcome& outcome) {
  write_fractional(writer, outcome.vcg.optimum);
  write_doubles(writer, outcome.vcg.bidder_value);
  write_doubles(writer, outcome.vcg.payments);
  writer.vec(outcome.decomposition.entries,
             [&](const DecompositionEntry& entry) {
               write_allocation(writer, entry.allocation);
               writer.f64(entry.probability);
             });
  writer.f64(outcome.decomposition.alpha);
  writer.f64(outcome.decomposition.residual);
  writer.u32(static_cast<std::uint32_t>(outcome.decomposition.rounds));
  writer.u32(
      static_cast<std::uint32_t>(outcome.decomposition.columns_generated));
  writer.boolean(outcome.used_colgen);
  writer.u64(outcome.sampled_index);
  write_allocation(writer, outcome.allocation);
  write_doubles(writer, outcome.payments);
  write_doubles(writer, outcome.expected_payments);
}

MechanismOutcome read_mechanism(Reader& reader) {
  MechanismOutcome outcome;
  outcome.vcg.optimum = read_fractional(reader);
  outcome.vcg.bidder_value = read_doubles(reader);
  outcome.vcg.payments = read_doubles(reader);
  outcome.decomposition.entries = reader.vec<DecompositionEntry>([&] {
    DecompositionEntry entry;
    entry.allocation = read_allocation(reader);
    entry.probability = reader.f64();
    return entry;
  });
  outcome.decomposition.alpha = reader.f64();
  outcome.decomposition.residual = reader.f64();
  outcome.decomposition.rounds = static_cast<int>(reader.u32());
  outcome.decomposition.columns_generated = static_cast<int>(reader.u32());
  outcome.used_colgen = reader.boolean();
  outcome.sampled_index = static_cast<std::size_t>(reader.u64());
  outcome.allocation = read_allocation(reader);
  outcome.payments = read_doubles(reader);
  outcome.expected_payments = read_doubles(reader);
  return outcome;
}

void write_report(Writer& writer, const SolveReport& report) {
  writer.str(report.solver);
  writer.str(report.params);
  write_allocation(writer, report.allocation);
  writer.f64(report.welfare);
  writer.boolean(report.feasible);
  writer.f64(report.guarantee);
  writer.f64(report.factor);
  writer.boolean(report.lp_upper_bound.has_value());
  if (report.lp_upper_bound) writer.f64(*report.lp_upper_bound);
  writer.boolean(report.exact);
  writer.boolean(report.timed_out);
  writer.f64(report.wall_time_seconds);
  writer.str(report.error);
  writer.str(report.solver_selected);
  // Provenance: snapshots only ever hold clean, non-degraded, fresh runs,
  // but the fields are written anyway so the layout stays field-for-field
  // with SolveReport (one less invariant for the version bump checklist).
  writer.boolean(report.cache_hit);
  writer.f64(report.queue_wait_seconds);
  writer.u8(static_cast<std::uint8_t>(report.admission));
  writer.boolean(report.coalesced);
  writer.boolean(report.fractional.has_value());
  if (report.fractional) write_fractional(writer, *report.fractional);
  writer.boolean(report.mechanism.has_value());
  if (report.mechanism) write_mechanism(writer, *report.mechanism);
}

SolveReport read_report(Reader& reader) {
  SolveReport report;
  report.solver = reader.str();
  report.params = reader.str();
  report.allocation = read_allocation(reader);
  report.welfare = reader.f64();
  report.feasible = reader.boolean();
  report.guarantee = reader.f64();
  report.factor = reader.f64();
  if (reader.boolean()) report.lp_upper_bound = reader.f64();
  report.exact = reader.boolean();
  report.timed_out = reader.boolean();
  report.wall_time_seconds = reader.f64();
  report.error = reader.str();
  report.solver_selected = reader.str();
  report.cache_hit = reader.boolean();
  report.queue_wait_seconds = reader.f64();
  report.admission = static_cast<Admission>(reader.u8());
  report.coalesced = reader.boolean();
  if (reader.boolean()) report.fractional = read_fractional(reader);
  if (reader.boolean()) report.mechanism = read_mechanism(reader);
  return report;
}

}  // namespace

void append_snapshot_entries(const ResultCache& cache,
                             std::vector<SnapshotEntry>& entries) {
  cache.for_each_lru_first(
      [&](const Fingerprint& key, const SolveReport& report) {
        entries.push_back(SnapshotEntry{key, report});
      });
}

void write_snapshot(std::ostream& out,
                    const std::vector<SnapshotEntry>& entries) {
  Writer writer(out);
  out.write(kSnapshotMagic, sizeof kSnapshotMagic);
  writer.u32(ResultCache::kSnapshotVersion);
  writer.u64(entries.size());
  for (const SnapshotEntry& entry : entries) {
    writer.u64(entry.key.hi);
    writer.u64(entry.key.lo);
    write_report(writer, entry.report);
  }
}

std::optional<std::vector<SnapshotEntry>> read_snapshot(std::istream& in) {
  char magic[sizeof kSnapshotMagic] = {};
  in.read(magic, sizeof magic);
  if (static_cast<std::size_t>(in.gcount()) != sizeof magic ||
      std::memcmp(magic, kSnapshotMagic, sizeof magic) != 0) {
    return std::nullopt;
  }
  Reader reader(in);
  if (reader.u32() != ResultCache::kSnapshotVersion) return std::nullopt;
  const std::uint64_t total = reader.count();
  if (reader.failed()) return std::nullopt;  // implausible entry count
  // No reserve(total): see Reader::vec -- a corrupt entry count must not
  // allocate ahead of what the stream actually holds.
  std::vector<SnapshotEntry> entries;
  for (std::uint64_t i = 0; i < total; ++i) {
    SnapshotEntry entry;
    entry.key.hi = reader.u64();
    entry.key.lo = reader.u64();
    entry.report = read_report(reader);
    if (reader.failed()) return std::nullopt;
    // Enum fields came off disk: reject values outside their ranges
    // instead of carrying poisoned enums into the service.
    if (static_cast<std::uint8_t>(entry.report.admission) >
        static_cast<std::uint8_t>(Admission::kRejected)) {
      return std::nullopt;
    }
    const auto status_in_range = [](lp::SolveStatus status) {
      return static_cast<std::uint8_t>(status) <=
             static_cast<std::uint8_t>(lp::SolveStatus::kTimeLimit);
    };
    if (entry.report.fractional &&
        !status_in_range(entry.report.fractional->status)) {
      return std::nullopt;
    }
    if (entry.report.mechanism &&
        !status_in_range(entry.report.mechanism->vcg.optimum.status)) {
      return std::nullopt;
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace ssa::service
