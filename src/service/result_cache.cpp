#include "service/result_cache.hpp"

#include <cstring>
#include <istream>
#include <iterator>
#include <ostream>
#include <string>

#include "wire/codec.hpp"

namespace ssa::service {

std::size_t estimated_report_bytes(const SolveReport& report) {
  std::size_t bytes = sizeof(SolveReport);
  bytes += report.allocation.bundles.capacity() * sizeof(Bundle);
  bytes += report.solver.size() + report.params.size() + report.error.size() +
           report.solver_selected.size();
  if (report.fractional) {
    bytes += report.fractional->columns.capacity() * sizeof(FractionalColumn);
  }
  if (report.mechanism) {
    const MechanismOutcome& m = *report.mechanism;
    bytes += m.vcg.optimum.columns.capacity() * sizeof(FractionalColumn);
    bytes += (m.vcg.bidder_value.capacity() + m.vcg.payments.capacity() +
              m.payments.capacity() + m.expected_payments.capacity()) *
             sizeof(double);
    for (const DecompositionEntry& entry : m.decomposition.entries) {
      bytes += sizeof(DecompositionEntry) +
               entry.allocation.bundles.capacity() * sizeof(Bundle);
    }
  }
  return bytes;
}

std::optional<SolveReport> ResultCache::lookup(const Fingerprint& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->report;
}

void ResultCache::insert(const Fingerprint& key, SolveReport report) {
  if (byte_budget_ == 0) return;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh in place (same key implies an equivalent report; keep the
    // newer one anyway so provenance fields stay current).
    bytes_ -= it->second->bytes;
    it->second->bytes = estimated_report_bytes(report);
    bytes_ += it->second->bytes;
    it->second->report = std::move(report);
    lru_.splice(lru_.begin(), lru_, it->second);
    evict_to_budget();
    return;
  }
  const std::size_t cost = estimated_report_bytes(report);
  if (cost > byte_budget_) return;  // would evict everything and still miss
  lru_.push_front(Entry{key, std::move(report), cost});
  index_.emplace(key, lru_.begin());
  bytes_ += cost;
  evict_to_budget();
}

void ResultCache::evict_to_budget() {
  while (bytes_ > byte_budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

// ---------------------------------------------------------------- snapshots
// The report byte layout itself lives in wire/codec.cpp now -- one codec
// shared by the snapshot files and the network wire protocol, so the two
// formats can never drift apart field by field. This file only owns the
// snapshot envelope (magic, kSnapshotVersion, entry list).

namespace {

/// First 8 bytes of every snapshot file.
constexpr char kSnapshotMagic[8] = {'S', 'S', 'A', 'R', 'C', 'S', 'N', 'P'};

}  // namespace

void append_snapshot_entries(const ResultCache& cache,
                             std::vector<SnapshotEntry>& entries) {
  cache.for_each_lru_first(
      [&](const Fingerprint& key, const SolveReport& report) {
        entries.push_back(SnapshotEntry{key, report});
      });
}

void write_snapshot(std::ostream& out,
                    const std::vector<SnapshotEntry>& entries) {
  wire::Writer writer;
  writer.bytes(std::string_view(kSnapshotMagic, sizeof kSnapshotMagic));
  writer.u32(ResultCache::kSnapshotVersion);
  writer.u64(entries.size());
  for (const SnapshotEntry& entry : entries) {
    writer.u64(entry.key.hi);
    writer.u64(entry.key.lo);
    wire::write_report(writer, entry.report);
  }
  const std::string& buffer = writer.buffer();
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
}

std::optional<std::vector<SnapshotEntry>> read_snapshot(std::istream& in) {
  // Fail fast on the envelope BEFORE loading anything: a wrong or
  // foreign file pointed at snapshot_path must cost a 12-byte read, not
  // a whole-file slurp into RAM.
  char header[sizeof kSnapshotMagic + sizeof(std::uint32_t)] = {};
  in.read(header, sizeof header);
  if (static_cast<std::size_t>(in.gcount()) != sizeof header ||
      std::memcmp(header, kSnapshotMagic, sizeof kSnapshotMagic) != 0) {
    return std::nullopt;
  }
  std::uint32_t version = 0;
  std::memcpy(&version, header + sizeof kSnapshotMagic, sizeof version);
  if (version != ResultCache::kSnapshotVersion) return std::nullopt;
  // The envelope checks out: load the body and parse with the shared
  // bounds-checked reader. Any anomaly -- truncation, implausible sizes,
  // out-of-range enums (wire::read_report validates them), trailing
  // garbage -- is "no snapshot" and the caller cold-starts.
  const std::string data(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>{});
  wire::Reader reader(data);
  const std::uint64_t total = reader.count();
  if (reader.failed()) return std::nullopt;  // implausible entry count
  // No reserve(total): a corrupt entry count must not allocate ahead of
  // what the buffer actually holds (see wire::Reader::vec).
  std::vector<SnapshotEntry> entries;
  for (std::uint64_t i = 0; i < total; ++i) {
    SnapshotEntry entry;
    entry.key.hi = reader.u64();
    entry.key.lo = reader.u64();
    entry.report = wire::read_report(reader);
    if (reader.failed()) return std::nullopt;
    entries.push_back(std::move(entry));
  }
  if (!reader.exhausted()) return std::nullopt;  // trailing garbage
  return entries;
}

}  // namespace ssa::service
