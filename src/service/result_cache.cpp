#include "service/result_cache.hpp"

namespace ssa::service {

std::size_t estimated_report_bytes(const SolveReport& report) {
  std::size_t bytes = sizeof(SolveReport);
  bytes += report.allocation.bundles.capacity() * sizeof(Bundle);
  bytes += report.solver.size() + report.params.size() + report.error.size() +
           report.solver_selected.size();
  if (report.fractional) {
    bytes += report.fractional->columns.capacity() * sizeof(FractionalColumn);
  }
  if (report.mechanism) {
    const MechanismOutcome& m = *report.mechanism;
    bytes += m.vcg.optimum.columns.capacity() * sizeof(FractionalColumn);
    bytes += (m.vcg.bidder_value.capacity() + m.vcg.payments.capacity() +
              m.payments.capacity() + m.expected_payments.capacity()) *
             sizeof(double);
    for (const DecompositionEntry& entry : m.decomposition.entries) {
      bytes += sizeof(DecompositionEntry) +
               entry.allocation.bundles.capacity() * sizeof(Bundle);
    }
  }
  return bytes;
}

std::optional<SolveReport> ResultCache::lookup(const Fingerprint& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->report;
}

void ResultCache::insert(const Fingerprint& key, SolveReport report) {
  if (byte_budget_ == 0) return;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh in place (same key implies an equivalent report; keep the
    // newer one anyway so provenance fields stay current).
    bytes_ -= it->second->bytes;
    it->second->bytes = estimated_report_bytes(report);
    bytes_ += it->second->bytes;
    it->second->report = std::move(report);
    lru_.splice(lru_.begin(), lru_, it->second);
    evict_to_budget();
    return;
  }
  const std::size_t cost = estimated_report_bytes(report);
  if (cost > byte_budget_) return;  // would evict everything and still miss
  lru_.push_front(Entry{key, std::move(report), cost});
  index_.emplace(key, lru_.begin());
  bytes_ += cost;
  evict_to_budget();
}

void ResultCache::evict_to_budget() {
  while (bytes_ > byte_budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

}  // namespace ssa::service
