#pragma once
/// \file result_cache.hpp
/// Per-shard LRU result cache of the AuctionService, keyed by the canonical
/// request fingerprint (instance content + solver request + options, see
/// support/fingerprint.hpp). Each shard owns one ResultCache guarded by the
/// shard's own mutex, so cache traffic never takes a service-global lock.
/// Eviction is by byte budget: every stored SolveReport is costed with
/// estimated_report_bytes and least-recently-used entries are dropped until
/// the shard is back under budget.
///
/// Snapshot format (write_snapshot/read_snapshot): a versioned binary dump
/// of every cached (fingerprint, report) pair so a service restart resumes
/// with its prior hit rate. Layout: an 8-byte magic, a u32
/// kSnapshotVersion, a u64 entry count, then the entries least-recently
/// used first (replaying the file in order through insert() reproduces the
/// recency order). The per-report byte layout is the shared codec of
/// wire/codec.hpp -- the same bytes the network wire protocol ships -- so
/// the two formats cannot drift apart; this file owns only the snapshot
/// envelope. Readers treat ANY anomaly (wrong magic, other version,
/// truncation, implausible sizes) as "no snapshot" and return nullopt, so
/// a corrupt file costs a cold start, never a crash. Bump kSnapshotVersion
/// whenever the serialized SolveReport layout or the fingerprint scheme
/// changes (tests/test_fingerprint.cpp pins golden fingerprint values and
/// tests/test_wire.cpp pins golden report bytes, so silent drift of either
/// fails loudly).
///
/// The snapshot carries RESULTS only. Warm-start bases (the per-shard
/// BasisCache, service/basis_cache.hpp) are deliberately excluded: a basis
/// is a runtime hint tied to this build's simplex internals, worthless if
/// wrong and cheap to regenerate, so after a restore the basis caches
/// start cold and the first solve of each structure re-banks one
/// (tests/test_service.cpp pins that contract).

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/solver.hpp"
#include "support/fingerprint.hpp"

namespace ssa::service {

/// Approximate heap footprint of a stored report (allocation, strings, LP
/// columns, mechanism payload). Used for the cache byte budget; exact
/// accounting is not required, consistent accounting is.
[[nodiscard]] std::size_t estimated_report_bytes(const SolveReport& report);

/// Single-shard LRU cache. NOT thread-safe: the owning shard serializes
/// access (one mutex per shard, by design -- see the file comment).
class ResultCache {
 public:
  /// Schema version of the snapshot files; see the file comment for when
  /// to bump it. History: 2 added SolveReport::warm_started/pivots to the
  /// shared report codec; 3 added SolveReport::oracle_rounds/
  /// columns_generated.
  static constexpr std::uint32_t kSnapshotVersion = 3;

  /// \p byte_budget 0 disables caching entirely (every lookup misses).
  explicit ResultCache(std::size_t byte_budget) : byte_budget_(byte_budget) {}

  /// Returns the cached report for \p key and marks it most recently used.
  [[nodiscard]] std::optional<SolveReport> lookup(const Fingerprint& key);

  /// Inserts (or refreshes) \p report under \p key, then evicts LRU entries
  /// until the byte budget holds. A report larger than the whole budget is
  /// not cached.
  void insert(const Fingerprint& key, SolveReport report);

  /// Visits every entry least-recently used first (snapshot order).
  template <typename Fn>
  void for_each_lru_first(Fn&& fn) const {
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      fn(it->key, it->report);
    }
  }

  [[nodiscard]] std::size_t entries() const noexcept { return index_.size(); }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t byte_budget() const noexcept {
    return byte_budget_;
  }

 private:
  struct Entry {
    Fingerprint key;
    SolveReport report;
    std::size_t bytes = 0;
  };

  void evict_to_budget();

  std::size_t byte_budget_;
  std::size_t bytes_ = 0;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<Fingerprint, std::list<Entry>::iterator> index_;
};

/// One (key, report) pair of a snapshot.
struct SnapshotEntry {
  Fingerprint key;
  SolveReport report;
};

/// Copies every entry of \p cache, least-recently used first (snapshot
/// order: replaying through insert() reproduces the recency), onto
/// \p entries. Callers snapshot under their own locks, then serialize the
/// copies with write_snapshot after releasing them -- the disk write must
/// never run inside a shard lock.
void append_snapshot_entries(const ResultCache& cache,
                             std::vector<SnapshotEntry>& entries);

/// Writes \p entries as one snapshot stream (see the format notes in the
/// file comment).
void write_snapshot(std::ostream& out,
                    const std::vector<SnapshotEntry>& entries);

/// Parses a snapshot stream. Returns nullopt -- never throws, never
/// returns a partial prefix -- on wrong magic, version mismatch,
/// truncation or any other corruption: the caller cold-starts.
[[nodiscard]] std::optional<std::vector<SnapshotEntry>> read_snapshot(
    std::istream& in);

}  // namespace ssa::service
