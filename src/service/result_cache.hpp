#pragma once
/// \file result_cache.hpp
/// Per-shard LRU result cache of the AuctionService, keyed by the canonical
/// request fingerprint (instance content + solver request + options, see
/// support/fingerprint.hpp). Each shard owns one ResultCache guarded by the
/// shard's own mutex, so cache traffic never takes a service-global lock.
/// Eviction is by byte budget: every stored SolveReport is costed with
/// estimated_report_bytes and least-recently-used entries are dropped until
/// the shard is back under budget.

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "api/solver.hpp"
#include "support/fingerprint.hpp"

namespace ssa::service {

/// Approximate heap footprint of a stored report (allocation, strings, LP
/// columns, mechanism payload). Used for the cache byte budget; exact
/// accounting is not required, consistent accounting is.
[[nodiscard]] std::size_t estimated_report_bytes(const SolveReport& report);

/// Single-shard LRU cache. NOT thread-safe: the owning shard serializes
/// access (one mutex per shard, by design -- see the file comment).
class ResultCache {
 public:
  /// \p byte_budget 0 disables caching entirely (every lookup misses).
  explicit ResultCache(std::size_t byte_budget) : byte_budget_(byte_budget) {}

  /// Returns the cached report for \p key and marks it most recently used.
  [[nodiscard]] std::optional<SolveReport> lookup(const Fingerprint& key);

  /// Inserts (or refreshes) \p report under \p key, then evicts LRU entries
  /// until the byte budget holds. A report larger than the whole budget is
  /// not cached.
  void insert(const Fingerprint& key, SolveReport report);

  [[nodiscard]] std::size_t entries() const noexcept { return index_.size(); }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t byte_budget() const noexcept {
    return byte_budget_;
  }

 private:
  struct Entry {
    Fingerprint key;
    SolveReport report;
    std::size_t bytes = 0;
  };

  void evict_to_budget();

  std::size_t byte_budget_;
  std::size_t bytes_ = 0;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<Fingerprint, std::list<Entry>::iterator> index_;
};

}  // namespace ssa::service
