#include "service/column_pool_cache.hpp"

#include <utility>

namespace ssa::service {

const AsymmetricColumnPool* ColumnPoolCache::lookup(const std::string& key) {
  const auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  order_.splice(order_.begin(), order_, it->second);
  return &it->second->pool;
}

void ColumnPoolCache::insert(const std::string& key, AsymmetricColumnPool pool) {
  if (max_entries_ == 0) return;
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->pool = std::move(pool);
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  if (map_.size() >= max_entries_) {
    map_.erase(order_.back().key);
    order_.pop_back();
  }
  order_.push_front(Node{key, std::move(pool)});
  map_.emplace(order_.front().key, order_.begin());
}

}  // namespace ssa::service
