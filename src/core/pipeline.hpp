#pragma once
/// \file pipeline.hpp
/// The LP + rounding algorithm body: solve the LP relaxation (choosing the
/// explicit or the demand-oracle path automatically), round it with the
/// right algorithm for the instance (Algorithm 1, or 2 + 3), and report
/// what happened. Downstream callers reach this through the registry as
/// make_solver("lp-rounding") (api/api.hpp) or through the AuctionService;
/// solve_pipeline is the internal engine behind that adapter. The old
/// deprecated run_auction entry point is gone.

#include <cstdint>

#include "core/auction_lp.hpp"
#include "core/instance.hpp"

namespace ssa {

struct PipelineOptions {
  int rounding_repetitions = 64;  ///< Monte-Carlo passes (best is kept)
  bool derandomize = false;       ///< add a pairwise-independent sweep
  std::uint64_t seed = 1;
  /// Force the demand-oracle LP even for small k (0 = auto: colgen iff
  /// k > explicit_limit).
  bool force_column_generation = false;
  int explicit_limit = 10;  ///< largest k solved by explicit enumeration
  /// Soft wall-time target in seconds (0 = unlimited), enforced
  /// cooperatively: the LP polls it between simplex pivots and the
  /// rounding loop between repetitions. An exhausted budget truncates the
  /// run and sets PipelineResult::timed_out instead of failing silently.
  double time_budget_seconds = 0.0;
  /// Warm-start side channel for the explicit LP path (null = cold).
  /// Runtime-only: never serialized, never part of a cache key -- safe
  /// precisely because the payload is warm/cold-invariant (lp/simplex.hpp).
  /// Ignored by the column-generation path, which has no stable structural
  /// column numbering to key a basis on.
  LpWarmStart* warm = nullptr;
};

struct PipelineResult {
  FractionalSolution fractional;  ///< LP optimum (upper bound on welfare)
  Allocation allocation;          ///< feasible allocation
  double welfare = 0.0;
  double guarantee = 0.0;  ///< the proven lower bound b*/factor for this run
  /// The paper's worst-case factor for this instance: 8 sqrt(k) rho
  /// (Theorem 3) unweighted, 16 sqrt(k) rho ceil(log n) (Lemmas 7+8)
  /// weighted; guarantee = fractional.objective / factor.
  double factor = 0.0;
  bool used_column_generation = false;
  /// Whether fractional.objective is a PROVEN LP optimum (explicit solve,
  /// or column generation whose oracle certified optimality). A colgen run
  /// that exhausted its pricing rounds returns only a restricted-master
  /// optimum -- a lower bound on b* -- so no guarantee is claimed from it.
  bool lp_bound_proven = false;
  /// The time budget fired: the LP stopped early (status kTimeLimit, no
  /// allocation) or some rounding repetitions were skipped. The returned
  /// allocation is still feasible, possibly empty.
  bool timed_out = false;
  /// The LP solve installed a caller-provided basis hint (PipelineOptions::
  /// warm) and re-optimized from it instead of pivoting from scratch.
  bool warm_started = false;
  /// Simplex pivots the LP solve spent (= fractional.pivots; surfaced here
  /// so report assembly does not dig into the payload).
  long long pivots = 0;
  /// Pricing rounds / generated columns of the column-generation path
  /// (both 0 when the explicit LP ran); surfaced on SolveReport as the
  /// oracle_rounds / columns_generated diagnostics.
  int oracle_rounds = 0;
  int columns_generated = 0;
};

/// Runs LP + rounding end to end. The returned allocation is always
/// feasible; `guarantee` is the paper's worst-case expectation bound
/// (Theorem 3 or Lemmas 7+8) evaluated for this instance. Prefer
/// `make_solver("lp-rounding")->solve(instance, options)` (api/api.hpp)
/// unless you need the raw PipelineResult.
[[nodiscard]] PipelineResult solve_pipeline(const AuctionInstance& instance,
                                            PipelineOptions options = {});

}  // namespace ssa
