#include "core/rounding.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/best_rounds.hpp"
#include "support/parallel.hpp"

namespace ssa {

namespace {

/// Fractional columns of one bidder restricted to one decomposition half.
struct BidderDistribution {
  std::vector<Bundle> bundles;
  std::vector<double> cumulative;  ///< running sums of x_{v,T} / denominator
};

/// Builds, for l in {0, 1}, the per-bidder sampling distributions of the
/// decomposed solution x^(l): l = 0 keeps |T| <= sqrt(k), l = 1 the rest.
std::vector<std::vector<BidderDistribution>> decompose(
    const AuctionInstance& instance, const FractionalSolution& fractional,
    double denominator) {
  const double sqrt_k = std::sqrt(static_cast<double>(instance.num_channels()));
  std::vector<std::vector<BidderDistribution>> halves(
      2, std::vector<BidderDistribution>(instance.num_bidders()));
  for (const FractionalColumn& column : fractional.columns) {
    const int half = bundle_size(column.bundle) <= sqrt_k + 1e-12 ? 0 : 1;
    BidderDistribution& dist =
        halves[half][static_cast<std::size_t>(column.bidder)];
    const double previous = dist.cumulative.empty() ? 0.0 : dist.cumulative.back();
    dist.bundles.push_back(column.bundle);
    dist.cumulative.push_back(previous + column.x / denominator);
  }
  return halves;
}

/// Samples a bundle from a cumulative distribution with uniform value u.
Bundle sample(const BidderDistribution& dist, double u) {
  for (std::size_t i = 0; i < dist.cumulative.size(); ++i) {
    if (u < dist.cumulative[i]) return dist.bundles[i];
  }
  return kEmptyBundle;
}

/// Tentative allocation for one decomposition half from per-vertex uniforms.
Allocation rounding_stage(const std::vector<BidderDistribution>& dists,
                          std::span<const double> uniforms) {
  Allocation allocation;
  allocation.bundles.resize(dists.size(), kEmptyBundle);
  for (std::size_t v = 0; v < dists.size(); ++v) {
    allocation.bundles[v] = sample(dists[v], uniforms[v]);
  }
  return allocation;
}

/// Algorithm 1 conflict resolution: keep a vertex only when no kept
/// pi-earlier neighbor shares a channel.
void resolve_conflicts_unweighted(const AuctionInstance& instance,
                                  Allocation& allocation) {
  const auto& graph = instance.graph();
  const auto& position = instance.positions();
  for (int v : instance.order()) {  // ascending pi
    const std::size_t sv = static_cast<std::size_t>(v);
    if (allocation.bundles[sv] == kEmptyBundle) continue;
    for (int u : graph.neighbors(sv)) {
      const std::size_t su = static_cast<std::size_t>(u);
      if (position[su] < position[sv] &&
          (allocation.bundles[su] & allocation.bundles[sv]) != kEmptyBundle) {
        allocation.bundles[sv] = kEmptyBundle;
        break;
      }
    }
  }
}

/// Algorithm 2 partial conflict resolution: drop a vertex when the incoming
/// symmetric weight from kept pi-earlier vertices sharing a channel reaches
/// 1/2 (Condition (5)).
void resolve_conflicts_partial(const AuctionInstance& instance,
                               Allocation& allocation) {
  const auto& graph = instance.graph();
  const auto& position = instance.positions();
  for (int v : instance.order()) {  // ascending pi
    const std::size_t sv = static_cast<std::size_t>(v);
    if (allocation.bundles[sv] == kEmptyBundle) continue;
    double incoming = 0.0;
    for (int u : graph.neighbors(sv)) {
      const std::size_t su = static_cast<std::size_t>(u);
      if (position[su] < position[sv] &&
          (allocation.bundles[su] & allocation.bundles[sv]) != kEmptyBundle) {
        incoming += graph.coupling_weight(su, sv);
      }
    }
    if (incoming >= 0.5) allocation.bundles[sv] = kEmptyBundle;
  }
}

/// Shared skeleton of Algorithms 1 and 2: round both decomposition halves
/// with the given per-vertex uniforms, resolve, return the better result.
template <typename Resolver>
Allocation round_with_uniforms(const AuctionInstance& instance,
                               const FractionalSolution& fractional,
                               double denominator,
                               std::span<const double> uniforms_half0,
                               std::span<const double> uniforms_half1,
                               const Resolver& resolve) {
  const auto halves = decompose(instance, fractional, denominator);
  Allocation best;
  best.bundles.assign(instance.num_bidders(), kEmptyBundle);
  double best_welfare = -1.0;
  for (int half = 0; half < 2; ++half) {
    Allocation candidate = rounding_stage(
        halves[static_cast<std::size_t>(half)],
        half == 0 ? uniforms_half0 : uniforms_half1);
    resolve(instance, candidate);
    const double welfare = instance.welfare(candidate);
    if (welfare > best_welfare) {
      best_welfare = welfare;
      best = std::move(candidate);
    }
  }
  return best;
}

std::vector<double> draw_uniforms(Rng& rng, std::size_t n) {
  std::vector<double> uniforms(n);
  for (double& u : uniforms) u = rng.uniform();
  return uniforms;
}

}  // namespace

Allocation round_unweighted(const AuctionInstance& instance,
                            const FractionalSolution& fractional, Rng& rng,
                            double scale_denominator) {
  if (!instance.unweighted()) {
    throw std::invalid_argument("round_unweighted: instance has edge weights");
  }
  const double denominator =
      scale_denominator > 0.0
          ? scale_denominator
          : 2.0 * std::sqrt(static_cast<double>(instance.num_channels())) *
                instance.rho();
  const auto u0 = draw_uniforms(rng, instance.num_bidders());
  const auto u1 = draw_uniforms(rng, instance.num_bidders());
  return round_with_uniforms(instance, fractional, denominator, u0, u1,
                             resolve_conflicts_unweighted);
}

Allocation round_weighted_partial(const AuctionInstance& instance,
                                  const FractionalSolution& fractional,
                                  Rng& rng, double scale_denominator) {
  const double denominator =
      scale_denominator > 0.0
          ? scale_denominator
          : 4.0 * std::sqrt(static_cast<double>(instance.num_channels())) *
                instance.rho();
  const auto u0 = draw_uniforms(rng, instance.num_bidders());
  const auto u1 = draw_uniforms(rng, instance.num_bidders());
  return round_with_uniforms(instance, fractional, denominator, u0, u1,
                             resolve_conflicts_partial);
}

bool is_partly_feasible(const AuctionInstance& instance,
                        const Allocation& allocation) {
  const auto& graph = instance.graph();
  const auto& position = instance.positions();
  for (std::size_t v = 0; v < allocation.size(); ++v) {
    if (allocation.bundles[v] == kEmptyBundle) continue;
    double incoming = 0.0;
    for (int u : graph.neighbors(v)) {
      const std::size_t su = static_cast<std::size_t>(u);
      if (position[su] < position[v] &&
          (allocation.bundles[su] & allocation.bundles[v]) != kEmptyBundle) {
        incoming += graph.coupling_weight(su, v);
      }
    }
    if (incoming >= 0.5) return false;
  }
  return true;
}

Allocation finalize_partial(const AuctionInstance& instance,
                            const Allocation& partial) {
  const std::size_t n = instance.num_bidders();
  const auto& graph = instance.graph();

  // Remaining pool V' (vertices not yet placed in any candidate).
  std::vector<bool> remaining(n, false);
  std::size_t remaining_count = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (partial.bundles[v] != kEmptyBundle) {
      remaining[v] = true;
      ++remaining_count;
    }
  }

  // Descending-pi processing order.
  std::vector<int> descending(instance.order().rbegin(),
                              instance.order().rend());

  Allocation best;
  best.bundles.assign(n, kEmptyBundle);
  double best_welfare = instance.welfare(best);

  const int iteration_cap =
      static_cast<int>(std::ceil(std::log2(std::max<std::size_t>(n, 2)))) + 4;
  for (int iteration = 0; iteration < iteration_cap && remaining_count > 0;
       ++iteration) {
    Allocation candidate;
    candidate.bundles.assign(n, kEmptyBundle);
    for (std::size_t v = 0; v < n; ++v) {
      if (remaining[v]) candidate.bundles[v] = partial.bundles[v];
    }
    const std::size_t before = remaining_count;
    for (int v : descending) {
      const std::size_t sv = static_cast<std::size_t>(v);
      if (!remaining[sv] || candidate.bundles[sv] == kEmptyBundle) continue;
      double incoming = 0.0;
      for (int u : graph.neighbors(sv)) {
        const std::size_t su = static_cast<std::size_t>(u);
        if ((candidate.bundles[su] & candidate.bundles[sv]) != kEmptyBundle) {
          incoming += graph.coupling_weight(su, sv);
        }
      }
      if (incoming < 1.0) {
        remaining[sv] = false;  // v is served by this candidate
        --remaining_count;
      } else {
        candidate.bundles[sv] = kEmptyBundle;  // retry in a later candidate
      }
    }
    if (remaining_count == before) break;  // not partly feasible; stop safely
    const double welfare = instance.welfare(candidate);
    if (welfare > best_welfare) {
      best_welfare = welfare;
      best = std::move(candidate);
    }
  }
  return best;
}

Allocation round_once(const AuctionInstance& instance,
                      const FractionalSolution& fractional, Rng& rng) {
  if (instance.unweighted()) {
    return round_unweighted(instance, fractional, rng);
  }
  return finalize_partial(instance,
                          round_weighted_partial(instance, fractional, rng));
}

Allocation best_of_rounds(const AuctionInstance& instance,
                          const FractionalSolution& fractional,
                          int repetitions, std::uint64_t seed,
                          const Deadline& deadline, bool* timed_out) {
  return detail::best_rounds(
      instance.num_bidders(), repetitions, seed, deadline, timed_out,
      [&](Rng& rng) { return round_once(instance, fractional, rng); },
      [&](const Allocation& a) { return instance.welfare(a); });
}

Allocation derandomized_round(const AuctionInstance& instance,
                              const FractionalSolution& fractional,
                              const PairwiseFamily& family) {
  const std::size_t n = instance.num_bidders();
  const double sqrt_k = std::sqrt(static_cast<double>(instance.num_channels()));
  const double denominator = (instance.unweighted() ? 2.0 : 4.0) * sqrt_k *
                             instance.rho();
  const std::uint64_t seeds = family.seed_count();

  std::vector<double> welfare(seeds, 0.0);
  parallel_for(static_cast<std::ptrdiff_t>(seeds), [&](std::ptrdiff_t s) {
    const std::vector<double> uniforms =
        family.values(static_cast<std::uint64_t>(s), n);
    Allocation allocation;
    if (instance.unweighted()) {
      allocation = round_with_uniforms(instance, fractional, denominator,
                                       uniforms, uniforms,
                                       resolve_conflicts_unweighted);
    } else {
      allocation = finalize_partial(
          instance,
          round_with_uniforms(instance, fractional, denominator, uniforms,
                              uniforms, resolve_conflicts_partial));
    }
    welfare[static_cast<std::size_t>(s)] = instance.welfare(allocation);
  });

  std::uint64_t best_seed = 0;
  for (std::uint64_t s = 1; s < seeds; ++s) {
    if (welfare[s] > welfare[best_seed]) best_seed = s;
  }
  const std::vector<double> uniforms = family.values(best_seed, n);
  if (instance.unweighted()) {
    return round_with_uniforms(instance, fractional, denominator, uniforms,
                               uniforms, resolve_conflicts_unweighted);
  }
  return finalize_partial(
      instance, round_with_uniforms(instance, fractional, denominator, uniforms,
                                    uniforms, resolve_conflicts_partial));
}

}  // namespace ssa
