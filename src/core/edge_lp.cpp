#include "core/edge_lp.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "lp/simplex.hpp"

namespace ssa {

EdgeLpResult solve_edge_lp(const AuctionInstance& instance) {
  if (instance.num_channels() != 1 || !instance.unweighted()) {
    throw std::invalid_argument(
        "solve_edge_lp: single channel, unweighted graphs only");
  }
  const std::size_t n = instance.num_bidders();
  const auto& graph = instance.graph();

  lp::LinearProgram model(lp::Objective::kMaximize);
  // x_v <= 1 rows first, then one row per edge.
  for (std::size_t v = 0; v < n; ++v) model.add_row(lp::RowSense::kLessEqual, 1.0);
  std::vector<std::vector<int>> edge_rows(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (int v : graph.neighbors(u)) {
      if (static_cast<std::size_t>(v) > u) {
        const int row = model.add_row(lp::RowSense::kLessEqual, 1.0);
        edge_rows[u].push_back(row);
        edge_rows[static_cast<std::size_t>(v)].push_back(row);
      }
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    std::vector<lp::ColumnEntry> entries{{static_cast<int>(v), 1.0}};
    for (int row : edge_rows[v]) entries.push_back({row, 1.0});
    model.add_column(instance.value(v, 1u), std::move(entries));
  }

  const lp::Solution solution = lp::solve(model);
  EdgeLpResult result;
  result.lp_value = solution.objective;
  result.x = solution.x;

  // Greedy rounding by decreasing fractional value.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return solution.x[a] > solution.x[b];
  });
  result.rounded.bundles.assign(n, kEmptyBundle);
  std::vector<int> chosen;
  for (std::size_t v : order) {
    if (instance.value(v, 1u) <= 0.0 || solution.x[v] <= 1e-9) continue;
    chosen.push_back(static_cast<int>(v));
    if (graph.is_independent(chosen)) {
      result.rounded.bundles[v] = 1u;
    } else {
      chosen.pop_back();
    }
  }
  result.rounded_welfare = instance.welfare(result.rounded);
  return result;
}

}  // namespace ssa
