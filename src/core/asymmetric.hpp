#pragma once
/// \file asymmetric.hpp
/// Asymmetric channels (Section 6): every channel j has its own conflict
/// graph/edge weights. The LP swaps wbar for wbar_j in the (u, j) rows; the
/// rounding keeps the structure of Algorithm 1 but samples with probability
/// x_{v,T} / (2 k rho) (no sqrt(k) decomposition -- the proof of Lemma 4
/// goes through without symmetry at that scaling), giving the O(k rho)
/// factor that Theorem 18 shows is essentially optimal.
///
/// Rounding is implemented for unweighted per-channel graphs (the setting
/// of Theorem 18); the LP itself accepts weighted graphs.

#include <span>
#include <vector>

#include "core/auction_lp.hpp"
#include "core/instance.hpp"
#include "support/random.hpp"

namespace ssa {

/// Auction instance with one conflict graph per channel.
class AsymmetricInstance {
 public:
  /// \p rho = 0 measures max over channels of rho_j(pi) with the verifier.
  AsymmetricInstance(std::vector<ConflictGraph> channel_graphs, Ordering order,
                     std::vector<ValuationPtr> valuations, double rho = 0.0);

  [[nodiscard]] std::size_t num_bidders() const noexcept {
    return valuations_.size();
  }
  [[nodiscard]] int num_channels() const noexcept {
    return static_cast<int>(graphs_.size());
  }
  [[nodiscard]] double rho() const noexcept { return rho_; }
  [[nodiscard]] const ConflictGraph& graph(int channel) const {
    return graphs_.at(static_cast<std::size_t>(channel));
  }
  [[nodiscard]] std::span<const ConflictGraph> graphs() const noexcept {
    return graphs_;
  }
  [[nodiscard]] const Ordering& order() const noexcept { return order_; }
  [[nodiscard]] const std::vector<int>& positions() const noexcept {
    return position_;
  }
  [[nodiscard]] const Valuation& valuation(std::size_t v) const {
    return *valuations_.at(v);
  }
  [[nodiscard]] double value(std::size_t v, Bundle bundle) const {
    return valuations_[v]->value(bundle);
  }
  [[nodiscard]] double welfare(const Allocation& allocation) const;
  [[nodiscard]] bool feasible(const Allocation& allocation) const {
    return is_feasible_asymmetric(allocation, graphs_);
  }
  [[nodiscard]] bool unweighted() const noexcept { return unweighted_; }

 private:
  std::vector<ConflictGraph> graphs_;
  Ordering order_;
  std::vector<int> position_;
  double rho_;
  std::vector<ValuationPtr> valuations_;
  bool unweighted_;
};

/// Explicit LP for the asymmetric problem (k <= 12).
[[nodiscard]] FractionalSolution solve_asymmetric_lp(
    const AsymmetricInstance& instance, lp::SimplexOptions options = {});

/// Randomized rounding with the 1/(2 k rho) scaling and per-channel
/// conflict resolution toward pi-earlier vertices. Unweighted graphs only.
[[nodiscard]] Allocation round_asymmetric(const AsymmetricInstance& instance,
                                          const FractionalSolution& fractional,
                                          Rng& rng);

/// Best of \p repetitions rounding passes.
[[nodiscard]] Allocation best_asymmetric_rounds(
    const AsymmetricInstance& instance, const FractionalSolution& fractional,
    int repetitions, std::uint64_t seed);

}  // namespace ssa
