#pragma once
/// \file asymmetric.hpp
/// Asymmetric channels (Section 6): every channel j has its own conflict
/// graph/edge weights. The LP swaps wbar for wbar_j in the (u, j) rows; the
/// rounding keeps the structure of Algorithm 1 but samples with probability
/// x_{v,T} / (2 k rho) (no sqrt(k) decomposition -- the proof of Lemma 4
/// goes through without symmetry at that scaling), giving the O(k rho)
/// factor that Theorem 18 shows is essentially optimal.
///
/// Rounding is implemented for unweighted per-channel graphs (the setting
/// of Theorem 18); the LP itself accepts weighted graphs. Besides the
/// LP+rounding pipeline this file carries the exact branch-and-bound and
/// greedy baselines for asymmetric instances; all of them are exposed
/// through the unified Solver registry as the "asymmetric-*" entries
/// (api/solvers.cpp).

#include <cstdint>
#include <span>
#include <vector>

#include "core/auction_lp.hpp"
#include "core/exact.hpp"
#include "core/instance.hpp"
#include "support/deadline.hpp"
#include "support/random.hpp"

namespace ssa {

/// Auction instance with one conflict graph per channel.
class AsymmetricInstance {
 public:
  /// Channel cap of the asymmetric family, now the library-wide bundle
  /// bound (bundle.hpp): solve_asymmetric_lp_colgen (asymmetric_colgen.hpp)
  /// prices columns through a demand oracle and never enumerates the 2^k
  /// bundle space, so the instance itself admits any representable k.
  static constexpr int kMaxChannels = ssa::kMaxChannels;

  /// Cap of the *explicit-enumeration* algorithms (solve_asymmetric_lp and
  /// the greedy baselines), which still materialize all 2^k - 1 bundles per
  /// bidder. It is the single source of truth for those paths; instances
  /// above it must go through the column-generation solver. The exact B&B
  /// additionally keeps its own tighter, caller-overridable guard
  /// (ExactOptions::max_channels, default 6), exactly as in the symmetric
  /// family.
  static constexpr int kExplicitChannelLimit = 12;

  /// \p rho = 0 measures max over channels of rho_j(pi) with the verifier.
  AsymmetricInstance(std::vector<ConflictGraph> channel_graphs, Ordering order,
                     std::vector<ValuationPtr> valuations, double rho = 0.0);

  [[nodiscard]] std::size_t num_bidders() const noexcept {
    return valuations_.size();
  }
  [[nodiscard]] int num_channels() const noexcept {
    return static_cast<int>(graphs_.size());
  }
  [[nodiscard]] double rho() const noexcept { return rho_; }
  [[nodiscard]] const ConflictGraph& graph(int channel) const {
    return graphs_.at(static_cast<std::size_t>(channel));
  }
  [[nodiscard]] std::span<const ConflictGraph> graphs() const noexcept {
    return graphs_;
  }
  [[nodiscard]] const Ordering& order() const noexcept { return order_; }
  [[nodiscard]] const std::vector<int>& positions() const noexcept {
    return position_;
  }
  [[nodiscard]] const Valuation& valuation(std::size_t v) const {
    return *valuations_.at(v);
  }
  [[nodiscard]] double value(std::size_t v, Bundle bundle) const {
    return valuations_[v]->value(bundle);
  }
  [[nodiscard]] double welfare(const Allocation& allocation) const;
  [[nodiscard]] bool feasible(const Allocation& allocation) const {
    return is_feasible_asymmetric(allocation, graphs_);
  }
  [[nodiscard]] bool unweighted() const noexcept { return unweighted_; }

  /// A copy with bidder \p v's valuation replaced (mechanism experiments,
  /// churn variants in the load harness) -- the asymmetric counterpart of
  /// AuctionInstance::with_valuation.
  [[nodiscard]] AsymmetricInstance with_valuation(std::size_t v,
                                                  ValuationPtr valuation) const;

 private:
  std::vector<ConflictGraph> graphs_;
  Ordering order_;
  std::vector<int> position_;
  double rho_;
  std::vector<ValuationPtr> valuations_;
  bool unweighted_;
};

/// Explicit LP for the asymmetric problem. Enumerates every bundle, so it
/// refuses k > AsymmetricInstance::kExplicitChannelLimit; larger instances
/// go through solve_asymmetric_lp_colgen (asymmetric_colgen.hpp).
[[nodiscard]] FractionalSolution solve_asymmetric_lp(
    const AsymmetricInstance& instance, lp::SimplexOptions options = {});

/// Randomized rounding with the 1/(2 k rho) scaling. Unweighted graphs
/// only. Conflict resolution follows Algorithm 1 verbatim (the paper's
/// Section 6 keeps its structure): processing vertices in ascending pi, a
/// vertex that conflicts with a kept earlier vertex on ANY channel of its
/// bundle is removed ENTIRELY -- no per-channel trimming. Trimming would
/// hand bidders sub-bundles the analysis never charges (a single-minded
/// bidder would keep a worthless remainder while still blocking later
/// vertices on its surviving channels); the full drop is what the
/// survival-probability argument (expected conflicting earlier neighbors
/// <= 1/(2k) per channel, <= 1/2 over the bundle) prices in, giving
/// E[welfare] >= b* / (4 k rho).
[[nodiscard]] Allocation round_asymmetric(const AsymmetricInstance& instance,
                                          const FractionalSolution& fractional,
                                          Rng& rng);

/// Best of \p repetitions rounding passes (parallel, deterministic for a
/// fixed \p seed regardless of thread count as long as \p deadline does not
/// fire). Repetition 0 always runs so the result is feasible even under an
/// expired deadline; skipped repetitions set *\p timed_out when non-null.
[[nodiscard]] Allocation best_asymmetric_rounds(
    const AsymmetricInstance& instance, const FractionalSolution& fractional,
    int repetitions, std::uint64_t seed, const Deadline& deadline = {},
    bool* timed_out = nullptr);

/// Exact winner determination for per-channel conflict graphs by branch and
/// bound over bidders (OPT reference; exponential, small instances only).
/// Unweighted per-channel graphs only, like round_asymmetric: the search
/// prunes on binary conflicts, which on weighted graphs would skip
/// allocations the incoming-weight feasibility admits and falsely claim
/// exactness. Reuses ExactOptions/ExactResult from the symmetric solver,
/// including the node budget and cooperative deadline.
[[nodiscard]] ExactResult solve_asymmetric_exact(
    const AsymmetricInstance& instance, ExactOptions options = {});

/// Greedy baseline: bidders in decreasing max-value order each take the
/// feasible bundle of maximum value against the per-channel graphs. On
/// weighted graphs the binary-conflict check is conservative (it never
/// yields an infeasible allocation, but may leave weighted-feasible value
/// on the table) -- acceptable for a no-guarantee heuristic. Enumerates
/// bundles explicitly, so k <= AsymmetricInstance::kExplicitChannelLimit.
[[nodiscard]] Allocation greedy_by_value_asymmetric(
    const AsymmetricInstance& instance);

/// Greedy baseline: all (bidder, bundle) pairs by value / |T| density,
/// single pass with per-channel feasibility checks (conservative on
/// weighted graphs, see greedy_by_value_asymmetric). Enumerates bundles
/// explicitly, so k <= AsymmetricInstance::kExplicitChannelLimit.
[[nodiscard]] Allocation greedy_by_density_asymmetric(
    const AsymmetricInstance& instance);

}  // namespace ssa
