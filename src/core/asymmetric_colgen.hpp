#pragma once
/// \file asymmetric_colgen.hpp
/// Demand-oracle column generation for asymmetric (Section 6) instances --
/// the decomposition that lifts the explicit-enumeration cap
/// (AsymmetricInstance::kExplicitChannelLimit) and admits weighted
/// per-channel graphs. The restricted master carries the same rows as
/// solve_asymmetric_lp (n*k interference rows at rho, n convexity rows at
/// 1); columns arrive from a per-bidder demand oracle priced with
/// p_{v,j} = sum over forward neighbors u in graph j of wbar_j(v,u) *
/// y_{u,j} (Section 2.2 transplanted to per-channel graphs; the greedy
/// demand view follows Hoefer-Kesselheim's submodular treatment,
/// arXiv:1110.5753). Equivalently, each generated column is a Benders
/// feasibility cut on the dual -- the loop itself lives in lp/benders.hpp.
///
/// Warm starts: a donor run's generated columns plus terminal basis form
/// an AsymmetricColumnPool, keyed by structural_fingerprint in the
/// service's per-shard ColumnPoolCache. Seeding a churn variant's master
/// with the donor pool collapses the oracle loop to the handful of rounds
/// that churn actually changed, and the donor basis warm-starts the first
/// master solve (composing with PR 8's basis reuse).
///
/// Payload identity (warm == cold, bitwise): for k <=
/// kLiftedDemandChannels both the master objective AND the oracle use the
/// shared symmetry-breaking lift (lifted_value in auction_lp.hpp), making
/// the LP optimum generically unique, and the oracle separates at the
/// engine's own tolerance so warm and cold runs terminate at the same
/// vertex. The returned solution is then extracted from a final canonical
/// re-solve: a fresh LP over exactly the terminal support columns in
/// sorted (bidder, bundle) order, solved cold -- warm and cold runs that
/// agree on the support set solve literally the same LP and return
/// bitwise-identical objectives and weights, regardless of column arrival
/// order. Beyond kLiftedDemandChannels the oracle falls back to the
/// valuation's own (unlifted) demand closed form and identity is only
/// generic, exactly like the symmetric colgen path.

#include <cstdint>
#include <utility>
#include <vector>

#include "core/asymmetric.hpp"
#include "core/auction_lp.hpp"
#include "lp/benders.hpp"

namespace ssa {

/// A donor run's column pool: the (bidder, bundle) meanings of every
/// master column it generated plus its terminal simplex basis. Runtime
/// only -- never serialized, never snapshotted (like BasisSnapshot, it is
/// an in-memory warm-start artifact keyed by structural fingerprint).
struct AsymmetricColumnPool {
  std::vector<std::pair<std::uint32_t, Bundle>> columns;
  lp::BasisSnapshot basis;
  std::uint32_t num_bidders = 0;
  int num_channels = 0;

  [[nodiscard]] bool empty() const noexcept { return columns.empty(); }
};

/// Diagnostics of one colgen solve (SolveReport surfaces rounds/columns).
struct AsymmetricColGenStats {
  int rounds = 0;
  int columns_generated = 0;  ///< oracle columns only; pool seeds excluded
  bool proved_optimal = false;
  bool pool_warm_started = false;  ///< a compatible donor pool seeded the master
  long long pivots = 0;            ///< main loop + final canonical re-solve
};

/// Bundle-enumeration ceiling of the exact LIFTED demand oracle; above it
/// the oracle delegates to Valuation::demand closed forms (unlifted).
inline constexpr int kLiftedDemandChannels = 20;

struct AsymmetricColGenOptions {
  int max_rounds = 500;
  lp::SimplexOptions simplex = {};
  /// Donor pool to seed the master with; ignored when its dimensions do
  /// not match the instance. The donor basis warm-starts the first solve
  /// (cold fallback on any incompatibility).
  const AsymmetricColumnPool* pool = nullptr;
  /// When non-null, receives this run's full column set and terminal
  /// basis for banking (cleared when the solve did not reach optimality).
  AsymmetricColumnPool* pool_export = nullptr;
};

/// Master rows of the asymmetric LP: n*k interference rows "(u, j) <= rho"
/// followed by n convexity rows "sum_T x_{v,T} <= 1" (no columns).
[[nodiscard]] lp::LinearProgram build_asymmetric_master_rows(
    const AsymmetricInstance& instance);

/// Column entries of variable (v, T) against the per-channel graphs:
/// wbar_j(v, u) in row (u, j) for forward neighbors u and j in T, plus the
/// convexity row of v.
[[nodiscard]] std::vector<lp::ColumnEntry> asymmetric_bundle_column(
    const AsymmetricInstance& instance, int bidder, Bundle bundle);

/// Solves the asymmetric LP by demand-oracle column generation; works for
/// any k <= AsymmetricInstance::kMaxChannels and for weighted per-channel
/// graphs. For k <= kLiftedDemandChannels the objective is lifted
/// (generically unique optimum; the reported value exceeds the true LP
/// value by at most kTiebreakScale relative and stays a valid upper bound
/// on the integral optimum).
[[nodiscard]] FractionalSolution solve_asymmetric_lp_colgen(
    const AsymmetricInstance& instance, AsymmetricColGenStats* stats = nullptr,
    const AsymmetricColGenOptions& options = {});

/// Deterministic integral allocation from a fractional support: columns in
/// decreasing x * value order (stable on ties), each accepted when its
/// bundle fits the per-channel graphs under the conservative binary
/// conflict check (never infeasible; on weighted graphs it may leave
/// weighted-feasible value on the table, like the greedy baselines). The
/// weighted-instance rounding stage of the colgen solver: randomized
/// rounding's survival analysis needs unweighted graphs, this does not --
/// and it is a pure function of the fractional payload, so pool-warm and
/// cold runs allocate identically.
[[nodiscard]] Allocation greedy_fit_from_columns(
    const AsymmetricInstance& instance,
    const std::vector<FractionalColumn>& columns);

}  // namespace ssa
