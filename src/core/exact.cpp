#include "core/exact.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace ssa {

namespace {

/// DFS over bidders; maintains per-(vertex, channel) incoming weights so
/// feasibility of adding a bundle is checked incrementally.
class ExactSearch {
 public:
  ExactSearch(const AuctionInstance& instance, const ExactOptions& options)
      : instance_(instance), options_(options) {
    const std::size_t n = instance.num_bidders();
    const int k = instance.num_channels();
    incoming_.assign(n * static_cast<std::size_t>(k), 0.0);
    assigned_.assign(n, kEmptyBundle);

    // Candidate bundles per bidder, best value first; prune zero values.
    candidates_.resize(n);
    remaining_max_.assign(n + 1, 0.0);
    for (std::size_t v = 0; v < n; ++v) {
      for (Bundle t = 1; t < num_bundles(k); ++t) {
        if (instance.value(v, t) > 0.0) candidates_[v].push_back(t);
      }
      std::sort(candidates_[v].begin(), candidates_[v].end(),
                [&](Bundle a, Bundle b) {
                  return instance.value(v, a) > instance.value(v, b);
                });
    }
    for (std::size_t v = n; v-- > 0;) {
      const double vmax =
          candidates_[v].empty() ? 0.0 : instance.value(v, candidates_[v][0]);
      remaining_max_[v] = remaining_max_[v + 1] + vmax;
    }
  }

  ExactResult run() {
    budget_ = options_.node_budget;
    best_welfare_ = 0.0;
    best_.bundles.assign(instance_.num_bidders(), kEmptyBundle);
    if (options_.deadline.expired()) {
      timed_out_ = true;  // pre-expired budget: return the empty incumbent
    } else {
      recurse(0, 0.0);
    }
    ExactResult result;
    result.allocation = best_;
    result.welfare = best_welfare_;
    result.exact = budget_ > 0 && !timed_out_;
    result.timed_out = timed_out_;
    return result;
  }

 private:
  /// Whether bidder v can take bundle t against the current assignment.
  [[nodiscard]] bool can_assign(std::size_t v, Bundle t) const {
    const int k = instance_.num_channels();
    const auto& graph = instance_.graph();
    for (int j = 0; j < k; ++j) {
      if (!bundle_has(t, j)) continue;
      // v's own incoming weight on channel j must stay below 1 ...
      if (incoming_[v * static_cast<std::size_t>(k) +
                    static_cast<std::size_t>(j)] >= 1.0) {
        return false;
      }
      // ... and v must not push any current holder u to >= 1.
      for (std::size_t u = 0; u < v; ++u) {
        if (!bundle_has(assigned_[u], j)) continue;
        const double w_vu = graph.weight(v, u);
        if (w_vu > 0.0 &&
            incoming_[u * static_cast<std::size_t>(k) +
                      static_cast<std::size_t>(j)] +
                    w_vu >=
                1.0) {
          return false;
        }
      }
    }
    return true;
  }

  void apply(std::size_t v, Bundle t, double sign) {
    const int k = instance_.num_channels();
    const auto& graph = instance_.graph();
    const std::size_t n = instance_.num_bidders();
    for (int j = 0; j < k; ++j) {
      if (!bundle_has(t, j)) continue;
      for (std::size_t u = 0; u < n; ++u) {
        if (u == v) continue;
        const double w_vu = graph.weight(v, u);
        if (w_vu > 0.0) {
          incoming_[u * static_cast<std::size_t>(k) +
                    static_cast<std::size_t>(j)] += sign * w_vu;
        }
      }
    }
  }

  void recurse(std::size_t v, double welfare) {
    if (budget_-- <= 0 || timed_out_) return;
    // Cooperative deadline: polled every 4096 nodes (run() handles the
    // pre-expired case before the first node).
    if ((budget_ & 4095) == 0 && options_.deadline.expired()) {
      timed_out_ = true;
      return;
    }
    if (welfare > best_welfare_) {
      best_welfare_ = welfare;
      best_.bundles = assigned_;
      // assigned_ beyond v is empty by the invariant below.
    }
    if (v >= instance_.num_bidders()) return;
    if (welfare + remaining_max_[v] <= best_welfare_) return;  // bound

    for (Bundle t : candidates_[v]) {
      if (!can_assign(v, t)) continue;
      // v's incoming weight from earlier holders on each channel of t.
      const int k = instance_.num_channels();
      bool ok = true;
      for (int j = 0; ok && j < k; ++j) {
        if (bundle_has(t, j) &&
            incoming_[v * static_cast<std::size_t>(k) +
                      static_cast<std::size_t>(j)] >= 1.0) {
          ok = false;
        }
      }
      if (!ok) continue;
      assigned_[v] = t;
      apply(v, t, +1.0);
      recurse(v + 1, welfare + instance_.value(v, t));
      apply(v, t, -1.0);
      assigned_[v] = kEmptyBundle;
    }
    // Branch: v gets nothing.
    recurse(v + 1, welfare);
  }

  const AuctionInstance& instance_;
  ExactOptions options_;
  std::vector<std::vector<Bundle>> candidates_;
  std::vector<double> remaining_max_;
  std::vector<double> incoming_;  ///< (vertex, channel) incoming weight
  std::vector<Bundle> assigned_;
  Allocation best_;
  double best_welfare_ = 0.0;
  long long budget_ = 0;
  bool timed_out_ = false;
};

}  // namespace

ExactResult solve_exact(const AuctionInstance& instance, ExactOptions options) {
  if (instance.num_channels() > options.max_channels) {
    throw std::invalid_argument("solve_exact: too many channels for B&B");
  }
  return ExactSearch(instance, options).run();
}

}  // namespace ssa
