#include "core/valuation.hpp"

#include <algorithm>
#include <stdexcept>

namespace ssa {

Valuation::Valuation(int num_channels) : k_(num_channels) {
  if (num_channels < 1 || num_channels > kMaxChannels) {
    throw std::invalid_argument("Valuation: bad channel count");
  }
}

DemandResult Valuation::demand(std::span<const double> prices) const {
  if (static_cast<int>(prices.size()) != k_) {
    throw std::invalid_argument("Valuation::demand: price vector size");
  }
  if (k_ > 20) {
    throw std::invalid_argument(
        "Valuation::demand: default enumeration limited to k <= 20");
  }
  DemandResult best;  // empty bundle, utility 0
  for (Bundle t = 1; t < num_bundles(k_); ++t) {
    double utility = value(t);
    for (int j = 0; j < k_; ++j) {
      if (bundle_has(t, j)) utility -= prices[j];
    }
    if (utility > best.utility) best = DemandResult{t, utility};
  }
  return best;
}

double Valuation::max_value() const {
  const std::vector<double> zero_prices(static_cast<std::size_t>(k_), 0.0);
  return demand(zero_prices).utility;
}

ExplicitValuation::ExplicitValuation(int num_channels,
                                     std::vector<double> values)
    : Valuation(num_channels), values_(std::move(values)) {
  if (values_.size() != num_bundles(k_)) {
    throw std::invalid_argument("ExplicitValuation: table size != 2^k");
  }
  if (values_[0] != 0.0) {
    throw std::invalid_argument("ExplicitValuation: value(empty) must be 0");
  }
  for (double v : values_) {
    if (v < 0.0) throw std::invalid_argument("ExplicitValuation: negative value");
  }
}

double ExplicitValuation::value(Bundle bundle) const {
  return values_.at(bundle);
}

AdditiveValuation::AdditiveValuation(std::vector<double> channel_values)
    : Valuation(static_cast<int>(channel_values.size())),
      channel_values_(std::move(channel_values)) {
  for (double v : channel_values_) {
    if (v < 0.0) throw std::invalid_argument("AdditiveValuation: negative value");
  }
}

double AdditiveValuation::value(Bundle bundle) const {
  double total = 0.0;
  for (int j = 0; j < k_; ++j) {
    if (bundle_has(bundle, j)) total += channel_values_[static_cast<std::size_t>(j)];
  }
  return total;
}

DemandResult AdditiveValuation::demand(std::span<const double> prices) const {
  DemandResult result;
  for (int j = 0; j < k_; ++j) {
    const double gain = channel_values_[static_cast<std::size_t>(j)] - prices[j];
    if (gain > 0.0) {
      result.bundle |= (1u << j);
      result.utility += gain;
    }
  }
  return result;
}

double AdditiveValuation::max_value() const {
  double total = 0.0;
  for (double v : channel_values_) total += v;
  return total;
}

UnitDemandValuation::UnitDemandValuation(std::vector<double> channel_values)
    : Valuation(static_cast<int>(channel_values.size())),
      channel_values_(std::move(channel_values)) {
  for (double v : channel_values_) {
    if (v < 0.0) throw std::invalid_argument("UnitDemandValuation: negative value");
  }
}

double UnitDemandValuation::value(Bundle bundle) const {
  double best = 0.0;
  for (int j = 0; j < k_; ++j) {
    if (bundle_has(bundle, j)) {
      best = std::max(best, channel_values_[static_cast<std::size_t>(j)]);
    }
  }
  return best;
}

DemandResult UnitDemandValuation::demand(std::span<const double> prices) const {
  DemandResult best;  // taking nothing is always available
  for (int j = 0; j < k_; ++j) {
    const double utility = channel_values_[static_cast<std::size_t>(j)] - prices[j];
    if (utility > best.utility) best = DemandResult{1u << j, utility};
  }
  return best;
}

double UnitDemandValuation::max_value() const {
  return *std::max_element(channel_values_.begin(), channel_values_.end());
}

SingleMindedValuation::SingleMindedValuation(int num_channels, Bundle target,
                                             double target_value)
    : Valuation(num_channels), target_(target), target_value_(target_value) {
  if (target == kEmptyBundle || target >= num_bundles(k_)) {
    throw std::invalid_argument("SingleMindedValuation: bad target bundle");
  }
  if (target_value < 0.0) {
    throw std::invalid_argument("SingleMindedValuation: negative value");
  }
}

double SingleMindedValuation::value(Bundle bundle) const {
  return (bundle & target_) == target_ ? target_value_ : 0.0;
}

DemandResult SingleMindedValuation::demand(std::span<const double> prices) const {
  double cost = 0.0;
  for (int j = 0; j < k_; ++j) {
    if (bundle_has(target_, j)) cost += prices[j];
  }
  const double utility = target_value_ - cost;
  if (utility > 0.0) return DemandResult{target_, utility};
  return DemandResult{};
}

double SingleMindedValuation::max_value() const { return target_value_; }

BudgetAdditiveValuation::BudgetAdditiveValuation(
    std::vector<double> channel_values, double budget)
    : Valuation(static_cast<int>(channel_values.size())),
      channel_values_(std::move(channel_values)),
      budget_(budget) {
  if (budget < 0.0) {
    throw std::invalid_argument("BudgetAdditiveValuation: negative budget");
  }
  for (double v : channel_values_) {
    if (v < 0.0) {
      throw std::invalid_argument("BudgetAdditiveValuation: negative value");
    }
  }
}

double BudgetAdditiveValuation::value(Bundle bundle) const {
  double total = 0.0;
  for (int j = 0; j < k_; ++j) {
    if (bundle_has(bundle, j)) total += channel_values_[static_cast<std::size_t>(j)];
  }
  return std::min(total, budget_);
}

double BudgetAdditiveValuation::max_value() const {
  double total = 0.0;
  for (double v : channel_values_) total += v;
  return std::min(total, budget_);
}

XorValuation::XorValuation(int num_channels, std::vector<Atom> atoms)
    : Valuation(num_channels), atoms_(std::move(atoms)) {
  for (const Atom& atom : atoms_) {
    if (atom.bundle == kEmptyBundle || atom.bundle >= num_bundles(k_)) {
      throw std::invalid_argument("XorValuation: bad atom bundle");
    }
    if (atom.value < 0.0) {
      throw std::invalid_argument("XorValuation: negative atom value");
    }
  }
}

double XorValuation::value(Bundle bundle) const {
  double best = 0.0;
  for (const Atom& atom : atoms_) {
    if ((bundle & atom.bundle) == atom.bundle) best = std::max(best, atom.value);
  }
  return best;
}

DemandResult XorValuation::demand(std::span<const double> prices) const {
  // With non-negative prices the optimal demand is an atom's bundle
  // exactly: extra channels only add price and the value is set by the
  // best contained atom. Negative prices (never produced by the LP duals,
  // which are duals of <= rows) fall back to full enumeration.
  for (double p : prices) {
    if (p < 0.0) return Valuation::demand(prices);
  }
  DemandResult best;
  for (const Atom& atom : atoms_) {
    double utility = atom.value;
    for (int j = 0; j < k_; ++j) {
      if (bundle_has(atom.bundle, j)) utility -= prices[j];
    }
    if (utility > best.utility) best = DemandResult{atom.bundle, utility};
  }
  return best;
}

double XorValuation::max_value() const {
  double best = 0.0;
  for (const Atom& atom : atoms_) best = std::max(best, atom.value);
  return best;
}

CoverageValuation::CoverageValuation(std::vector<double> element_weights,
                                     std::vector<std::vector<int>> coverage)
    : Valuation(static_cast<int>(coverage.size())),
      element_weights_(std::move(element_weights)),
      coverage_(std::move(coverage)) {
  for (double w : element_weights_) {
    if (w < 0.0) throw std::invalid_argument("CoverageValuation: negative weight");
  }
  for (const auto& covered : coverage_) {
    for (int element : covered) {
      if (element < 0 ||
          static_cast<std::size_t>(element) >= element_weights_.size()) {
        throw std::out_of_range("CoverageValuation: element out of range");
      }
    }
  }
}

double CoverageValuation::value(Bundle bundle) const {
  std::vector<bool> covered(element_weights_.size(), false);
  for (int j = 0; j < k_; ++j) {
    if (!bundle_has(bundle, j)) continue;
    for (int element : coverage_[static_cast<std::size_t>(j)]) {
      covered[static_cast<std::size_t>(element)] = true;
    }
  }
  double total = 0.0;
  for (std::size_t e = 0; e < covered.size(); ++e) {
    if (covered[e]) total += element_weights_[e];
  }
  return total;
}

double CoverageValuation::max_value() const {
  return value(static_cast<Bundle>(num_bundles(k_) - 1));
}

}  // namespace ssa
