#pragma once
/// \file valuation.hpp
/// Bidder valuations b_{v,T} and demand oracles (Section 2.2). Valuations
/// are arbitrary set functions with value(empty) = 0 -- monotonicity is NOT
/// assumed, exactly as in the paper. The demand oracle answers
///     argmax_T  value(T) - sum_{j in T} prices[j],
/// which is also the pricing problem of the column-generation LP solver.

#include <memory>
#include <span>
#include <vector>

#include "core/bundle.hpp"

namespace ssa {

/// Result of a demand query.
struct DemandResult {
  Bundle bundle = kEmptyBundle;  ///< utility-maximizing bundle
  double utility = 0.0;          ///< its utility (>= 0: empty set is allowed)
};

/// Abstract valuation over bundles of k channels.
class Valuation {
 public:
  explicit Valuation(int num_channels);
  virtual ~Valuation() = default;

  [[nodiscard]] int num_channels() const noexcept { return k_; }

  /// b_{v,T}; implementations must return 0 for the empty bundle and only
  /// non-negative values.
  [[nodiscard]] virtual double value(Bundle bundle) const = 0;

  /// Exact demand oracle. The default enumerates all 2^k bundles
  /// (k <= 20); structured subclasses override with closed forms.
  [[nodiscard]] virtual DemandResult demand(std::span<const double> prices) const;

  /// Largest value over all bundles (used for search bounds). Default
  /// enumerates; subclasses with closed forms override.
  [[nodiscard]] virtual double max_value() const;

 protected:
  int k_;
};

using ValuationPtr = std::shared_ptr<const Valuation>;

/// Table-based valuation: an explicit value for each of the 2^k bundles.
/// The only class that can express non-monotone valuations directly.
class ExplicitValuation final : public Valuation {
 public:
  /// \p values has 2^k entries indexed by bundle; values[0] must be 0.
  ExplicitValuation(int num_channels, std::vector<double> values);

  [[nodiscard]] double value(Bundle bundle) const override;

  /// Defining data, exposed for serialization (wire/instance_codec.hpp):
  /// the 2^k-entry value table.
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

 private:
  std::vector<double> values_;
};

/// Additive: value(T) = sum of per-channel values. Demand in O(k).
class AdditiveValuation final : public Valuation {
 public:
  explicit AdditiveValuation(std::vector<double> channel_values);

  [[nodiscard]] double value(Bundle bundle) const override;
  [[nodiscard]] DemandResult demand(std::span<const double> prices) const override;
  [[nodiscard]] double max_value() const override;

  /// Defining data, exposed for serialization (wire/instance_codec.hpp).
  [[nodiscard]] const std::vector<double>& channel_values() const noexcept {
    return channel_values_;
  }

 private:
  std::vector<double> channel_values_;
};

/// Unit demand: value(T) = max over channels in T. Demand in O(k).
class UnitDemandValuation final : public Valuation {
 public:
  explicit UnitDemandValuation(std::vector<double> channel_values);

  [[nodiscard]] double value(Bundle bundle) const override;
  [[nodiscard]] DemandResult demand(std::span<const double> prices) const override;
  [[nodiscard]] double max_value() const override;

  /// Defining data, exposed for serialization (wire/instance_codec.hpp).
  [[nodiscard]] const std::vector<double>& channel_values() const noexcept {
    return channel_values_;
  }

 private:
  std::vector<double> channel_values_;
};

/// Single minded: positive value only on supersets of one target bundle.
class SingleMindedValuation final : public Valuation {
 public:
  SingleMindedValuation(int num_channels, Bundle target, double target_value);

  [[nodiscard]] double value(Bundle bundle) const override;
  [[nodiscard]] DemandResult demand(std::span<const double> prices) const override;
  [[nodiscard]] double max_value() const override;

  /// Defining data, exposed for serialization (wire/instance_codec.hpp).
  [[nodiscard]] Bundle target() const noexcept { return target_; }
  [[nodiscard]] double target_value() const noexcept { return target_value_; }

 private:
  Bundle target_;
  double target_value_;
};

/// Budget additive: value(T) = min(budget, sum of channel values). A
/// canonical submodular class; demand enumerates (no closed form).
class BudgetAdditiveValuation final : public Valuation {
 public:
  BudgetAdditiveValuation(std::vector<double> channel_values, double budget);

  [[nodiscard]] double value(Bundle bundle) const override;
  [[nodiscard]] double max_value() const override;

  /// Defining data, exposed for serialization (wire/instance_codec.hpp).
  [[nodiscard]] const std::vector<double>& channel_values() const noexcept {
    return channel_values_;
  }
  [[nodiscard]] double budget() const noexcept { return budget_; }

 private:
  std::vector<double> channel_values_;
  double budget_;
};

/// XOR bidding language: a list of atomic bids (bundle, value); the value
/// of T is the maximum value of an atom contained in T. The standard
/// compact language for combinatorial auctions; demand enumerates atoms.
class XorValuation final : public Valuation {
 public:
  struct Atom {
    Bundle bundle = kEmptyBundle;
    double value = 0.0;
  };

  XorValuation(int num_channels, std::vector<Atom> atoms);

  [[nodiscard]] double value(Bundle bundle) const override;
  [[nodiscard]] DemandResult demand(std::span<const double> prices) const override;
  [[nodiscard]] double max_value() const override;

  /// Defining data, exposed for serialization (wire/instance_codec.hpp).
  [[nodiscard]] const std::vector<Atom>& atoms() const noexcept {
    return atoms_;
  }

 private:
  std::vector<Atom> atoms_;
};

/// Weighted coverage: channel j covers a set of ground elements; the value
/// of T is the total weight of elements covered by any channel of T.
/// Submodular and monotone; models overlapping spectrum usefulness.
class CoverageValuation final : public Valuation {
 public:
  /// element_weights: weight per ground element; coverage[j] lists the
  /// elements channel j covers.
  CoverageValuation(std::vector<double> element_weights,
                    std::vector<std::vector<int>> coverage);

  [[nodiscard]] double value(Bundle bundle) const override;
  /// Coverage is monotone, so the maximum is the full bundle: one O(k *
  /// elements) evaluation instead of the default 2^k enumeration.
  [[nodiscard]] double max_value() const override;

  /// Defining data, exposed for serialization (wire/instance_codec.hpp).
  [[nodiscard]] const std::vector<double>& element_weights() const noexcept {
    return element_weights_;
  }
  [[nodiscard]] const std::vector<std::vector<int>>& coverage() const noexcept {
    return coverage_;
  }

 private:
  std::vector<double> element_weights_;
  std::vector<std::vector<int>> coverage_;
};

}  // namespace ssa
