#pragma once
/// \file bundle.hpp
/// Channel bundles as bitmasks. Channel j (0-based) is bit j; the library
/// supports up to 30 channels, which the explicit-LP paths further restrict
/// (the demand-oracle paths only ever enumerate per-bidder columns).

#include <bit>
#include <cstdint>
#include <stdexcept>

namespace ssa {

/// Subset of channels [0, k).
using Bundle = std::uint32_t;

/// Upper limit on k imposed by the Bundle representation.
inline constexpr int kMaxChannels = 30;

/// Empty bundle constant.
inline constexpr Bundle kEmptyBundle = 0;

/// Number of channels in the bundle.
[[nodiscard]] constexpr int bundle_size(Bundle bundle) noexcept {
  return std::popcount(bundle);
}

/// True when channel j is in the bundle.
[[nodiscard]] constexpr bool bundle_has(Bundle bundle, int channel) noexcept {
  return ((bundle >> channel) & 1u) != 0;
}

/// Bundle of all k channels.
[[nodiscard]] constexpr Bundle full_bundle(int k) {
  if (k < 0 || k > kMaxChannels) throw std::invalid_argument("full_bundle: k");
  return k == 0 ? 0u : ((1u << k) - 1u);
}

/// Number of subsets of [0, k) (including the empty one).
[[nodiscard]] constexpr std::uint32_t num_bundles(int k) {
  return full_bundle(k) + 1u;
}

}  // namespace ssa
