#pragma once
/// \file exact.hpp
/// Exact winner determination by branch and bound over bidders, used as the
/// OPT reference in tests and the baseline experiment E9. Exponential --
/// intended for small instances (n up to ~14 with k up to ~4).

#include "core/instance.hpp"
#include "support/deadline.hpp"

namespace ssa {

struct ExactOptions {
  long long node_budget = 50'000'000;  ///< search nodes before giving up
  int max_channels = 6;                ///< guard against 2^k blowup
  /// Cooperative wall-clock deadline, polled every few thousand nodes; when
  /// it fires the search stops and returns the incumbent with exact =
  /// false and timed_out = true. Default: unlimited.
  Deadline deadline = {};
};

struct ExactResult {
  Allocation allocation;
  double welfare = 0.0;
  bool exact = true;      ///< false when a budget stopped the search early
  bool timed_out = false; ///< the deadline (not the node budget) fired
};

/// Maximum-welfare feasible allocation (Problem 1).
[[nodiscard]] ExactResult solve_exact(const AuctionInstance& instance,
                                      ExactOptions options = {});

}  // namespace ssa
