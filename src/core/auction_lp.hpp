#pragma once
/// \file auction_lp.hpp
/// The paper's LP relaxations (1) (unweighted) and (4) (edge-weighted) in
/// one builder: the coefficient of column (v, T) in row (u, j) is
/// wbar(v, u) when pi(v) < pi(u) and j in T (in unweighted graphs wbar is 1
/// on edges), the per-bidder convexity row caps sum_T x_{v,T} at 1, and the
/// (u, j) rows have right-hand side rho.
///
/// Two solution paths:
///  - explicit: enumerate all 2^k - 1 bundles per bidder (k <= 12);
///  - column generation with demand oracles (Section 2.2): bidder-specific
///    prices p_{v,j} = sum_{u: v in Gamma_pi(u)} wbar(v,u) * y_{u,j} turn
///    the dual separation problem into a demand query.

#include <vector>

#include "core/instance.hpp"
#include "lp/column_generation.hpp"
#include "lp/lp_model.hpp"

namespace ssa {

/// One non-zero of the fractional allocation.
struct FractionalColumn {
  int bidder = 0;
  Bundle bundle = kEmptyBundle;
  double x = 0.0;
};

/// Fractional optimum of LP (1)/(4).
struct FractionalSolution {
  lp::SolveStatus status = lp::SolveStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<FractionalColumn> columns;  ///< x > 0 entries only
};

/// Row index of constraint (u, j) in the master LP (needed by extensions).
[[nodiscard]] constexpr int channel_row(std::size_t u, int j, int k) {
  return static_cast<int>(u) * k + j;
}

/// Builds the master LP rows (no columns) for an instance: n*k rows
/// "(u,j) <= rho" followed by n rows "sum_T x_{v,T} <= 1".
[[nodiscard]] lp::LinearProgram build_master_rows(const AuctionInstance& instance);

/// Column entries of variable (v, T) for the master LP.
[[nodiscard]] std::vector<lp::ColumnEntry> bundle_column(
    const AuctionInstance& instance, int bidder, Bundle bundle);

/// Solves the LP by explicit bundle enumeration; requires k <= 12.
/// Columns with zero value are skipped (they cannot help a packing LP).
[[nodiscard]] FractionalSolution solve_auction_lp(
    const AuctionInstance& instance, lp::SimplexOptions options = {});

/// Statistics of a column-generation solve (E6 measures these).
struct ColGenStats {
  int rounds = 0;
  int columns_generated = 0;
  bool proved_optimal = false;
};

/// Solves the LP with demand-oracle column generation; works for any k.
[[nodiscard]] FractionalSolution solve_auction_lp_colgen(
    const AuctionInstance& instance, ColGenStats* stats = nullptr,
    lp::ColumnGenerationOptions options = {});

}  // namespace ssa
