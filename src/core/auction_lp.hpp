#pragma once
/// \file auction_lp.hpp
/// The paper's LP relaxations (1) (unweighted) and (4) (edge-weighted) in
/// one builder: the coefficient of column (v, T) in row (u, j) is
/// wbar(v, u) when pi(v) < pi(u) and j in T (in unweighted graphs wbar is 1
/// on edges), the per-bidder convexity row caps sum_T x_{v,T} at 1, and the
/// (u, j) rows have right-hand side rho.
///
/// Two solution paths:
///  - explicit: enumerate all 2^k - 1 bundles per bidder (k <= 12);
///  - column generation with demand oracles (Section 2.2): bidder-specific
///    prices p_{v,j} = sum_{u: v in Gamma_pi(u)} wbar(v,u) * y_{u,j} turn
///    the dual separation problem into a demand query.

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "lp/column_generation.hpp"
#include "lp/lp_model.hpp"

namespace ssa {

/// One non-zero of the fractional allocation.
struct FractionalColumn {
  int bidder = 0;
  Bundle bundle = kEmptyBundle;
  double x = 0.0;
};

/// Fractional optimum of LP (1)/(4).
struct FractionalSolution {
  lp::SolveStatus status = lp::SolveStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<FractionalColumn> columns;  ///< x > 0 entries only
  /// Simplex pivots spent producing this solution. An in-process run
  /// diagnostic, NOT part of the payload: the wire/snapshot codec skips it
  /// (SolveReport::pivots is the serialized counterpart) and payload
  /// equality ignores it -- warm and cold solves of one instance disagree
  /// here by design while agreeing on everything above.
  long long pivots = 0;
};

/// Warm-start side channel of the explicit LP path. Runtime-only: never
/// serialized, never part of a cache key. `hint`, when set, is installed
/// by the engine (falling back to a cold solve on any incompatibility --
/// the payload is warm/cold-invariant, see lp/simplex.hpp); `exported`,
/// when set, receives the optimal basis of this solve; and
/// `columns_per_bidder`, when set, receives each bidder's structural
/// column span, which is what the delta remaps below consume.
struct LpWarmStart {
  const lp::BasisSnapshot* hint = nullptr;
  lp::BasisSnapshot* exported = nullptr;                     ///< out
  std::vector<std::uint32_t>* columns_per_bidder = nullptr;  ///< out
  bool warm_started = false;                                 ///< out
};

/// Row index of constraint (u, j) in the master LP (needed by extensions).
[[nodiscard]] constexpr int channel_row(std::size_t u, int j, int k) {
  return static_cast<int>(u) * k + j;
}

/// Deterministic unit in [0, 1) from (bidder, bundle) -- a splitmix64 mix.
/// The shared ingredient of the symmetry-breaking lift below; exposed so
/// the asymmetric column-generation path (asymmetric_colgen.cpp) lifts its
/// master AND its pricing oracle with the exact same per-column unit.
[[nodiscard]] double tiebreak_unit(std::size_t v, Bundle t);

/// Relative scale of the symmetry-breaking lift. Must exceed the engine's
/// optimality tolerance (1e-9) by enough that a previously tied vertex
/// shows a strictly improving reduced cost, and stay far inside every
/// consumer's comparison tolerance (colgen equality allows 1e-6 relative):
/// the lift moves the reported LP value by at most kTiebreakScale relative.
inline constexpr double kTiebreakScale = 1e-7;

/// Objective coefficient of column (v, t) under the symmetry-breaking
/// lift: \p value plus a deterministic per-column relative bump. The lift
/// only ever INCREASES a coefficient, so a lifted LP value stays a valid
/// upper bound on the integral optimum; it depends only on (bidder,
/// bundle), so churn variants of one structure are lifted identically and
/// basis/column-pool reuse is unaffected.
[[nodiscard]] inline double lifted_value(double value, std::size_t v,
                                         Bundle t) {
  return value * (1.0 + kTiebreakScale * tiebreak_unit(v, t));
}

/// Builds the master LP rows (no columns) for an instance: n*k rows
/// "(u,j) <= rho" followed by n rows "sum_T x_{v,T} <= 1".
[[nodiscard]] lp::LinearProgram build_master_rows(const AuctionInstance& instance);

/// Column entries of variable (v, T) for the master LP.
[[nodiscard]] std::vector<lp::ColumnEntry> bundle_column(
    const AuctionInstance& instance, int bidder, Bundle bundle);

/// Solves the LP by explicit bundle enumeration; requires k <= 12.
/// Columns with zero value are skipped (they cannot help a packing LP).
/// \p warm, when non-null, threads a basis hint in and the optimal basis
/// out (see LpWarmStart); the result is identical to the cold solve's
/// whenever the optimal vertex is unique.
[[nodiscard]] FractionalSolution solve_auction_lp(
    const AuctionInstance& instance, lp::SimplexOptions options = {},
    LpWarmStart* warm = nullptr);

/// Remaps an optimal basis of instance A into a warm-start hint for A plus
/// one bidder appended as vertex old_n (any ordering position): old channel
/// rows and old structural columns keep their indices, old convexity rows
/// shift past the new bidder's channel rows, and every new row starts with
/// its own slack basic. The delta re-solve path: build the grown LP as
/// usual, install the remapped basis, and let the engine's restricted
/// phase-1 repair absorb the new bidder's rows instead of re-pivoting from
/// scratch. \p old_columns_per_bidder and \p new_bidder_columns are the
/// column spans of the donor solve and of the appended bidder (the latter
/// = the new bidder's positive-value bundles).
[[nodiscard]] lp::BasisSnapshot remap_basis_for_added_bidder(
    const lp::BasisSnapshot& basis, std::size_t old_n, int k,
    const std::vector<std::uint32_t>& old_columns_per_bidder,
    std::uint32_t new_bidder_columns);

/// Remaps an optimal basis of instance A into a warm-start hint for A with
/// bidder \p removed truly dropped from the graph, later vertices shifted
/// down by one. (Note this is NOT AuctionInstance::without_bidder, which
/// zeroes the valuation but keeps the vertex and all its LP rows; the
/// delta helpers model a bidder set that actually changed size.) The
/// removed bidder's columns and
/// rows leave the basis; every orphaned basis position falls back to the
/// slack of its row, and install-time validation re-repairs the rest.
[[nodiscard]] lp::BasisSnapshot remap_basis_for_removed_bidder(
    const lp::BasisSnapshot& basis, std::size_t old_n, int k, int removed,
    const std::vector<std::uint32_t>& old_columns_per_bidder);

/// Statistics of a column-generation solve (E6 measures these).
struct ColGenStats {
  int rounds = 0;
  int columns_generated = 0;
  bool proved_optimal = false;
};

/// Solves the LP with demand-oracle column generation; works for any k.
[[nodiscard]] FractionalSolution solve_auction_lp_colgen(
    const AuctionInstance& instance, ColGenStats* stats = nullptr,
    lp::ColumnGenerationOptions options = {});

}  // namespace ssa
