#pragma once
/// \file greedy.hpp
/// Baseline allocation heuristics the experiments compare against:
///  - greedy by bidder value,
///  - greedy by bid density (value / bundle size),
///  - the local-ratio / opportunity-cost rho-approximation for k = 1 on
///    unweighted graphs (Akcoglu et al. [1], Ye/Borodin [32]), which the
///    paper cites as the single-channel specialization of its framework.

#include "core/instance.hpp"

namespace ssa {

/// Bidders in decreasing max-value order each take the feasible bundle of
/// maximum value (enumerates bundles; requires k <= 12).
[[nodiscard]] Allocation greedy_by_value(const AuctionInstance& instance);

/// All (bidder, bundle) pairs sorted by value / |T|, single pass with
/// feasibility checks (requires k <= 12).
[[nodiscard]] Allocation greedy_by_density(const AuctionInstance& instance);

/// Local-ratio maximum-weight independent set for k = 1 on an unweighted
/// conflict graph: processes vertices in descending pi subtracting residual
/// value from backward neighbors, then builds a maximal set in ascending pi
/// order from the positive-residual stack. Guarantees welfare >= OPT / rho(pi).
[[nodiscard]] Allocation local_ratio_single_channel(
    const AuctionInstance& instance);

/// Multi-channel extension of the local-ratio baseline: channels are
/// auctioned one at a time; channel j runs the local-ratio algorithm with
/// vertex weights equal to each bidder's *marginal* value of adding j to
/// what it already won. Handles arbitrary valuations on unweighted graphs.
/// A heuristic baseline (no approximation guarantee is claimed).
[[nodiscard]] Allocation local_ratio_per_channel(
    const AuctionInstance& instance);

/// Marginal-value greedy for the submodular-bidder setting of
/// Hoefer-Kesselheim (arXiv:1110.5753): repeatedly assign the single
/// (bidder, channel) pair of maximum marginal value
///     b_v(S_v + j) - b_v(S_v)
/// among the pairs that keep every channel's holder set conflict-free,
/// until no pair improves welfare. For submodular valuations marginals
/// only shrink as bundles grow, so stopping at the first non-positive
/// maximum is lossless there; on arbitrary valuations (where a
/// complementary bidder's marginal could *rise* later) it is a heuristic
/// like the other greedy baselines. Ties break by bidder id, then channel
/// id (deterministic). The conflict check is binary and therefore
/// conservative on weighted graphs, exactly like greedy_by_value.
[[nodiscard]] Allocation greedy_submodular(const AuctionInstance& instance);

}  // namespace ssa
