#pragma once
/// \file rounding.hpp
/// The paper's LP-rounding algorithms.
///
///  - Algorithm 1 (unweighted): split the LP solution into bundles of size
///    <= sqrt(k) and > sqrt(k); round each vertex independently with
///    probability x_{v,T} / (2 sqrt(k) rho); resolve conflicts toward the
///    pi-earlier vertex. Expected welfare >= b* / (8 sqrt(k) rho) (Thm 3).
///  - Algorithm 2 (weighted): probabilities x_{v,T} / (4 sqrt(k) rho) and
///    partial conflict resolution (drop v when the incoming symmetric
///    weight from earlier vertices sharing a channel reaches 1/2), giving a
///    partly-feasible allocation, Eq. (5); >= b*/(16 sqrt(k) rho) (Lem 7).
///  - Algorithm 3: turns a partly-feasible allocation into a feasible one,
///    losing at most a ceil(log n) factor (Lemma 8).
///
/// On top: best-of-R Monte-Carlo wrapper (parallelized) and the
/// deterministic pairwise-independent-seed variant mentioned in Section 5.

#include <cstdint>

#include "core/auction_lp.hpp"
#include "core/instance.hpp"
#include "support/deadline.hpp"
#include "support/pairwise.hpp"
#include "support/random.hpp"

namespace ssa {

/// Algorithm 1. Requires an unweighted instance. \p scale_denominator
/// overrides the 2*sqrt(k)*rho scaling when positive (the asymmetric
/// variant of Section 6 passes 2*k*rho).
[[nodiscard]] Allocation round_unweighted(const AuctionInstance& instance,
                                          const FractionalSolution& fractional,
                                          Rng& rng,
                                          double scale_denominator = 0.0);

/// Algorithm 2: returns a partly-feasible allocation (Eq. (5) holds).
[[nodiscard]] Allocation round_weighted_partial(
    const AuctionInstance& instance, const FractionalSolution& fractional,
    Rng& rng, double scale_denominator = 0.0);

/// Condition (5): incoming symmetric weight from pi-earlier vertices
/// sharing a channel is < 1/2 for every vertex.
[[nodiscard]] bool is_partly_feasible(const AuctionInstance& instance,
                                      const Allocation& allocation);

/// Algorithm 3: decomposes a partly-feasible allocation into <= ceil(log n)
/// feasible candidates and returns the best.
[[nodiscard]] Allocation finalize_partial(const AuctionInstance& instance,
                                          const Allocation& partial);

/// One full rounding pass: Algorithm 1 for unweighted instances, Algorithms
/// 2 + 3 for weighted ones.
[[nodiscard]] Allocation round_once(const AuctionInstance& instance,
                                    const FractionalSolution& fractional,
                                    Rng& rng);

/// Best of \p repetitions independent rounding passes (parallel, but
/// deterministic for a fixed \p seed regardless of thread count as long as
/// \p deadline does not fire). Repetition 0 always runs so the result is a
/// feasible allocation even under an expired deadline; repetitions skipped
/// after expiry set *\p timed_out (when non-null) -- a truncated run is
/// reported, never silent.
[[nodiscard]] Allocation best_of_rounds(const AuctionInstance& instance,
                                        const FractionalSolution& fractional,
                                        int repetitions, std::uint64_t seed,
                                        const Deadline& deadline = {},
                                        bool* timed_out = nullptr);

/// Deterministic rounding: evaluates every seed of a pairwise-independent
/// family (per-vertex thresholds quantized to multiples of 1/p) and keeps
/// the best allocation. The family average matches the randomized bound up
/// to the 1/p quantization, so the maximum attains it.
[[nodiscard]] Allocation derandomized_round(const AuctionInstance& instance,
                                            const FractionalSolution& fractional,
                                            const PairwiseFamily& family);

}  // namespace ssa
