#pragma once
/// \file allocation.hpp
/// Channel allocations S : V -> 2^[k] and their feasibility/welfare
/// (Problem 1 of the paper).

#include <span>
#include <vector>

#include "core/bundle.hpp"
#include "graph/conflict_graph.hpp"

namespace ssa {

/// One bundle per bidder; bundles[v] == kEmptyBundle means v loses.
struct Allocation {
  std::vector<Bundle> bundles;

  [[nodiscard]] std::size_t size() const noexcept { return bundles.size(); }
  [[nodiscard]] Bundle operator[](std::size_t v) const { return bundles[v]; }

  /// Number of bidders with a non-empty bundle.
  [[nodiscard]] std::size_t winners() const noexcept;
};

/// Bidders assigned channel \p channel.
[[nodiscard]] std::vector<int> channel_holders(const Allocation& allocation,
                                               int channel);

/// Feasibility per Problem 1: for every channel, the holders form an
/// independent set of \p graph.
[[nodiscard]] bool is_feasible(const Allocation& allocation,
                               const ConflictGraph& graph, int num_channels);

/// Feasibility with per-channel conflict graphs (Section 6).
[[nodiscard]] bool is_feasible_asymmetric(
    const Allocation& allocation, std::span<const ConflictGraph> graphs);

}  // namespace ssa
