#include "core/asymmetric.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

#include "core/best_rounds.hpp"
#include "graph/inductive_independence.hpp"
#include "lp/simplex.hpp"
#include "support/parallel.hpp"

namespace ssa {

AsymmetricInstance::AsymmetricInstance(std::vector<ConflictGraph> channel_graphs,
                                       Ordering order,
                                       std::vector<ValuationPtr> valuations,
                                       double rho)
    : graphs_(std::move(channel_graphs)),
      order_(std::move(order)),
      rho_(rho),
      valuations_(std::move(valuations)) {
  if (graphs_.empty() ||
      graphs_.size() > static_cast<std::size_t>(kMaxChannels)) {
    throw std::invalid_argument(
        "AsymmetricInstance: channel count must be in [1, " +
        std::to_string(kMaxChannels) + "], got " +
        std::to_string(graphs_.size()));
  }
  const std::size_t n = valuations_.size();
  for (const auto& graph : graphs_) {
    if (graph.size() != n) {
      throw std::invalid_argument("AsymmetricInstance: graph size mismatch");
    }
  }
  for (const auto& valuation : valuations_) {
    if (!valuation || valuation->num_channels() != num_channels()) {
      throw std::invalid_argument("AsymmetricInstance: valuation mismatch");
    }
  }
  position_ = ordering_positions(order_);
  for (const auto& graph : graphs_) graph.ensure_adjacency();
  if (rho_ <= 0.0) {
    for (const auto& graph : graphs_) {
      rho_ = std::max(rho_, rho_of_ordering(graph, order_).value);
    }
  }
  rho_ = std::max(rho_, 1.0);
  unweighted_ = true;
  for (const auto& graph : graphs_) unweighted_ = unweighted_ && graph.is_unweighted();
}

AsymmetricInstance AsymmetricInstance::with_valuation(
    std::size_t v, ValuationPtr valuation) const {
  std::vector<ValuationPtr> valuations = valuations_;
  valuations.at(v) = std::move(valuation);
  return AsymmetricInstance(graphs_, order_, std::move(valuations), rho_);
}

double AsymmetricInstance::welfare(const Allocation& allocation) const {
  double total = 0.0;
  for (std::size_t v = 0; v < num_bidders(); ++v) {
    if (allocation.bundles[v] != kEmptyBundle) {
      total += value(v, allocation.bundles[v]);
    }
  }
  return total;
}

FractionalSolution solve_asymmetric_lp(const AsymmetricInstance& instance,
                                       lp::SimplexOptions options) {
  const int k = instance.num_channels();
  // This path materializes every one of the 2^k - 1 bundles per bidder;
  // beyond the explicit limit the caller must use the demand-oracle
  // column-generation solver (solve_asymmetric_lp_colgen) instead.
  if (k > AsymmetricInstance::kExplicitChannelLimit) {
    throw std::invalid_argument(
        "solve_asymmetric_lp: k <= " +
        std::to_string(AsymmetricInstance::kExplicitChannelLimit) +
        " required, got " + std::to_string(k) +
        " (use asymmetric-colgen for larger instances)");
  }
  const std::size_t n = instance.num_bidders();

  lp::LinearProgram master(lp::Objective::kMaximize);
  for (std::size_t u = 0; u < n; ++u) {
    for (int j = 0; j < k; ++j) {
      master.add_row(lp::RowSense::kLessEqual, instance.rho());
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    master.add_row(lp::RowSense::kLessEqual, 1.0);
  }

  std::vector<std::pair<int, Bundle>> meaning;
  for (std::size_t v = 0; v < n; ++v) {
    for (Bundle t = 1; t < num_bundles(k); ++t) {
      const double value = instance.value(v, t);
      if (value <= 0.0) continue;
      std::vector<lp::ColumnEntry> entries;
      for (int j = 0; j < k; ++j) {
        if (!bundle_has(t, j)) continue;
        const auto& graph = instance.graph(j);
        for (int u : graph.neighbors(v)) {
          if (instance.positions()[static_cast<std::size_t>(u)] <=
              instance.positions()[v]) {
            continue;
          }
          const double wbar = graph.coupling_weight(v, static_cast<std::size_t>(u));
          if (wbar > 0.0) {
            entries.push_back({channel_row(static_cast<std::size_t>(u), j, k), wbar});
          }
        }
      }
      entries.push_back({static_cast<int>(n) * k + static_cast<int>(v), 1.0});
      master.add_column(value, std::move(entries));
      meaning.emplace_back(static_cast<int>(v), t);
    }
  }

  const lp::Solution solution = lp::solve(master, options);
  FractionalSolution result;
  result.status = solution.status;
  result.objective = solution.objective;
  result.pivots = solution.pivots;
  if (solution.status != lp::SolveStatus::kOptimal) return result;
  for (std::size_t j = 0; j < meaning.size(); ++j) {
    if (solution.x[j] > 1e-9) {
      result.columns.push_back(
          FractionalColumn{meaning[j].first, meaning[j].second, solution.x[j]});
    }
  }
  return result;
}

Allocation round_asymmetric(const AsymmetricInstance& instance,
                            const FractionalSolution& fractional, Rng& rng) {
  if (!instance.unweighted()) {
    throw std::invalid_argument(
        "round_asymmetric: unweighted per-channel graphs only");
  }
  const std::size_t n = instance.num_bidders();
  const int k = instance.num_channels();
  const double denominator = 2.0 * static_cast<double>(k) * instance.rho();

  // Rounding stage: one draw per bidder over its fractional columns.
  std::vector<std::vector<const FractionalColumn*>> by_bidder(n);
  for (const FractionalColumn& column : fractional.columns) {
    by_bidder[static_cast<std::size_t>(column.bidder)].push_back(&column);
  }
  Allocation allocation;
  allocation.bundles.assign(n, kEmptyBundle);
  for (std::size_t v = 0; v < n; ++v) {
    const double u = rng.uniform();
    double cumulative = 0.0;
    for (const FractionalColumn* column : by_bidder[v]) {
      cumulative += column->x / denominator;
      if (u < cumulative) {
        allocation.bundles[v] = column->bundle;
        break;
      }
    }
  }

  // Conflict resolution, ascending pi: as in Algorithm 1, a conflict with a
  // kept earlier vertex on ANY channel j of v's bundle drops v's ENTIRE
  // bundle (not just channel j). This is deliberate -- see the contract in
  // asymmetric.hpp: per-channel trimming would leave sub-bundles the
  // survival analysis never values, so the whole set is charged.
  for (int v : instance.order()) {
    const std::size_t sv = static_cast<std::size_t>(v);
    if (allocation.bundles[sv] == kEmptyBundle) continue;
    bool removed = false;
    for (int j = 0; !removed && j < k; ++j) {
      if (!bundle_has(allocation.bundles[sv], j)) continue;
      const auto& graph = instance.graph(j);
      for (int u : graph.neighbors(sv)) {
        const std::size_t su = static_cast<std::size_t>(u);
        if (instance.positions()[su] < instance.positions()[sv] &&
            bundle_has(allocation.bundles[su], j)) {
          allocation.bundles[sv] = kEmptyBundle;
          removed = true;
          break;
        }
      }
    }
  }
  return allocation;
}

Allocation best_asymmetric_rounds(const AsymmetricInstance& instance,
                                  const FractionalSolution& fractional,
                                  int repetitions, std::uint64_t seed,
                                  const Deadline& deadline, bool* timed_out) {
  // round_asymmetric's domain check, hoisted out of the parallel loop: an
  // exception may not escape an OpenMP worker.
  if (!instance.unweighted()) {
    throw std::invalid_argument(
        "round_asymmetric: unweighted per-channel graphs only");
  }
  return detail::best_rounds(
      instance.num_bidders(), repetitions, seed, deadline, timed_out,
      [&](Rng& rng) { return round_asymmetric(instance, fractional, rng); },
      [&](const Allocation& a) { return instance.welfare(a); });
}

namespace {

/// Whether bidder v can add bundle t against the current per-channel
/// assignment: no neighbor in graph j may already hold channel j.
bool fits_asymmetric(const AsymmetricInstance& instance,
                     const std::vector<Bundle>& assigned, std::size_t v,
                     Bundle t) {
  const int k = instance.num_channels();
  for (int j = 0; j < k; ++j) {
    if (!bundle_has(t, j)) continue;
    for (int u : instance.graph(j).neighbors(v)) {
      if (bundle_has(assigned[static_cast<std::size_t>(u)], j)) return false;
    }
  }
  return true;
}

/// DFS over bidders for per-channel graphs; the structural twin of
/// core/exact.cpp's ExactSearch with the independence check swapped in.
class AsymmetricSearch {
 public:
  AsymmetricSearch(const AsymmetricInstance& instance,
                   const ExactOptions& options)
      : instance_(instance), options_(options) {
    const std::size_t n = instance.num_bidders();
    const int k = instance.num_channels();
    assigned_.assign(n, kEmptyBundle);
    candidates_.resize(n);
    remaining_max_.assign(n + 1, 0.0);
    for (std::size_t v = 0; v < n; ++v) {
      for (Bundle t = 1; t < num_bundles(k); ++t) {
        if (instance.value(v, t) > 0.0) candidates_[v].push_back(t);
      }
      std::sort(candidates_[v].begin(), candidates_[v].end(),
                [&](Bundle a, Bundle b) {
                  return instance.value(v, a) > instance.value(v, b);
                });
    }
    for (std::size_t v = n; v-- > 0;) {
      const double vmax =
          candidates_[v].empty() ? 0.0 : instance.value(v, candidates_[v][0]);
      remaining_max_[v] = remaining_max_[v + 1] + vmax;
    }
  }

  ExactResult run() {
    budget_ = options_.node_budget;
    best_welfare_ = 0.0;
    best_.bundles.assign(instance_.num_bidders(), kEmptyBundle);
    if (options_.deadline.expired()) {
      timed_out_ = true;
    } else {
      recurse(0, 0.0);
    }
    ExactResult result;
    result.allocation = best_;
    result.welfare = best_welfare_;
    result.exact = budget_ > 0 && !timed_out_;
    result.timed_out = timed_out_;
    return result;
  }

 private:
  void recurse(std::size_t v, double welfare) {
    if (budget_-- <= 0 || timed_out_) return;
    if ((budget_ & 4095) == 0 && options_.deadline.expired()) {
      timed_out_ = true;
      return;
    }
    if (welfare > best_welfare_) {
      best_welfare_ = welfare;
      best_.bundles = assigned_;
    }
    if (v >= instance_.num_bidders()) return;
    if (welfare + remaining_max_[v] <= best_welfare_) return;  // bound

    for (Bundle t : candidates_[v]) {
      if (!fits_asymmetric(instance_, assigned_, v, t)) continue;
      assigned_[v] = t;
      recurse(v + 1, welfare + instance_.value(v, t));
      assigned_[v] = kEmptyBundle;
    }
    recurse(v + 1, welfare);  // branch: v gets nothing
  }

  const AsymmetricInstance& instance_;
  ExactOptions options_;
  std::vector<std::vector<Bundle>> candidates_;
  std::vector<double> remaining_max_;
  std::vector<Bundle> assigned_;
  Allocation best_;
  double best_welfare_ = 0.0;
  long long budget_ = 0;
  bool timed_out_ = false;
};

}  // namespace

ExactResult solve_asymmetric_exact(const AsymmetricInstance& instance,
                                   ExactOptions options) {
  if (instance.num_channels() > options.max_channels) {
    throw std::invalid_argument(
        "solve_asymmetric_exact: too many channels for B&B");
  }
  // The search prunes on binary conflicts (fits_asymmetric); weighted
  // graphs admit allocations (incoming weight < 1) that pruning would
  // never visit, so claiming exactness there would be wrong.
  if (!instance.unweighted()) {
    throw std::invalid_argument(
        "solve_asymmetric_exact: unweighted per-channel graphs only");
  }
  return AsymmetricSearch(instance, options).run();
}

namespace {

/// Shared guard of the bundle-enumerating greedy baselines.
void require_explicit_channels(const AsymmetricInstance& instance,
                               const char* who) {
  if (instance.num_channels() > AsymmetricInstance::kExplicitChannelLimit) {
    throw std::invalid_argument(
        std::string(who) + ": k <= " +
        std::to_string(AsymmetricInstance::kExplicitChannelLimit) +
        " required, got " + std::to_string(instance.num_channels()) +
        " (use asymmetric-colgen for larger instances)");
  }
}

}  // namespace

Allocation greedy_by_value_asymmetric(const AsymmetricInstance& instance) {
  require_explicit_channels(instance, "greedy_by_value_asymmetric");
  const int k = instance.num_channels();
  const std::size_t n = instance.num_bidders();

  std::vector<double> max_values(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    for (Bundle t = 1; t < num_bundles(k); ++t) {
      max_values[v] = std::max(max_values[v], instance.value(v, t));
    }
  }
  std::vector<std::size_t> bidders(n);
  std::iota(bidders.begin(), bidders.end(), 0);
  std::stable_sort(bidders.begin(), bidders.end(),
                   [&](std::size_t a, std::size_t b) {
                     return max_values[a] > max_values[b];
                   });

  Allocation allocation;
  allocation.bundles.assign(n, kEmptyBundle);
  for (std::size_t v : bidders) {
    Bundle best = kEmptyBundle;
    double best_value = 0.0;
    for (Bundle t = 1; t < num_bundles(k); ++t) {
      const double value = instance.value(v, t);
      if (value > best_value &&
          fits_asymmetric(instance, allocation.bundles, v, t)) {
        best = t;
        best_value = value;
      }
    }
    allocation.bundles[v] = best;
  }
  return allocation;
}

Allocation greedy_by_density_asymmetric(const AsymmetricInstance& instance) {
  require_explicit_channels(instance, "greedy_by_density_asymmetric");
  const int k = instance.num_channels();
  const std::size_t n = instance.num_bidders();

  struct Bid {
    std::size_t bidder;
    Bundle bundle;
    double density;
  };
  std::vector<Bid> bids;
  for (std::size_t v = 0; v < n; ++v) {
    for (Bundle t = 1; t < num_bundles(k); ++t) {
      const double value = instance.value(v, t);
      if (value > 0.0) {
        bids.push_back(Bid{v, t, value / bundle_size(t)});
      }
    }
  }
  std::stable_sort(bids.begin(), bids.end(), [](const Bid& a, const Bid& b) {
    return a.density > b.density;
  });

  Allocation allocation;
  allocation.bundles.assign(n, kEmptyBundle);
  for (const Bid& bid : bids) {
    if (allocation.bundles[bid.bidder] != kEmptyBundle) continue;
    if (fits_asymmetric(instance, allocation.bundles, bid.bidder, bid.bundle)) {
      allocation.bundles[bid.bidder] = bid.bundle;
    }
  }
  return allocation;
}

}  // namespace ssa
