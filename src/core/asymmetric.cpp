#include "core/asymmetric.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/inductive_independence.hpp"
#include "lp/simplex.hpp"
#include "support/parallel.hpp"

namespace ssa {

AsymmetricInstance::AsymmetricInstance(std::vector<ConflictGraph> channel_graphs,
                                       Ordering order,
                                       std::vector<ValuationPtr> valuations,
                                       double rho)
    : graphs_(std::move(channel_graphs)),
      order_(std::move(order)),
      rho_(rho),
      valuations_(std::move(valuations)) {
  if (graphs_.empty() || graphs_.size() > static_cast<std::size_t>(kMaxChannels)) {
    throw std::invalid_argument("AsymmetricInstance: bad channel count");
  }
  const std::size_t n = valuations_.size();
  for (const auto& graph : graphs_) {
    if (graph.size() != n) {
      throw std::invalid_argument("AsymmetricInstance: graph size mismatch");
    }
  }
  for (const auto& valuation : valuations_) {
    if (!valuation || valuation->num_channels() != num_channels()) {
      throw std::invalid_argument("AsymmetricInstance: valuation mismatch");
    }
  }
  position_ = ordering_positions(order_);
  for (const auto& graph : graphs_) graph.ensure_adjacency();
  if (rho_ <= 0.0) {
    for (const auto& graph : graphs_) {
      rho_ = std::max(rho_, rho_of_ordering(graph, order_).value);
    }
  }
  rho_ = std::max(rho_, 1.0);
  unweighted_ = true;
  for (const auto& graph : graphs_) unweighted_ = unweighted_ && graph.is_unweighted();
}

double AsymmetricInstance::welfare(const Allocation& allocation) const {
  double total = 0.0;
  for (std::size_t v = 0; v < num_bidders(); ++v) {
    if (allocation.bundles[v] != kEmptyBundle) {
      total += value(v, allocation.bundles[v]);
    }
  }
  return total;
}

FractionalSolution solve_asymmetric_lp(const AsymmetricInstance& instance,
                                       lp::SimplexOptions options) {
  const int k = instance.num_channels();
  if (k > 12) {
    throw std::invalid_argument("solve_asymmetric_lp: k <= 12 required");
  }
  const std::size_t n = instance.num_bidders();

  lp::LinearProgram master(lp::Objective::kMaximize);
  for (std::size_t u = 0; u < n; ++u) {
    for (int j = 0; j < k; ++j) {
      master.add_row(lp::RowSense::kLessEqual, instance.rho());
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    master.add_row(lp::RowSense::kLessEqual, 1.0);
  }

  std::vector<std::pair<int, Bundle>> meaning;
  for (std::size_t v = 0; v < n; ++v) {
    for (Bundle t = 1; t < num_bundles(k); ++t) {
      const double value = instance.value(v, t);
      if (value <= 0.0) continue;
      std::vector<lp::ColumnEntry> entries;
      for (int j = 0; j < k; ++j) {
        if (!bundle_has(t, j)) continue;
        const auto& graph = instance.graph(j);
        for (int u : graph.neighbors(v)) {
          if (instance.positions()[static_cast<std::size_t>(u)] <=
              instance.positions()[v]) {
            continue;
          }
          const double wbar = graph.coupling_weight(v, static_cast<std::size_t>(u));
          if (wbar > 0.0) {
            entries.push_back({channel_row(static_cast<std::size_t>(u), j, k), wbar});
          }
        }
      }
      entries.push_back({static_cast<int>(n) * k + static_cast<int>(v), 1.0});
      master.add_column(value, std::move(entries));
      meaning.emplace_back(static_cast<int>(v), t);
    }
  }

  const lp::Solution solution = lp::solve(master, options);
  FractionalSolution result;
  result.status = solution.status;
  result.objective = solution.objective;
  if (solution.status != lp::SolveStatus::kOptimal) return result;
  for (std::size_t j = 0; j < meaning.size(); ++j) {
    if (solution.x[j] > 1e-9) {
      result.columns.push_back(
          FractionalColumn{meaning[j].first, meaning[j].second, solution.x[j]});
    }
  }
  return result;
}

Allocation round_asymmetric(const AsymmetricInstance& instance,
                            const FractionalSolution& fractional, Rng& rng) {
  if (!instance.unweighted()) {
    throw std::invalid_argument(
        "round_asymmetric: unweighted per-channel graphs only");
  }
  const std::size_t n = instance.num_bidders();
  const int k = instance.num_channels();
  const double denominator = 2.0 * static_cast<double>(k) * instance.rho();

  // Rounding stage: one draw per bidder over its fractional columns.
  std::vector<std::vector<const FractionalColumn*>> by_bidder(n);
  for (const FractionalColumn& column : fractional.columns) {
    by_bidder[static_cast<std::size_t>(column.bidder)].push_back(&column);
  }
  Allocation allocation;
  allocation.bundles.assign(n, kEmptyBundle);
  for (std::size_t v = 0; v < n; ++v) {
    const double u = rng.uniform();
    double cumulative = 0.0;
    for (const FractionalColumn* column : by_bidder[v]) {
      cumulative += column->x / denominator;
      if (u < cumulative) {
        allocation.bundles[v] = column->bundle;
        break;
      }
    }
  }

  // Conflict resolution: ascending pi; v is dropped entirely when some kept
  // earlier vertex shares channel j and conflicts in graph j.
  for (int v : instance.order()) {
    const std::size_t sv = static_cast<std::size_t>(v);
    if (allocation.bundles[sv] == kEmptyBundle) continue;
    bool removed = false;
    for (int j = 0; !removed && j < k; ++j) {
      if (!bundle_has(allocation.bundles[sv], j)) continue;
      const auto& graph = instance.graph(j);
      for (int u : graph.neighbors(sv)) {
        const std::size_t su = static_cast<std::size_t>(u);
        if (instance.positions()[su] < instance.positions()[sv] &&
            bundle_has(allocation.bundles[su], j)) {
          allocation.bundles[sv] = kEmptyBundle;
          removed = true;
          break;
        }
      }
    }
  }
  return allocation;
}

Allocation best_asymmetric_rounds(const AsymmetricInstance& instance,
                                  const FractionalSolution& fractional,
                                  int repetitions, std::uint64_t seed) {
  if (repetitions < 1) {
    throw std::invalid_argument("best_asymmetric_rounds: repetitions");
  }
  Rng base(seed);
  std::vector<Allocation> allocations(static_cast<std::size_t>(repetitions));
  std::vector<double> welfare(static_cast<std::size_t>(repetitions), 0.0);
  parallel_for(repetitions, [&](std::ptrdiff_t r) {
    Rng child = base.split(static_cast<std::uint64_t>(r));
    allocations[static_cast<std::size_t>(r)] =
        round_asymmetric(instance, fractional, child);
    welfare[static_cast<std::size_t>(r)] =
        instance.welfare(allocations[static_cast<std::size_t>(r)]);
  });
  std::size_t best = 0;
  for (std::size_t r = 1; r < welfare.size(); ++r) {
    if (welfare[r] > welfare[best]) best = r;
  }
  return allocations[best];
}

}  // namespace ssa
