#pragma once
/// \file edge_lp.hpp
/// The edge-based LP of Section 2.1 for weighted independent set (k = 1):
///     max sum b_v x_v   s.t.  x_u + x_v <= 1 on edges, 0 <= x <= 1.
/// Its integrality gap is n/2 on cliques, which experiment E6 contrasts
/// with the inductive-independence LP (1).

#include <vector>

#include "core/instance.hpp"
#include "lp/lp_model.hpp"

namespace ssa {

struct EdgeLpResult {
  double lp_value = 0.0;
  std::vector<double> x;       ///< fractional vertex values
  Allocation rounded;          ///< greedy rounding by decreasing x
  double rounded_welfare = 0.0;
};

/// Solves the edge LP for a single-channel unweighted instance and rounds
/// greedily by decreasing fractional value.
[[nodiscard]] EdgeLpResult solve_edge_lp(const AuctionInstance& instance);

}  // namespace ssa
