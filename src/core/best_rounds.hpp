#pragma once
/// \file best_rounds.hpp
/// Shared skeleton of the best-of-R Monte-Carlo wrappers (symmetric
/// best_of_rounds and asymmetric best_asymmetric_rounds): parallel
/// repetitions with per-repetition split RNGs, cooperative deadline
/// truncation (repetition 0 always runs so the result is feasible even
/// under an expired budget; skipped repetitions flag *timed_out), and the
/// best-welfare pick. Centralized so the two families' time-budget
/// semantics cannot diverge.

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/allocation.hpp"
#include "support/deadline.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"

namespace ssa::detail {

/// \p round_once: Rng& -> Allocation (one independent rounding pass).
/// \p welfare_of: const Allocation& -> double.
/// Deterministic for a fixed \p seed regardless of thread count as long as
/// \p deadline does not fire.
template <typename RoundOnce, typename WelfareOf>
Allocation best_rounds(std::size_t num_bidders, int repetitions,
                       std::uint64_t seed, const Deadline& deadline,
                       bool* timed_out, const RoundOnce& round_once,
                       const WelfareOf& welfare_of) {
  if (repetitions < 1) {
    throw std::invalid_argument("best_rounds: repetitions must be >= 1");
  }
  Rng base(seed);
  std::vector<Allocation> allocations(static_cast<std::size_t>(repetitions));
  std::vector<double> welfare(static_cast<std::size_t>(repetitions), 0.0);
  std::atomic<bool> truncated{false};
  parallel_for(repetitions, [&](std::ptrdiff_t r) {
    // Cooperative deadline: repetition 0 always runs; later repetitions
    // are skipped once it fires and the truncation is flagged.
    if (r != 0 && deadline.expired()) {
      truncated.store(true, std::memory_order_relaxed);
      allocations[static_cast<std::size_t>(r)].bundles.assign(num_bidders,
                                                              kEmptyBundle);
      return;
    }
    Rng child = base.split(static_cast<std::uint64_t>(r));
    allocations[static_cast<std::size_t>(r)] = round_once(child);
    welfare[static_cast<std::size_t>(r)] =
        welfare_of(allocations[static_cast<std::size_t>(r)]);
  });
  if (timed_out != nullptr && truncated.load(std::memory_order_relaxed)) {
    *timed_out = true;
  }
  std::size_t best = 0;
  for (std::size_t r = 1; r < welfare.size(); ++r) {
    if (welfare[r] > welfare[best]) best = r;
  }
  return allocations[best];
}

}  // namespace ssa::detail
