#pragma once
/// \file instance.hpp
/// The combinatorial auction with conflict graph (Problem 1): a conflict
/// graph (possibly edge-weighted), an ordering pi with its inductive
/// independence value rho, k channels, and one valuation per bidder.

#include <span>
#include <vector>

#include "core/allocation.hpp"
#include "core/bundle.hpp"
#include "core/valuation.hpp"
#include "graph/conflict_graph.hpp"
#include "graph/inductive_independence.hpp"
#include "graph/ordering.hpp"

namespace ssa {

/// Immutable auction instance.
class AuctionInstance {
 public:
  /// \p rho is the inductive independence value used in the LP right-hand
  /// sides; pass 0 to have it measured with the verifier (clamped to >= 1,
  /// since the LP scaling and the analysis assume rho >= 1).
  AuctionInstance(ConflictGraph graph, Ordering order, int num_channels,
                  std::vector<ValuationPtr> valuations, double rho = 0.0);

  [[nodiscard]] std::size_t num_bidders() const noexcept {
    return valuations_.size();
  }
  [[nodiscard]] int num_channels() const noexcept { return k_; }
  [[nodiscard]] double rho() const noexcept { return rho_; }
  [[nodiscard]] const ConflictGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const Ordering& order() const noexcept { return order_; }
  /// pi(v) for each vertex.
  [[nodiscard]] const std::vector<int>& positions() const noexcept {
    return position_;
  }
  [[nodiscard]] const Valuation& valuation(std::size_t v) const {
    return *valuations_.at(v);
  }
  [[nodiscard]] const std::vector<ValuationPtr>& valuations() const noexcept {
    return valuations_;
  }

  /// b_{v,T}.
  [[nodiscard]] double value(std::size_t v, Bundle bundle) const {
    return valuations_[v]->value(bundle);
  }

  /// Social welfare of an allocation.
  [[nodiscard]] double welfare(const Allocation& allocation) const;

  /// Feasibility per Problem 1.
  [[nodiscard]] bool feasible(const Allocation& allocation) const {
    return is_feasible(allocation, graph_, k_);
  }

  /// Whether all edge weights are binary (selects Algorithm 1 vs 2+3).
  [[nodiscard]] bool unweighted() const noexcept { return unweighted_; }

  /// A copy with bidder \p v's valuation replaced (mechanism experiments).
  [[nodiscard]] AuctionInstance with_valuation(std::size_t v,
                                               ValuationPtr valuation) const;

  /// A copy with bidder \p v's valuation zeroed out (VCG -v welfare).
  [[nodiscard]] AuctionInstance without_bidder(std::size_t v) const;

 private:
  ConflictGraph graph_;
  Ordering order_;
  std::vector<int> position_;
  int k_;
  double rho_;
  std::vector<ValuationPtr> valuations_;
  bool unweighted_;
};

}  // namespace ssa
