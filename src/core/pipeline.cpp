#include "core/pipeline.hpp"

#include <cmath>

#include "core/rounding.hpp"
#include "support/deadline.hpp"
#include "support/pairwise.hpp"

namespace ssa {

PipelineResult solve_pipeline(const AuctionInstance& instance,
                              PipelineOptions options) {
  PipelineResult result;
  const double sqrt_k =
      std::sqrt(static_cast<double>(instance.num_channels()));
  if (instance.unweighted()) {
    result.factor = 8.0 * sqrt_k * instance.rho();
  } else {
    const double log_n = std::ceil(
        std::log2(std::max<std::size_t>(instance.num_bidders(), 2)));
    result.factor = 16.0 * sqrt_k * instance.rho() * log_n;
  }
  result.used_column_generation =
      options.force_column_generation ||
      instance.num_channels() > options.explicit_limit;
  // One deadline covers the whole run; the LP and the rounding loop poll it
  // cooperatively and truncation surfaces as result.timed_out.
  const Deadline deadline = Deadline::after(options.time_budget_seconds);
  lp::SimplexOptions simplex;
  simplex.deadline = deadline;
  lp::ColumnGenerationOptions colgen;
  colgen.simplex = simplex;
  ColGenStats colgen_stats;
  result.fractional =
      result.used_column_generation
          ? solve_auction_lp_colgen(instance, &colgen_stats, colgen)
          : solve_auction_lp(instance, simplex, options.warm);
  result.pivots = result.fractional.pivots;
  result.oracle_rounds = colgen_stats.rounds;
  result.columns_generated = colgen_stats.columns_generated;
  result.warm_started = !result.used_column_generation &&
                        options.warm != nullptr && options.warm->warm_started;
  if (result.fractional.status != lp::SolveStatus::kOptimal) {
    result.timed_out = result.fractional.status == lp::SolveStatus::kTimeLimit;
    return result;
  }
  result.lp_bound_proven =
      !result.used_column_generation || colgen_stats.proved_optimal;

  result.allocation =
      best_of_rounds(instance, result.fractional, options.rounding_repetitions,
                     options.seed, deadline, &result.timed_out);
  if (options.derandomize) {
    if (deadline.expired()) {
      result.timed_out = true;  // the derandomized sweep was skipped
    } else {
      const PairwiseFamily family(instance.num_bidders());
      const Allocation derandomized =
          derandomized_round(instance, result.fractional, family);
      if (instance.welfare(derandomized) >
          instance.welfare(result.allocation)) {
        result.allocation = derandomized;
      }
    }
  }
  result.welfare = instance.welfare(result.allocation);
  // A restricted-master objective is a lower bound on b*: b*/factor would
  // be an unproven claim, so the guarantee rides on the proven flag.
  if (result.lp_bound_proven) {
    result.guarantee = result.fractional.objective / result.factor;
  }
  return result;
}

}  // namespace ssa
