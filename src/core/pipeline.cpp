#include "core/pipeline.hpp"

#include <cmath>

#include "core/rounding.hpp"
#include "support/pairwise.hpp"

namespace ssa {

PipelineResult run_auction(const AuctionInstance& instance,
                           PipelineOptions options) {
  PipelineResult result;
  const double sqrt_k =
      std::sqrt(static_cast<double>(instance.num_channels()));
  if (instance.unweighted()) {
    result.factor = 8.0 * sqrt_k * instance.rho();
  } else {
    const double log_n = std::ceil(
        std::log2(std::max<std::size_t>(instance.num_bidders(), 2)));
    result.factor = 16.0 * sqrt_k * instance.rho() * log_n;
  }
  result.used_column_generation =
      options.force_column_generation ||
      instance.num_channels() > options.explicit_limit;
  result.fractional = result.used_column_generation
                          ? solve_auction_lp_colgen(instance)
                          : solve_auction_lp(instance);
  if (result.fractional.status != lp::SolveStatus::kOptimal) return result;

  result.allocation = best_of_rounds(instance, result.fractional,
                                     options.rounding_repetitions, options.seed);
  if (options.derandomize) {
    const PairwiseFamily family(instance.num_bidders());
    const Allocation derandomized =
        derandomized_round(instance, result.fractional, family);
    if (instance.welfare(derandomized) > instance.welfare(result.allocation)) {
      result.allocation = derandomized;
    }
  }
  result.welfare = instance.welfare(result.allocation);
  result.guarantee = result.fractional.objective / result.factor;
  return result;
}

}  // namespace ssa
