#include "core/instance.hpp"

#include <algorithm>
#include <stdexcept>

namespace ssa {

namespace {
/// A zero valuation used by without_bidder.
class ZeroValuation final : public Valuation {
 public:
  explicit ZeroValuation(int num_channels) : Valuation(num_channels) {}
  [[nodiscard]] double value(Bundle) const override { return 0.0; }
  [[nodiscard]] DemandResult demand(std::span<const double>) const override {
    return DemandResult{};
  }
  [[nodiscard]] double max_value() const override { return 0.0; }
};
}  // namespace

AuctionInstance::AuctionInstance(ConflictGraph graph, Ordering order,
                                 int num_channels,
                                 std::vector<ValuationPtr> valuations,
                                 double rho)
    : graph_(std::move(graph)),
      order_(std::move(order)),
      k_(num_channels),
      rho_(rho),
      valuations_(std::move(valuations)) {
  if (valuations_.size() != graph_.size()) {
    throw std::invalid_argument("AuctionInstance: one valuation per vertex");
  }
  if (num_channels < 1 || num_channels > kMaxChannels) {
    throw std::invalid_argument("AuctionInstance: bad channel count");
  }
  for (const auto& valuation : valuations_) {
    if (!valuation || valuation->num_channels() != k_) {
      throw std::invalid_argument("AuctionInstance: valuation channel mismatch");
    }
  }
  position_ = ordering_positions(order_);
  graph_.ensure_adjacency();  // instances are shared across rounding threads
  if (rho_ <= 0.0) rho_ = rho_of_ordering(graph_, order_).value;
  rho_ = std::max(rho_, 1.0);
  unweighted_ = graph_.is_unweighted();
}

double AuctionInstance::welfare(const Allocation& allocation) const {
  if (allocation.size() != num_bidders()) {
    throw std::invalid_argument("welfare: allocation size mismatch");
  }
  double total = 0.0;
  for (std::size_t v = 0; v < num_bidders(); ++v) {
    if (allocation.bundles[v] != kEmptyBundle) {
      total += value(v, allocation.bundles[v]);
    }
  }
  return total;
}

AuctionInstance AuctionInstance::with_valuation(std::size_t v,
                                                ValuationPtr valuation) const {
  std::vector<ValuationPtr> valuations = valuations_;
  valuations.at(v) = std::move(valuation);
  return AuctionInstance(graph_, order_, k_, std::move(valuations), rho_);
}

AuctionInstance AuctionInstance::without_bidder(std::size_t v) const {
  return with_valuation(v, std::make_shared<ZeroValuation>(k_));
}

}  // namespace ssa
