#include "core/allocation.hpp"

namespace ssa {

std::size_t Allocation::winners() const noexcept {
  std::size_t count = 0;
  for (Bundle bundle : bundles) {
    if (bundle != kEmptyBundle) ++count;
  }
  return count;
}

std::vector<int> channel_holders(const Allocation& allocation, int channel) {
  std::vector<int> holders;
  for (std::size_t v = 0; v < allocation.size(); ++v) {
    if (bundle_has(allocation.bundles[v], channel)) {
      holders.push_back(static_cast<int>(v));
    }
  }
  return holders;
}

bool is_feasible(const Allocation& allocation, const ConflictGraph& graph,
                 int num_channels) {
  for (int j = 0; j < num_channels; ++j) {
    if (!graph.is_independent(channel_holders(allocation, j))) return false;
  }
  return true;
}

bool is_feasible_asymmetric(const Allocation& allocation,
                            std::span<const ConflictGraph> graphs) {
  for (std::size_t j = 0; j < graphs.size(); ++j) {
    if (!graphs[j].is_independent(
            channel_holders(allocation, static_cast<int>(j)))) {
      return false;
    }
  }
  return true;
}

}  // namespace ssa
