#include "core/asymmetric_colgen.hpp"

#include <algorithm>
#include <unordered_set>

namespace ssa {

namespace {

/// Dedup key of a (bidder, bundle) column proposal.
[[nodiscard]] std::uint64_t column_key(std::uint32_t v, Bundle t) {
  return (static_cast<std::uint64_t>(v) << 32) | static_cast<std::uint64_t>(t);
}

}  // namespace

lp::LinearProgram build_asymmetric_master_rows(
    const AsymmetricInstance& instance) {
  lp::LinearProgram master(lp::Objective::kMaximize);
  const std::size_t n = instance.num_bidders();
  const int k = instance.num_channels();
  for (std::size_t u = 0; u < n; ++u) {
    for (int j = 0; j < k; ++j) {
      master.add_row(lp::RowSense::kLessEqual, instance.rho());
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    master.add_row(lp::RowSense::kLessEqual, 1.0);
  }
  return master;
}

std::vector<lp::ColumnEntry> asymmetric_bundle_column(
    const AsymmetricInstance& instance, int bidder, Bundle bundle) {
  if (bundle == kEmptyBundle) {
    throw std::invalid_argument(
        "asymmetric_bundle_column: empty bundle has no column");
  }
  const std::size_t n = instance.num_bidders();
  const int k = instance.num_channels();
  const std::size_t v = static_cast<std::size_t>(bidder);

  std::vector<lp::ColumnEntry> entries;
  for (int j = 0; j < k; ++j) {
    if (!bundle_has(bundle, j)) continue;
    const auto& graph = instance.graph(j);
    for (int u : graph.neighbors(v)) {
      if (instance.positions()[static_cast<std::size_t>(u)] <=
          instance.positions()[v]) {
        continue;
      }
      const double wbar = graph.coupling_weight(v, static_cast<std::size_t>(u));
      if (wbar > 0.0) {
        entries.push_back(
            {channel_row(static_cast<std::size_t>(u), j, k), wbar});
      }
    }
  }
  entries.push_back({static_cast<int>(n) * k + bidder, 1.0});
  return entries;
}

FractionalSolution solve_asymmetric_lp_colgen(
    const AsymmetricInstance& instance, AsymmetricColGenStats* stats,
    const AsymmetricColGenOptions& options) {
  const std::size_t n = instance.num_bidders();
  const int k = instance.num_channels();
  // Whether master costs AND oracle utilities carry the symmetry-breaking
  // lift (see the header): exact lifted demand needs the 2^k enumeration.
  const bool lifted = k <= kLiftedDemandChannels;
  const auto column_cost = [&](std::size_t v, Bundle t) {
    const double value = instance.value(v, t);
    return lifted ? lifted_value(value, v, t) : value;
  };

  lp::LinearProgram master = build_asymmetric_master_rows(instance);

  // Column meanings in master order: pool seeds first, oracle columns
  // after, mirroring solve_with_benders's append order.
  std::vector<std::pair<std::uint32_t, Bundle>> meaning;
  std::unordered_set<std::uint64_t> known;

  std::vector<lp::SeedColumn> seeds;
  const AsymmetricColumnPool* pool = options.pool;
  const bool pool_compatible = pool != nullptr && !pool->empty() &&
                               pool->num_bidders == n &&
                               pool->num_channels == k;
  if (pool_compatible) {
    seeds.reserve(pool->columns.size());
    for (const auto& [v, t] : pool->columns) {
      // Zero-value columns cannot help a packing LP; churn may have
      // zeroed a donor column's value, so filter here. (A filtered seed
      // shrinks the master below the donor basis's column count and the
      // engine then falls back to a cold first solve -- correct, just
      // less warm.)
      if (v >= n || t == kEmptyBundle || t >= num_bundles(k)) continue;
      if (instance.value(v, t) <= 0.0) continue;
      if (!known.insert(column_key(v, t)).second) continue;
      seeds.push_back(lp::SeedColumn{
          column_cost(v, t),
          asymmetric_bundle_column(instance, static_cast<int>(v), t)});
      meaning.emplace_back(v, t);
    }
  }

  const lp::PricingOracle oracle =
      [&](const lp::Solution& rmp) -> std::vector<lp::PricedColumn> {
    std::vector<lp::PricedColumn> columns;
    std::vector<double> prices(static_cast<std::size_t>(k), 0.0);
    for (std::size_t v = 0; v < n; ++v) {
      // Bidder-specific prices p_{v,j}: forward neighbors in graph j only.
      std::fill(prices.begin(), prices.end(), 0.0);
      for (int j = 0; j < k; ++j) {
        const auto& graph = instance.graph(j);
        double price = 0.0;
        for (int u : graph.neighbors(v)) {
          if (instance.positions()[static_cast<std::size_t>(u)] <=
              instance.positions()[v]) {
            continue;
          }
          const double wbar =
              graph.coupling_weight(v, static_cast<std::size_t>(u));
          if (wbar <= 0.0) continue;
          price += wbar * rmp.duals[static_cast<std::size_t>(
                              channel_row(static_cast<std::size_t>(u), j, k))];
        }
        prices[static_cast<std::size_t>(j)] = price;
      }
      const double z_v = rmp.duals[n * static_cast<std::size_t>(k) + v];

      Bundle best = kEmptyBundle;
      double best_utility = 0.0;
      if (lifted) {
        // Exact demand under the LIFTED values, so the oracle certifies
        // optimality of the lifted master -- pricing with raw values
        // under a lifted master could terminate epsilon-short and make
        // warm/cold runs disagree. The separation threshold is the
        // engine's own tolerance for the same reason.
        for (Bundle t = 1; t < num_bundles(k); ++t) {
          const double value = instance.value(v, t);
          if (value <= 0.0) continue;
          double price = 0.0;
          for (int j = 0; j < k; ++j) {
            if (bundle_has(t, j)) price += prices[static_cast<std::size_t>(j)];
          }
          const double utility = lifted_value(value, v, t) - price;
          if (utility > best_utility) {
            best = t;
            best_utility = utility;
          }
        }
        if (best != kEmptyBundle && best_utility > z_v + 1e-9 &&
            known.insert(column_key(static_cast<std::uint32_t>(v), best))
                .second) {
          columns.push_back(lp::PricedColumn{
              column_cost(v, best),
              asymmetric_bundle_column(instance, static_cast<int>(v), best)});
          meaning.emplace_back(static_cast<std::uint32_t>(v), best);
        }
      } else {
        // Beyond the enumeration ceiling: the valuation's own closed-form
        // demand oracle (unlifted) with the symmetric colgen path's
        // slacker threshold.
        const DemandResult demand = instance.valuation(v).demand(prices);
        if (demand.bundle != kEmptyBundle && demand.utility > z_v + 1e-7 &&
            known.insert(
                     column_key(static_cast<std::uint32_t>(v), demand.bundle))
                .second) {
          columns.push_back(lp::PricedColumn{
              column_cost(v, demand.bundle),
              asymmetric_bundle_column(instance, static_cast<int>(v),
                                       demand.bundle)});
          meaning.emplace_back(static_cast<std::uint32_t>(v), demand.bundle);
        }
      }
    }
    return columns;
  };

  lp::BendersOptions benders;
  benders.max_rounds = options.max_rounds;
  benders.simplex = options.simplex;
  benders.basis_hint = pool_compatible ? &pool->basis : nullptr;
  lp::BasisSnapshot terminal_basis;
  const lp::BendersResult run = lp::solve_with_benders(
      master, oracle, seeds, benders, &terminal_basis);

  if (stats != nullptr) {
    stats->rounds = run.rounds;
    stats->columns_generated = run.columns_added;
    stats->proved_optimal = run.proved_optimal;
    stats->pool_warm_started = pool_compatible;
    stats->pivots = run.pivots;
  }
  if (options.pool_export != nullptr) {
    *options.pool_export = AsymmetricColumnPool{};
    if (run.solution.status == lp::SolveStatus::kOptimal) {
      options.pool_export->columns = meaning;
      options.pool_export->basis = terminal_basis;  // empty unless proven
      options.pool_export->num_bidders = static_cast<std::uint32_t>(n);
      options.pool_export->num_channels = k;
    }
  }

  FractionalSolution result;
  result.status = run.solution.status;
  result.objective = run.solution.objective;
  result.pivots = run.pivots;
  if (run.solution.status != lp::SolveStatus::kOptimal) return result;

  // Final canonical re-solve: the terminal support in sorted (bidder,
  // bundle) order becomes a fresh LP solved by a fresh engine. Warm and
  // cold runs that terminate with the same support set (guaranteed
  // generically by the lift) then solve literally the same LP, so the
  // extracted objective and weights are bitwise identical no matter how
  // the columns arrived (pool seed vs oracle round, any order).
  std::vector<std::pair<std::uint32_t, Bundle>> support;
  for (std::size_t c = 0; c < meaning.size(); ++c) {
    if (run.solution.x[c] > 1e-9) support.push_back(meaning[c]);
  }
  std::sort(support.begin(), support.end());

  lp::LinearProgram canonical = build_asymmetric_master_rows(instance);
  for (const auto& [v, t] : support) {
    canonical.add_column(column_cost(v, t),
                         asymmetric_bundle_column(instance,
                                                  static_cast<int>(v), t));
  }

  // The terminal basis, reindexed to the canonical column order, warm-
  // starts the re-solve: the support columns keep their basis positions
  // and a dropped degenerate column (basic at zero, outside the support)
  // hands its position to the unit artificial of that row -- the same
  // stand-in export_basis uses -- which the install path repairs or
  // drives out for free. The re-solve then certifies optimality in a
  // handful of pivots instead of redoing phase 1 + 2 from scratch.
  // Payload identity is untouched: canonical extraction is basis-
  // independent (lp/simplex.hpp), the very property that makes the
  // service's basis reuse payload-invariant, and any incompatible or
  // singular hint falls back to a cold re-solve of the same LP.
  lp::BasisSnapshot polish_hint;
  if (!terminal_basis.empty()) {
    polish_hint.rows = terminal_basis.rows;
    polish_hint.structurals = static_cast<std::uint32_t>(support.size());
    polish_hint.basic.reserve(terminal_basis.basic.size());
    for (std::size_t i = 0; i < terminal_basis.basic.size(); ++i) {
      lp::BasisSnapshot::Entry entry = terminal_basis.basic[i];
      if (entry.kind == lp::BasisSnapshot::Kind::kStructural) {
        const std::size_t c = static_cast<std::size_t>(entry.index);
        if (c < meaning.size() && run.solution.x[c] > 1e-9) {
          const auto it = std::lower_bound(support.begin(), support.end(),
                                           meaning[c]);
          entry.index = static_cast<std::int32_t>(it - support.begin());
        } else {
          entry.kind = lp::BasisSnapshot::Kind::kArtificial;
          entry.index = static_cast<std::int32_t>(i);
        }
      }
      polish_hint.basic.push_back(entry);
    }
  }
  lp::SimplexEngine polish(options.simplex);
  const lp::Solution final_solution =
      polish_hint.empty() ? polish.solve(canonical)
                          : polish.solve(canonical, polish_hint);
  result.pivots += polish.pivots();
  if (stats != nullptr) stats->pivots = result.pivots;
  if (final_solution.status != lp::SolveStatus::kOptimal) {
    // Deadline fired between the main loop and the re-solve; surface it.
    result.status = final_solution.status;
    return result;
  }
  result.objective = final_solution.objective;
  result.columns.clear();
  for (std::size_t c = 0; c < support.size(); ++c) {
    if (final_solution.x[c] > 1e-9) {
      result.columns.push_back(
          FractionalColumn{static_cast<int>(support[c].first),
                           support[c].second, final_solution.x[c]});
    }
  }
  return result;
}

Allocation greedy_fit_from_columns(const AsymmetricInstance& instance,
                                   const std::vector<FractionalColumn>& columns) {
  const int k = instance.num_channels();
  struct Candidate {
    const FractionalColumn* column;
    double mass;  // x * value
  };
  std::vector<Candidate> candidates;
  candidates.reserve(columns.size());
  for (const FractionalColumn& column : columns) {
    candidates.push_back(Candidate{
        &column, column.x * instance.value(
                                static_cast<std::size_t>(column.bidder),
                                column.bundle)});
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.mass > b.mass;
                   });

  Allocation allocation;
  allocation.bundles.assign(instance.num_bidders(), kEmptyBundle);
  for (const Candidate& candidate : candidates) {
    const std::size_t v =
        static_cast<std::size_t>(candidate.column->bidder);
    if (allocation.bundles[v] != kEmptyBundle) continue;
    const Bundle t = candidate.column->bundle;
    bool fits = true;
    for (int j = 0; fits && j < k; ++j) {
      if (!bundle_has(t, j)) continue;
      for (int u : instance.graph(j).neighbors(v)) {
        if (bundle_has(allocation.bundles[static_cast<std::size_t>(u)], j)) {
          fits = false;
          break;
        }
      }
    }
    if (fits) allocation.bundles[v] = t;
  }
  return allocation;
}

}  // namespace ssa
