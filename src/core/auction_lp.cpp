#include "core/auction_lp.hpp"

#include <stdexcept>
#include <utility>

namespace ssa {

lp::LinearProgram build_master_rows(const AuctionInstance& instance) {
  lp::LinearProgram master(lp::Objective::kMaximize);
  const std::size_t n = instance.num_bidders();
  const int k = instance.num_channels();
  for (std::size_t u = 0; u < n; ++u) {
    for (int j = 0; j < k; ++j) {
      master.add_row(lp::RowSense::kLessEqual, instance.rho());
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    master.add_row(lp::RowSense::kLessEqual, 1.0);
  }
  return master;
}

std::vector<lp::ColumnEntry> bundle_column(const AuctionInstance& instance,
                                           int bidder, Bundle bundle) {
  if (bundle == kEmptyBundle) {
    throw std::invalid_argument("bundle_column: empty bundle has no column");
  }
  const std::size_t n = instance.num_bidders();
  const int k = instance.num_channels();
  const auto& graph = instance.graph();
  const auto& position = instance.positions();
  const std::size_t v = static_cast<std::size_t>(bidder);

  std::vector<lp::ColumnEntry> entries;
  // Interference rows: (u, j) for forward neighbors u of v and j in T.
  for (int u : graph.neighbors(v)) {
    if (position[static_cast<std::size_t>(u)] <= position[v]) continue;
    const double wbar = graph.coupling_weight(v, static_cast<std::size_t>(u));
    if (wbar <= 0.0) continue;
    for (int j = 0; j < k; ++j) {
      if (bundle_has(bundle, j)) {
        entries.push_back({channel_row(static_cast<std::size_t>(u), j, k), wbar});
      }
    }
  }
  // Convexity row of bidder v.
  entries.push_back({static_cast<int>(n) * k + bidder, 1.0});
  return entries;
}

namespace {

FractionalSolution extract(const AuctionInstance& instance,
                           const lp::Solution& solution,
                           const std::vector<std::pair<int, Bundle>>& meaning) {
  FractionalSolution result;
  result.status = solution.status;
  result.objective = solution.objective;
  if (solution.status != lp::SolveStatus::kOptimal) return result;
  for (std::size_t j = 0; j < meaning.size(); ++j) {
    if (solution.x[j] > 1e-9) {
      result.columns.push_back(FractionalColumn{
          meaning[j].first, meaning[j].second, solution.x[j]});
    }
  }
  (void)instance;
  return result;
}

}  // namespace

FractionalSolution solve_auction_lp(const AuctionInstance& instance,
                                    lp::SimplexOptions options) {
  const int k = instance.num_channels();
  if (k > 12) {
    throw std::invalid_argument(
        "solve_auction_lp: explicit enumeration limited to k <= 12; use "
        "solve_auction_lp_colgen");
  }
  lp::LinearProgram master = build_master_rows(instance);
  std::vector<std::pair<int, Bundle>> meaning;
  for (std::size_t v = 0; v < instance.num_bidders(); ++v) {
    for (Bundle t = 1; t < num_bundles(k); ++t) {
      if (instance.value(v, t) <= 0.0) continue;
      master.add_column(instance.value(v, t),
                        bundle_column(instance, static_cast<int>(v), t));
      meaning.emplace_back(static_cast<int>(v), t);
    }
  }
  return extract(instance, lp::solve(master, options), meaning);
}

FractionalSolution solve_auction_lp_colgen(
    const AuctionInstance& instance, ColGenStats* stats,
    lp::ColumnGenerationOptions options) {
  const std::size_t n = instance.num_bidders();
  const int k = instance.num_channels();
  const auto& graph = instance.graph();
  const auto& position = instance.positions();

  lp::LinearProgram master = build_master_rows(instance);
  std::vector<std::pair<int, Bundle>> meaning;
  // Track proposed columns to be robust against dual degeneracy.
  std::vector<std::vector<bool>> proposed(
      n, std::vector<bool>(k <= 20 ? num_bundles(k) : 0, false));
  const bool track = k <= 20;

  const lp::PricingOracle oracle =
      [&](const lp::Solution& rmp) -> std::vector<lp::PricedColumn> {
    std::vector<lp::PricedColumn> columns;
    std::vector<double> prices(static_cast<std::size_t>(k), 0.0);
    for (std::size_t v = 0; v < n; ++v) {
      // Bidder-specific prices p_{v,j} = sum over forward neighbors u of
      // wbar(v,u) * y_{u,j} (Section 2.2).
      std::fill(prices.begin(), prices.end(), 0.0);
      for (int u : graph.neighbors(v)) {
        if (position[static_cast<std::size_t>(u)] <= position[v]) continue;
        const double wbar = graph.coupling_weight(v, static_cast<std::size_t>(u));
        if (wbar <= 0.0) continue;
        for (int j = 0; j < k; ++j) {
          prices[static_cast<std::size_t>(j)] +=
              wbar * rmp.duals[static_cast<std::size_t>(
                         channel_row(static_cast<std::size_t>(u), j, k))];
        }
      }
      const DemandResult demand = instance.valuation(v).demand(prices);
      if (demand.bundle == kEmptyBundle) continue;
      const double z_v = rmp.duals[n * static_cast<std::size_t>(k) + v];
      if (demand.utility > z_v + 1e-7) {
        if (track && proposed[v][demand.bundle]) continue;
        if (track) proposed[v][demand.bundle] = true;
        columns.push_back(lp::PricedColumn{
            instance.value(v, demand.bundle),
            bundle_column(instance, static_cast<int>(v), demand.bundle)});
        meaning.emplace_back(static_cast<int>(v), demand.bundle);
      }
    }
    return columns;
  };

  const lp::ColumnGenerationResult result =
      lp::solve_with_column_generation(master, oracle, options);
  if (stats != nullptr) {
    stats->rounds = result.rounds;
    stats->columns_generated = result.columns_added;
    stats->proved_optimal = result.proved_optimal;
  }
  return extract(instance, result.solution, meaning);
}

}  // namespace ssa
