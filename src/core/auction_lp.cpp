#include "core/auction_lp.hpp"

#include <cstdint>
#include <stdexcept>
#include <utility>

namespace ssa {

lp::LinearProgram build_master_rows(const AuctionInstance& instance) {
  lp::LinearProgram master(lp::Objective::kMaximize);
  const std::size_t n = instance.num_bidders();
  const int k = instance.num_channels();
  for (std::size_t u = 0; u < n; ++u) {
    for (int j = 0; j < k; ++j) {
      master.add_row(lp::RowSense::kLessEqual, instance.rho());
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    master.add_row(lp::RowSense::kLessEqual, 1.0);
  }
  return master;
}

std::vector<lp::ColumnEntry> bundle_column(const AuctionInstance& instance,
                                           int bidder, Bundle bundle) {
  if (bundle == kEmptyBundle) {
    throw std::invalid_argument("bundle_column: empty bundle has no column");
  }
  const std::size_t n = instance.num_bidders();
  const int k = instance.num_channels();
  const auto& graph = instance.graph();
  const auto& position = instance.positions();
  const std::size_t v = static_cast<std::size_t>(bidder);

  std::vector<lp::ColumnEntry> entries;
  // Interference rows: (u, j) for forward neighbors u of v and j in T.
  for (int u : graph.neighbors(v)) {
    if (position[static_cast<std::size_t>(u)] <= position[v]) continue;
    const double wbar = graph.coupling_weight(v, static_cast<std::size_t>(u));
    if (wbar <= 0.0) continue;
    for (int j = 0; j < k; ++j) {
      if (bundle_has(bundle, j)) {
        entries.push_back({channel_row(static_cast<std::size_t>(u), j, k), wbar});
      }
    }
  }
  // Convexity row of bidder v.
  entries.push_back({static_cast<int>(n) * k + bidder, 1.0});
  return entries;
}

double tiebreak_unit(std::size_t v, Bundle t) {
  std::uint64_t x = (static_cast<std::uint64_t>(v) << 32) ^
                    (static_cast<std::uint64_t>(t) + 0x9e3779b97f4a7c15ull);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

namespace {

/// Objective coefficient of column (v, t) in the EXPLICIT master:
/// b_{v,T} under the shared symmetry-breaking lift (lifted_value in the
/// header). Auction instances carry exactly tied alternate optima for real
/// (equal-value bundles of one bidder), and the warm-start contract
/// requires cold and warm solves to terminate at the SAME optimal vertex
/// from any starting basis -- a generically unique optimum is what makes
/// the terminal vertex start-independent. The SYMMETRIC column-generation
/// path below is left unlifted: its demand oracle prices columns with the
/// true values, and a lifted master under an unlifted oracle could
/// terminate epsilon-short of lifted-optimal. Explicit and colgen
/// objectives therefore differ by <= kTiebreakScale relative
/// (tests/test_auction_lp.cpp compares them within 1e-6). The asymmetric
/// colgen path lifts BOTH master and oracle instead -- see
/// asymmetric_colgen.cpp.
[[nodiscard]] double explicit_objective(const AuctionInstance& instance,
                                        std::size_t v, Bundle t) {
  return lifted_value(instance.value(v, t), v, t);
}

FractionalSolution extract(const AuctionInstance& instance,
                           const lp::Solution& solution,
                           const std::vector<std::pair<int, Bundle>>& meaning) {
  FractionalSolution result;
  result.status = solution.status;
  result.objective = solution.objective;
  result.pivots = solution.pivots;
  if (solution.status != lp::SolveStatus::kOptimal) return result;
  for (std::size_t j = 0; j < meaning.size(); ++j) {
    if (solution.x[j] > 1e-9) {
      result.columns.push_back(FractionalColumn{
          meaning[j].first, meaning[j].second, solution.x[j]});
    }
  }
  (void)instance;
  return result;
}

}  // namespace

FractionalSolution solve_auction_lp(const AuctionInstance& instance,
                                    lp::SimplexOptions options,
                                    LpWarmStart* warm) {
  const int k = instance.num_channels();
  if (k > 12) {
    throw std::invalid_argument(
        "solve_auction_lp: explicit enumeration limited to k <= 12; use "
        "solve_auction_lp_colgen");
  }
  lp::LinearProgram master = build_master_rows(instance);
  std::vector<std::pair<int, Bundle>> meaning;
  if (warm != nullptr && warm->columns_per_bidder != nullptr) {
    warm->columns_per_bidder->assign(instance.num_bidders(), 0);
  }
  for (std::size_t v = 0; v < instance.num_bidders(); ++v) {
    for (Bundle t = 1; t < num_bundles(k); ++t) {
      if (instance.value(v, t) <= 0.0) continue;
      master.add_column(explicit_objective(instance, v, t),
                        bundle_column(instance, static_cast<int>(v), t));
      meaning.emplace_back(static_cast<int>(v), t);
      if (warm != nullptr && warm->columns_per_bidder != nullptr) {
        ++(*warm->columns_per_bidder)[v];
      }
    }
  }
  lp::SimplexEngine engine(options);
  lp::Solution solution;
  bool warm_used = false;
  if (warm != nullptr && warm->hint != nullptr && !warm->hint->empty()) {
    solution = engine.solve(master, *warm->hint, &warm_used);
  } else {
    solution = engine.solve(master);
  }
  if (warm != nullptr) {
    warm->warm_started = warm_used;
    if (warm->exported != nullptr &&
        solution.status == lp::SolveStatus::kOptimal) {
      *warm->exported = engine.export_basis();
    }
  }
  return extract(instance, solution, meaning);
}

namespace {

/// Slack-of-row snapshot entry (the cold default of a basis position).
[[nodiscard]] lp::BasisSnapshot::Entry slack_entry(std::int32_t row) {
  return {lp::BasisSnapshot::Kind::kSlack, row};
}

}  // namespace

lp::BasisSnapshot remap_basis_for_added_bidder(
    const lp::BasisSnapshot& basis, std::size_t old_n, int k,
    const std::vector<std::uint32_t>& old_columns_per_bidder,
    std::uint32_t new_bidder_columns) {
  const std::size_t old_rows = old_n * static_cast<std::size_t>(k) + old_n;
  std::uint32_t old_structurals = 0;
  for (const std::uint32_t count : old_columns_per_bidder) {
    old_structurals += count;
  }
  if (basis.rows != old_rows || basis.structurals != old_structurals ||
      old_columns_per_bidder.size() != old_n) {
    throw std::invalid_argument(
        "remap_basis_for_added_bidder: snapshot does not match the donor "
        "instance's dimensions");
  }
  // Row remap: channel rows (u, j) with u < old_n keep their index; the
  // convexity row of v moves from old_n*k + v to (old_n+1)*k + v.
  const auto remap_row = [&](std::int32_t row) {
    const std::int32_t channel_rows =
        static_cast<std::int32_t>(old_n) * static_cast<std::int32_t>(k);
    if (row < channel_rows) return row;
    return row + static_cast<std::int32_t>(k);
  };

  lp::BasisSnapshot grown;
  grown.rows = static_cast<std::uint32_t>((old_n + 1) * static_cast<std::size_t>(k) +
                                          old_n + 1);
  grown.structurals = old_structurals + new_bidder_columns;
  grown.basic.resize(grown.rows);
  // Every position starts as its row's slack: the new bidder's channel and
  // convexity rows come up slack-basic and the install-time repair absorbs
  // whatever interference the old allocation pushes onto them.
  for (std::uint32_t i = 0; i < grown.rows; ++i) {
    grown.basic[i] = slack_entry(static_cast<std::int32_t>(i));
  }
  for (std::size_t i = 0; i < basis.basic.size(); ++i) {
    lp::BasisSnapshot::Entry entry = basis.basic[i];
    if (entry.kind != lp::BasisSnapshot::Kind::kStructural) {
      entry.index = remap_row(entry.index);
    }
    grown.basic[static_cast<std::size_t>(
        remap_row(static_cast<std::int32_t>(i)))] = entry;
  }
  return grown;
}

lp::BasisSnapshot remap_basis_for_removed_bidder(
    const lp::BasisSnapshot& basis, std::size_t old_n, int k, int removed,
    const std::vector<std::uint32_t>& old_columns_per_bidder) {
  const std::size_t old_rows = old_n * static_cast<std::size_t>(k) + old_n;
  std::uint32_t old_structurals = 0;
  for (const std::uint32_t count : old_columns_per_bidder) {
    old_structurals += count;
  }
  if (basis.rows != old_rows || basis.structurals != old_structurals ||
      old_columns_per_bidder.size() != old_n || removed < 0 ||
      static_cast<std::size_t>(removed) >= old_n) {
    throw std::invalid_argument(
        "remap_basis_for_removed_bidder: snapshot does not match the donor "
        "instance's dimensions");
  }
  const std::size_t new_n = old_n - 1;
  // Column spans per bidder in the donor's structural numbering.
  std::vector<std::uint32_t> start(old_n + 1, 0);
  for (std::size_t v = 0; v < old_n; ++v) {
    start[v + 1] = start[v] + old_columns_per_bidder[v];
  }
  const auto remap_column = [&](std::int32_t column) -> std::int32_t {
    const std::uint32_t c = static_cast<std::uint32_t>(column);
    if (c < start[static_cast<std::size_t>(removed)]) return column;
    if (c < start[static_cast<std::size_t>(removed) + 1]) return -1;
    return column - static_cast<std::int32_t>(
                        old_columns_per_bidder[static_cast<std::size_t>(removed)]);
  };
  const auto remap_row = [&](std::int32_t row) -> std::int32_t {
    const std::int32_t channel_rows =
        static_cast<std::int32_t>(old_n) * static_cast<std::int32_t>(k);
    if (row < channel_rows) {
      const std::int32_t u = row / k;
      if (u < removed) return row;
      if (u == removed) return -1;
      return row - k;
    }
    const std::int32_t v = row - channel_rows;
    if (v < removed) {
      return static_cast<std::int32_t>(new_n) * k + v;
    }
    if (v == removed) return -1;
    return static_cast<std::int32_t>(new_n) * k + v - 1;
  };

  lp::BasisSnapshot shrunk;
  shrunk.rows =
      static_cast<std::uint32_t>(new_n * static_cast<std::size_t>(k) + new_n);
  shrunk.structurals =
      old_structurals - old_columns_per_bidder[static_cast<std::size_t>(removed)];
  shrunk.basic.resize(shrunk.rows);
  for (std::uint32_t i = 0; i < shrunk.rows; ++i) {
    shrunk.basic[i] = slack_entry(static_cast<std::int32_t>(i));
  }
  for (std::size_t i = 0; i < basis.basic.size(); ++i) {
    const std::int32_t position = remap_row(static_cast<std::int32_t>(i));
    if (position < 0) continue;  // the removed bidder's own rows
    lp::BasisSnapshot::Entry entry = basis.basic[i];
    if (entry.kind == lp::BasisSnapshot::Kind::kStructural) {
      entry.index = remap_column(entry.index);
    } else {
      entry.index = remap_row(entry.index);
    }
    // Orphaned references (the removed bidder's columns or rows) keep the
    // position's slack; install-time repair finishes the job.
    if (entry.index < 0) continue;
    shrunk.basic[static_cast<std::size_t>(position)] = entry;
  }
  return shrunk;
}

FractionalSolution solve_auction_lp_colgen(
    const AuctionInstance& instance, ColGenStats* stats,
    lp::ColumnGenerationOptions options) {
  const std::size_t n = instance.num_bidders();
  const int k = instance.num_channels();
  const auto& graph = instance.graph();
  const auto& position = instance.positions();

  lp::LinearProgram master = build_master_rows(instance);
  std::vector<std::pair<int, Bundle>> meaning;
  // Track proposed columns to be robust against dual degeneracy.
  std::vector<std::vector<bool>> proposed(
      n, std::vector<bool>(k <= 20 ? num_bundles(k) : 0, false));
  const bool track = k <= 20;

  const lp::PricingOracle oracle =
      [&](const lp::Solution& rmp) -> std::vector<lp::PricedColumn> {
    std::vector<lp::PricedColumn> columns;
    std::vector<double> prices(static_cast<std::size_t>(k), 0.0);
    for (std::size_t v = 0; v < n; ++v) {
      // Bidder-specific prices p_{v,j} = sum over forward neighbors u of
      // wbar(v,u) * y_{u,j} (Section 2.2).
      std::fill(prices.begin(), prices.end(), 0.0);
      for (int u : graph.neighbors(v)) {
        if (position[static_cast<std::size_t>(u)] <= position[v]) continue;
        const double wbar = graph.coupling_weight(v, static_cast<std::size_t>(u));
        if (wbar <= 0.0) continue;
        for (int j = 0; j < k; ++j) {
          prices[static_cast<std::size_t>(j)] +=
              wbar * rmp.duals[static_cast<std::size_t>(
                         channel_row(static_cast<std::size_t>(u), j, k))];
        }
      }
      const DemandResult demand = instance.valuation(v).demand(prices);
      if (demand.bundle == kEmptyBundle) continue;
      const double z_v = rmp.duals[n * static_cast<std::size_t>(k) + v];
      if (demand.utility > z_v + 1e-7) {
        if (track && proposed[v][demand.bundle]) continue;
        if (track) proposed[v][demand.bundle] = true;
        columns.push_back(lp::PricedColumn{
            instance.value(v, demand.bundle),
            bundle_column(instance, static_cast<int>(v), demand.bundle)});
        meaning.emplace_back(static_cast<int>(v), demand.bundle);
      }
    }
    return columns;
  };

  const lp::ColumnGenerationResult result =
      lp::solve_with_column_generation(master, oracle, options);
  if (stats != nullptr) {
    stats->rounds = result.rounds;
    stats->columns_generated = result.columns_added;
    stats->proved_optimal = result.proved_optimal;
  }
  return extract(instance, result.solution, meaning);
}

}  // namespace ssa
