#include "core/greedy.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace ssa {

namespace {
/// Whether bidder v can take bundle t given the current allocation.
bool fits(const AuctionInstance& instance, const Allocation& allocation,
          std::size_t v, Bundle t) {
  Allocation trial = allocation;
  trial.bundles[v] = t;
  return instance.feasible(trial);
}
}  // namespace

Allocation greedy_by_value(const AuctionInstance& instance) {
  const int k = instance.num_channels();
  if (k > 12) throw std::invalid_argument("greedy_by_value: k <= 12 required");
  const std::size_t n = instance.num_bidders();

  std::vector<std::size_t> bidders(n);
  std::iota(bidders.begin(), bidders.end(), 0);
  std::vector<double> max_values(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) max_values[v] = instance.valuation(v).max_value();
  std::stable_sort(bidders.begin(), bidders.end(), [&](std::size_t a, std::size_t b) {
    return max_values[a] > max_values[b];
  });

  Allocation allocation;
  allocation.bundles.assign(n, kEmptyBundle);
  for (std::size_t v : bidders) {
    Bundle best = kEmptyBundle;
    double best_value = 0.0;
    for (Bundle t = 1; t < num_bundles(k); ++t) {
      const double value = instance.value(v, t);
      if (value > best_value && fits(instance, allocation, v, t)) {
        best = t;
        best_value = value;
      }
    }
    allocation.bundles[v] = best;
  }
  return allocation;
}

Allocation greedy_by_density(const AuctionInstance& instance) {
  const int k = instance.num_channels();
  if (k > 12) throw std::invalid_argument("greedy_by_density: k <= 12 required");
  const std::size_t n = instance.num_bidders();

  struct Bid {
    std::size_t bidder;
    Bundle bundle;
    double density;
  };
  std::vector<Bid> bids;
  for (std::size_t v = 0; v < n; ++v) {
    for (Bundle t = 1; t < num_bundles(k); ++t) {
      const double value = instance.value(v, t);
      if (value > 0.0) {
        bids.push_back(Bid{v, t, value / bundle_size(t)});
      }
    }
  }
  std::stable_sort(bids.begin(), bids.end(), [](const Bid& a, const Bid& b) {
    return a.density > b.density;
  });

  Allocation allocation;
  allocation.bundles.assign(n, kEmptyBundle);
  for (const Bid& bid : bids) {
    if (allocation.bundles[bid.bidder] != kEmptyBundle) continue;
    if (fits(instance, allocation, bid.bidder, bid.bundle)) {
      allocation.bundles[bid.bidder] = bid.bundle;
    }
  }
  return allocation;
}

namespace {

/// Local-ratio maximum-weight independent set with the given vertex
/// weights; the core of both local-ratio baselines.
std::vector<bool> local_ratio_mwis(const ConflictGraph& graph,
                                   const Ordering& order,
                                   const std::vector<int>& position,
                                   std::vector<double> residual) {
  const std::size_t n = graph.size();
  std::vector<int> stack;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t v = static_cast<std::size_t>(*it);
    if (residual[v] <= 0.0) continue;
    stack.push_back(*it);
    for (int u : graph.neighbors(v)) {
      if (position[static_cast<std::size_t>(u)] < position[v]) {
        residual[static_cast<std::size_t>(u)] -= residual[v];
      }
    }
  }
  std::vector<bool> chosen(n, false);
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    const std::size_t v = static_cast<std::size_t>(*it);
    bool blocked = false;
    for (int u : graph.neighbors(v)) {
      if (chosen[static_cast<std::size_t>(u)]) {
        blocked = true;
        break;
      }
    }
    if (!blocked) chosen[v] = true;
  }
  return chosen;
}

}  // namespace

Allocation local_ratio_single_channel(const AuctionInstance& instance) {
  if (instance.num_channels() != 1) {
    throw std::invalid_argument("local_ratio_single_channel: k must be 1");
  }
  if (!instance.unweighted()) {
    throw std::invalid_argument(
        "local_ratio_single_channel: unweighted graphs only");
  }
  const std::size_t n = instance.num_bidders();
  const auto& graph = instance.graph();
  const auto& position = instance.positions();
  const Bundle channel = 1u;

  // Phase 1 (descending pi): pay residual value forward to backward
  // neighbors; stack the vertices that were still positive.
  std::vector<double> residual(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) residual[v] = instance.value(v, channel);
  std::vector<int> stack;
  for (auto it = instance.order().rbegin(); it != instance.order().rend(); ++it) {
    const std::size_t v = static_cast<std::size_t>(*it);
    if (residual[v] <= 0.0) continue;
    stack.push_back(*it);
    for (int u : graph.neighbors(v)) {
      if (position[static_cast<std::size_t>(u)] < position[v]) {
        residual[static_cast<std::size_t>(u)] -= residual[v];
      }
    }
  }

  // Phase 2 (LIFO pop = ascending pi): build a maximal independent set.
  Allocation allocation;
  allocation.bundles.assign(n, kEmptyBundle);
  std::vector<bool> chosen(n, false);
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    const std::size_t v = static_cast<std::size_t>(*it);
    bool blocked = false;
    for (int u : graph.neighbors(v)) {
      if (chosen[static_cast<std::size_t>(u)]) {
        blocked = true;
        break;
      }
    }
    if (!blocked) {
      chosen[v] = true;
      allocation.bundles[v] = channel;
    }
  }
  return allocation;
}

Allocation greedy_submodular(const AuctionInstance& instance) {
  const std::size_t n = instance.num_bidders();
  const int k = instance.num_channels();
  const ConflictGraph& graph = instance.graph();

  Allocation allocation;
  allocation.bundles.assign(n, kEmptyBundle);
  // holders[j]: bidders currently assigned channel j (the independence
  // constraint is per channel).
  std::vector<std::vector<int>> holders(static_cast<std::size_t>(k));

  for (;;) {
    std::size_t best_bidder = n;
    int best_channel = k;
    double best_marginal = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      const double base = allocation.bundles[v] == kEmptyBundle
                              ? 0.0
                              : instance.value(v, allocation.bundles[v]);
      for (int j = 0; j < k; ++j) {
        if (bundle_has(allocation.bundles[v], j)) continue;
        const double marginal =
            instance.value(v, allocation.bundles[v] | (1u << j)) - base;
        // Strict improvement with the deterministic (bidder, channel)
        // tie-break baked into the scan order.
        if (marginal <= best_marginal) continue;
        bool conflicts = false;
        for (const int u : holders[static_cast<std::size_t>(j)]) {
          if (graph.has_conflict(static_cast<std::size_t>(u), v)) {
            conflicts = true;
            break;
          }
        }
        if (conflicts) continue;
        best_bidder = v;
        best_channel = j;
        best_marginal = marginal;
      }
    }
    if (best_bidder == n) break;  // no pair improves welfare
    allocation.bundles[best_bidder] |= (1u << best_channel);
    holders[static_cast<std::size_t>(best_channel)].push_back(
        static_cast<int>(best_bidder));
  }
  return allocation;
}

Allocation local_ratio_per_channel(const AuctionInstance& instance) {
  if (!instance.unweighted()) {
    throw std::invalid_argument(
        "local_ratio_per_channel: unweighted graphs only");
  }
  const std::size_t n = instance.num_bidders();
  const auto& graph = instance.graph();
  const auto& position = instance.positions();

  Allocation allocation;
  allocation.bundles.assign(n, kEmptyBundle);
  for (int j = 0; j < instance.num_channels(); ++j) {
    // Marginal value of adding channel j to each bidder's current bundle.
    // Non-monotone valuations can make this negative; those bidders simply
    // do not compete for j.
    std::vector<double> marginal(n, 0.0);
    for (std::size_t v = 0; v < n; ++v) {
      const Bundle with_j = allocation.bundles[v] | (1u << j);
      marginal[v] =
          instance.value(v, with_j) - instance.value(v, allocation.bundles[v]);
    }
    const std::vector<bool> winners =
        local_ratio_mwis(graph, instance.order(), position, marginal);
    for (std::size_t v = 0; v < n; ++v) {
      if (winners[v] && marginal[v] > 0.0) {
        allocation.bundles[v] |= (1u << j);
      }
    }
  }
  return allocation;
}

}  // namespace ssa
