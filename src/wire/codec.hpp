#pragma once
/// \file codec.hpp
/// The binary serialization core shared by every byte format in the
/// library: the buffer-backed Writer/Reader pair plus the codecs for the
/// solving vocabulary (SolveOptions, SolveReport, ServiceStats). The
/// result-cache snapshot files (service/result_cache.cpp) and the network
/// wire protocol (wire/protocol.hpp) are both built on these primitives,
/// so the versioning discipline -- magic + version up front, bounds-checked
/// reads, any anomaly = clean failure, golden byte-layout pins in
/// tests/test_wire.cpp -- is implemented once and inherited everywhere.
///
/// Layout rules (shared by snapshot and wire):
///  - scalars are little-endian, fixed width; doubles travel as their
///    IEEE-754 bit pattern, so a decoded report is bitwise the encoded one;
///  - strings and vectors are u64 length + elements;
///  - optional fields are a u8 presence flag + payload;
///  - every length is sanity-capped (kMaxCount) AND capped by the bytes
///    actually remaining in the buffer, so corrupt or hostile counts can
///    never drive a large speculative allocation or a long parse loop.
///
/// Compatibility policy: any layout change to a codec below MUST bump the
/// containing format's version (ResultCache::kSnapshotVersion for
/// snapshots, wire::kWireVersion for the protocol) -- old bytes are then
/// rejected cleanly instead of misparsed. tests/test_wire.cpp pins golden
/// hex dumps so silent drift fails loudly.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "api/solver.hpp"

namespace ssa::service {
struct ServiceStats;  // service/auction_service.hpp
}

namespace ssa::wire {

// The codecs memcpy scalars; the declared byte order is little-endian.
// Every deployment target of this library is little-endian; a big-endian
// port would add byte swaps here (one place), not in the codecs.
static_assert(std::endian::native == std::endian::little,
              "ssa::wire: scalar codecs assume a little-endian host");

/// Upper bound on any serialized count (entries, vector sizes, string
/// lengths). Far above anything a real payload holds; its only job is to
/// stop a corrupt length field from driving a huge allocation.
inline constexpr std::uint64_t kMaxCount = std::uint64_t{1} << 26;

/// Scalar-by-scalar binary writer appending to an owned buffer.
class Writer {
 public:
  void u8(std::uint8_t value) { raw(&value, sizeof value); }
  void u16(std::uint16_t value) { raw(&value, sizeof value); }
  void u32(std::uint32_t value) { raw(&value, sizeof value); }
  void u64(std::uint64_t value) { raw(&value, sizeof value); }
  void i64(std::int64_t value) { u64(static_cast<std::uint64_t>(value)); }
  void f64(double value) { raw(&value, sizeof value); }
  void boolean(bool value) { u8(value ? 1 : 0); }

  void str(std::string_view text) {
    u64(text.size());
    raw(text.data(), text.size());
  }

  /// Raw bytes with NO length prefix (magic tags, pre-encoded payloads).
  void bytes(std::string_view data) { raw(data.data(), data.size()); }

  template <typename T, typename Fn>
  void vec(const std::vector<T>& values, Fn&& element) {
    u64(values.size());
    for (const T& value : values) element(value);
  }

  [[nodiscard]] const std::string& buffer() const noexcept { return out_; }
  [[nodiscard]] std::string take() noexcept { return std::move(out_); }

 private:
  void raw(const void* data, std::size_t size) {
    out_.append(static_cast<const char*>(data), size);
  }

  std::string out_;
};

/// Bounds-checked reader over a caller-owned byte buffer: any short read
/// or implausible size latches failed() and every subsequent read returns
/// a zero value, so parsers run straight through and check once at the
/// end. Decoding never throws and never over-reads, whatever the bytes.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  [[nodiscard]] bool failed() const noexcept { return failed_; }
  /// Latches the failure state from parser-level validation (a constructor
  /// rejected decoded data, an enum was out of range, ...).
  void fail() noexcept { failed_ = true; }

  /// Bytes not yet consumed (0 once failed).
  [[nodiscard]] std::size_t remaining() const noexcept {
    return failed_ ? 0 : data_.size() - pos_;
  }
  /// True when the buffer was consumed exactly (trailing garbage fails
  /// strict formats).
  [[nodiscard]] bool exhausted() const noexcept {
    return !failed_ && pos_ == data_.size();
  }

  std::uint8_t u8() { return scalar<std::uint8_t>(); }
  std::uint16_t u16() { return scalar<std::uint16_t>(); }
  std::uint32_t u32() { return scalar<std::uint32_t>(); }
  std::uint64_t u64() { return scalar<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return scalar<double>(); }
  bool boolean() { return u8() != 0; }

  std::string str() {
    const std::uint64_t size = count();
    std::string text(static_cast<std::size_t>(size), '\0');
    raw(text.data(), text.size());
    if (failed_) return {};
    return text;
  }

  /// Raw bytes with NO length prefix (magic tags).
  std::string bytes(std::size_t size) {
    std::string data(size, '\0');
    raw(data.data(), data.size());
    if (failed_) return {};
    return data;
  }

  /// A size field sanity-capped at kMaxCount AND at the bytes remaining
  /// (every element costs at least one byte, so a count beyond the buffer
  /// can only be corruption -- failing here keeps parse loops short).
  std::uint64_t count() {
    const std::uint64_t value = u64();
    if (value > kMaxCount || value > remaining()) failed_ = true;
    return failed_ ? 0 : value;
  }

  template <typename T, typename Fn>
  std::vector<T> vec(Fn&& element) {
    const std::uint64_t size = count();
    std::vector<T> values;
    // Deliberately no reserve(size): the count came off the buffer, and a
    // corrupt value below the caps could still drive a large speculative
    // allocation. Growing as elements actually parse bounds memory by the
    // real buffer length (a short read fails fast).
    for (std::uint64_t i = 0; i < size && !failed_; ++i) {
      values.push_back(element());
    }
    return values;
  }

 private:
  template <typename T>
  T scalar() {
    T value{};
    raw(&value, sizeof value);
    return failed_ ? T{} : value;
  }

  void raw(void* data, std::size_t size) {
    if (failed_) return;
    if (data_.size() - pos_ < size) {
      failed_ = true;
      return;
    }
    std::char_traits<char>::copy(static_cast<char*>(data),
                                 data_.data() + pos_, size);
    pos_ += size;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

// -- solving-vocabulary codecs ----------------------------------------------
// Every read_* returns a value-initialized object once the reader failed;
// callers check reader.failed() after parsing (the latched-failure
// discipline). read_report validates decoded enums itself, so every
// consumer (snapshot restore, wire protocol) inherits the range checks.

/// Length-prefixed vector of doubles -- the one layout both the report
/// codec and the instance codec use for every double sequence.
void write_doubles(Writer& writer, const std::vector<double>& values);
[[nodiscard]] std::vector<double> read_doubles(Reader& reader);

/// Full SolveOptions, including the per-solver sections. The cooperative
/// ExactOptions::deadline is runtime state, not data -- deadlines travel
/// as time budgets and are re-armed by the executing process.
void write_options(Writer& writer, const SolveOptions& options);
[[nodiscard]] SolveOptions read_options(Reader& reader);

/// Full SolveReport: diagnostics, provenance (cache_hit/admission/
/// coalesced), and the optional LP/mechanism payloads, bit-for-bit.
void write_report(Writer& writer, const SolveReport& report);
[[nodiscard]] SolveReport read_report(Reader& reader);

void write_stats(Writer& writer, const service::ServiceStats& stats);
[[nodiscard]] service::ServiceStats read_stats(Reader& reader);

/// Payload equality for reports: bitwise over every field except the
/// timing-class diagnostics (wall_time_seconds, queue_wait_seconds,
/// warm_started, pivots), which re-measure per run by design. This is the
/// invariant the cross-process serving path guarantees against an
/// in-process LocalClient run of the same request stream (see
/// client/auction_client.hpp) -- and the invariant the warm-start path
/// guarantees against a cold solve of the same instance.
[[nodiscard]] bool reports_payload_equal(const SolveReport& a,
                                         const SolveReport& b);

}  // namespace ssa::wire
