#include "wire/telemetry_codec.hpp"

#include <array>

namespace ssa::wire {

namespace {

void write_histogram(Writer& writer, const LatencyHistogram& histogram) {
  writer.u64(histogram.count());
  writer.f64(histogram.sum());
  writer.f64(histogram.min());
  writer.f64(histogram.max());
  std::uint32_t nonzero = 0;
  const auto& buckets = histogram.buckets();
  for (const std::uint64_t count : buckets) {
    if (count != 0) ++nonzero;
  }
  writer.u32(nonzero);
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    writer.u32(static_cast<std::uint32_t>(i));
    writer.u64(buckets[i]);
  }
}

LatencyHistogram read_histogram(Reader& reader) {
  const std::uint64_t count = reader.u64();
  const double sum = reader.f64();
  const double min = reader.f64();
  const double max = reader.f64();
  const std::uint32_t nonzero = reader.u32();
  if (nonzero > static_cast<std::uint32_t>(LatencyHistogram::kBucketCount)) {
    reader.fail();
    return {};
  }
  std::array<std::uint64_t, LatencyHistogram::kBucketCount> buckets{};
  std::uint64_t bucket_total = 0;
  std::int64_t last_index = -1;
  for (std::uint32_t i = 0; i < nonzero && !reader.failed(); ++i) {
    const std::uint32_t index = reader.u32();
    const std::uint64_t bucket_count = reader.u64();
    // Strictly increasing in-range indices with nonzero counts: the one
    // canonical encoding per histogram, so corrupt bytes cannot alias a
    // valid one.
    if (index >= static_cast<std::uint32_t>(LatencyHistogram::kBucketCount) ||
        static_cast<std::int64_t>(index) <= last_index || bucket_count == 0) {
      reader.fail();
      return {};
    }
    last_index = index;
    buckets[index] = bucket_count;
    bucket_total += bucket_count;
  }
  if (reader.failed()) return {};
  if (bucket_total != count) {  // count IS the bucket sum, always
    reader.fail();
    return {};
  }
  return LatencyHistogram::from_state(buckets, count, sum, min, max);
}

}  // namespace

void write_telemetry(Writer& writer, const obs::TelemetrySnapshot& snapshot) {
  writer.vec(snapshot.counters, [&](const auto& entry) {
    writer.str(entry.first);
    writer.u64(entry.second);
  });
  writer.vec(snapshot.gauges, [&](const auto& entry) {
    writer.str(entry.first);
    writer.i64(entry.second);
  });
  writer.vec(snapshot.histograms, [&](const auto& entry) {
    writer.str(entry.first);
    write_histogram(writer, entry.second);
  });
  writer.vec(snapshot.spans, [&](const obs::SpanRecord& span) {
    writer.u64(span.trace_id);
    writer.u64(span.span_id);
    writer.u64(span.parent_span_id);
    writer.str(span.name);
    writer.str(span.note);
    writer.f64(span.start_unix_seconds);
    writer.f64(span.duration_seconds);
  });
}

std::optional<obs::TelemetrySnapshot> decode_telemetry(
    std::string_view payload) {
  Reader reader(payload);
  obs::TelemetrySnapshot snapshot;
  snapshot.counters =
      reader.vec<std::pair<std::string, std::uint64_t>>([&] {
        std::string name = reader.str();
        const std::uint64_t value = reader.u64();
        return std::make_pair(std::move(name), value);
      });
  snapshot.gauges = reader.vec<std::pair<std::string, std::int64_t>>([&] {
    std::string name = reader.str();
    const std::int64_t value = reader.i64();
    return std::make_pair(std::move(name), value);
  });
  snapshot.histograms =
      reader.vec<std::pair<std::string, LatencyHistogram>>([&] {
        std::string name = reader.str();
        LatencyHistogram histogram = read_histogram(reader);
        return std::make_pair(std::move(name), std::move(histogram));
      });
  snapshot.spans = reader.vec<obs::SpanRecord>([&] {
    obs::SpanRecord span;
    span.trace_id = reader.u64();
    span.span_id = reader.u64();
    span.parent_span_id = reader.u64();
    span.name = reader.str();
    span.note = reader.str();
    span.start_unix_seconds = reader.f64();
    span.duration_seconds = reader.f64();
    return span;
  });
  if (reader.failed() || !reader.exhausted()) return std::nullopt;
  return snapshot;
}

}  // namespace ssa::wire
