#include "wire/instance_codec.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "core/valuation.hpp"
#include "graph/ordering.hpp"

namespace ssa::wire {

namespace {

// -- tags -------------------------------------------------------------------

enum class InstanceKind : std::uint8_t {
  kSymmetric = 1,
  kAsymmetric = 2,
};

enum class ValuationTag : std::uint8_t {
  kExplicit = 1,
  kAdditive = 2,
  kUnitDemand = 3,
  kSingleMinded = 4,
  kBudgetAdditive = 5,
  kXor = 6,
  kCoverage = 7,
};

// -- graphs -----------------------------------------------------------------

void write_graph(Writer& writer, const ConflictGraph& graph) {
  writer.u64(graph.size());
  // Sparse directed weights: conflict graphs are overwhelmingly sparse
  // relative to their dense n^2 storage, and replaying set_weight on the
  // decoder side preserves every weight's bit pattern (and thereby the
  // graph's unweightedness classification).
  std::uint64_t nonzero = 0;
  for (std::size_t u = 0; u < graph.size(); ++u) {
    for (std::size_t v = 0; v < graph.size(); ++v) {
      if (graph.weight(u, v) != 0.0) ++nonzero;
    }
  }
  writer.u64(nonzero);
  for (std::size_t u = 0; u < graph.size(); ++u) {
    for (std::size_t v = 0; v < graph.size(); ++v) {
      const double weight = graph.weight(u, v);
      if (weight == 0.0) continue;
      writer.u32(static_cast<std::uint32_t>(u));
      writer.u32(static_cast<std::uint32_t>(v));
      writer.f64(weight);
    }
  }
}

/// \p cell_budget: remaining dense-cell allowance across the whole
/// instance (kMaxGraphCells at the start of read_instance), drawn down by
/// n^2 per graph so a multi-graph frame cannot multiply the worst case.
ConflictGraph read_graph(Reader& reader, std::uint64_t& cell_budget) {
  const std::uint64_t size = reader.u64();
  // Dense-storage guards (see kMaxGraphVertices/kMaxGraphCells), plus the
  // every-length rule that a count can never exceed the bytes still in
  // the buffer (any honest instance encoding carries >= 4n ordering
  // bytes after its graph, so real graphs always pass).
  if (size > kMaxGraphVertices || size > reader.remaining() ||
      size * size > cell_budget) {
    reader.fail();
  }
  if (reader.failed()) return ConflictGraph(0);
  cell_budget -= size * size;
  ConflictGraph graph(static_cast<std::size_t>(size));
  const std::uint64_t nonzero = reader.count();
  for (std::uint64_t i = 0; i < nonzero && !reader.failed(); ++i) {
    const std::uint32_t u = reader.u32();
    const std::uint32_t v = reader.u32();
    const double weight = reader.f64();
    if (reader.failed()) break;
    if (u >= size || v >= size || u == v) {
      reader.fail();
      break;
    }
    graph.set_weight(u, v, weight);
  }
  return graph;
}

// -- valuations -------------------------------------------------------------
// Double sequences use the shared write_doubles/read_doubles layout of
// codec.hpp, so the two codecs cannot diverge field by field.

void write_valuation(Writer& writer, const Valuation& valuation) {
  if (const auto* v = dynamic_cast<const ExplicitValuation*>(&valuation)) {
    writer.u8(static_cast<std::uint8_t>(ValuationTag::kExplicit));
    writer.u32(static_cast<std::uint32_t>(v->num_channels()));
    write_doubles(writer, v->values());
    return;
  }
  if (const auto* v = dynamic_cast<const AdditiveValuation*>(&valuation)) {
    writer.u8(static_cast<std::uint8_t>(ValuationTag::kAdditive));
    write_doubles(writer, v->channel_values());
    return;
  }
  if (const auto* v = dynamic_cast<const UnitDemandValuation*>(&valuation)) {
    writer.u8(static_cast<std::uint8_t>(ValuationTag::kUnitDemand));
    write_doubles(writer, v->channel_values());
    return;
  }
  if (const auto* v = dynamic_cast<const SingleMindedValuation*>(&valuation)) {
    writer.u8(static_cast<std::uint8_t>(ValuationTag::kSingleMinded));
    writer.u32(static_cast<std::uint32_t>(v->num_channels()));
    writer.u32(v->target());
    writer.f64(v->target_value());
    return;
  }
  if (const auto* v =
          dynamic_cast<const BudgetAdditiveValuation*>(&valuation)) {
    writer.u8(static_cast<std::uint8_t>(ValuationTag::kBudgetAdditive));
    write_doubles(writer, v->channel_values());
    writer.f64(v->budget());
    return;
  }
  if (const auto* v = dynamic_cast<const XorValuation*>(&valuation)) {
    writer.u8(static_cast<std::uint8_t>(ValuationTag::kXor));
    writer.u32(static_cast<std::uint32_t>(v->num_channels()));
    writer.vec(v->atoms(), [&](const XorValuation::Atom& atom) {
      writer.u32(atom.bundle);
      writer.f64(atom.value);
    });
    return;
  }
  if (const auto* v = dynamic_cast<const CoverageValuation*>(&valuation)) {
    writer.u8(static_cast<std::uint8_t>(ValuationTag::kCoverage));
    write_doubles(writer, v->element_weights());
    writer.vec(v->coverage(), [&](const std::vector<int>& covered) {
      writer.vec(covered,
                 [&](int element) {
                   writer.u32(static_cast<std::uint32_t>(element));
                 });
    });
    return;
  }
  // Unknown subclass: canonicalize to an explicit table. Value-identical
  // on every bundle; the table blowup is why the channel cap exists.
  const int k = valuation.num_channels();
  if (k > kExplicitFallbackChannels) {
    throw std::invalid_argument(
        "wire: cannot serialize an unknown Valuation subclass over " +
        std::to_string(k) + " channels (explicit fallback caps at " +
        std::to_string(kExplicitFallbackChannels) + ")");
  }
  std::vector<double> values(num_bundles(k), 0.0);
  for (Bundle t = 1; t < num_bundles(k); ++t) values[t] = valuation.value(t);
  writer.u8(static_cast<std::uint8_t>(ValuationTag::kExplicit));
  writer.u32(static_cast<std::uint32_t>(k));
  write_doubles(writer, values);
}

ValuationPtr read_valuation(Reader& reader) {
  // Constructors validate decoded data (negative values, bad bundles, bad
  // channel counts) by throwing; the catch below converts any such reject
  // into the reader's latched failure, so hostile bytes cost a clean
  // decode error, never an escaping exception.
  try {
    const std::uint8_t tag = reader.u8();
    switch (static_cast<ValuationTag>(tag)) {
      case ValuationTag::kExplicit: {
        const int k = static_cast<int>(reader.u32());
        std::vector<double> values = read_doubles(reader);
        if (reader.failed()) return nullptr;
        return std::make_shared<ExplicitValuation>(k, std::move(values));
      }
      case ValuationTag::kAdditive: {
        std::vector<double> values = read_doubles(reader);
        if (reader.failed()) return nullptr;
        return std::make_shared<AdditiveValuation>(std::move(values));
      }
      case ValuationTag::kUnitDemand: {
        std::vector<double> values = read_doubles(reader);
        if (reader.failed()) return nullptr;
        return std::make_shared<UnitDemandValuation>(std::move(values));
      }
      case ValuationTag::kSingleMinded: {
        const int k = static_cast<int>(reader.u32());
        const Bundle target = static_cast<Bundle>(reader.u32());
        const double value = reader.f64();
        if (reader.failed()) return nullptr;
        return std::make_shared<SingleMindedValuation>(k, target, value);
      }
      case ValuationTag::kBudgetAdditive: {
        std::vector<double> values = read_doubles(reader);
        const double budget = reader.f64();
        if (reader.failed()) return nullptr;
        return std::make_shared<BudgetAdditiveValuation>(std::move(values),
                                                         budget);
      }
      case ValuationTag::kXor: {
        const int k = static_cast<int>(reader.u32());
        std::vector<XorValuation::Atom> atoms =
            reader.vec<XorValuation::Atom>([&] {
              XorValuation::Atom atom;
              atom.bundle = static_cast<Bundle>(reader.u32());
              atom.value = reader.f64();
              return atom;
            });
        if (reader.failed()) return nullptr;
        return std::make_shared<XorValuation>(k, std::move(atoms));
      }
      case ValuationTag::kCoverage: {
        std::vector<double> weights = read_doubles(reader);
        std::vector<std::vector<int>> coverage =
            reader.vec<std::vector<int>>([&] {
              return reader.vec<int>(
                  [&] { return static_cast<int>(reader.u32()); });
            });
        if (reader.failed()) return nullptr;
        return std::make_shared<CoverageValuation>(std::move(weights),
                                                   std::move(coverage));
      }
    }
  } catch (...) {
    // fall through to the shared failure latch
  }
  reader.fail();
  return nullptr;
}

std::vector<ValuationPtr> read_valuations(Reader& reader) {
  return reader.vec<ValuationPtr>([&] { return read_valuation(reader); });
}

Ordering read_ordering(Reader& reader) {
  return reader.vec<int>([&] { return static_cast<int>(reader.u32()); });
}

void write_ordering(Writer& writer, const Ordering& order) {
  writer.vec(order,
             [&](int vertex) { writer.u32(static_cast<std::uint32_t>(vertex)); });
}

void write_valuations(Writer& writer,
                      const std::vector<ValuationPtr>& valuations) {
  writer.u64(valuations.size());
  for (const ValuationPtr& valuation : valuations) {
    write_valuation(writer, *valuation);
  }
}

}  // namespace

void write_instance(Writer& writer, const AnyInstance& instance) {
  if (instance.is_symmetric()) {
    const AuctionInstance& sym = instance.symmetric();
    writer.u8(static_cast<std::uint8_t>(InstanceKind::kSymmetric));
    write_graph(writer, sym.graph());
    write_ordering(writer, sym.order());
    writer.u32(static_cast<std::uint32_t>(sym.num_channels()));
    // The FINAL rho (measured when the builder passed 0, clamped to >= 1):
    // the decoding constructor takes it verbatim and never re-measures.
    writer.f64(sym.rho());
    write_valuations(writer, sym.valuations());
    return;
  }
  if (instance.is_asymmetric()) {
    const AsymmetricInstance& asym = instance.asymmetric();
    writer.u8(static_cast<std::uint8_t>(InstanceKind::kAsymmetric));
    writer.u64(static_cast<std::uint64_t>(asym.num_channels()));
    for (const ConflictGraph& graph : asym.graphs()) {
      write_graph(writer, graph);
    }
    write_ordering(writer, asym.order());
    writer.f64(asym.rho());
    // AsymmetricInstance exposes valuations only one at a time.
    writer.u64(asym.num_bidders());
    for (std::size_t v = 0; v < asym.num_bidders(); ++v) {
      write_valuation(writer, asym.valuation(v));
    }
    return;
  }
  throw std::invalid_argument("wire: cannot serialize an empty instance view");
}

OwnedInstance read_instance(Reader& reader) {
  // Instance constructors validate cross-field consistency (permutation
  // orderings, one valuation per vertex, channel-count agreement); any
  // throw latches the reader's failure like every other anomaly.
  try {
    std::uint64_t cell_budget = kMaxGraphCells;
    const std::uint8_t kind = reader.u8();
    if (kind == static_cast<std::uint8_t>(InstanceKind::kSymmetric)) {
      ConflictGraph graph = read_graph(reader, cell_budget);
      Ordering order = read_ordering(reader);
      const int k = static_cast<int>(reader.u32());
      const double rho = reader.f64();
      std::vector<ValuationPtr> valuations = read_valuations(reader);
      if (reader.failed() || rho <= 0.0) {
        reader.fail();
        return OwnedInstance();
      }
      return OwnedInstance(AuctionInstance(std::move(graph), std::move(order),
                                           k, std::move(valuations), rho));
    }
    if (kind == static_cast<std::uint8_t>(InstanceKind::kAsymmetric)) {
      const std::uint64_t channels = reader.u64();
      if (channels == 0 ||
          channels > static_cast<std::uint64_t>(
                         AsymmetricInstance::kMaxChannels)) {
        reader.fail();
        return OwnedInstance();
      }
      std::vector<ConflictGraph> graphs;
      graphs.reserve(static_cast<std::size_t>(channels));
      for (std::uint64_t j = 0; j < channels && !reader.failed(); ++j) {
        graphs.push_back(read_graph(reader, cell_budget));
      }
      Ordering order = read_ordering(reader);
      const double rho = reader.f64();
      std::vector<ValuationPtr> valuations = read_valuations(reader);
      if (reader.failed() || rho <= 0.0) {
        reader.fail();
        return OwnedInstance();
      }
      return OwnedInstance(AsymmetricInstance(std::move(graphs),
                                              std::move(order),
                                              std::move(valuations), rho));
    }
  } catch (...) {
    // fall through to the shared failure latch
  }
  reader.fail();
  return OwnedInstance();
}

}  // namespace ssa::wire
