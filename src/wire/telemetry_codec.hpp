#pragma once
/// \file telemetry_codec.hpp
/// Wire codec for obs::TelemetrySnapshot: the payload of the v6
/// kTelemetryOk frame (protocol.hpp). Shares the Writer/Reader core and
/// the versioning discipline of every other codec -- the layout is covered
/// by kWireVersion, golden-pinned in tests/test_wire.cpp, and any change
/// here must bump the protocol version.
///
/// Layout (little-endian, strict -- trailing bytes fail):
///     u64 n  | n * (str name | u64 value)                 counters
///     u64 n  | n * (str name | i64 value)                 gauges
///     u64 n  | n * (str name | histogram)                 histograms
///     u64 n  | n * span                                   recent spans
///     histogram := u64 count | f64 sum | f64 min | f64 max
///                  | u32 nonzero | nonzero * (u32 index | u64 bucket_count)
///     span      := u64 trace_id | u64 span_id | u64 parent_span_id
///                  | str name | str note | f64 start | f64 duration
/// Histogram buckets travel sparse (only nonzero indices): a mostly-empty
/// 352-bucket grid costs a few entries, not 2.8 KiB. The decoder rejects
/// out-of-range bucket indices, duplicate/unsorted indices and a count
/// that disagrees with the bucket sum -- a corrupt histogram can never
/// produce inconsistent quantiles downstream.

#include <optional>
#include <string_view>

#include "obs/telemetry.hpp"
#include "wire/codec.hpp"

namespace ssa::wire {

void write_telemetry(Writer& writer, const obs::TelemetrySnapshot& snapshot);

/// Strict parse of one encoded snapshot; nullopt on any anomaly
/// (including trailing bytes).
[[nodiscard]] std::optional<obs::TelemetrySnapshot> decode_telemetry(
    std::string_view payload);

}  // namespace ssa::wire
