#pragma once
/// \file instance_codec.hpp
/// Serialization of auction instances for the wire protocol: both instance
/// types behind AnyInstance (the symmetric AuctionInstance and the
/// Section-6 AsymmetricInstance) with their conflict graphs, orderings,
/// rho and valuations travel as bytes, and decode to an OwnedInstance the
/// receiving process can solve.
///
/// Valuations are encoded POLYMORPHICALLY: each of the library's concrete
/// classes (explicit table, additive, unit demand, single minded, budget
/// additive, XOR, coverage) has a type tag and ships its defining data, so
/// the decoder reconstructs the exact same class with the exact same
/// doubles. That is what makes the cross-process guarantee bitwise: the
/// remote solver runs the same closed-form demand()/max_value() code paths
/// (same tie-breaks, same floating-point summation order) as an in-process
/// solve of the original object. A Valuation subclass the codec does not
/// know falls back to an explicit value table -- value-identical on every
/// bundle (and fingerprint-identical, support/fingerprint.hpp), but
/// demand-oracle tie-breaks may differ from the original's closed form --
/// and requires num_channels() <= kExplicitFallbackChannels.
///
/// Graphs ship sparsely (only non-zero directed weights), orderings as
/// vertex lists, rho as the instance's final (measured, clamped) value, so
/// the decoded constructor never re-measures: structurally equal instances
/// stay bitwise equal across the wire.
///
/// Versioning: the instance layout is part of the wire protocol
/// (wire::kWireVersion) -- bump it on any change here. Golden byte pins
/// live in tests/test_wire.cpp.

#include <variant>

#include "api/any_instance.hpp"
#include "core/asymmetric.hpp"
#include "core/instance.hpp"
#include "wire/codec.hpp"

namespace ssa::wire {

/// Largest channel count the explicit-table fallback for unknown Valuation
/// subclasses will materialize (2^k doubles per bidder); the known classes
/// have no such limit beyond the instance types' own caps.
inline constexpr int kExplicitFallbackChannels = 16;

/// Largest decodable conflict-graph vertex count. ConflictGraph stores a
/// dense n^2 weight matrix, so the generic length caps are not enough: a
/// corrupt vertex count within them could still demand gigabytes before
/// any element parses. 4096 vertices (a 128 MiB matrix) is far above any
/// servable instance and cheap enough that hostile bytes cannot hurt.
inline constexpr std::uint64_t kMaxGraphVertices = 4096;

/// Cap on the CUMULATIVE dense weight cells (sum of n^2 over every graph
/// of one instance) a single decode may materialize -- equal to one
/// maximum-size graph. Without it, an asymmetric frame of a few KiB
/// could claim kMaxChannels graphs of kMaxGraphVertices each and demand
/// ~1.5 GiB before the first parse failure; with it, hostile bytes can
/// never allocate more than one legitimate worst-case instance does.
inline constexpr std::uint64_t kMaxGraphCells =
    kMaxGraphVertices * kMaxGraphVertices;

/// A decoded instance with owned storage (AnyInstance is a non-owning
/// view, but bytes off the wire have no caller-owned original to point
/// into). view() is valid while the OwnedInstance lives.
class OwnedInstance {
 public:
  OwnedInstance() = default;
  explicit OwnedInstance(AuctionInstance instance)
      : holder_(std::move(instance)) {}
  explicit OwnedInstance(AsymmetricInstance instance)
      : holder_(std::move(instance)) {}

  [[nodiscard]] bool empty() const noexcept {
    return std::holds_alternative<std::monostate>(holder_);
  }

  [[nodiscard]] AnyInstance view() const {
    if (const auto* sym = std::get_if<AuctionInstance>(&holder_)) {
      return AnyInstance(*sym);
    }
    if (const auto* asym = std::get_if<AsymmetricInstance>(&holder_)) {
      return AnyInstance(*asym);
    }
    return AnyInstance();
  }

 private:
  std::variant<std::monostate, AuctionInstance, AsymmetricInstance> holder_;
};

/// Encodes the instance behind \p instance. Throws std::invalid_argument
/// for an empty view and for an unknown Valuation subclass over more than
/// kExplicitFallbackChannels channels (the two conditions a caller can
/// actually hit; both surface as submit() failures, never mid-stream).
void write_instance(Writer& writer, const AnyInstance& instance);

/// Decodes an instance; on ANY anomaly (truncation, bad tags, data a
/// constructor rejects) the reader's failure latches and the returned
/// holder is empty. Never throws.
[[nodiscard]] OwnedInstance read_instance(Reader& reader);

}  // namespace ssa::wire
