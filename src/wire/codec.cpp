#include "wire/codec.hpp"

#include "service/auction_service.hpp"

namespace ssa::wire {

namespace {

// -- allocation / LP / mechanism payload codecs -----------------------------
// The field order below is load-bearing twice over: it IS the result-cache
// snapshot layout (ResultCache::kSnapshotVersion pins it on disk) and the
// wire report layout (kWireVersion pins it on the network). Change the
// order or widths only together with a version bump on both.

void write_allocation(Writer& writer, const Allocation& allocation) {
  writer.vec(allocation.bundles, [&](Bundle bundle) { writer.u32(bundle); });
}

Allocation read_allocation(Reader& reader) {
  Allocation allocation;
  allocation.bundles =
      reader.vec<Bundle>([&] { return static_cast<Bundle>(reader.u32()); });
  return allocation;
}

void write_fractional(Writer& writer, const FractionalSolution& fractional) {
  writer.u8(static_cast<std::uint8_t>(fractional.status));
  writer.f64(fractional.objective);
  writer.vec(fractional.columns, [&](const FractionalColumn& column) {
    writer.u32(static_cast<std::uint32_t>(column.bidder));
    writer.u32(column.bundle);
    writer.f64(column.x);
  });
}

FractionalSolution read_fractional(Reader& reader) {
  FractionalSolution fractional;
  const std::uint8_t status = reader.u8();
  // Enum came off the wire/disk: reject values outside the range instead
  // of carrying a poisoned enum into the process.
  if (status > static_cast<std::uint8_t>(lp::SolveStatus::kTimeLimit)) {
    reader.fail();
    return fractional;
  }
  fractional.status = static_cast<lp::SolveStatus>(status);
  fractional.objective = reader.f64();
  fractional.columns = reader.vec<FractionalColumn>([&] {
    FractionalColumn column;
    column.bidder = static_cast<int>(reader.u32());
    column.bundle = static_cast<Bundle>(reader.u32());
    column.x = reader.f64();
    return column;
  });
  return fractional;
}

void write_mechanism(Writer& writer, const MechanismOutcome& outcome) {
  write_fractional(writer, outcome.vcg.optimum);
  write_doubles(writer, outcome.vcg.bidder_value);
  write_doubles(writer, outcome.vcg.payments);
  writer.vec(outcome.decomposition.entries,
             [&](const DecompositionEntry& entry) {
               write_allocation(writer, entry.allocation);
               writer.f64(entry.probability);
             });
  writer.f64(outcome.decomposition.alpha);
  writer.f64(outcome.decomposition.residual);
  writer.u32(static_cast<std::uint32_t>(outcome.decomposition.rounds));
  writer.u32(
      static_cast<std::uint32_t>(outcome.decomposition.columns_generated));
  writer.boolean(outcome.used_colgen);
  writer.u64(outcome.sampled_index);
  write_allocation(writer, outcome.allocation);
  write_doubles(writer, outcome.payments);
  write_doubles(writer, outcome.expected_payments);
}

MechanismOutcome read_mechanism(Reader& reader) {
  MechanismOutcome outcome;
  outcome.vcg.optimum = read_fractional(reader);
  outcome.vcg.bidder_value = read_doubles(reader);
  outcome.vcg.payments = read_doubles(reader);
  outcome.decomposition.entries = reader.vec<DecompositionEntry>([&] {
    DecompositionEntry entry;
    entry.allocation = read_allocation(reader);
    entry.probability = reader.f64();
    return entry;
  });
  outcome.decomposition.alpha = reader.f64();
  outcome.decomposition.residual = reader.f64();
  outcome.decomposition.rounds = static_cast<int>(reader.u32());
  outcome.decomposition.columns_generated = static_cast<int>(reader.u32());
  outcome.used_colgen = reader.boolean();
  outcome.sampled_index = static_cast<std::size_t>(reader.u64());
  outcome.allocation = read_allocation(reader);
  outcome.payments = read_doubles(reader);
  outcome.expected_payments = read_doubles(reader);
  return outcome;
}

}  // namespace

void write_doubles(Writer& writer, const std::vector<double>& values) {
  writer.vec(values, [&](double value) { writer.f64(value); });
}

std::vector<double> read_doubles(Reader& reader) {
  return reader.vec<double>([&] { return reader.f64(); });
}

// -- SolveOptions -----------------------------------------------------------

void write_options(Writer& writer, const SolveOptions& options) {
  writer.u64(options.seed);
  writer.f64(options.time_budget_seconds);
  writer.u32(static_cast<std::uint32_t>(options.threads));
  writer.u32(static_cast<std::uint32_t>(options.pipeline.rounding_repetitions));
  writer.boolean(options.pipeline.derandomize);
  writer.u64(options.pipeline.seed);
  writer.boolean(options.pipeline.force_column_generation);
  writer.u32(static_cast<std::uint32_t>(options.pipeline.explicit_limit));
  writer.f64(options.pipeline.time_budget_seconds);
  writer.i64(options.exact.node_budget);
  writer.u32(static_cast<std::uint32_t>(options.exact.max_channels));
  writer.boolean(options.mechanism.use_colgen);
  writer.u32(static_cast<std::uint32_t>(options.mechanism.explicit_limit));
  writer.f64(options.mechanism.decomposition.alpha);
  writer.u32(static_cast<std::uint32_t>(
      options.mechanism.decomposition.rounding_repetitions));
  writer.u32(static_cast<std::uint32_t>(
      options.mechanism.decomposition.max_rounds));
  writer.boolean(options.mechanism.decomposition.use_exact_pricing);
  writer.u64(options.mechanism.decomposition.seed);
  writer.u64(options.mechanism.sample_seed);
  // v4: the warm-start opt-out rides at the end of the options block.
  // warm_context is runtime-only and never crosses the wire.
  writer.boolean(options.warm_start);
}

SolveOptions read_options(Reader& reader) {
  SolveOptions options;
  options.seed = reader.u64();
  options.time_budget_seconds = reader.f64();
  options.threads = static_cast<int>(reader.u32());
  options.pipeline.rounding_repetitions = static_cast<int>(reader.u32());
  options.pipeline.derandomize = reader.boolean();
  options.pipeline.seed = reader.u64();
  options.pipeline.force_column_generation = reader.boolean();
  options.pipeline.explicit_limit = static_cast<int>(reader.u32());
  options.pipeline.time_budget_seconds = reader.f64();
  options.exact.node_budget = reader.i64();
  options.exact.max_channels = static_cast<int>(reader.u32());
  options.mechanism.use_colgen = reader.boolean();
  options.mechanism.explicit_limit = static_cast<int>(reader.u32());
  options.mechanism.decomposition.alpha = reader.f64();
  options.mechanism.decomposition.rounding_repetitions =
      static_cast<int>(reader.u32());
  options.mechanism.decomposition.max_rounds = static_cast<int>(reader.u32());
  options.mechanism.decomposition.use_exact_pricing = reader.boolean();
  options.mechanism.decomposition.seed = reader.u64();
  options.mechanism.sample_seed = reader.u64();
  options.warm_start = reader.boolean();
  if (reader.failed()) return SolveOptions{};
  return options;
}

// -- SolveReport ------------------------------------------------------------

void write_report(Writer& writer, const SolveReport& report) {
  writer.str(report.solver);
  writer.str(report.params);
  write_allocation(writer, report.allocation);
  writer.f64(report.welfare);
  writer.boolean(report.feasible);
  writer.f64(report.guarantee);
  writer.f64(report.factor);
  writer.boolean(report.lp_upper_bound.has_value());
  if (report.lp_upper_bound) writer.f64(*report.lp_upper_bound);
  writer.boolean(report.exact);
  writer.boolean(report.timed_out);
  writer.f64(report.wall_time_seconds);
  // v4 diagnostics: timing-class fields, zeroed by reports_payload_equal.
  writer.boolean(report.warm_started);
  writer.i64(report.pivots);
  // v5 diagnostics: column-generation run shape, likewise payload-excluded.
  writer.u32(report.oracle_rounds);
  writer.u32(report.columns_generated);
  writer.str(report.error);
  writer.str(report.solver_selected);
  writer.boolean(report.cache_hit);
  writer.f64(report.queue_wait_seconds);
  writer.u8(static_cast<std::uint8_t>(report.admission));
  writer.boolean(report.coalesced);
  writer.boolean(report.fractional.has_value());
  if (report.fractional) write_fractional(writer, *report.fractional);
  writer.boolean(report.mechanism.has_value());
  if (report.mechanism) write_mechanism(writer, *report.mechanism);
}

SolveReport read_report(Reader& reader) {
  SolveReport report;
  report.solver = reader.str();
  report.params = reader.str();
  report.allocation = read_allocation(reader);
  report.welfare = reader.f64();
  report.feasible = reader.boolean();
  report.guarantee = reader.f64();
  report.factor = reader.f64();
  if (reader.boolean()) report.lp_upper_bound = reader.f64();
  report.exact = reader.boolean();
  report.timed_out = reader.boolean();
  report.wall_time_seconds = reader.f64();
  report.warm_started = reader.boolean();
  report.pivots = reader.i64();
  report.oracle_rounds = reader.u32();
  report.columns_generated = reader.u32();
  report.error = reader.str();
  report.solver_selected = reader.str();
  report.cache_hit = reader.boolean();
  report.queue_wait_seconds = reader.f64();
  const std::uint8_t admission = reader.u8();
  if (admission > static_cast<std::uint8_t>(Admission::kRejected)) {
    reader.fail();
    return SolveReport{};
  }
  report.admission = static_cast<Admission>(admission);
  report.coalesced = reader.boolean();
  if (reader.boolean()) report.fractional = read_fractional(reader);
  if (reader.boolean()) report.mechanism = read_mechanism(reader);
  if (reader.failed()) return SolveReport{};
  return report;
}

// -- ServiceStats -----------------------------------------------------------

void write_stats(Writer& writer, const service::ServiceStats& stats) {
  writer.u64(stats.submitted);
  writer.u64(stats.completed);
  writer.u64(stats.cache_hits);
  writer.u64(stats.fallbacks);
  writer.u64(stats.coalesced);
  writer.u64(stats.admission_degraded);
  writer.u64(stats.admission_rejected);
  writer.u64(stats.timed_out);
  writer.u64(stats.warm_starts);
  writer.u64(stats.colgen_warm);
  writer.u64(stats.snapshot_restored);
  writer.u64(stats.cache_entries);
  writer.u64(stats.cache_bytes);
}

service::ServiceStats read_stats(Reader& reader) {
  service::ServiceStats stats;
  stats.submitted = reader.u64();
  stats.completed = reader.u64();
  stats.cache_hits = reader.u64();
  stats.fallbacks = reader.u64();
  stats.coalesced = reader.u64();
  stats.admission_degraded = reader.u64();
  stats.admission_rejected = reader.u64();
  stats.timed_out = reader.u64();
  stats.warm_starts = reader.u64();
  stats.colgen_warm = reader.u64();
  stats.snapshot_restored = reader.u64();
  stats.cache_entries = static_cast<std::size_t>(reader.u64());
  stats.cache_bytes = static_cast<std::size_t>(reader.u64());
  if (reader.failed()) return service::ServiceStats{};
  return stats;
}

bool reports_payload_equal(const SolveReport& a, const SolveReport& b) {
  // Compare through the codec: encoding covers every field bit-for-bit
  // (doubles as IEEE bit patterns), and zeroing the timing-class
  // diagnostics first excludes exactly the per-run noise -- including
  // warm_started/pivots, which is what lets the warm-start tests assert
  // "same payload" across cold and warm solves of one instance.
  const auto canonical = [](SolveReport report) {
    report.wall_time_seconds = 0.0;
    report.queue_wait_seconds = 0.0;
    report.warm_started = false;
    report.pivots = 0;
    report.oracle_rounds = 0;
    report.columns_generated = 0;
    Writer writer;
    write_report(writer, report);
    return writer.take();
  };
  return canonical(a) == canonical(b);
}

}  // namespace ssa::wire
