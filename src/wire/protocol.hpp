#pragma once
/// \file protocol.hpp
/// The versioned binary wire protocol of the cross-process serving path:
/// the request/response vocabulary TcpClient speaks to a ServiceServer or
/// a FrontDoor (client/tcp_client.hpp, net/service_server.hpp,
/// net/front_door.hpp).
///
/// Framing: every message travels as one length-prefixed frame,
///
///     u32 body_length | body
///     body := u32 kWireMagic | u16 kWireVersion | u8 MessageType
///             | u64 request_id | u64 trace_id | u64 parent_span_id
///             | payload
///
/// body_length counts the body bytes only and is capped at kMaxFrameBytes;
/// scalars are little-endian (wire/codec.hpp). A peer that receives a
/// frame with the wrong magic, an unknown version, an oversized length or
/// a payload its parser rejects answers kError (when it can still write)
/// and closes the connection -- malformed bytes never crash a peer and
/// never leave a partially-applied request behind.
///
/// request_id is the multiplexing correlation id: a client stamps every
/// request frame with a connection-unique id and the server stamps the
/// matching response with the SAME id, so many requests may be in flight
/// on one connection and responses may return in ANY order. Ids are
/// opaque to the server (it never interprets them) and scoped to one
/// connection. A response whose id matches no in-flight request is a
/// protocol violation: the receiving client poisons the connection, which
/// also covers duplicated ids (the first response consumes the pending
/// entry, the second finds nothing). Error frames answering bytes whose
/// envelope could not be parsed carry id 0 -- the stream is untrustworthy
/// after a framing error, so precise correlation no longer matters.
///
/// trace_id/parent_span_id are the v6 obs::SpanContext (obs/span.hpp):
/// which request tree this frame belongs to and the sender's span id, so
/// every hop can open a causally-linked child span. Both zero = untraced.
/// The context is observability-only: servers never branch on it, it
/// enters no cache key, and responses need not echo it (correlation is
/// the request id's job).
///
/// Versioning mirrors the snapshot discipline (ResultCache::
/// kSnapshotVersion): kWireVersion covers the framing AND every payload
/// codec it carries (codec.hpp, instance_codec.hpp) -- bump it on any
/// layout change so old peers reject new bytes cleanly instead of
/// misparsing them. tests/test_wire.cpp pins golden frame bytes.
///
/// Message flows (client drives; one request frame, one response frame):
///     kSubmit        -> kSubmitOk | kError
///     kGet           -> kReport   | kError     (blocking when asked)
///     kStats         -> kStatsOk  | kError
///     kShutdown      -> kShutdownOk | kError
///     kGetTelemetry  -> kTelemetryOk | kError
/// Errors carry a kind so the client can rethrow the same exception type
/// the in-process AuctionService would have thrown, and a message pinned
/// to the library-wide "<solver-key>: <reason>" format whenever it
/// originates from a solver layer (protocol-level failures use the
/// "front-door"/"service-server" keys).

#include <cstdint>
#include <optional>
#include <string>

#include "api/solver.hpp"
#include "obs/span.hpp"
#include "wire/codec.hpp"
#include "wire/instance_codec.hpp"

namespace ssa::wire {

/// First body field of every frame ("SSAW", little-endian).
inline constexpr std::uint32_t kWireMagic = 0x57415353u;

/// Protocol schema version; see the file comment for when to bump.
/// History: 2 added ServiceStats::timed_out to the stats codec; 3 added
/// the u64 request_id to the frame envelope (request multiplexing); 4
/// added SolveOptions::warm_start, SolveReport::warm_started/pivots and
/// ServiceStats::warm_starts (warm-start observability); 5 added
/// SolveReport::oracle_rounds/columns_generated and
/// ServiceStats::colgen_warm (column-generation observability); 6 added
/// the obs::SpanContext (trace_id + parent_span_id) to the frame envelope
/// and the kGetTelemetry/kTelemetryOk registry-export flow.
inline constexpr std::uint16_t kWireVersion = 6;

/// Upper bound on one frame's body (64 MiB): far above any real request
/// or report, small enough that a corrupt length cannot drive a huge
/// allocation on a peer.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

enum class MessageType : std::uint8_t {
  kSubmit = 1,        ///< str solver | SolveOptions | instance
  kSubmitOk = 2,      ///< u64 request id
  kGet = 3,           ///< u64 request id | u8 blocking
  kReport = 4,        ///< u8 ready | SolveReport (ready = 1 only)
  kStats = 5,         ///< (empty)
  kStatsOk = 6,       ///< u32 shards | ServiceStats
  kShutdown = 7,      ///< (empty)
  kShutdownOk = 8,    ///< (empty)
  kError = 9,         ///< u8 ErrorKind | str message
  kGetTelemetry = 10, ///< (empty)
  kTelemetryOk = 11,  ///< TelemetrySnapshot (wire/telemetry_codec.hpp)
};

/// Which exception a kError maps back to on the client side, so the
/// remote API surface throws exactly like the in-process one.
enum class ErrorKind : std::uint8_t {
  kInvalidArgument = 1,  ///< std::invalid_argument (bad id, empty instance)
  kRuntime = 2,          ///< std::runtime_error (shut down, transport, ...)
};

/// A parsed frame body: its type, correlation id, trace context and the
/// payload bytes after the header.
struct Frame {
  MessageType type = MessageType::kError;
  std::uint64_t request_id = 0;
  /// v6 trace coordinates ({0, 0} = untraced); see the file comment.
  obs::SpanContext context;
  std::string payload;
};

/// Encodes a complete frame (length prefix + header + payload) ready to
/// send. Throws std::invalid_argument when the payload would overflow
/// kMaxFrameBytes. The two-argument form sends an untraced frame
/// (context {0, 0}); responses always may, requests should carry the
/// caller's context when one exists.
[[nodiscard]] std::string encode_frame(MessageType type,
                                       std::uint64_t request_id,
                                       std::string_view payload,
                                       obs::SpanContext context = {});

/// Encodes a frame BODY only (header + payload, no length prefix) -- the
/// form recv_frame returns and the forwarding layers pass around.
[[nodiscard]] std::string encode_frame_body(MessageType type,
                                            std::uint64_t request_id,
                                            std::string_view payload,
                                            obs::SpanContext context = {});

/// Parses one frame BODY (the bytes after the length prefix): checks
/// magic, version and type range. nullopt on any anomaly.
[[nodiscard]] std::optional<Frame> decode_frame_body(std::string_view body);

/// Re-attaches the length prefix to a frame BODY (as returned by
/// TcpConnection::recv_frame), producing a sendable frame again -- the
/// forwarding path of the FrontDoor, which relays backend responses
/// verbatim without re-encoding them. Throws std::invalid_argument
/// beyond kMaxFrameBytes.
[[nodiscard]] std::string reframe_body(std::string_view body);

// -- payload builders/parsers (thin wrappers over the codecs) ---------------

struct SubmitRequest {
  std::string solver;
  SolveOptions options;
  OwnedInstance instance;  ///< decode side; encode takes a view
};

[[nodiscard]] std::string encode_submit(const AnyInstance& instance,
                                        const std::string& solver,
                                        const SolveOptions& options);
/// nullopt on malformed payload (including an instance a constructor
/// rejected).
[[nodiscard]] std::optional<SubmitRequest> decode_submit(
    std::string_view payload);

[[nodiscard]] std::string encode_error(ErrorKind kind,
                                       const std::string& message);
struct WireError {
  ErrorKind kind = ErrorKind::kRuntime;
  std::string message;
};
[[nodiscard]] std::optional<WireError> decode_error(std::string_view payload);

}  // namespace ssa::wire
