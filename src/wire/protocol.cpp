#include "wire/protocol.hpp"

#include <stdexcept>
#include <utility>

namespace ssa::wire {

std::string encode_frame_body(MessageType type, std::uint64_t request_id,
                              std::string_view payload,
                              obs::SpanContext context) {
  // header = magic + version + type + request id + trace context
  const std::size_t body_size = sizeof kWireMagic + sizeof kWireVersion +
                                sizeof(std::uint8_t) + sizeof request_id +
                                sizeof context.trace_id +
                                sizeof context.parent_span_id + payload.size();
  if (body_size > kMaxFrameBytes) {
    throw std::invalid_argument("wire: frame payload exceeds kMaxFrameBytes");
  }
  Writer writer;
  writer.u32(kWireMagic);
  writer.u16(kWireVersion);
  writer.u8(static_cast<std::uint8_t>(type));
  writer.u64(request_id);
  writer.u64(context.trace_id);
  writer.u64(context.parent_span_id);
  writer.bytes(payload);
  return writer.take();
}

std::string encode_frame(MessageType type, std::uint64_t request_id,
                         std::string_view payload, obs::SpanContext context) {
  return reframe_body(encode_frame_body(type, request_id, payload, context));
}

std::string reframe_body(std::string_view body) {
  if (body.size() > kMaxFrameBytes) {
    throw std::invalid_argument("wire: frame body exceeds kMaxFrameBytes");
  }
  Writer writer;
  writer.u32(static_cast<std::uint32_t>(body.size()));
  writer.bytes(body);
  return writer.take();
}

std::optional<Frame> decode_frame_body(std::string_view body) {
  Reader reader(body);
  const std::uint32_t magic = reader.u32();
  const std::uint16_t version = reader.u16();
  const std::uint8_t type = reader.u8();
  const std::uint64_t request_id = reader.u64();
  const std::uint64_t trace_id = reader.u64();
  const std::uint64_t parent_span_id = reader.u64();
  if (reader.failed() || magic != kWireMagic || version != kWireVersion) {
    return std::nullopt;
  }
  if (type < static_cast<std::uint8_t>(MessageType::kSubmit) ||
      type > static_cast<std::uint8_t>(MessageType::kTelemetryOk)) {
    return std::nullopt;
  }
  Frame frame;
  frame.type = static_cast<MessageType>(type);
  frame.request_id = request_id;
  frame.context = obs::SpanContext{trace_id, parent_span_id};
  frame.payload = reader.bytes(reader.remaining());
  return frame;
}

std::string encode_submit(const AnyInstance& instance,
                          const std::string& solver,
                          const SolveOptions& options) {
  Writer writer;
  writer.str(solver);
  write_options(writer, options);
  write_instance(writer, instance);
  return writer.take();
}

std::optional<SubmitRequest> decode_submit(std::string_view payload) {
  Reader reader(payload);
  SubmitRequest request;
  request.solver = reader.str();
  request.options = read_options(reader);
  request.instance = read_instance(reader);
  // Strict: trailing bytes after the instance are an anomaly, not padding.
  if (reader.failed() || !reader.exhausted() || request.instance.empty()) {
    return std::nullopt;
  }
  return request;
}

std::string encode_error(ErrorKind kind, const std::string& message) {
  Writer writer;
  writer.u8(static_cast<std::uint8_t>(kind));
  writer.str(message);
  return writer.take();
}

std::optional<WireError> decode_error(std::string_view payload) {
  Reader reader(payload);
  WireError error;
  const std::uint8_t kind = reader.u8();
  error.message = reader.str();
  if (reader.failed() ||
      kind < static_cast<std::uint8_t>(ErrorKind::kInvalidArgument) ||
      kind > static_cast<std::uint8_t>(ErrorKind::kRuntime)) {
    return std::nullopt;
  }
  error.kind = static_cast<ErrorKind>(kind);
  return error;
}

}  // namespace ssa::wire
