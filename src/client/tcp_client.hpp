#pragma once
/// \file tcp_client.hpp
/// The remote AuctionClient: speaks the versioned wire protocol
/// (wire/protocol.hpp) over one TCP connection to a ServiceServer or a
/// FrontDoor -- the two are indistinguishable from here, which is the
/// point of the transport-agnostic API.
///
/// Concurrency model: one connection, one in-flight call -- every RPC
/// (submit, get, try_get, stats, shutdown) holds the connection for its
/// full round trip under an internal mutex, so the class is thread-safe
/// but a blocking get() serializes the OTHER calls of this client behind
/// it (the server keeps solving everything it already accepted
/// meanwhile). Callers that need concurrent blocking gets open one
/// TcpClient per thread; connections are cheap and the server handles
/// each on its own thread.
///
/// Failure model: transport errors and protocol anomalies throw
/// std::runtime_error and poison the connection (every later call throws
/// too -- reconnect by constructing a new client); server-reported errors
/// rethrow as the exception kind the in-process call would have thrown,
/// with the server's message (solver-layer messages keep their
/// "<solver-key>: <reason>" pin).

#include <cstdint>
#include <mutex>
#include <string>

#include "client/auction_client.hpp"
#include "net/socket.hpp"
#include "wire/protocol.hpp"

namespace ssa::client {

class TcpClient final : public AuctionClient {
 public:
  /// Connects immediately; throws std::runtime_error when nobody listens
  /// on \p host:\p port.
  TcpClient(const std::string& host, std::uint16_t port);

  /// Loopback convenience (the demo/test topology).
  explicit TcpClient(std::uint16_t port)
      : TcpClient(net::kLoopbackHost, port) {}

  [[nodiscard]] RequestId submit(const AnyInstance& instance,
                                 const std::string& solver = kAutoSolver,
                                 const SolveOptions& options = {}) override;
  [[nodiscard]] SolveReport get(RequestId id) override;
  [[nodiscard]] std::optional<SolveReport> try_get(RequestId id) override;
  [[nodiscard]] ServiceStats stats() override;
  void shutdown() override;

 private:
  /// One framed round trip under the connection mutex; decodes the
  /// response body, converts kError frames into the matching exception.
  [[nodiscard]] wire::Frame rpc(wire::MessageType type,
                                const std::string& payload);
  [[nodiscard]] wire::Frame get_frame(RequestId id, bool blocking);

  std::mutex mutex_;
  net::TcpConnection connection_;
  bool poisoned_ = false;
};

}  // namespace ssa::client
