#pragma once
/// \file tcp_client.hpp
/// The remote AuctionClient: speaks the versioned wire protocol
/// (wire/protocol.hpp) over one TCP connection to a ServiceServer or a
/// FrontDoor -- the two are indistinguishable from here, which is the
/// point of the transport-agnostic API.
///
/// Concurrency model: one connection, MANY in-flight calls. Every call is
/// a pipelined request on the shared multiplexed connection
/// (net/mux_connection.hpp), correlated by the v3 wire request id, so a
/// blocking get() no longer serializes the other calls of this client --
/// submit/stats/try_get from other threads proceed concurrently on the
/// same stream, and the *_async variants let ONE thread keep a deep
/// window of requests in flight (the wire-path analogue of batch
/// submission). Thread-safe throughout.
///
/// Failure model: transport errors and protocol anomalies throw
/// std::runtime_error and poison the connection (every pending and later
/// call fails with the original reason -- reconnect by constructing a new
/// client); server-reported errors rethrow as the exception kind the
/// in-process call would have thrown, with the server's message
/// (solver-layer messages keep their "<solver-key>: <reason>" pin). For
/// the async variants both arrive through the returned future.

#include <cstdint>
#include <future>
#include <string>

#include "client/auction_client.hpp"
#include "net/mux_connection.hpp"
#include "net/socket.hpp"
#include "wire/protocol.hpp"

namespace ssa::client {

class TcpClient final : public AuctionClient {
 public:
  /// Connects immediately; throws std::runtime_error when nobody listens
  /// on \p host:\p port.
  TcpClient(const std::string& host, std::uint16_t port);

  /// Loopback convenience (the demo/test topology).
  explicit TcpClient(std::uint16_t port)
      : TcpClient(net::kLoopbackHost, port) {}

  /// Every submit mints a fresh root span context {trace id, root span id}
  /// and stamps it into the frame envelope: the door (or a directly
  /// connected backend) parents its spans under it, so one client request
  /// yields one causally-linked span tree retrievable via telemetry().
  [[nodiscard]] RequestId submit(const AnyInstance& instance,
                                 const std::string& solver = kAutoSolver,
                                 const SolveOptions& options = {}) override;
  [[nodiscard]] SolveReport get(RequestId id) override;
  [[nodiscard]] std::optional<SolveReport> try_get(RequestId id) override;
  [[nodiscard]] ServiceStats stats() override;
  [[nodiscard]] obs::TelemetrySnapshot telemetry() override;
  void shutdown() override;

  /// Pipelined submit: returns immediately with a future for the server's
  /// id. Encoding errors (empty instance view) still throw inline, before
  /// any bytes move; everything the blocking submit would THROW arrives
  /// through the future instead. Any number may be outstanding.
  [[nodiscard]] std::future<RequestId> submit_async(
      const AnyInstance& instance, const std::string& solver = kAutoSolver,
      const SolveOptions& options = {});

  /// Pipelined blocking-get: the future resolves when the server answers
  /// (the request completed server-side and was claimed). Exceptions
  /// mirror get(). Many gets may be in flight; the server answers each as
  /// its id completes, in any order.
  [[nodiscard]] std::future<SolveReport> get_async(RequestId id);

 private:
  net::MuxConnection mux_;
};

}  // namespace ssa::client
