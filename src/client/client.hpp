#pragma once
/// \file client.hpp
/// Umbrella header for the transport-agnostic serving API:
///     ssa::client::LocalClient client;               // in-process
///     ssa::client::TcpClient client(port);           // wire protocol
///     auto id = client.submit(instance);             // "auto" selection
///     SolveReport report = client.get(id);
/// See auction_client.hpp for the interface contract, net/service_server.hpp
/// and net/front_door.hpp for the server side of the wire.

#include "client/auction_client.hpp"  // IWYU pragma: export
#include "client/local_client.hpp"    // IWYU pragma: export
#include "client/tcp_client.hpp"      // IWYU pragma: export
