#pragma once
/// \file auction_client.hpp
/// The transport-agnostic serving API: every way to reach an auction
/// service -- in-process, over a socket to one ServiceServer, or through a
/// FrontDoor splitting the keyspace across N service processes -- is an
/// ssa::client::AuctionClient with the same five calls:
///
///     std::unique_ptr<AuctionClient> client = ...;   // Local or Tcp
///     RequestId id = client->submit(instance);       // "auto" selection
///     SolveReport report = client->get(id);          // blocking claim
///     client->stats();                               // service counters
///     client->shutdown();                            // drain + stop
///
/// Implementations:
///  - LocalClient (local_client.hpp): wraps an in-process AuctionService;
///    zero serialization, the PR-3/PR-4 behavior verbatim.
///  - TcpClient (tcp_client.hpp): speaks the versioned wire protocol
///    (wire/protocol.hpp) to a ServiceServer or a FrontDoor.
///
/// The contract is location transparency with a bitwise payload
/// guarantee: for the same request stream, a TcpClient (through any
/// topology) and a LocalClient over equally-configured backends produce
/// SolveReports whose payloads -- allocation, welfare, bounds, LP and
/// mechanism payloads, error strings, provenance verdicts -- are
/// bitwise identical (wire::reports_payload_equal); only the two
/// wall-clock measurements (wall_time_seconds, queue_wait_seconds)
/// re-measure per run. Exceptions cross the wire by kind: a bad request
/// id throws std::invalid_argument and a shut-down service throws
/// std::runtime_error from every implementation alike.

#include <optional>
#include <string>

#include "api/any_instance.hpp"
#include "api/solver.hpp"
#include "obs/telemetry.hpp"
#include "service/auction_service.hpp"
#include "service/selection_policy.hpp"

namespace ssa::client {

using service::kAutoSolver;
using service::RequestId;
using service::ServiceStats;

/// Abstract serving client; see the file comment for the contract.
/// Implementations are thread-safe unless their header says otherwise.
class AuctionClient {
 public:
  virtual ~AuctionClient() = default;

  /// Enqueues one request; the instance is copied (locally or into a wire
  /// frame), so the caller's object may die immediately after. Throws
  /// std::invalid_argument for an empty instance and std::runtime_error
  /// once the service shut down.
  [[nodiscard]] virtual RequestId submit(
      const AnyInstance& instance, const std::string& solver = kAutoSolver,
      const SolveOptions& options = {}) = 0;

  /// Blocks until \p id completes and claims its report (one claim per
  /// id; a second claim throws std::invalid_argument).
  [[nodiscard]] virtual SolveReport get(RequestId id) = 0;

  /// Non-blocking poll: claims and returns the report when done, nullopt
  /// while still queued/running. Unknown or already-claimed ids throw
  /// std::invalid_argument.
  [[nodiscard]] virtual std::optional<SolveReport> try_get(RequestId id) = 0;

  /// Service counters; through a FrontDoor these aggregate every backend.
  [[nodiscard]] virtual ServiceStats stats() = 0;

  /// Telemetry export (obs/telemetry.hpp): the serviced side's metrics
  /// registry snapshot plus its recent spans. Through a FrontDoor this is
  /// the EXACT merge of every backend's snapshot with the door's own
  /// (counters/histograms sum precisely; see obs/registry.hpp).
  [[nodiscard]] virtual obs::TelemetrySnapshot telemetry() = 0;

  /// Stops the serviced side: completes everything queued or in flight,
  /// writes snapshots where configured, rejects further submissions.
  /// Through a FrontDoor this fans out to every backend. Idempotent.
  virtual void shutdown() = 0;
};

}  // namespace ssa::client
