#pragma once
/// \file local_client.hpp
/// The in-process AuctionClient: a thin adapter over an owned (or shared)
/// AuctionService. Zero serialization, zero transport -- submit/get/
/// try_get forward directly, so this is byte-for-byte the PR-3/PR-4
/// service behavior behind the transport-agnostic interface, and the
/// reference implementation the cross-process paths are pinned against
/// (wire::reports_payload_equal on the same request stream).

#include <memory>
#include <utility>

#include "client/auction_client.hpp"

namespace ssa::client {

class LocalClient final : public AuctionClient {
 public:
  /// Owns a fresh AuctionService built from \p options.
  explicit LocalClient(service::ServiceOptions options = {})
      : service_(std::make_shared<service::AuctionService>(
            std::move(options))) {}

  /// Shares an existing service (several clients, one serving core).
  explicit LocalClient(std::shared_ptr<service::AuctionService> service)
      : service_(std::move(service)) {}

  [[nodiscard]] RequestId submit(const AnyInstance& instance,
                                 const std::string& solver = kAutoSolver,
                                 const SolveOptions& options = {}) override {
    return service_->submit(instance, solver, options);
  }

  [[nodiscard]] SolveReport get(RequestId id) override {
    return service_->get(id);
  }

  [[nodiscard]] std::optional<SolveReport> try_get(RequestId id) override {
    return service_->try_get(id);
  }

  [[nodiscard]] ServiceStats stats() override { return service_->stats(); }

  [[nodiscard]] obs::TelemetrySnapshot telemetry() override {
    return service_->telemetry();
  }

  void shutdown() override { service_->shutdown(); }

  /// The wrapped service, for call sites that need the full surface
  /// (drain(), save_snapshot(), shards()).
  [[nodiscard]] service::AuctionService& service() noexcept {
    return *service_;
  }

 private:
  std::shared_ptr<service::AuctionService> service_;
};

}  // namespace ssa::client
