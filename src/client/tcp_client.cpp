#include "client/tcp_client.hpp"

#include <exception>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "obs/span.hpp"
#include "wire/telemetry_codec.hpp"

namespace ssa::client {

namespace {

using wire::ErrorKind;
using wire::MessageType;

/// Rethrows a server-reported error as the exception kind the in-process
/// call would have thrown.
[[noreturn]] void throw_wire_error(const std::string& payload) {
  const std::optional<wire::WireError> error = wire::decode_error(payload);
  if (!error) {
    throw std::runtime_error("tcp-client: malformed error frame");
  }
  if (error->kind == ErrorKind::kInvalidArgument) {
    throw std::invalid_argument(error->message);
  }
  throw std::runtime_error(error->message);
}

/// Response parsers, shared by the blocking and async paths so both
/// surface bit-identical results and exceptions.

RequestId parse_submit_ack(const wire::Frame& response) {
  if (response.type == MessageType::kError) {
    throw_wire_error(response.payload);
  }
  if (response.type != MessageType::kSubmitOk) {
    throw std::runtime_error("tcp-client: unexpected submit response");
  }
  wire::Reader reader(response.payload);
  const std::uint64_t id = reader.u64();
  if (reader.failed()) {
    throw std::runtime_error("tcp-client: malformed submit ack");
  }
  return id;
}

/// Parses a kReport answer; nullopt means "still queued/running" (only a
/// non-blocking get may produce it).
std::optional<SolveReport> parse_report(const wire::Frame& response) {
  if (response.type == MessageType::kError) {
    throw_wire_error(response.payload);
  }
  if (response.type != MessageType::kReport) {
    throw std::runtime_error("tcp-client: unexpected get response");
  }
  wire::Reader reader(response.payload);
  if (reader.u8() == 0) {
    if (reader.failed() || !reader.exhausted()) {
      throw std::runtime_error("tcp-client: malformed report payload");
    }
    return std::nullopt;
  }
  SolveReport report = wire::read_report(reader);
  if (reader.failed() || !reader.exhausted()) {
    throw std::runtime_error("tcp-client: malformed report payload");
  }
  return report;
}

std::string encode_get(RequestId id, bool blocking) {
  wire::Writer writer;
  writer.u64(id);
  writer.boolean(blocking);
  return writer.buffer();
}

/// Root span context of one client request: a fresh trace with the
/// client's root span id as the parent of whatever the serving side opens.
obs::SpanContext fresh_root_context() {
  return obs::SpanContext{obs::next_trace_id(), obs::next_span_id()};
}

}  // namespace

TcpClient::TcpClient(const std::string& host, std::uint16_t port)
    : mux_(host, port) {}

RequestId TcpClient::submit(const AnyInstance& instance,
                            const std::string& solver,
                            const SolveOptions& options) {
  // Encoding rejects empty views (std::invalid_argument) before any bytes
  // move, mirroring the in-process submit precondition.
  const std::string payload = wire::encode_submit(instance, solver, options);
  return parse_submit_ack(
      mux_.call_sync(MessageType::kSubmit, payload, fresh_root_context()));
}

std::future<RequestId> TcpClient::submit_async(const AnyInstance& instance,
                                               const std::string& solver,
                                               const SolveOptions& options) {
  const std::string payload = wire::encode_submit(instance, solver, options);
  auto promise = std::make_shared<std::promise<RequestId>>();
  std::future<RequestId> future = promise->get_future();
  mux_.call(MessageType::kSubmit, payload,
            [promise](std::optional<wire::Frame> response,
                      const std::string& error) {
              try {
                if (!response) throw std::runtime_error(error);
                promise->set_value(parse_submit_ack(*response));
              } catch (...) {
                promise->set_exception(std::current_exception());
              }
            },
            fresh_root_context());
  return future;
}

SolveReport TcpClient::get(RequestId id) {
  const std::optional<SolveReport> report =
      parse_report(mux_.call_sync(MessageType::kGet, encode_get(id, true)));
  if (!report) {
    throw std::runtime_error("tcp-client: blocking get returned no report");
  }
  return *report;
}

std::future<SolveReport> TcpClient::get_async(RequestId id) {
  auto promise = std::make_shared<std::promise<SolveReport>>();
  std::future<SolveReport> future = promise->get_future();
  mux_.call(MessageType::kGet, encode_get(id, true),
            [promise](std::optional<wire::Frame> response,
                      const std::string& error) {
              try {
                if (!response) throw std::runtime_error(error);
                std::optional<SolveReport> report = parse_report(*response);
                if (!report) {
                  throw std::runtime_error(
                      "tcp-client: blocking get returned no report");
                }
                promise->set_value(*std::move(report));
              } catch (...) {
                promise->set_exception(std::current_exception());
              }
            });
  return future;
}

std::optional<SolveReport> TcpClient::try_get(RequestId id) {
  return parse_report(mux_.call_sync(MessageType::kGet, encode_get(id, false)));
}

ServiceStats TcpClient::stats() {
  const wire::Frame response = mux_.call_sync(MessageType::kStats, {});
  if (response.type == MessageType::kError) {
    throw_wire_error(response.payload);
  }
  if (response.type != MessageType::kStatsOk) {
    throw std::runtime_error("tcp-client: unexpected stats response");
  }
  wire::Reader reader(response.payload);
  (void)reader.u32();  // shard count: surfaced via the wire, unused here
  const ServiceStats stats = wire::read_stats(reader);
  if (reader.failed() || !reader.exhausted()) {
    throw std::runtime_error("tcp-client: malformed stats payload");
  }
  return stats;
}

obs::TelemetrySnapshot TcpClient::telemetry() {
  const wire::Frame response = mux_.call_sync(MessageType::kGetTelemetry, {});
  if (response.type == MessageType::kError) {
    throw_wire_error(response.payload);
  }
  if (response.type != MessageType::kTelemetryOk) {
    throw std::runtime_error("tcp-client: unexpected telemetry response");
  }
  std::optional<obs::TelemetrySnapshot> snapshot =
      wire::decode_telemetry(response.payload);
  if (!snapshot) {
    throw std::runtime_error("tcp-client: malformed telemetry payload");
  }
  return *std::move(snapshot);
}

void TcpClient::shutdown() {
  const wire::Frame response = mux_.call_sync(MessageType::kShutdown, {});
  if (response.type == MessageType::kError) {
    throw_wire_error(response.payload);
  }
  if (response.type != MessageType::kShutdownOk) {
    throw std::runtime_error("tcp-client: unexpected shutdown response");
  }
}

}  // namespace ssa::client
