#include "client/tcp_client.hpp"

#include <optional>
#include <stdexcept>
#include <utility>

namespace ssa::client {

namespace {

using wire::ErrorKind;
using wire::MessageType;

/// Rethrows a server-reported error as the exception kind the in-process
/// call would have thrown.
[[noreturn]] void throw_wire_error(const std::string& payload) {
  const std::optional<wire::WireError> error = wire::decode_error(payload);
  if (!error) {
    throw std::runtime_error("tcp-client: malformed error frame");
  }
  if (error->kind == ErrorKind::kInvalidArgument) {
    throw std::invalid_argument(error->message);
  }
  throw std::runtime_error(error->message);
}

}  // namespace

TcpClient::TcpClient(const std::string& host, std::uint16_t port)
    : connection_(net::TcpConnection::connect(host, port)) {}

wire::Frame TcpClient::rpc(MessageType type, const std::string& payload) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (poisoned_) {
    throw std::runtime_error(
        "tcp-client: connection poisoned by an earlier transport failure");
  }
  try {
    connection_.send_frame(wire::encode_frame(type, payload));
    std::optional<std::string> body = connection_.recv_frame();
    if (!body) {
      throw std::runtime_error("tcp-client: server closed the connection");
    }
    std::optional<wire::Frame> frame = wire::decode_frame_body(*body);
    if (!frame) {
      throw std::runtime_error("tcp-client: malformed response frame");
    }
    return *std::move(frame);
  } catch (...) {
    // Transport/framing trouble leaves the stream in an unknown state:
    // poison it so every later call fails fast instead of misparsing.
    poisoned_ = true;
    connection_.close();
    throw;
  }
}

RequestId TcpClient::submit(const AnyInstance& instance,
                            const std::string& solver,
                            const SolveOptions& options) {
  // Encoding rejects empty views (std::invalid_argument) before any bytes
  // move, mirroring the in-process submit precondition.
  const std::string payload = wire::encode_submit(instance, solver, options);
  const wire::Frame response = rpc(MessageType::kSubmit, payload);
  if (response.type == MessageType::kError) {
    throw_wire_error(response.payload);
  }
  if (response.type != MessageType::kSubmitOk) {
    throw std::runtime_error("tcp-client: unexpected submit response");
  }
  wire::Reader reader(response.payload);
  const std::uint64_t id = reader.u64();
  if (reader.failed()) {
    throw std::runtime_error("tcp-client: malformed submit ack");
  }
  return id;
}

wire::Frame TcpClient::get_frame(RequestId id, bool blocking) {
  wire::Writer writer;
  writer.u64(id);
  writer.boolean(blocking);
  wire::Frame response = rpc(MessageType::kGet, writer.buffer());
  if (response.type == MessageType::kError) {
    throw_wire_error(response.payload);
  }
  if (response.type != MessageType::kReport) {
    throw std::runtime_error("tcp-client: unexpected get response");
  }
  return response;
}

SolveReport TcpClient::get(RequestId id) {
  const wire::Frame response = get_frame(id, /*blocking=*/true);
  wire::Reader reader(response.payload);
  if (reader.u8() != 1) {
    throw std::runtime_error("tcp-client: blocking get returned no report");
  }
  SolveReport report = wire::read_report(reader);
  if (reader.failed() || !reader.exhausted()) {
    throw std::runtime_error("tcp-client: malformed report payload");
  }
  return report;
}

std::optional<SolveReport> TcpClient::try_get(RequestId id) {
  const wire::Frame response = get_frame(id, /*blocking=*/false);
  wire::Reader reader(response.payload);
  if (reader.u8() == 0) {
    if (reader.failed() || !reader.exhausted()) {
      throw std::runtime_error("tcp-client: malformed report payload");
    }
    return std::nullopt;  // still queued/running
  }
  SolveReport report = wire::read_report(reader);
  if (reader.failed() || !reader.exhausted()) {
    throw std::runtime_error("tcp-client: malformed report payload");
  }
  return report;
}

ServiceStats TcpClient::stats() {
  const wire::Frame response = rpc(MessageType::kStats, {});
  if (response.type == MessageType::kError) {
    throw_wire_error(response.payload);
  }
  if (response.type != MessageType::kStatsOk) {
    throw std::runtime_error("tcp-client: unexpected stats response");
  }
  wire::Reader reader(response.payload);
  (void)reader.u32();  // shard count: surfaced via the wire, unused here
  const ServiceStats stats = wire::read_stats(reader);
  if (reader.failed() || !reader.exhausted()) {
    throw std::runtime_error("tcp-client: malformed stats payload");
  }
  return stats;
}

void TcpClient::shutdown() {
  const wire::Frame response = rpc(MessageType::kShutdown, {});
  if (response.type == MessageType::kError) {
    throw_wire_error(response.payload);
  }
  if (response.type != MessageType::kShutdownOk) {
    throw std::runtime_error("tcp-client: unexpected shutdown response");
  }
}

}  // namespace ssa::client
