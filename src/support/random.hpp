#pragma once
/// \file random.hpp
/// Deterministic, splittable random number generation for reproducible
/// experiments. The generator is xoshiro256** seeded through SplitMix64,
/// which gives high-quality streams from small integer seeds and allows
/// cheap, collision-free derivation of per-task substreams.

#include <cstdint>
#include <limits>
#include <vector>

namespace ssa {

/// SplitMix64 step; used for seeding and for hashing seed material.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** pseudo random generator.
///
/// Satisfies the essentials of UniformRandomBitGenerator so it can be used
/// with <random> distributions, but the library's own helpers below are
/// preferred because their results are bit-reproducible across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the stream deterministically from \p seed.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 random bits.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling,
  /// so the result is exactly uniform.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t n) noexcept;

  /// Bernoulli trial with success probability \p p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Exponentially distributed value with rate \p lambda > 0.
  [[nodiscard]] double exponential(double lambda) noexcept;

  /// Pareto distributed value with scale \p xm > 0 and shape \p alpha > 0.
  /// Heavy-tailed link lengths in wireless workloads use this.
  [[nodiscard]] double pareto(double xm, double alpha) noexcept;

  /// Standard normal via Box-Muller (deterministic given the stream).
  [[nodiscard]] double normal() noexcept;

  /// Derives an independent child stream; child i of a given parent is
  /// reproducible and does not overlap the parent stream in practice.
  [[nodiscard]] Rng split(std::uint64_t index) noexcept;

  /// Fisher-Yates shuffle of \p items.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace ssa
