#include "support/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace ssa {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::multiply(std::span<const double> x) const {
  if (x.size() != cols_) throw std::invalid_argument("Matrix::multiply: size");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row_ptr[c] * x[c];
    y[r] = acc;
  }
  return y;
}

bool solve_linear_system(Matrix a, std::vector<double> b,
                         std::vector<double>& x) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    throw std::invalid_argument("solve_linear_system: dimension mismatch");
  }
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
    }
    if (std::abs(a(pivot, col)) < 1e-12) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) * inv;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }
  x.assign(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= a(ri, c) * x[c];
    x[ri] = acc / a(ri, ri);
  }
  return true;
}

bool invert(const Matrix& a, Matrix& inverse) {
  const std::size_t n = a.rows();
  if (a.cols() != n) throw std::invalid_argument("invert: non-square");
  Matrix work = a;
  inverse = Matrix::identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(work(r, col)) > std::abs(work(pivot, col))) pivot = r;
    }
    if (std::abs(work(pivot, col)) < 1e-12) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(work(pivot, c), work(col, c));
        std::swap(inverse(pivot, c), inverse(col, c));
      }
    }
    const double inv = 1.0 / work(col, col);
    for (std::size_t c = 0; c < n; ++c) {
      work(col, c) *= inv;
      inverse(col, c) *= inv;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double factor = work(r, col);
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        work(r, c) -= factor * work(col, c);
        inverse(r, c) -= factor * inverse(col, c);
      }
    }
  }
  return true;
}

double spectral_radius(const Matrix& a, int iterations) {
  const std::size_t n = a.rows();
  if (a.cols() != n) throw std::invalid_argument("spectral_radius: non-square");
  if (n == 0) return 0.0;
  std::vector<double> v(n, 1.0 / static_cast<double>(n));
  double lambda = 0.0;
  for (int it = 0; it < iterations; ++it) {
    std::vector<double> w = a.multiply(v);
    double norm = 0.0;
    for (double value : w) norm = std::max(norm, std::abs(value));
    if (norm < 1e-300) return 0.0;  // nilpotent-ish: radius ~ 0
    lambda = norm;
    for (double& value : w) value /= norm;
    v = std::move(w);
  }
  return lambda;
}

}  // namespace ssa
