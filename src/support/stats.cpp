#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ssa {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q out of range");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("fit_line: need >= 2 matching points");
  }
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (std::abs(denom) < 1e-30) {
    fit.intercept = sy / n;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  double ss_res = 0.0;
  const double ybar = sy / n;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit.intercept + fit.slope * xs[i];
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - ybar) * (ys[i] - ybar);
  }
  fit.r2 = ss_tot < 1e-30 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

double mean_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace ssa
