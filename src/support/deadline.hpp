#pragma once
/// \file deadline.hpp
/// Cooperative wall-clock deadline passed into long-running loops (simplex
/// pivots, rounding repetitions, branch-and-bound nodes). A default
/// Deadline is unlimited and costs one branch per check; an armed one
/// compares against steady_clock. Loops poll expired() at a coarse cadence
/// and surface truncation to the caller instead of returning a silently
/// partial result.

#include <chrono>

namespace ssa {

class Deadline {
 public:
  /// Unlimited: expired() is always false.
  Deadline() = default;

  /// Deadline \p seconds from now; seconds <= 0 means unlimited (matching
  /// the SolveOptions::time_budget_seconds convention). Budgets too large
  /// to represent in steady_clock ticks (~31+ years) are unlimited too --
  /// the duration cast must not overflow a huge budget into an instantly
  /// expired one.
  [[nodiscard]] static Deadline after(double seconds) {
    constexpr double kUnlimitedSeconds = 1.0e9;
    Deadline deadline;
    if (seconds > 0.0 && seconds < kUnlimitedSeconds) {
      deadline.armed_ = true;
      deadline.at_ = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(seconds));
    }
    return deadline;
  }

  [[nodiscard]] bool unlimited() const noexcept { return !armed_; }

  [[nodiscard]] bool expired() const noexcept {
    return armed_ && std::chrono::steady_clock::now() >= at_;
  }

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point at_{};
};

}  // namespace ssa
