#pragma once
/// \file deadline.hpp
/// Cooperative wall-clock deadline passed into long-running loops (simplex
/// pivots, rounding repetitions, branch-and-bound nodes). A default
/// Deadline is unlimited and costs one branch per check; an armed one
/// compares against steady_clock. Loops poll expired() at a coarse cadence
/// and surface truncation to the caller instead of returning a silently
/// partial result.
///
/// Budget precedence (pinned by tests/test_deadline.cpp): every adapter
/// resolves the run's budget with effective_budget(shared, section) --
/// SolveOptions::time_budget_seconds, the shared request-level budget, wins
/// whenever it is set (> 0); an unset shared budget leaves a caller-armed
/// section budget (e.g. PipelineOptions::time_budget_seconds) alone. This
/// mirrors how the shared seed subsumes the per-section seeds.
///
/// Overflow clamp (also pinned by tests/test_deadline.cpp): budgets at or
/// beyond kUnlimitedBudgetSeconds (~31 years) are treated as unlimited.
/// Converting such a budget into steady_clock ticks would overflow near
/// time_point::max() and wrap a huge budget into an instantly expired
/// deadline, so both Deadline::after and deadline_at clamp first.

#include <chrono>

namespace ssa {

/// Budgets at or above this many seconds (and budgets <= 0, the
/// SolveOptions convention for "no budget") mean unlimited.
inline constexpr double kUnlimitedBudgetSeconds = 1.0e9;

/// The shared request budget wins when set; otherwise the section budget
/// applies (<= 0 everywhere means unlimited).
[[nodiscard]] constexpr double effective_budget(double shared_seconds,
                                                double section_seconds) noexcept {
  return shared_seconds > 0.0 ? shared_seconds : section_seconds;
}

/// Absolute deadline \p budget_seconds after \p start for schedulers that
/// order by time_point: unlimited budgets (<= 0 or >= the clamp above) map
/// to time_point::max(), which sorts after every armed deadline.
[[nodiscard]] inline std::chrono::steady_clock::time_point deadline_at(
    std::chrono::steady_clock::time_point start,
    double budget_seconds) noexcept {
  // Positive-form guard so NaN budgets land in the unlimited branch (the
  // duration cast of a NaN would be undefined), same as Deadline::after.
  if (budget_seconds > 0.0 && budget_seconds < kUnlimitedBudgetSeconds) {
    return start +
           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(budget_seconds));
  }
  return std::chrono::steady_clock::time_point::max();
}

class Deadline {
 public:
  /// Unlimited: expired() is always false.
  Deadline() = default;

  /// Deadline \p seconds from now; seconds <= 0 means unlimited (matching
  /// the SolveOptions::time_budget_seconds convention). Budgets too large
  /// to represent in steady_clock ticks are unlimited too -- see the
  /// overflow clamp in the file comment.
  [[nodiscard]] static Deadline after(double seconds) {
    Deadline deadline;
    if (seconds > 0.0 && seconds < kUnlimitedBudgetSeconds) {
      deadline.armed_ = true;
      deadline.at_ = deadline_at(std::chrono::steady_clock::now(), seconds);
    }
    return deadline;
  }

  [[nodiscard]] bool unlimited() const noexcept { return !armed_; }

  [[nodiscard]] bool expired() const noexcept {
    return armed_ && std::chrono::steady_clock::now() >= at_;
  }

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point at_{};
};

}  // namespace ssa
