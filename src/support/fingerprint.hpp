#pragma once
/// \file fingerprint.hpp
/// Canonical 128-bit fingerprints of auction instances, used as result-cache
/// keys by the auction service (service/auction_service.hpp): two
/// submissions of structurally identical instances -- same graphs, ordering,
/// rho, channel count and bundle values -- produce the same fingerprint, so
/// the second one is answered from the cache.
///
/// Valuations are type-erased (an abstract Valuation exposes only
/// value(bundle)), so they are fingerprinted through their value tables: for
/// k <= kExhaustiveChannels every bundle value enters the hash (the
/// fingerprint is then injective over value tables up to hash collisions);
/// for larger k the hash covers every singleton, the full bundle, and a
/// fixed pseudo-random sample of kSampledBundles bundles per bidder --
/// distinct valuations that agree on all sampled bundles collide by design.
/// Collisions of the underlying 128-bit mix are possible in principle and
/// harmless in practice: a cache hit replays a report for a fingerprint
/// match, exactly like any content-addressed cache.
///
/// STABILITY: fingerprints are persisted -- they are the keys of the
/// result-cache snapshot files (service/result_cache.hpp), so the hashing
/// scheme is load-bearing across process restarts, not just within one
/// run. Any change to the mixing constants, the field order, or the
/// sampling scheme MUST bump ResultCache::kSnapshotVersion so old
/// snapshots are discarded as a cold start instead of silently never
/// hitting. tests/test_fingerprint.cpp pins golden fingerprint values to
/// make accidental drift fail loudly.

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

#include "api/any_instance.hpp"
#include "core/asymmetric.hpp"
#include "core/instance.hpp"

namespace ssa {

/// 128-bit content hash; value-comparable and usable as a hash-map key.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] friend bool operator==(const Fingerprint&,
                                       const Fingerprint&) = default;
  [[nodiscard]] friend auto operator<=>(const Fingerprint&,
                                        const Fingerprint&) = default;

  /// 32 hex digits (diagnostics, demo output).
  [[nodiscard]] std::string hex() const;
};

/// Incremental mixer behind the instance fingerprints. Exposed so callers
/// (the service composes cache keys from instance + request fields) can
/// extend a fingerprint with their own data.
class FingerprintHasher {
 public:
  /// Any integral (bool, int, Bundle, std::size_t, ...) mixes as its
  /// 64-bit value.
  template <typename T>
    requires std::is_integral_v<T>
  void mix(T value) noexcept {
    mix_word(static_cast<std::uint64_t>(value));
  }
  /// Mixes the bit pattern; -0.0 is normalized to 0.0 so numerically equal
  /// instances fingerprint equally.
  void mix(double value) noexcept;
  void mix(std::string_view text) noexcept;

  [[nodiscard]] Fingerprint digest() const noexcept;

 private:
  void mix_word(std::uint64_t value) noexcept;

  std::uint64_t a_ = 0x9e3779b97f4a7c15ull;
  std::uint64_t b_ = 0xd1b54a32d192ed03ull;
};

/// Largest channel count whose 2^k - 1 bundle values are hashed
/// exhaustively per bidder (covers every explicit-LP instance; explicit
/// asymmetric solvers cap at AsymmetricInstance::kExplicitChannelLimit =
/// 12 and the column-generation path's lifted demand oracle at
/// kLiftedDemandChannels = 20).
inline constexpr int kExhaustiveChannels = 16;
/// Pseudo-random bundles sampled per bidder beyond kExhaustiveChannels.
inline constexpr int kSampledBundles = 512;

[[nodiscard]] Fingerprint fingerprint(const AuctionInstance& instance);
[[nodiscard]] Fingerprint fingerprint(const AsymmetricInstance& instance);
/// Dispatches on the held type; the empty view gets a fixed sentinel
/// fingerprint distinct from every real instance's.
[[nodiscard]] Fingerprint fingerprint(const AnyInstance& instance);

/// Structural fingerprint: hashes everything the full fingerprint hashes
/// EXCEPT the valuation VALUES -- bidder count, channel count, rho, the
/// ordering, the conflict graph(s), and (for either family with
/// k <= kExhaustiveChannels) the per-bidder zero/nonzero bundle SUPPORT
/// pattern. Two instances that differ only in positive bundle values (the
/// churn-variant traffic of load/workload.hpp rescales, it does not move
/// zeros) share a structural fingerprint, and such instances share the
/// same LP constraint matrix: the explicit LP emits one column per
/// positive-value bundle, and values then enter only through the
/// objective. That is what makes this the key of the service's basis
/// cache (service/basis_cache.hpp) -- an optimal basis of one variant is
/// an installable warm start for every other -- and of its column-pool
/// cache (service/column_pool_cache.hpp), whose banked (bidder, bundle)
/// columns seed the asymmetric-colgen restricted master across variants
/// for the same reason. Same STABILITY rules as
/// fingerprint(); structural fingerprints are not persisted today (bases
/// start cold after a snapshot restore) but the golden pins in
/// tests/test_fingerprint.cpp hold the scheme still.
[[nodiscard]] Fingerprint structural_fingerprint(const AuctionInstance& instance);
[[nodiscard]] Fingerprint structural_fingerprint(const AsymmetricInstance& instance);
[[nodiscard]] Fingerprint structural_fingerprint(const AnyInstance& instance);

}  // namespace ssa

template <>
struct std::hash<ssa::Fingerprint> {
  [[nodiscard]] std::size_t operator()(
      const ssa::Fingerprint& fp) const noexcept {
    return static_cast<std::size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ull));
  }
};
