#pragma once
/// \file matrix.hpp
/// Small dense linear-algebra kernels shared by the simplex solver and the
/// SINR power-control substrate: row-major matrices, Gaussian elimination
/// with partial pivoting, and the power method for spectral radii of
/// non-negative matrices (Perron-Frobenius).

#include <cstddef>
#include <span>
#include <vector>

namespace ssa {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] static Matrix identity(std::size_t n);

  /// y = A * x. Requires x.size() == cols().
  [[nodiscard]] std::vector<double> multiply(std::span<const double> x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Returns false when A is (numerically) singular.
[[nodiscard]] bool solve_linear_system(Matrix a, std::vector<double> b,
                                       std::vector<double>& x);

/// Inverts A in place via Gauss-Jordan; returns false when singular.
[[nodiscard]] bool invert(const Matrix& a, Matrix& inverse);

/// Spectral radius of a non-negative square matrix by the power method.
/// For the (irreducible) gain matrices in SINR feasibility the iteration
/// converges to the Perron root; \p iterations bounds the work.
[[nodiscard]] double spectral_radius(const Matrix& a, int iterations = 200);

}  // namespace ssa
