#include "support/pairwise.hpp"

#include <stdexcept>

namespace ssa {

namespace {
bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  if (n % 2 == 0) return n == 2;
  for (std::uint64_t d = 3; d * d <= n; d += 2) {
    if (n % d == 0) return false;
  }
  return true;
}
}  // namespace

std::uint64_t next_prime(std::uint64_t n) {
  if (n < 2) return 2;
  std::uint64_t candidate = n;
  while (!is_prime(candidate)) ++candidate;
  return candidate;
}

PairwiseFamily::PairwiseFamily(std::uint64_t universe, std::uint64_t min_p)
    : p_(next_prime(universe < min_p ? min_p : universe)) {
  if (universe == 0) throw std::invalid_argument("PairwiseFamily: universe=0");
}

double PairwiseFamily::value(std::uint64_t seed, std::uint64_t v) const noexcept {
  const std::uint64_t a = seed / p_;
  const std::uint64_t b = seed % p_;
  const std::uint64_t hashed = (a * (v % p_) + b) % p_;
  return static_cast<double>(hashed) / static_cast<double>(p_);
}

std::vector<double> PairwiseFamily::values(std::uint64_t seed,
                                           std::uint64_t count) const {
  std::vector<double> out(count);
  for (std::uint64_t v = 0; v < count; ++v) out[v] = value(seed, v);
  return out;
}

}  // namespace ssa
