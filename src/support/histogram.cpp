#include "support/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace ssa {

// Bucket geometry: bucket 0 is [0, kMinSeconds]; bucket i >= 1 covers
// (kMinSeconds * 2^((i-1)/B), kMinSeconds * 2^(i/B)] with
// B = kBucketsPerOctave. The last bucket additionally absorbs everything
// beyond the grid.

double LatencyHistogram::relative_error() noexcept {
  return std::exp2(1.0 / (2.0 * kBucketsPerOctave)) - 1.0;
}

int LatencyHistogram::bucket_of(double seconds) noexcept {
  if (!(seconds > kMinSeconds)) return 0;  // NaN and <= kMinSeconds
  const double octaves = std::log2(seconds / kMinSeconds);
  const int bucket =
      1 + static_cast<int>(octaves * static_cast<double>(kBucketsPerOctave));
  return std::clamp(bucket, 1, kBucketCount - 1);
}

double LatencyHistogram::bucket_midpoint(int bucket) noexcept {
  if (bucket <= 0) return kMinSeconds;
  // Geometric midpoint of the bucket's (lo, hi] span.
  return kMinSeconds *
         std::exp2((static_cast<double>(bucket) - 0.5) /
                   static_cast<double>(kBucketsPerOctave));
}

void LatencyHistogram::add(double seconds) noexcept {
  if (!(seconds >= 0.0)) seconds = 0.0;  // NaN and negatives clamp to 0
  buckets_[static_cast<std::size_t>(bucket_of(seconds))] += 1;
  if (count_ == 0 || seconds < min_) min_ = seconds;
  if (seconds > max_) max_ = seconds;
  count_ += 1;
  sum_ += seconds;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

double LatencyHistogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double scaled = std::ceil(q * static_cast<double>(count_));
  const std::uint64_t rank = std::clamp<std::uint64_t>(
      scaled < 1.0 ? 1 : static_cast<std::uint64_t>(scaled), 1, count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      return std::clamp(bucket_midpoint(static_cast<int>(i)), min_, max_);
    }
  }
  return max_;  // unreachable: cumulative over all buckets equals count_
}

}  // namespace ssa
