#include "support/fingerprint.hpp"

#include <bit>
#include <cstdio>

namespace ssa {
namespace {

/// splitmix64 finalizer: a full-avalanche 64-bit mix.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// All conflict data of one graph: size, then (u, v, weight) for every
/// non-zero directed weight in row-major order. Hashing only the non-zeros
/// keeps dense-but-sparse graphs cheap; the (u, v) coordinates make the
/// encoding prefix-free per graph once the size is mixed first.
void mix_graph(FingerprintHasher& hasher, const ConflictGraph& graph) {
  hasher.mix(graph.size());
  for (std::size_t u = 0; u < graph.size(); ++u) {
    for (std::size_t v = 0; v < graph.size(); ++v) {
      const double w = graph.weight(u, v);
      if (w != 0.0) {
        hasher.mix(u);
        hasher.mix(v);
        hasher.mix(w);
      }
    }
  }
}

void mix_ordering(FingerprintHasher& hasher, const Ordering& order) {
  hasher.mix(order.size());
  for (const int v : order) hasher.mix(v);
}

/// Value table of one valuation over k channels: exhaustive for small k,
/// singletons + full bundle + a fixed pseudo-random sample beyond that
/// (see the header for the collision semantics).
void mix_valuation(FingerprintHasher& hasher, const Valuation& valuation,
                   int k) {
  hasher.mix(k);
  const Bundle full = static_cast<Bundle>((1ull << k) - 1);
  if (k <= kExhaustiveChannels) {
    for (Bundle t = 1; t <= full; ++t) hasher.mix(valuation.value(t));
    return;
  }
  for (int j = 0; j < k; ++j) {
    hasher.mix(valuation.value(static_cast<Bundle>(1u) << j));
  }
  hasher.mix(valuation.value(full));
  std::uint64_t state = 0x5eedful;
  for (int s = 0; s < kSampledBundles; ++s) {
    state = mix64(state + 0x9e3779b97f4a7c15ull);
    const Bundle t = static_cast<Bundle>(state) & full;
    if (t != kEmptyBundle) hasher.mix(valuation.value(t));
  }
}

void mix_valuations(FingerprintHasher& hasher,
                    const std::vector<ValuationPtr>& valuations, int k) {
  hasher.mix(valuations.size());
  for (const ValuationPtr& valuation : valuations) {
    mix_valuation(hasher, *valuation, k);
  }
}

}  // namespace

std::string Fingerprint::hex() const {
  char buffer[33];
  std::snprintf(buffer, sizeof buffer, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buffer);
}

void FingerprintHasher::mix_word(std::uint64_t value) noexcept {
  // Two decorrelated lanes: lane a chains through the finalizer, lane b is
  // a Weyl-sequence accumulator over the finalized inputs. Together they
  // behave as one 128-bit state for the collision rates that matter here.
  a_ = mix64(a_ ^ value);
  b_ = mix64(b_ + 0x9e3779b97f4a7c15ull + mix64(value));
}

void FingerprintHasher::mix(double value) noexcept {
  if (value == 0.0) value = 0.0;  // collapse -0.0 onto +0.0
  mix(std::bit_cast<std::uint64_t>(value));
}

void FingerprintHasher::mix(std::string_view text) noexcept {
  mix(text.size());
  std::uint64_t word = 0;
  int filled = 0;
  for (const char c : text) {
    word = (word << 8) | static_cast<unsigned char>(c);
    if (++filled == 8) {
      mix(word);
      word = 0;
      filled = 0;
    }
  }
  if (filled > 0) mix(word);
}

Fingerprint FingerprintHasher::digest() const noexcept {
  // Cross-finalize so hi depends on both lanes (and likewise lo).
  return Fingerprint{mix64(a_ + b_), mix64(b_ ^ (a_ << 1 | a_ >> 63))};
}

Fingerprint fingerprint(const AuctionInstance& instance) {
  FingerprintHasher hasher;
  hasher.mix(std::string_view("symmetric"));
  hasher.mix(instance.num_bidders());
  hasher.mix(instance.num_channels());
  hasher.mix(instance.rho());
  mix_ordering(hasher, instance.order());
  mix_graph(hasher, instance.graph());
  mix_valuations(hasher, instance.valuations(), instance.num_channels());
  return hasher.digest();
}

Fingerprint fingerprint(const AsymmetricInstance& instance) {
  FingerprintHasher hasher;
  hasher.mix(std::string_view("asymmetric"));
  hasher.mix(instance.num_bidders());
  hasher.mix(instance.num_channels());
  hasher.mix(instance.rho());
  mix_ordering(hasher, instance.order());
  for (const ConflictGraph& graph : instance.graphs()) {
    mix_graph(hasher, graph);
  }
  // AsymmetricInstance keeps its valuations private behind valuation(v);
  // hash them through that accessor.
  hasher.mix(instance.num_bidders());
  for (std::size_t v = 0; v < instance.num_bidders(); ++v) {
    mix_valuation(hasher, instance.valuation(v), instance.num_channels());
  }
  return hasher.digest();
}

Fingerprint fingerprint(const AnyInstance& instance) {
  if (instance.is_symmetric()) return fingerprint(instance.symmetric());
  if (instance.is_asymmetric()) return fingerprint(instance.asymmetric());
  FingerprintHasher hasher;
  hasher.mix(std::string_view("empty"));
  return hasher.digest();
}

Fingerprint structural_fingerprint(const AuctionInstance& instance) {
  FingerprintHasher hasher;
  hasher.mix(std::string_view("symmetric-structure"));
  hasher.mix(instance.num_bidders());
  hasher.mix(instance.num_channels());
  hasher.mix(instance.rho());
  mix_ordering(hasher, instance.order());
  mix_graph(hasher, instance.graph());
  // The explicit LP emits one column per positive-value bundle
  // (solve_auction_lp skips zeros), so two instances only share a
  // constraint matrix when their valuation SUPPORTS match too -- values
  // may differ, the zero/nonzero pattern may not. Bundles are packed 64
  // per mixed word. Beyond kExhaustiveChannels the explicit LP refuses
  // anyway (column generation owns those instances, and generated columns
  // carry no reusable basis), so the support is left out of the hash.
  if (instance.num_channels() <= kExhaustiveChannels) {
    for (std::size_t v = 0; v < instance.num_bidders(); ++v) {
      std::uint64_t word = 0;
      int filled = 0;
      for (Bundle t = 1; t < num_bundles(instance.num_channels()); ++t) {
        word = (word << 1) | (instance.value(v, t) > 0.0 ? 1u : 0u);
        if (++filled == 64) {
          hasher.mix(word);
          word = 0;
          filled = 0;
        }
      }
      if (filled > 0) hasher.mix(word);
    }
  }
  return hasher.digest();
}

Fingerprint structural_fingerprint(const AsymmetricInstance& instance) {
  FingerprintHasher hasher;
  hasher.mix(std::string_view("asymmetric-structure"));
  hasher.mix(instance.num_bidders());
  hasher.mix(instance.num_channels());
  hasher.mix(instance.rho());
  mix_ordering(hasher, instance.order());
  for (const ConflictGraph& graph : instance.graphs()) {
    mix_graph(hasher, graph);
  }
  // Same support-pattern rule as the symmetric family: both the explicit
  // asymmetric LP and the column-generation master emit columns only for
  // positive-value bundles, so structural equality requires equal
  // zero/nonzero supports (values may still differ -- churn variants
  // rescale, they do not move zeros). Beyond kExhaustiveChannels the
  // support is left out: the column pool filters zero-value seeds on
  // reuse, so a support mismatch there degrades the warm start without
  // affecting correctness.
  if (instance.num_channels() <= kExhaustiveChannels) {
    for (std::size_t v = 0; v < instance.num_bidders(); ++v) {
      const Valuation& valuation = instance.valuation(v);
      std::uint64_t word = 0;
      int filled = 0;
      for (Bundle t = 1; t < num_bundles(instance.num_channels()); ++t) {
        word = (word << 1) | (valuation.value(t) > 0.0 ? 1u : 0u);
        if (++filled == 64) {
          hasher.mix(word);
          word = 0;
          filled = 0;
        }
      }
      if (filled > 0) hasher.mix(word);
    }
  }
  return hasher.digest();
}

Fingerprint structural_fingerprint(const AnyInstance& instance) {
  if (instance.is_symmetric()) {
    return structural_fingerprint(instance.symmetric());
  }
  if (instance.is_asymmetric()) {
    return structural_fingerprint(instance.asymmetric());
  }
  FingerprintHasher hasher;
  hasher.mix(std::string_view("empty-structure"));
  return hasher.digest();
}

}  // namespace ssa
