#pragma once
/// \file histogram.hpp
/// Mergeable log-bucketed latency histogram: the telemetry primitive of the
/// load harness (load/driver.hpp). Values are seconds on a logarithmic
/// bucket grid -- kBucketsPerOctave buckets per factor of two starting at
/// kMinSeconds -- so one fixed-size array spans nanoseconds to hours with a
/// bounded relative quantile error (kRelativeError, ~4.5% at 8 buckets per
/// octave when quantile() answers with the bucket's geometric midpoint).
///
/// Bucket counts are integers, so merge() is exact: merging per-thread
/// histograms is associative and commutative bucket-for-bucket, which is
/// what lets the open-loop driver record latencies lock-free per submitter
/// and fold the shards afterwards without the merge order mattering.
/// (The running sum_ is a double and therefore associative only up to
/// floating-point rounding; quantiles, count, min and max never depend
/// on it.)
///
/// Quantile semantics: quantile(q) locates the bucket holding the
/// ceil(q * count)-th smallest recorded value and returns that bucket's
/// geometric midpoint, clamped into [min(), max()] -- so p50/p99/p999 are
/// order statistics with bounded relative error, never interpolations that
/// can invent values no request experienced beyond the observed range.

#include <array>
#include <cstdint>

namespace ssa {

/// Fixed-size mergeable histogram over seconds; see the file comment.
class LatencyHistogram {
 public:
  /// Lower edge of the first finite bucket; everything at or below lands
  /// in bucket 0 (cache hits record 0.0 deliberately).
  static constexpr double kMinSeconds = 1e-9;
  /// Buckets per factor of two; the resolution/size trade-off knob.
  static constexpr int kBucketsPerOctave = 8;
  /// Octave span: 2^44 * 1e-9 s ~ 4.9 hours, beyond any sane latency.
  static constexpr int kOctaves = 44;
  static constexpr int kBucketCount = kOctaves * kBucketsPerOctave;

  /// Worst-case relative error of quantile() against the exact order
  /// statistic: half a bucket either way, 2^(1/(2*kBucketsPerOctave)) - 1.
  [[nodiscard]] static double relative_error() noexcept;

  /// Records one value; negative values clamp to 0 (bucket 0), values
  /// beyond the grid clamp into the last bucket. Never throws.
  void add(double seconds) noexcept;

  /// Element-wise accumulation of \p other into *this (exact on bucket
  /// counts -- see the file comment on associativity).
  void merge(const LatencyHistogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  /// Smallest/largest recorded value (0 when empty).
  [[nodiscard]] double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// The ceil(q * count)-th smallest value, bucket-resolved and clamped
  /// into [min(), max()]; q outside (0, 1] clamps; 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }
  [[nodiscard]] double p999() const noexcept { return quantile(0.999); }

  /// Raw bucket counts (tests assert merge exactness element-wise).
  [[nodiscard]] const std::array<std::uint64_t, kBucketCount>& buckets()
      const noexcept {
    return buckets_;
  }

  /// Rebuilds a histogram from serialized state -- the telemetry wire
  /// codec's deserializer (wire/telemetry_codec.cpp). \p count must equal
  /// the bucket sum (the codec validates before calling).
  [[nodiscard]] static LatencyHistogram from_state(
      const std::array<std::uint64_t, kBucketCount>& buckets,
      std::uint64_t count, double sum, double min, double max) noexcept {
    LatencyHistogram histogram;
    histogram.buckets_ = buckets;
    histogram.count_ = count;
    histogram.sum_ = sum;
    histogram.min_ = min;
    histogram.max_ = max;
    return histogram;
  }

  [[nodiscard]] friend bool operator==(const LatencyHistogram&,
                                       const LatencyHistogram&) = default;

 private:
  [[nodiscard]] static int bucket_of(double seconds) noexcept;
  [[nodiscard]] static double bucket_midpoint(int bucket) noexcept;

  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ssa
