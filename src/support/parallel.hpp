#pragma once
/// \file parallel.hpp
/// Thin OpenMP shim. Hot loops in the library (Monte-Carlo rounding
/// repetitions, derandomization seed sweeps, pairwise weight matrices) use
/// parallel_for; when OpenMP is unavailable the loop runs serially with the
/// identical iteration-to-result mapping, so results never depend on the
/// thread count.

#include <cstddef>

#if defined(SSA_HAVE_OPENMP)
#include <omp.h>
#endif

namespace ssa {

/// Number of worker threads the runtime would use.
[[nodiscard]] inline int parallel_threads() noexcept {
#if defined(SSA_HAVE_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// RAII scope bounding the OpenMP worker count: threads > 0 caps the pool
/// for the scope's lifetime, anything else leaves it untouched. Results of
/// parallel_for never depend on the count (fixed iteration-to-result
/// mapping); this only changes resource usage. No-op without OpenMP.
class ThreadCountScope {
 public:
  explicit ThreadCountScope([[maybe_unused]] int threads) {
#if defined(SSA_HAVE_OPENMP)
    if (threads > 0) {
      saved_ = omp_get_max_threads();
      omp_set_num_threads(threads);
    }
#endif
  }
  ~ThreadCountScope() {
#if defined(SSA_HAVE_OPENMP)
    if (saved_ > 0) omp_set_num_threads(saved_);
#endif
  }
  ThreadCountScope(const ThreadCountScope&) = delete;
  ThreadCountScope& operator=(const ThreadCountScope&) = delete;

 private:
  int saved_ = 0;
};

/// Runs body(i) for i in [0, n). The body must be safe to run concurrently
/// for distinct i (no shared mutable state without synchronization).
template <typename Body>
void parallel_for(std::ptrdiff_t n, const Body& body) {
#if defined(SSA_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 1)
  for (std::ptrdiff_t i = 0; i < n; ++i) body(i);
#else
  for (std::ptrdiff_t i = 0; i < n; ++i) body(i);
#endif
}

}  // namespace ssa
