#pragma once
/// \file stats.hpp
/// Streaming and batch descriptive statistics used by the benchmark
/// harnesses and the statistical tests (mean, variance via Welford,
/// confidence intervals, quantiles, least-squares fits).

#include <cstddef>
#include <span>
#include <vector>

namespace ssa {

/// Numerically stable streaming moments (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Half-width of an approximate 95% confidence interval for the mean.
  [[nodiscard]] double ci95_halfwidth() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// q-th quantile (q in [0,1]) by linear interpolation; copies and sorts.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Least-squares fit y = a + b*x; returns {a, b}. Requires >= 2 points.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Coefficient of determination.
  double r2 = 0.0;
};
[[nodiscard]] LinearFit fit_line(std::span<const double> xs,
                                 std::span<const double> ys);

/// Mean of a span (0 for empty).
[[nodiscard]] double mean_of(std::span<const double> xs) noexcept;

}  // namespace ssa
