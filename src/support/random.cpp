#include "support/random.hpp"

#include <cmath>

namespace ssa {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) noexcept {
  // Lemire-style rejection-free-most-of-the-time sampling.
  __extension__ using Uint128 = unsigned __int128;
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    // 128-bit multiply-high.
    const Uint128 m = static_cast<Uint128>(r) * static_cast<Uint128>(n);
    const std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= threshold) return static_cast<std::uint64_t>(m >> 64);
  }
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::exponential(double lambda) noexcept {
  return -std::log1p(-uniform()) / lambda;
}

double Rng::pareto(double xm, double alpha) noexcept {
  return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
}

double Rng::normal() noexcept {
  const double u1 = 1.0 - uniform();  // avoid log(0)
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

Rng Rng::split(std::uint64_t index) noexcept {
  std::uint64_t material = s_[0] ^ rotl(s_[2], 13) ^ (index * 0x9e3779b97f4a7c15ULL);
  return Rng(splitmix64(material));
}

}  // namespace ssa
