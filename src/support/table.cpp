#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ssa {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::num(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

std::string Table::integer(long long value) { return std::to_string(value); }

namespace {
std::vector<std::size_t> column_widths(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  return widths;
}
}  // namespace

void Table::print(std::ostream& os, const std::string& title) const {
  const auto widths = column_widths(header_, rows_);
  if (!title.empty()) os << "== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << row[c]
         << " |";
    }
    os << '\n';
  };
  auto print_sep = [&] {
    os << "+";
    for (std::size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << '\n';
  };
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

void Table::print_markdown(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (const auto& cell : row) os << ' ' << cell << " |";
    os << '\n';
  };
  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace ssa
