#pragma once
/// \file pairwise.hpp
/// Pairwise-independent hash family over GF(p) used to derandomize the
/// LP-rounding algorithms (the paper, Section 5, notes the rounding analysis
/// only needs pairwise independence). Each seed (a, b) in GF(p)^2 maps index
/// v to h(v) = ((a*v + b) mod p) / p in [0, 1); over a uniformly random seed
/// the values {h(v)} are pairwise independent and (1/p)-close to uniform
/// marginals, which is absorbed by a slightly inflated approximation factor.

#include <cstdint>
#include <vector>

namespace ssa {

/// Smallest prime >= n (n >= 2).
[[nodiscard]] std::uint64_t next_prime(std::uint64_t n);

/// The family {h_{a,b}}. Enumerating all p^2 seeds and keeping the best
/// rounded allocation is the deterministic counterpart of one random run.
class PairwiseFamily {
 public:
  /// \p universe is the number of indices hashed (vertices); p >= universe.
  explicit PairwiseFamily(std::uint64_t universe, std::uint64_t min_p = 61);

  [[nodiscard]] std::uint64_t prime() const noexcept { return p_; }
  [[nodiscard]] std::uint64_t seed_count() const noexcept { return p_ * p_; }

  /// Value in [0,1) for index \p v under seed id \p seed (< seed_count()).
  [[nodiscard]] double value(std::uint64_t seed, std::uint64_t v) const noexcept;

  /// All values for indices [0, count) under one seed.
  [[nodiscard]] std::vector<double> values(std::uint64_t seed,
                                           std::uint64_t count) const;

 private:
  std::uint64_t p_;
};

}  // namespace ssa
