#include "graph/independent_set.hpp"

#include <algorithm>
#include <numeric>

namespace ssa {

namespace {

/// Depth-first branch and bound over candidates ordered by gain.
///
/// Incremental state: for every candidate index j, incoming_[j] is the
/// weight flowing into candidate j from the currently chosen set, so both
/// the feasibility check and the push/pop are O(#candidates) instead of
/// O(|set|^2) per node. This matters on the dense edge-weighted graphs of
/// the physical model.
class BranchAndBound {
 public:
  BranchAndBound(const ConflictGraph& graph, std::vector<int> candidates,
                 std::vector<double> gains, long long node_budget)
      : graph_(graph),
        candidates_(std::move(candidates)),
        gains_(std::move(gains)),
        budget_(node_budget) {
    const std::size_t c = candidates_.size();
    suffix_sum_.assign(c + 1, 0.0);
    for (std::size_t i = c; i-- > 0;) {
      suffix_sum_[i] = suffix_sum_[i + 1] + gains_[i];
    }
    incoming_.assign(c, 0.0);
    // Cross-weight cache: weight_[i][j] = w(candidate_i -> candidate_j).
    weights_.assign(c * c, 0.0);
    for (std::size_t i = 0; i < c; ++i) {
      for (std::size_t j = 0; j < c; ++j) {
        if (i != j) {
          weights_[i * c + j] =
              graph_.weight(static_cast<std::size_t>(candidates_[i]),
                            static_cast<std::size_t>(candidates_[j]));
        }
      }
    }
  }

  IndependenceOptimum run() {
    std::vector<std::size_t> current;
    recurse(0, 0.0, current);
    IndependenceOptimum result;
    result.value = best_value_;
    result.members.reserve(best_set_.size());
    for (std::size_t index : best_set_) {
      result.members.push_back(candidates_[index]);
    }
    result.exact = budget_ > 0;
    return result;
  }

 private:
  /// Whether candidate index i can join keeping (strict <1) independence.
  [[nodiscard]] bool can_add(std::size_t i,
                             std::span<const std::size_t> current) const {
    if (incoming_[i] >= 1.0) return false;
    const std::size_t c = candidates_.size();
    for (std::size_t member : current) {
      if (incoming_[member] + weights_[i * c + member] >= 1.0) return false;
    }
    return true;
  }

  void push(std::size_t i) {
    const std::size_t c = candidates_.size();
    for (std::size_t j = 0; j < c; ++j) incoming_[j] += weights_[i * c + j];
  }

  void pop(std::size_t i) {
    const std::size_t c = candidates_.size();
    for (std::size_t j = 0; j < c; ++j) incoming_[j] -= weights_[i * c + j];
  }

  void recurse(std::size_t index, double value,
               std::vector<std::size_t>& current) {
    if (budget_-- <= 0) return;
    if (value > best_value_) {
      best_value_ = value;
      best_set_ = current;
    }
    if (index >= candidates_.size()) return;
    if (value + suffix_sum_[index] <= best_value_) return;  // bound

    // Branch 1: include candidate `index` when feasible.
    if (gains_[index] > 0.0 && can_add(index, current)) {
      current.push_back(index);
      push(index);
      recurse(index + 1, value + gains_[index], current);
      pop(index);
      current.pop_back();
    }
    // Branch 2: exclude it.
    recurse(index + 1, value, current);
  }

  const ConflictGraph& graph_;
  std::vector<int> candidates_;
  std::vector<double> gains_;
  std::vector<double> suffix_sum_;
  std::vector<double> weights_;   ///< dense candidate-to-candidate weights
  std::vector<double> incoming_;  ///< incoming weight per candidate index
  long long budget_;
  double best_value_ = 0.0;
  std::vector<std::size_t> best_set_;
};

}  // namespace

IndependenceOptimum max_gain_independent_subset(const ConflictGraph& graph,
                                                std::span<const int> candidates,
                                                std::span<const double> gains,
                                                long long node_budget) {
  // Sort candidates by decreasing gain: better bounds, earlier pruning.
  std::vector<std::size_t> perm(candidates.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    return gains[a] > gains[b];
  });
  std::vector<int> ordered_candidates(candidates.size());
  std::vector<double> ordered_gains(candidates.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    ordered_candidates[i] = candidates[perm[i]];
    ordered_gains[i] = gains[perm[i]];
  }
  BranchAndBound solver(graph, std::move(ordered_candidates),
                        std::move(ordered_gains), node_budget);
  return solver.run();
}

IndependenceOptimum max_weight_independent_set(const ConflictGraph& graph,
                                               std::span<const double> weights,
                                               long long node_budget) {
  std::vector<int> candidates(graph.size());
  std::iota(candidates.begin(), candidates.end(), 0);
  return max_gain_independent_subset(graph, candidates, weights, node_budget);
}

std::vector<int> greedy_independent_set(const ConflictGraph& graph,
                                        std::span<const int> order) {
  std::vector<int> chosen;
  for (int v : order) {
    chosen.push_back(v);
    if (!graph.is_independent(chosen)) chosen.pop_back();
  }
  return chosen;
}

}  // namespace ssa
