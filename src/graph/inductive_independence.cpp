#include "graph/inductive_independence.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "graph/independent_set.hpp"
#include "support/parallel.hpp"

namespace ssa {

std::vector<VertexRho> rho_per_vertex(const ConflictGraph& graph,
                                      const Ordering& order,
                                      long long node_budget_per_vertex) {
  const std::size_t n = graph.size();
  if (order.size() != n) {
    throw std::invalid_argument("rho_per_vertex: ordering size mismatch");
  }
  const std::vector<int> position = ordering_positions(order);
  std::vector<VertexRho> result(n);

  graph.ensure_adjacency();  // neighbors() must be thread-safe below
  parallel_for(static_cast<std::ptrdiff_t>(n), [&](std::ptrdiff_t vi) {
    const std::size_t v = static_cast<std::size_t>(vi);
    // Backward neighborhood of v and the gains wbar(u, v).
    std::vector<int> candidates;
    std::vector<double> gains;
    for (int u : graph.neighbors(v)) {
      if (position[u] < position[v]) {
        candidates.push_back(u);
        gains.push_back(graph.coupling_weight(static_cast<std::size_t>(u), v));
      }
    }
    const IndependenceOptimum opt = max_gain_independent_subset(
        graph, candidates, gains, node_budget_per_vertex);
    result[v] = VertexRho{opt.value, opt.exact};
  });
  return result;
}

VertexRho rho_of_ordering(const ConflictGraph& graph, const Ordering& order,
                          long long node_budget_per_vertex) {
  VertexRho best;
  for (const VertexRho& vertex_rho :
       rho_per_vertex(graph, order, node_budget_per_vertex)) {
    best.value = std::max(best.value, vertex_rho.value);
    best.exact = best.exact && vertex_rho.exact;
  }
  return best;
}

namespace {

/// Exhaustive search over orderings with prefix pruning. The rho value of a
/// prefix only grows as more vertices are appended, so a prefix whose rho
/// already reaches the incumbent can be cut.
class ExactRhoSearch {
 public:
  explicit ExactRhoSearch(const ConflictGraph& graph) : graph_(graph) {}

  ExactRho run() {
    const std::size_t n = graph_.size();
    if (n > 10) {
      throw std::invalid_argument(
          "exact_inductive_independence: graph too large (max 10 vertices)");
    }
    best_value_ = std::numeric_limits<double>::infinity();
    std::vector<int> prefix;
    std::vector<bool> used(n, false);
    recurse(prefix, used, 0.0);
    return ExactRho{best_value_ == std::numeric_limits<double>::infinity()
                        ? 0.0
                        : best_value_,
                    best_order_};
  }

 private:
  void recurse(std::vector<int>& prefix, std::vector<bool>& used,
               double prefix_rho) {
    const std::size_t n = graph_.size();
    if (prefix.size() == n) {
      if (prefix_rho < best_value_) {
        best_value_ = prefix_rho;
        best_order_ = prefix;
      }
      return;
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (used[v]) continue;
      // rho contribution of v when appended now: backward nbhd = prefix.
      std::vector<int> candidates;
      std::vector<double> gains;
      for (int u : prefix) {
        if (graph_.has_conflict(static_cast<std::size_t>(u), v)) {
          candidates.push_back(u);
          gains.push_back(graph_.coupling_weight(static_cast<std::size_t>(u), v));
        }
      }
      const double contribution =
          max_gain_independent_subset(graph_, candidates, gains).value;
      const double next_rho = std::max(prefix_rho, contribution);
      if (next_rho >= best_value_) continue;  // prune
      used[v] = true;
      prefix.push_back(static_cast<int>(v));
      recurse(prefix, used, next_rho);
      prefix.pop_back();
      used[v] = false;
    }
  }

  const ConflictGraph& graph_;
  double best_value_ = 0.0;
  Ordering best_order_;
};

}  // namespace

ExactRho exact_inductive_independence(const ConflictGraph& graph) {
  return ExactRhoSearch(graph).run();
}

Ordering smallest_last_ordering(const ConflictGraph& graph) {
  const std::size_t n = graph.size();
  std::vector<double> remaining_degree(n, 0.0);
  std::vector<bool> removed(n, false);
  for (std::size_t v = 0; v < n; ++v) {
    for (int u : graph.neighbors(v)) {
      remaining_degree[v] += graph.coupling_weight(static_cast<std::size_t>(u), v);
    }
  }
  Ordering order(n);
  for (std::size_t slot = n; slot-- > 0;) {
    // Remove the vertex with the smallest remaining weighted degree.
    std::size_t pick = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t v = 0; v < n; ++v) {
      if (!removed[v] && remaining_degree[v] < best) {
        best = remaining_degree[v];
        pick = v;
      }
    }
    removed[pick] = true;
    order[slot] = static_cast<int>(pick);
    for (int u : graph.neighbors(pick)) {
      if (!removed[u]) {
        remaining_degree[u] -=
            graph.coupling_weight(pick, static_cast<std::size_t>(u));
      }
    }
  }
  return order;
}

}  // namespace ssa
