#pragma once
/// \file conflict_graph.hpp
/// Edge-weighted conflict graphs (Section 3 of the paper). Unweighted
/// conflict graphs are the special case with weights in {0, 1}.
///
/// Semantics: w(u, v) is the weight vertex u *imposes on* v ("incoming"
/// weight at v). A set M is independent iff for every v in M the incoming
/// weight from the rest of M is strictly below 1:
///     sum_{u in M \ {v}} w(u, v) < 1.
/// The symmetrized weight of Definition 2 is wbar(u, v) = w(u,v) + w(v,u).

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace ssa {

/// Dense edge-weighted conflict graph over vertices [0, size).
class ConflictGraph {
 public:
  explicit ConflictGraph(std::size_t size);

  /// Builds an unweighted graph: each undirected edge {u, v} gets weight 1
  /// in both directions, so independence coincides with the classical
  /// notion (no adjacent pair).
  [[nodiscard]] static ConflictGraph from_edges(
      std::size_t size, std::span<const std::pair<int, int>> edges);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Directed weight u -> v. Diagonal is always 0.
  [[nodiscard]] double weight(std::size_t u, std::size_t v) const {
    return w_[u * n_ + v];
  }
  void set_weight(std::size_t u, std::size_t v, double weight);
  /// Sets weight 1 in both directions (an unweighted edge).
  void add_edge(std::size_t u, std::size_t v);

  /// Symmetrized weight wbar(u,v) = w(u,v) + w(v,u) (Definition 2).
  [[nodiscard]] double symmetric_weight(std::size_t u, std::size_t v) const {
    return w_[u * n_ + v] + w_[v * n_ + u];
  }

  /// The pairwise coupling used by the LP coefficients and the inductive
  /// independence gains: 1 per edge in unweighted graphs (Definition 1
  /// counts vertices) and wbar(u,v) in weighted graphs (Definition 2).
  [[nodiscard]] double coupling_weight(std::size_t u, std::size_t v) const {
    if (nonbinary_pairs_ == 0) return has_conflict(u, v) ? 1.0 : 0.0;
    return symmetric_weight(u, v);
  }

  /// True when some conflict (positive weight either way) exists.
  [[nodiscard]] bool has_conflict(std::size_t u, std::size_t v) const {
    return u != v && symmetric_weight(u, v) > 0.0;
  }

  /// True when all weights are 0 or 1 and symmetric (O(1); tracked on
  /// mutation).
  [[nodiscard]] bool is_unweighted() const noexcept {
    return nonbinary_pairs_ == 0;
  }

  /// Vertices u with a conflict to v (recomputed lazily after mutation).
  /// NOT thread-safe while the graph is dirty after a mutation; call
  /// ensure_adjacency() once before sharing the graph across threads.
  [[nodiscard]] const std::vector<int>& neighbors(std::size_t v) const;

  /// Forces the lazy adjacency rebuild; after this call neighbors() is
  /// safe to use concurrently (until the next mutation).
  void ensure_adjacency() const {
    if (adjacency_dirty_) rebuild_adjacency();
  }

  /// Incoming weight at \p v from the vertices of \p set (v excluded).
  [[nodiscard]] double incoming_weight(std::span<const int> set,
                                       std::size_t v) const;

  /// Independence test per the class comment.
  [[nodiscard]] bool is_independent(std::span<const int> set) const;

  /// Number of conflicting (unordered) pairs.
  [[nodiscard]] std::size_t num_conflicts() const;

 private:
  void rebuild_adjacency() const;

  /// Whether the unordered pair {u, v} is "binary": weights (0,0) or (1,1).
  [[nodiscard]] bool pair_is_binary(std::size_t u, std::size_t v) const {
    const double a = w_[u * n_ + v];
    const double b = w_[v * n_ + u];
    return (a == 0.0 && b == 0.0) || (a == 1.0 && b == 1.0);
  }

  std::size_t n_;
  std::vector<double> w_;
  std::size_t nonbinary_pairs_ = 0;
  mutable bool adjacency_dirty_ = true;
  mutable std::vector<std::vector<int>> adjacency_;
};

}  // namespace ssa
