#include "graph/conflict_graph.hpp"

#include <stdexcept>

namespace ssa {

ConflictGraph::ConflictGraph(std::size_t size)
    : n_(size), w_(size * size, 0.0) {}

ConflictGraph ConflictGraph::from_edges(
    std::size_t size, std::span<const std::pair<int, int>> edges) {
  ConflictGraph graph(size);
  for (const auto& [u, v] : edges) {
    graph.add_edge(static_cast<std::size_t>(u), static_cast<std::size_t>(v));
  }
  return graph;
}

void ConflictGraph::set_weight(std::size_t u, std::size_t v, double weight) {
  if (u >= n_ || v >= n_) throw std::out_of_range("ConflictGraph::set_weight");
  if (u == v) throw std::invalid_argument("ConflictGraph: self-loop");
  if (weight < 0.0) throw std::invalid_argument("ConflictGraph: negative weight");
  const bool was_binary = pair_is_binary(u, v);
  w_[u * n_ + v] = weight;
  const bool is_binary = pair_is_binary(u, v);
  if (was_binary && !is_binary) ++nonbinary_pairs_;
  if (!was_binary && is_binary) --nonbinary_pairs_;
  adjacency_dirty_ = true;
}

void ConflictGraph::add_edge(std::size_t u, std::size_t v) {
  set_weight(u, v, 1.0);
  set_weight(v, u, 1.0);
}

void ConflictGraph::rebuild_adjacency() const {
  adjacency_.assign(n_, {});
  for (std::size_t u = 0; u < n_; ++u) {
    for (std::size_t v = u + 1; v < n_; ++v) {
      if (w_[u * n_ + v] > 0.0 || w_[v * n_ + u] > 0.0) {
        adjacency_[u].push_back(static_cast<int>(v));
        adjacency_[v].push_back(static_cast<int>(u));
      }
    }
  }
  adjacency_dirty_ = false;
}

const std::vector<int>& ConflictGraph::neighbors(std::size_t v) const {
  if (adjacency_dirty_) rebuild_adjacency();
  return adjacency_.at(v);
}

double ConflictGraph::incoming_weight(std::span<const int> set,
                                      std::size_t v) const {
  double total = 0.0;
  for (int u : set) {
    if (static_cast<std::size_t>(u) != v) {
      total += w_[static_cast<std::size_t>(u) * n_ + v];
    }
  }
  return total;
}

bool ConflictGraph::is_independent(std::span<const int> set) const {
  for (int v : set) {
    if (incoming_weight(set, static_cast<std::size_t>(v)) >= 1.0) return false;
  }
  return true;
}

std::size_t ConflictGraph::num_conflicts() const {
  std::size_t count = 0;
  for (std::size_t u = 0; u < n_; ++u) {
    for (std::size_t v = u + 1; v < n_; ++v) {
      if (w_[u * n_ + v] > 0.0 || w_[v * n_ + u] > 0.0) ++count;
    }
  }
  return count;
}

}  // namespace ssa
