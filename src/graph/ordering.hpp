#pragma once
/// \file ordering.hpp
/// Vertex orderings pi for the inductive independence number. An Ordering
/// lists vertex ids from first (smallest pi) to last; position(v) recovers
/// pi(v). The models in src/models each supply the ordering their bound is
/// proved for (e.g. decreasing disk radius, decreasing link length).

#include <algorithm>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

namespace ssa {

/// Permutation of [0, n): order[i] is the vertex at position i.
using Ordering = std::vector<int>;

/// Identity ordering 0, 1, ..., n-1.
[[nodiscard]] inline Ordering identity_ordering(std::size_t n) {
  Ordering order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

/// Ordering by key, ties broken by vertex id (deterministic).
/// descending = true puts the largest key first (e.g. "by decreasing
/// radius" in Proposition 9).
[[nodiscard]] inline Ordering ordering_by_key(std::span<const double> keys,
                                              bool descending) {
  Ordering order = identity_ordering(keys.size());
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const double ka = keys[static_cast<std::size_t>(a)];
    const double kb = keys[static_cast<std::size_t>(b)];
    if (ka != kb) return descending ? ka > kb : ka < kb;
    return a < b;
  });
  return order;
}

/// position[v] = pi(v) for an ordering.
[[nodiscard]] inline std::vector<int> ordering_positions(const Ordering& order) {
  std::vector<int> position(order.size(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const int v = order[i];
    if (v < 0 || static_cast<std::size_t>(v) >= order.size() || position[v] != -1) {
      throw std::invalid_argument("ordering_positions: not a permutation");
    }
    position[v] = static_cast<int>(i);
  }
  return position;
}

}  // namespace ssa
