#pragma once
/// \file independent_set.hpp
/// Exact and heuristic (weighted) independent-set optimization on conflict
/// graphs. Used as: the inner subproblem of the inductive-independence
/// verifier, the exact baseline for k = 1 auctions, and a test oracle.

#include <span>
#include <vector>

#include "graph/conflict_graph.hpp"

namespace ssa {

/// Result of a gain-maximization over independent subsets.
struct IndependenceOptimum {
  double value = 0.0;        ///< total gain of the best set found
  std::vector<int> members;  ///< the set itself (vertex ids of the graph)
  bool exact = true;         ///< false when the node budget was exhausted
};

/// Maximizes sum of gains over independent subsets of \p candidates
/// (branch and bound; gains must be non-negative). \p node_budget bounds
/// the number of search nodes; when exceeded the best-found solution is
/// returned with exact = false.
[[nodiscard]] IndependenceOptimum max_gain_independent_subset(
    const ConflictGraph& graph, std::span<const int> candidates,
    std::span<const double> gains, long long node_budget = 4'000'000);

/// Maximum-weight independent set over the whole graph with per-vertex
/// weights (unit weights give maximum cardinality).
[[nodiscard]] IndependenceOptimum max_weight_independent_set(
    const ConflictGraph& graph, std::span<const double> weights,
    long long node_budget = 4'000'000);

/// Greedy independent set: scans vertices in the given order, keeps a
/// vertex when the set stays independent. A baseline, not an approximation
/// guarantee by itself.
[[nodiscard]] std::vector<int> greedy_independent_set(
    const ConflictGraph& graph, std::span<const int> order);

}  // namespace ssa
