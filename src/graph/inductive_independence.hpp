#pragma once
/// \file inductive_independence.hpp
/// The paper's central graph parameter (Definitions 1 and 2).
///
/// For an ordering pi, rho(pi) is the maximum over vertices v of the best
/// gain an independent set M inside v's backward neighborhood can collect,
/// where the gain of u is 1 in the unweighted case and wbar(u, v) in the
/// edge-weighted case. The inductive independence number is min over pi of
/// rho(pi); computing it exactly is only feasible for tiny graphs, which is
/// all the tests need -- the models ship their provably-good orderings.

#include <span>
#include <vector>

#include "graph/conflict_graph.hpp"
#include "graph/ordering.hpp"

namespace ssa {

/// rho contribution of a single vertex under an ordering: the optimum of
/// the backward-neighborhood subproblem described above.
struct VertexRho {
  double value = 0.0;
  bool exact = true;
};

/// Per-vertex rho values (index = vertex id).
[[nodiscard]] std::vector<VertexRho> rho_per_vertex(
    const ConflictGraph& graph, const Ordering& order,
    long long node_budget_per_vertex = 2'000'000);

/// rho(pi): maximum over vertices. exact is the conjunction over vertices.
[[nodiscard]] VertexRho rho_of_ordering(
    const ConflictGraph& graph, const Ordering& order,
    long long node_budget_per_vertex = 2'000'000);

/// Exact inductive independence number by branch and bound over orderings.
/// Exponential; intended for graphs with at most ~9 vertices (test oracle).
struct ExactRho {
  double value = 0.0;
  Ordering order;  ///< an optimal ordering
};
[[nodiscard]] ExactRho exact_inductive_independence(const ConflictGraph& graph);

/// Heuristic ordering when no model-specific one is available: a
/// "smallest-last" construction that repeatedly places the vertex with the
/// smallest remaining (weighted) degree at the end of the ordering. For
/// unweighted graphs this is the degeneracy ordering, so rho(pi) never
/// exceeds the degeneracy.
[[nodiscard]] Ordering smallest_last_ordering(const ConflictGraph& graph);

}  // namespace ssa
