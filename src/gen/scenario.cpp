#include "gen/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "models/protocol.hpp"

namespace ssa::gen {

std::vector<Transmitter> random_transmitters(std::size_t n, double area,
                                             double radius_min,
                                             double radius_max, Rng& rng) {
  std::vector<Transmitter> transmitters(n);
  for (auto& t : transmitters) {
    t.position = Point{rng.uniform(0.0, area), rng.uniform(0.0, area)};
    t.radius = rng.uniform(radius_min, radius_max);
  }
  return transmitters;
}

std::vector<Transmitter> clustered_transmitters(std::size_t n, double area,
                                                double radius_min,
                                                double radius_max,
                                                std::size_t clusters,
                                                double spread, Rng& rng) {
  if (clusters == 0) throw std::invalid_argument("clustered_transmitters");
  std::vector<Point> centers(clusters);
  for (auto& center : centers) {
    center = Point{rng.uniform(0.0, area), rng.uniform(0.0, area)};
  }
  std::vector<Transmitter> transmitters(n);
  for (auto& t : transmitters) {
    const Point& center = centers[rng.uniform_int(clusters)];
    t.position = Point{center.x + spread * rng.normal(),
                       center.y + spread * rng.normal()};
    t.radius = rng.uniform(radius_min, radius_max);
  }
  return transmitters;
}

std::vector<PlanarLink> random_links(std::size_t n, double area,
                                     double length_min, double length_max,
                                     Rng& rng) {
  std::vector<PlanarLink> links(n);
  for (auto& link : links) {
    link.sender = Point{rng.uniform(0.0, area), rng.uniform(0.0, area)};
    const double angle = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    const double length = rng.uniform(length_min, length_max);
    link.receiver = Point{link.sender.x + length * std::cos(angle),
                          link.sender.y + length * std::sin(angle)};
  }
  return links;
}

namespace {
ValuationPtr random_valuation(int k, ValuationMix mix, int max_value, Rng& rng) {
  const auto channel_values = [&] {
    std::vector<double> values(static_cast<std::size_t>(k));
    for (double& v : values) {
      v = static_cast<double>(1 + rng.uniform_int(static_cast<std::uint64_t>(max_value)));
    }
    return values;
  };
  int kind = 0;
  switch (mix) {
    case ValuationMix::kAdditive: kind = 0; break;
    case ValuationMix::kUnitDemand: kind = 1; break;
    case ValuationMix::kSingleMinded: kind = 2; break;
    case ValuationMix::kMixed: kind = static_cast<int>(rng.uniform_int(6)); break;
  }
  switch (kind) {
    case 0: return std::make_shared<AdditiveValuation>(channel_values());
    case 1: return std::make_shared<UnitDemandValuation>(channel_values());
    case 2: {
      const Bundle target = static_cast<Bundle>(
          1 + rng.uniform_int(num_bundles(k) - 1));
      const double value = static_cast<double>(
          bundle_size(target) *
          (1 + rng.uniform_int(static_cast<std::uint64_t>(max_value))));
      return std::make_shared<SingleMindedValuation>(k, target, value);
    }
    case 3: {
      auto values = channel_values();
      double total = 0.0;
      for (double v : values) total += v;
      const double budget = total * rng.uniform(0.4, 0.9);
      return std::make_shared<BudgetAdditiveValuation>(std::move(values), budget);
    }
    case 5: {
      // XOR language: 2-4 atomic bids on random bundles.
      const std::size_t atom_count = 2 + rng.uniform_int(3);
      std::vector<XorValuation::Atom> atoms;
      for (std::size_t a = 0; a < atom_count; ++a) {
        XorValuation::Atom atom;
        atom.bundle = static_cast<Bundle>(1 + rng.uniform_int(num_bundles(k) - 1));
        atom.value = static_cast<double>(
            bundle_size(atom.bundle) *
            (1 + rng.uniform_int(static_cast<std::uint64_t>(max_value))));
        atoms.push_back(atom);
      }
      return std::make_shared<XorValuation>(k, std::move(atoms));
    }
    default: {
      // Coverage: ground set of 2k elements, each channel covers ~3.
      const std::size_t elements = 2 * static_cast<std::size_t>(k);
      std::vector<double> weights(elements);
      for (double& w : weights) {
        w = static_cast<double>(1 + rng.uniform_int(static_cast<std::uint64_t>(max_value)));
      }
      std::vector<std::vector<int>> coverage(static_cast<std::size_t>(k));
      for (auto& covered : coverage) {
        const std::size_t count = 1 + rng.uniform_int(3);
        for (std::size_t c = 0; c < count; ++c) {
          covered.push_back(static_cast<int>(rng.uniform_int(elements)));
        }
      }
      return std::make_shared<CoverageValuation>(std::move(weights),
                                                 std::move(coverage));
    }
  }
}
}  // namespace

std::vector<ValuationPtr> random_valuations(std::size_t n, int k,
                                            ValuationMix mix, int max_value,
                                            Rng& rng) {
  std::vector<ValuationPtr> valuations;
  valuations.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    valuations.push_back(random_valuation(k, mix, max_value, rng));
  }
  return valuations;
}

AuctionInstance make_disk_auction(std::size_t n, int k, ValuationMix mix,
                                  std::uint64_t seed) {
  Rng rng(seed);
  // Area scales with sqrt(n) so density stays moderate.
  const double area = 10.0 * std::sqrt(static_cast<double>(n));
  const auto transmitters = random_transmitters(n, area, 1.0, 4.0, rng);
  ModelGraph model = disk_graph(transmitters);
  auto valuations = random_valuations(n, k, mix, 100, rng);
  return AuctionInstance(std::move(model.graph), std::move(model.order), k,
                         std::move(valuations));
}

AuctionInstance make_protocol_auction(std::size_t n, int k, double delta,
                                      ValuationMix mix, std::uint64_t seed) {
  Rng rng(seed);
  const double area = 10.0 * std::sqrt(static_cast<double>(n));
  const auto planar = random_links(n, area, 1.0, 4.0, rng);
  const auto [links, metric] = to_metric_links(planar);
  ModelGraph model = protocol_conflict_graph(links, metric, delta);
  auto valuations = random_valuations(n, k, mix, 100, rng);
  return AuctionInstance(std::move(model.graph), std::move(model.order), k,
                         std::move(valuations));
}

AuctionInstance make_physical_auction(std::size_t n, int k, PowerScheme scheme,
                                      ValuationMix mix, std::uint64_t seed,
                                      PhysicalParams params) {
  Rng rng(seed);
  const double area = 10.0 * std::sqrt(static_cast<double>(n));
  const auto planar = random_links(n, area, 1.0, 4.0, rng);
  const auto [links, metric] = to_metric_links(planar);
  const auto powers = assign_powers(links, metric, scheme, params);
  ModelGraph model = physical_conflict_graph(links, metric, powers, params);
  auto valuations = random_valuations(n, k, mix, 100, rng);
  return AuctionInstance(std::move(model.graph), std::move(model.order), k,
                         std::move(valuations));
}

AuctionInstance make_clique_auction(std::size_t n, std::uint64_t seed) {
  ConflictGraph graph(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) graph.add_edge(u, v);
  }
  std::vector<ValuationPtr> valuations;
  valuations.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    valuations.push_back(
        std::make_shared<AdditiveValuation>(std::vector<double>{1.0}));
  }
  // The gap construction needs the UNIT bids (edge-LP value n/2 against
  // integral welfare 1), so the seed cannot perturb valuations. It
  // shuffles the inductive elimination ordering instead: on a clique
  // every ordering has rho = 1 and identical LP/greedy values, yet the
  // ordering is part of the canonical fingerprint -- distinct seeds give
  // distinct instances to caches and routing, as generators must.
  Ordering order = identity_ordering(n);
  Rng rng(seed);
  rng.shuffle(order);
  return AuctionInstance(std::move(graph), std::move(order), 1,
                         std::move(valuations), 1.0);
}

AuctionInstance make_random_graph_auction(std::size_t n, int k, double p,
                                          ValuationMix mix,
                                          std::uint64_t seed) {
  Rng rng(seed);
  ConflictGraph graph(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) graph.add_edge(u, v);
    }
  }
  auto valuations = random_valuations(n, k, mix, 100, rng);
  Ordering order = smallest_last_ordering(graph);
  return AuctionInstance(std::move(graph), std::move(order), k,
                         std::move(valuations));
}

AsymmetricInstance make_hardness_instance(std::size_t n, int d, int k,
                                          std::uint64_t seed) {
  if (k < 1 || d < k) {
    throw std::invalid_argument("make_hardness_instance: need d >= k >= 1");
  }
  Rng rng(seed);
  // Random graph with maximum degree <= d: sample candidate edges and keep
  // those not exceeding the degree cap.
  std::vector<int> degree(n, 0);
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  std::vector<std::pair<std::size_t, std::size_t>> candidates;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) candidates.emplace_back(u, v);
  }
  rng.shuffle(candidates);
  for (const auto& [u, v] : candidates) {
    if (degree[u] < d && degree[v] < d) {
      edges.emplace_back(u, v);
      ++degree[u];
      ++degree[v];
    }
  }

  // Distribute backward edges (toward the identity ordering) so each
  // channel graph gets at most rho = d/k backward edges per vertex.
  const int rho = d / k;
  std::vector<ConflictGraph> graphs(static_cast<std::size_t>(k),
                                    ConflictGraph(n));
  std::vector<std::vector<int>> backward_count(
      n, std::vector<int>(static_cast<std::size_t>(k), 0));
  for (const auto& [u, v] : edges) {
    // v > u, so u is the backward endpoint of vertex v.
    for (int j = 0; j < k; ++j) {
      if (backward_count[v][static_cast<std::size_t>(j)] < rho) {
        graphs[static_cast<std::size_t>(j)].add_edge(u, v);
        ++backward_count[v][static_cast<std::size_t>(j)];
        break;
      }
    }
  }

  std::vector<ValuationPtr> valuations;
  valuations.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    valuations.push_back(
        std::make_shared<SingleMindedValuation>(k, full_bundle(k), 1.0));
  }
  return AsymmetricInstance(std::move(graphs), identity_ordering(n),
                            std::move(valuations),
                            static_cast<double>(rho));
}

AsymmetricInstance make_random_asymmetric(std::size_t n, int k, double p,
                                          ValuationMix mix,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ConflictGraph> graphs;
  graphs.reserve(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    ConflictGraph graph(n);
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = u + 1; v < n; ++v) {
        if (rng.bernoulli(p)) graph.add_edge(u, v);
      }
    }
    graphs.push_back(std::move(graph));
  }
  auto valuations = random_valuations(n, k, mix, 100, rng);
  return AsymmetricInstance(std::move(graphs), identity_ordering(n),
                            std::move(valuations));
}

AnyInstance NamedInstance::view() const {
  return std::visit([](const auto& held) { return AnyInstance(held); },
                    instance);
}

std::vector<NamedInstance> mixed_scenario_suite(std::size_t n, int k,
                                                std::uint64_t seed) {
  std::vector<NamedInstance> suite;
  suite.push_back({"disk", make_disk_auction(n, k, ValuationMix::kMixed, seed)});
  suite.push_back({"random-graph", make_random_graph_auction(
                                       n, k, 0.25, ValuationMix::kMixed,
                                       seed + 1)});
  suite.push_back({"asym-random", make_random_asymmetric(
                                      n, k, 0.25, ValuationMix::kMixed,
                                      seed + 2)});
  // Theorem 18 hardness construction: degree bound d = 2k keeps rho_j <= 2.
  suite.push_back({"asym-hardness",
                   make_hardness_instance(n, 2 * k, k, seed + 3)});
  return suite;
}

std::vector<LabelledInstance> labelled_views(
    std::span<const NamedInstance> suite) {
  std::vector<LabelledInstance> views;
  views.reserve(suite.size());
  for (const NamedInstance& named : suite) {
    views.push_back({named.label, named.view()});
  }
  return views;
}

std::vector<BatchJob> scenario_jobs(std::span<const NamedInstance> suite,
                                    std::span<const std::string> solvers,
                                    const SolveOptions& options) {
  return cross_jobs(labelled_views(suite), solvers, options);
}

}  // namespace ssa::gen
