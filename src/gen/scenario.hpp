#pragma once
/// \file scenario.hpp
/// Reproducible workload generators for tests, examples and benches:
/// placements, valuation populations, ready-made auction instances per
/// interference model, and the hardness construction of Theorem 18.

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "api/batch.hpp"
#include "core/asymmetric.hpp"
#include "core/instance.hpp"
#include "models/links.hpp"
#include "models/physical.hpp"
#include "models/transmitter.hpp"
#include "support/random.hpp"

namespace ssa::gen {

/// Uniformly random transmitters in [0, area]^2 with radii in
/// [radius_min, radius_max].
[[nodiscard]] std::vector<Transmitter> random_transmitters(
    std::size_t n, double area, double radius_min, double radius_max, Rng& rng);

/// Clustered placement: \p clusters hot spots, transmitters scattered
/// normally (stddev \p spread) around a random hot spot.
[[nodiscard]] std::vector<Transmitter> clustered_transmitters(
    std::size_t n, double area, double radius_min, double radius_max,
    std::size_t clusters, double spread, Rng& rng);

/// Random planar links: senders uniform in [0, area]^2, receivers at a
/// uniform angle and length in [length_min, length_max].
[[nodiscard]] std::vector<PlanarLink> random_links(std::size_t n, double area,
                                                   double length_min,
                                                   double length_max, Rng& rng);

/// Which valuation classes a population draws from.
enum class ValuationMix {
  kAdditive,      ///< additive only
  kUnitDemand,    ///< unit demand only
  kSingleMinded,  ///< single minded only
  kMixed          ///< uniform mix of additive/unit/single-minded/budget/coverage
};

/// Random population of \p n valuations over \p k channels with integral
/// per-channel base values in [1, max_value].
[[nodiscard]] std::vector<ValuationPtr> random_valuations(std::size_t n, int k,
                                                          ValuationMix mix,
                                                          int max_value,
                                                          Rng& rng);

/// Disk-graph auction: random transmitters + random valuations.
[[nodiscard]] AuctionInstance make_disk_auction(std::size_t n, int k,
                                                ValuationMix mix,
                                                std::uint64_t seed);

/// Protocol-model auction over random links.
[[nodiscard]] AuctionInstance make_protocol_auction(std::size_t n, int k,
                                                    double delta,
                                                    ValuationMix mix,
                                                    std::uint64_t seed);

/// Physical-model auction (fixed powers, Proposition 15 weights).
[[nodiscard]] AuctionInstance make_physical_auction(std::size_t n, int k,
                                                    PowerScheme scheme,
                                                    ValuationMix mix,
                                                    std::uint64_t seed,
                                                    PhysicalParams params = {});

/// Clique conflict graph with unit single-channel bids: the edge-LP
/// integrality-gap instance of Section 2.1 (gap n/2). The seed shuffles
/// the elimination ordering (fingerprint-distinct instances; on a clique
/// every ordering has rho = 1 and identical LP/greedy values) -- the unit
/// bids the gap proof needs are never perturbed.
[[nodiscard]] AuctionInstance make_clique_auction(std::size_t n,
                                                  std::uint64_t seed);

/// Random unweighted conflict graph with edge probability \p p (an
/// adversarial, non-geometric stress case).
[[nodiscard]] AuctionInstance make_random_graph_auction(std::size_t n, int k,
                                                        double p,
                                                        ValuationMix mix,
                                                        std::uint64_t seed);

/// Theorem 18 construction: a random graph with maximum degree <= d is
/// split into k channel graphs, each receiving at most d/k backward edges
/// per vertex; every bidder is single minded on the full channel set with
/// value 1, so allocations of welfare b correspond to independent sets of
/// size b in the original graph.
[[nodiscard]] AsymmetricInstance make_hardness_instance(std::size_t n, int d,
                                                        int k,
                                                        std::uint64_t seed);

/// Random asymmetric instance: k independent random graphs + mixed bids.
[[nodiscard]] AsymmetricInstance make_random_asymmetric(std::size_t n, int k,
                                                        double p,
                                                        ValuationMix mix,
                                                        std::uint64_t seed);

// -- batch hooks ------------------------------------------------------------
// solve_batch jobs hold non-owning AnyInstance views, so suites of
// generated instances need an owner; NamedInstance is it. These hooks let
// the generators above (including make_random_asymmetric /
// make_hardness_instance) feed mixed-type batch runs directly.

/// One owned labelled instance, symmetric or asymmetric.
struct NamedInstance {
  std::string label;
  std::variant<AuctionInstance, AsymmetricInstance> instance;

  /// Non-owning view for BatchJob/LabelledInstance; valid while *this lives.
  [[nodiscard]] AnyInstance view() const;
};

/// Reproducible mixed suite for comparison runs: a disk and a random-graph
/// symmetric auction plus a make_random_asymmetric and a
/// make_hardness_instance output, all over \p k channels.
[[nodiscard]] std::vector<NamedInstance> mixed_scenario_suite(
    std::size_t n, int k, std::uint64_t seed);

/// Non-owning labelled views over \p suite (for cross_jobs).
[[nodiscard]] std::vector<LabelledInstance> labelled_views(
    std::span<const NamedInstance> suite);

/// Cross product of \p suite and \p solvers as ready-to-run batch jobs.
[[nodiscard]] std::vector<BatchJob> scenario_jobs(
    std::span<const NamedInstance> suite, std::span<const std::string> solvers,
    const SolveOptions& options = {});

}  // namespace ssa::gen
