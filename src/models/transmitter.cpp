#include "models/transmitter.hpp"

#include <cmath>
#include <stdexcept>

namespace ssa {

namespace {

/// Adjacency of the plain disk graph as an edge list.
std::vector<std::vector<int>> disk_adjacency(
    std::span<const Transmitter> transmitters) {
  const std::size_t n = transmitters.size();
  std::vector<std::vector<int>> adjacency(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      const double reach = transmitters[u].radius + transmitters[v].radius;
      if (distance_sq(transmitters[u].position, transmitters[v].position) <
          reach * reach) {
        adjacency[u].push_back(static_cast<int>(v));
        adjacency[v].push_back(static_cast<int>(u));
      }
    }
  }
  return adjacency;
}

Ordering decreasing_radius_ordering(std::span<const Transmitter> transmitters) {
  std::vector<double> radii(transmitters.size());
  for (std::size_t i = 0; i < transmitters.size(); ++i) {
    radii[i] = transmitters[i].radius;
  }
  return ordering_by_key(radii, /*descending=*/true);
}

}  // namespace

ModelGraph disk_graph(std::span<const Transmitter> transmitters) {
  const std::size_t n = transmitters.size();
  ConflictGraph graph(n);
  const auto adjacency = disk_adjacency(transmitters);
  for (std::size_t u = 0; u < n; ++u) {
    for (int v : adjacency[u]) {
      if (static_cast<std::size_t>(v) > u) graph.add_edge(u, static_cast<std::size_t>(v));
    }
  }
  return ModelGraph{std::move(graph), decreasing_radius_ordering(transmitters),
                    5.0};
}

ModelGraph distance2_disk_graph(std::span<const Transmitter> transmitters) {
  const std::size_t n = transmitters.size();
  ConflictGraph graph(n);
  const auto adjacency = disk_adjacency(transmitters);
  for (std::size_t u = 0; u < n; ++u) {
    // Direct neighbors conflict.
    for (int v : adjacency[u]) {
      if (static_cast<std::size_t>(v) > u) graph.add_edge(u, static_cast<std::size_t>(v));
    }
    // Two-hop neighbors conflict.
    for (int mid : adjacency[u]) {
      for (int v : adjacency[static_cast<std::size_t>(mid)]) {
        if (static_cast<std::size_t>(v) > u) {
          graph.add_edge(u, static_cast<std::size_t>(v));
        }
      }
    }
  }
  // Proposition 11 proves O(1) without an explicit constant; Lemma 10 with
  // a = 2 plus the 5 direct disks and 5 intermediate disks gives the
  // conservative explicit bound 5 + (2+2)^2 + 5 = 26 used here.
  return ModelGraph{std::move(graph), decreasing_radius_ordering(transmitters),
                    26.0};
}

ModelGraph distance2_civilized_graph(std::span<const Point> nodes, double r,
                                     double s) {
  if (r <= 0.0 || s <= 0.0) {
    throw std::invalid_argument("distance2_civilized_graph: r, s must be > 0");
  }
  const std::size_t n = nodes.size();
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (distance(nodes[u], nodes[v]) < s - 1e-12) {
        throw std::invalid_argument(
            "distance2_civilized_graph: points closer than s");
      }
    }
  }
  std::vector<std::vector<int>> adjacency(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (distance(nodes[u], nodes[v]) <= r) {
        adjacency[u].push_back(static_cast<int>(v));
        adjacency[v].push_back(static_cast<int>(u));
      }
    }
  }
  ConflictGraph graph(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (int v : adjacency[u]) {
      if (static_cast<std::size_t>(v) > u) graph.add_edge(u, static_cast<std::size_t>(v));
    }
    for (int mid : adjacency[u]) {
      for (int v : adjacency[static_cast<std::size_t>(mid)]) {
        if (static_cast<std::size_t>(v) > u) graph.add_edge(u, static_cast<std::size_t>(v));
      }
    }
  }
  // Proposition 12: any ordering attains rho <= (4r/s + 2)^2.
  const double bound = (4.0 * r / s + 2.0) * (4.0 * r / s + 2.0);
  return ModelGraph{std::move(graph), identity_ordering(n), bound};
}

}  // namespace ssa
