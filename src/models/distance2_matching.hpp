#pragma once
/// \file distance2_matching.hpp
/// Distance-2 matching (strong edge coloring) in disk graphs, Section 4.2 /
/// Corollary 14: the "users" are edges of a disk graph; two edges conflict
/// when they share an endpoint or are joined by a single edge. Ordering by
/// increasing r(e) = r(u) + r(v) (Barrett et al.); rho = O(1).

#include <span>
#include <vector>

#include "models/model_graph.hpp"
#include "models/transmitter.hpp"

namespace ssa {

/// An edge of the underlying disk graph.
struct DiskEdge {
  int u = 0;
  int v = 0;
};

/// Edges of the disk graph over \p transmitters (u < v pairs).
[[nodiscard]] std::vector<DiskEdge> disk_graph_edges(
    std::span<const Transmitter> transmitters);

/// Conflict graph of the distance-2 matching problem over the given edges.
/// The constant in Corollary 14 is not made explicit in the paper, so
/// theoretical_rho is 0 (callers measure rho(pi) with the verifier).
[[nodiscard]] ModelGraph distance2_matching_graph(
    std::span<const Transmitter> transmitters, std::span<const DiskEdge> edges);

}  // namespace ssa
