#include "models/links.hpp"

namespace ssa {

double link_length(const Link& link, const Metric& metric) {
  return metric.distance(static_cast<std::size_t>(link.sender),
                         static_cast<std::size_t>(link.receiver));
}

std::pair<std::vector<Link>, EuclideanMetric> to_metric_links(
    std::span<const PlanarLink> links) {
  std::vector<Point> sites;
  sites.reserve(2 * links.size());
  std::vector<Link> indexed;
  indexed.reserve(links.size());
  for (const auto& link : links) {
    const int s = static_cast<int>(sites.size());
    sites.push_back(link.sender);
    sites.push_back(link.receiver);
    indexed.push_back(Link{s, s + 1});
  }
  return {std::move(indexed), EuclideanMetric(std::move(sites))};
}

}  // namespace ssa
