#include "models/power_control.hpp"

#include <cmath>
#include <stdexcept>

namespace ssa {

Matrix normalized_gain_matrix(std::span<const Link> links, const Metric& metric,
                              const PhysicalParams& params,
                              std::span<const int> set) {
  const std::size_t m = set.size();
  Matrix f(m, m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t li = static_cast<std::size_t>(set[i]);
    const double len_i = link_length(links[li], metric);
    const double len_i_alpha = std::pow(len_i, params.alpha);
    for (std::size_t j = 0; j < m; ++j) {
      if (i == j) continue;
      const std::size_t lj = static_cast<std::size_t>(set[j]);
      const double cross = metric.distance(
          static_cast<std::size_t>(links[lj].sender),
          static_cast<std::size_t>(links[li].receiver));
      if (cross <= 0.0) {
        f(i, j) = 1e18;  // co-located sender/receiver: hopeless pair
      } else {
        f(i, j) = len_i_alpha / std::pow(cross, params.alpha);
      }
    }
  }
  return f;
}

PowerControlResult solve_power_control(std::span<const Link> links,
                                       const Metric& metric,
                                       const PhysicalParams& params,
                                       std::span<const int> set) {
  PowerControlResult result;
  const std::size_t m = set.size();
  if (m == 0) {
    result.feasible = true;
    return result;
  }

  Matrix f = normalized_gain_matrix(links, metric, params, set);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) f(i, j) *= params.beta;
  }
  result.spectral_radius = spectral_radius(f);
  if (result.spectral_radius >= 1.0 - 1e-9) return result;

  // Solve (I - beta F) p = beta * u with u_i = max(noise, tiny) * d_i^alpha;
  // the tiny floor stands in for "any positive target" in the zero-noise
  // case, where feasibility is scale invariant.
  Matrix system(m, m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      system(i, j) = (i == j ? 1.0 : 0.0) - f(i, j);
    }
  }
  std::vector<double> target(m, 0.0);
  const double noise_floor = params.noise > 0.0 ? params.noise : 1.0;
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t li = static_cast<std::size_t>(set[i]);
    target[i] = params.beta * noise_floor *
                std::pow(link_length(links[li], metric), params.alpha);
  }
  std::vector<double> powers;
  if (!solve_linear_system(system, target, powers)) return result;
  for (double p : powers) {
    if (!(p > 0.0) || !std::isfinite(p)) return result;
  }
  result.feasible = true;
  result.powers = std::move(powers);
  return result;
}

}  // namespace ssa
