#pragma once
/// \file transmitter.hpp
/// Transmitter scenarios (Section 4.1): disk graphs (Proposition 9),
/// distance-2 coloring on disk graphs (Proposition 11) and on
/// (r,s)-civilized graphs (Proposition 12).

#include <span>
#include <vector>

#include "geometry/point.hpp"
#include "models/model_graph.hpp"

namespace ssa {

/// A transmitter covering a disk around its position.
struct Transmitter {
  Point position;
  double radius = 1.0;
};

/// Disk graph: transmitters conflict when their disks intersect
/// (d(p_u, p_v) < r_u + r_v). Ordering: decreasing radius; rho <= 5
/// (Proposition 9).
[[nodiscard]] ModelGraph disk_graph(std::span<const Transmitter> transmitters);

/// Distance-2 coloring on the disk graph: transmitters conflict when they
/// are adjacent in the disk graph or share a disk-graph neighbor. Ordering:
/// decreasing radius; rho = O(1) (Proposition 11).
[[nodiscard]] ModelGraph distance2_disk_graph(
    std::span<const Transmitter> transmitters);

/// Distance-2 coloring on an (r,s)-civilized graph: nodes are at pairwise
/// distance >= s, edges only between nodes at distance <= r. Conflicts are
/// pairs within two hops. Any ordering works; rho <= (4r/s + 2)^2
/// (Proposition 12). Throws if the point set violates the s-separation.
[[nodiscard]] ModelGraph distance2_civilized_graph(std::span<const Point> nodes,
                                                   double r, double s);

}  // namespace ssa
