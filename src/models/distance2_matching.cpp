#include "models/distance2_matching.hpp"

#include <stdexcept>

namespace ssa {

std::vector<DiskEdge> disk_graph_edges(
    std::span<const Transmitter> transmitters) {
  std::vector<DiskEdge> edges;
  const std::size_t n = transmitters.size();
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      const double reach = transmitters[u].radius + transmitters[v].radius;
      if (distance_sq(transmitters[u].position, transmitters[v].position) <
          reach * reach) {
        edges.push_back(DiskEdge{static_cast<int>(u), static_cast<int>(v)});
      }
    }
  }
  return edges;
}

ModelGraph distance2_matching_graph(std::span<const Transmitter> transmitters,
                                    std::span<const DiskEdge> edges) {
  const std::size_t n_nodes = transmitters.size();
  const std::size_t m = edges.size();
  // Node adjacency of the disk graph for the "joined by one edge" test.
  std::vector<std::vector<bool>> adjacent(n_nodes,
                                          std::vector<bool>(n_nodes, false));
  for (const auto& e : edges) {
    if (e.u < 0 || e.v < 0 || static_cast<std::size_t>(e.u) >= n_nodes ||
        static_cast<std::size_t>(e.v) >= n_nodes) {
      throw std::out_of_range("distance2_matching_graph: bad edge endpoint");
    }
    adjacent[static_cast<std::size_t>(e.u)][static_cast<std::size_t>(e.v)] = true;
    adjacent[static_cast<std::size_t>(e.v)][static_cast<std::size_t>(e.u)] = true;
  }

  ConflictGraph graph(m);
  for (std::size_t i = 0; i < m; ++i) {
    const int ei[2] = {edges[i].u, edges[i].v};
    for (std::size_t j = i + 1; j < m; ++j) {
      const int ej[2] = {edges[j].u, edges[j].v};
      bool conflict = false;
      for (int a : ei) {
        for (int b : ej) {
          if (a == b || adjacent[static_cast<std::size_t>(a)]
                                [static_cast<std::size_t>(b)]) {
            conflict = true;
          }
        }
      }
      if (conflict) graph.add_edge(i, j);
    }
  }

  // Ordering by increasing r(e) = r(u) + r(v) (Barrett et al. greedy key).
  std::vector<double> keys(m);
  for (std::size_t i = 0; i < m; ++i) {
    keys[i] = transmitters[static_cast<std::size_t>(edges[i].u)].radius +
              transmitters[static_cast<std::size_t>(edges[i].v)].radius;
  }
  return ModelGraph{std::move(graph),
                    ordering_by_key(keys, /*descending=*/false), 0.0};
}

}  // namespace ssa
