#include "models/protocol.hpp"

#include <cmath>
#include <stdexcept>

namespace ssa {

namespace {
Ordering increasing_length_ordering(std::span<const Link> links,
                                    const Metric& metric) {
  std::vector<double> lengths(links.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    lengths[i] = link_length(links[i], metric);
  }
  return ordering_by_key(lengths, /*descending=*/false);
}
}  // namespace

double protocol_rho_bound(double delta) {
  if (delta <= 0.0) throw std::invalid_argument("protocol_rho_bound: delta <= 0");
  const double angle = std::asin(delta / (2.0 * (delta + 1.0)));
  return std::ceil(3.14159265358979323846 / angle) - 1.0;
}

ModelGraph protocol_conflict_graph(std::span<const Link> links,
                                   const Metric& metric, double delta) {
  if (delta <= 0.0) {
    throw std::invalid_argument("protocol_conflict_graph: delta <= 0");
  }
  const std::size_t n = links.size();
  ConflictGraph graph(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double len_i = link_length(links[i], metric);
    for (std::size_t j = i + 1; j < n; ++j) {
      const double len_j = link_length(links[j], metric);
      // j's sender too close to i's receiver, or i's sender to j's receiver.
      const double sj_ri = metric.distance(
          static_cast<std::size_t>(links[j].sender),
          static_cast<std::size_t>(links[i].receiver));
      const double si_rj = metric.distance(
          static_cast<std::size_t>(links[i].sender),
          static_cast<std::size_t>(links[j].receiver));
      if (sj_ri < (1.0 + delta) * len_i || si_rj < (1.0 + delta) * len_j) {
        graph.add_edge(i, j);
      }
    }
  }
  return ModelGraph{std::move(graph), increasing_length_ordering(links, metric),
                    protocol_rho_bound(delta)};
}

ModelGraph ieee80211_conflict_graph(std::span<const Link> links,
                                    const Metric& metric, double delta) {
  if (delta <= 0.0) {
    throw std::invalid_argument("ieee80211_conflict_graph: delta <= 0");
  }
  const std::size_t n = links.size();
  ConflictGraph graph(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double len_i = link_length(links[i], metric);
    const int ei[2] = {links[i].sender, links[i].receiver};
    for (std::size_t j = i + 1; j < n; ++j) {
      const double len_j = link_length(links[j], metric);
      const int ej[2] = {links[j].sender, links[j].receiver};
      bool conflict = false;
      for (int a : ei) {
        for (int b : ej) {
          const double d = metric.distance(static_cast<std::size_t>(a),
                                           static_cast<std::size_t>(b));
          if (d < (1.0 + delta) * len_i || d < (1.0 + delta) * len_j) {
            conflict = true;
          }
        }
      }
      if (conflict) graph.add_edge(i, j);
    }
  }
  return ModelGraph{std::move(graph), increasing_length_ordering(links, metric),
                    23.0};
}

}  // namespace ssa
