#pragma once
/// \file physical.hpp
/// The physical (SINR) interference model, Section 4.3.
///
/// Receiver r_i decodes sender s_i iff
///     p_i / d(s_i,r_i)^alpha >= beta * (sum_{j != i} p_j / d(s_j,r_i)^alpha + noise).
/// With fixed powers the model is represented exactly as an edge-weighted
/// conflict graph (Proposition 15): SINR-feasible sets are independent, and
/// independent sets are SINR-feasible at the slightly relaxed threshold
/// beta / (1 + eps) with the paper's eps.

#include <optional>
#include <span>
#include <vector>

#include "geometry/metric.hpp"
#include "models/links.hpp"
#include "models/model_graph.hpp"

namespace ssa {

/// SINR model parameters.
struct PhysicalParams {
  double alpha = 3.0;  ///< path-loss exponent
  double beta = 1.5;   ///< SINR threshold
  double noise = 0.0;  ///< ambient noise nu
};

/// Monotone power schemes from the paper (all satisfy the monotonicity
/// constraints of Section 4.3 required by Proposition 15).
enum class PowerScheme {
  kUniform,    ///< p(l) = 1
  kLinear,     ///< p(l) = d(l)^alpha
  kSquareRoot  ///< p(l) = d(l)^(alpha/2), the "mean"/sqrt scheme
};

/// Power per link under a scheme.
[[nodiscard]] std::vector<double> assign_powers(std::span<const Link> links,
                                                const Metric& metric,
                                                PowerScheme scheme,
                                                const PhysicalParams& params);

/// SINR of link \p i against the concurrent set \p set (i itself excluded).
[[nodiscard]] double sinr(std::span<const Link> links, const Metric& metric,
                          std::span<const double> powers,
                          const PhysicalParams& params, std::span<const int> set,
                          int i);

/// True when every link of \p set meets the SINR threshold
/// beta_override (or params.beta when beta_override <= 0).
[[nodiscard]] bool sinr_feasible(std::span<const Link> links,
                                 const Metric& metric,
                                 std::span<const double> powers,
                                 const PhysicalParams& params,
                                 std::span<const int> set,
                                 double beta_override = 0.0);

/// The eps of Proposition 15 for the given instance.
[[nodiscard]] double proposition15_epsilon(std::span<const Link> links,
                                           const Metric& metric,
                                           std::span<const double> powers,
                                           const PhysicalParams& params);

/// Edge-weighted conflict graph of Proposition 15 for fixed powers.
/// Links that cannot meet the SINR threshold even alone receive incoming
/// weight 1 from every other vertex (they can never be allocated).
/// Ordering: decreasing link length; rho = O(log n) so theoretical_rho = 0.
[[nodiscard]] ModelGraph physical_conflict_graph(std::span<const Link> links,
                                                 const Metric& metric,
                                                 std::span<const double> powers,
                                                 const PhysicalParams& params);

/// Edge-weighted conflict graph used when transmission powers are subject
/// to optimization (Theorem 17), with tau = 1 / (2 * 3^alpha * (4 beta + 2)).
/// Ordering: decreasing link length.
[[nodiscard]] ModelGraph power_control_conflict_graph(
    std::span<const Link> links, const Metric& metric,
    const PhysicalParams& params);

}  // namespace ssa
