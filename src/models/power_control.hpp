#pragma once
/// \file power_control.hpp
/// Power-control substrate for the physical model (Theorem 17 pipeline).
///
/// Substitution note (see DESIGN.md): the paper plugs its rounding output
/// into Kesselheim's SODA'11 power-control procedure. We implement the
/// classical exact characterization instead: a set of links admits feasible
/// powers iff the spectral radius of the normalized gain matrix beta * F is
/// below 1; in that case the component-wise minimal power vector is the
/// Foschini-Miljanic fixed point p = (I - beta F)^(-1) * beta * u. This
/// accepts every set the paper's procedure accepts.

#include <optional>
#include <span>
#include <vector>

#include "geometry/metric.hpp"
#include "models/links.hpp"
#include "models/physical.hpp"
#include "support/matrix.hpp"

namespace ssa {

/// Normalized cross-gain matrix F of a link set:
/// F[i][j] = d(l_i)^alpha / d(s_j, r_i)^alpha for i != j, 0 on the diagonal.
/// Rows/columns follow the order of \p set.
[[nodiscard]] Matrix normalized_gain_matrix(std::span<const Link> links,
                                            const Metric& metric,
                                            const PhysicalParams& params,
                                            std::span<const int> set);

/// Result of a power-control attempt.
struct PowerControlResult {
  bool feasible = false;
  double spectral_radius = 0.0;      ///< of beta * F
  std::vector<double> powers;        ///< per element of the set (if feasible)
};

/// Finds the minimal feasible power vector for \p set, or reports
/// infeasibility. With zero noise any positive scaling of the Perron vector
/// works; we return the (normalized) Neumann-series fixed point against a
/// unit target in that case.
[[nodiscard]] PowerControlResult solve_power_control(
    std::span<const Link> links, const Metric& metric,
    const PhysicalParams& params, std::span<const int> set);

}  // namespace ssa
