#pragma once
/// \file model_graph.hpp
/// Common return type of every interference model: the conflict graph, the
/// ordering pi the model's inductive-independence bound is proved for, and
/// that theoretical bound (0 when the paper only gives an asymptotic bound,
/// in which case callers measure rho(pi) with the verifier).

#include "graph/conflict_graph.hpp"
#include "graph/ordering.hpp"

namespace ssa {

/// A conflict graph instance produced by an interference model.
struct ModelGraph {
  ConflictGraph graph;
  Ordering order;              ///< the ordering from the paper's proof
  double theoretical_rho = 0;  ///< explicit bound from the paper; 0 = asymptotic only
};

}  // namespace ssa
