#include "models/physical.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ssa {

namespace {
double received_power(double power, double dist, double alpha) {
  if (dist <= 0.0) return std::numeric_limits<double>::infinity();
  return power / std::pow(dist, alpha);
}
}  // namespace

std::vector<double> assign_powers(std::span<const Link> links,
                                  const Metric& metric, PowerScheme scheme,
                                  const PhysicalParams& params) {
  std::vector<double> powers(links.size(), 1.0);
  for (std::size_t i = 0; i < links.size(); ++i) {
    const double d = link_length(links[i], metric);
    switch (scheme) {
      case PowerScheme::kUniform: powers[i] = 1.0; break;
      case PowerScheme::kLinear: powers[i] = std::pow(d, params.alpha); break;
      case PowerScheme::kSquareRoot:
        powers[i] = std::pow(d, params.alpha / 2.0);
        break;
    }
  }
  return powers;
}

double sinr(std::span<const Link> links, const Metric& metric,
            std::span<const double> powers, const PhysicalParams& params,
            std::span<const int> set, int i) {
  const std::size_t si = static_cast<std::size_t>(i);
  const double signal = received_power(
      powers[si], link_length(links[si], metric), params.alpha);
  double interference = params.noise;
  for (int j : set) {
    if (j == i) continue;
    const std::size_t sj = static_cast<std::size_t>(j);
    const double d = metric.distance(static_cast<std::size_t>(links[sj].sender),
                                     static_cast<std::size_t>(links[si].receiver));
    interference += received_power(powers[sj], d, params.alpha);
  }
  if (interference == 0.0) return std::numeric_limits<double>::infinity();
  return signal / interference;
}

bool sinr_feasible(std::span<const Link> links, const Metric& metric,
                   std::span<const double> powers, const PhysicalParams& params,
                   std::span<const int> set, double beta_override) {
  const double beta = beta_override > 0.0 ? beta_override : params.beta;
  for (int i : set) {
    if (sinr(links, metric, powers, params, set, i) < beta) return false;
  }
  return true;
}

double proposition15_epsilon(std::span<const Link> links, const Metric& metric,
                             std::span<const double> powers,
                             const PhysicalParams& params) {
  (void)powers;
  // eps = (beta/2) * min over l=(s,r), l'=(s',r') of
  //       (p_l / d(s',r)^alpha) / (p_l / d(s,r)^alpha)
  //     = (beta/2) * min (d(s,r) / d(s',r))^alpha.
  double min_ratio = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < links.size(); ++i) {
    const double len_i = link_length(links[i], metric);
    for (std::size_t j = 0; j < links.size(); ++j) {
      if (i == j) continue;
      const double d = metric.distance(static_cast<std::size_t>(links[j].sender),
                                       static_cast<std::size_t>(links[i].receiver));
      if (d <= 0.0) continue;  // infinite interference handled as weight 1
      min_ratio = std::min(min_ratio, std::pow(len_i / d, params.alpha));
    }
  }
  if (!std::isfinite(min_ratio)) min_ratio = 1.0;  // single-link instances
  return params.beta / 2.0 * min_ratio;
}

ModelGraph physical_conflict_graph(std::span<const Link> links,
                                   const Metric& metric,
                                   std::span<const double> powers,
                                   const PhysicalParams& params) {
  const std::size_t n = links.size();
  if (powers.size() != n) {
    throw std::invalid_argument("physical_conflict_graph: power size mismatch");
  }
  const double eps = proposition15_epsilon(links, metric, powers, params);
  const double scaled_beta = params.beta / (1.0 + eps);

  ConflictGraph graph(n);
  std::vector<double> lengths(n);
  for (std::size_t i = 0; i < n; ++i) lengths[i] = link_length(links[i], metric);

  for (std::size_t i = 0; i < n; ++i) {
    // Decodable margin of link i alone: signal minus scaled noise.
    const double signal = received_power(powers[i], lengths[i], params.alpha);
    const double margin = signal - scaled_beta * params.noise;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      double weight = 1.0;
      if (margin > 0.0 && std::isfinite(signal)) {
        const double d = metric.distance(
            static_cast<std::size_t>(links[j].sender),
            static_cast<std::size_t>(links[i].receiver));
        const double interference = received_power(powers[j], d, params.alpha);
        weight = std::min(1.0, scaled_beta * interference / margin);
      }
      // w(l_j -> l_i): what j imposes on i.
      if (weight > 0.0) graph.set_weight(j, i, weight);
    }
  }
  return ModelGraph{std::move(graph),
                    ordering_by_key(lengths, /*descending=*/true), 0.0};
}

ModelGraph power_control_conflict_graph(std::span<const Link> links,
                                        const Metric& metric,
                                        const PhysicalParams& params) {
  const std::size_t n = links.size();
  std::vector<double> lengths(n);
  for (std::size_t i = 0; i < n; ++i) lengths[i] = link_length(links[i], metric);
  const Ordering order = ordering_by_key(lengths, /*descending=*/true);
  const std::vector<int> position = ordering_positions(order);

  const double tau =
      1.0 / (2.0 * std::pow(3.0, params.alpha) * (4.0 * params.beta + 2.0));

  ConflictGraph graph(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b || position[a] >= position[b]) continue;
      // a = earlier (longer) link l = (s, r); b = later link l' = (s', r').
      const double len = lengths[a];
      const double d_s_rprime = metric.distance(
          static_cast<std::size_t>(links[a].sender),
          static_cast<std::size_t>(links[b].receiver));
      const double d_sprime_r = metric.distance(
          static_cast<std::size_t>(links[b].sender),
          static_cast<std::size_t>(links[a].receiver));
      auto term = [&](double d) {
        if (d <= 0.0) return 1.0;
        return std::min(1.0, std::pow(len / d, params.alpha));
      };
      const double weight = (term(d_s_rprime) + term(d_sprime_r)) / tau;
      if (weight > 0.0) graph.set_weight(a, b, weight);
    }
  }
  return ModelGraph{std::move(graph), order, 0.0};
}

}  // namespace ssa
