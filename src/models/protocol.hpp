#pragma once
/// \file protocol.hpp
/// Binary link-interference models: the protocol model of Gupta/Kumar
/// (Proposition 13) and the bidirectional IEEE 802.11 model of Alicherry
/// et al. (rho <= 23, Wan [31]).

#include <span>
#include <vector>

#include "geometry/metric.hpp"
#include "models/links.hpp"
#include "models/model_graph.hpp"

namespace ssa {

/// Protocol model: links i and j conflict iff assigning them the same
/// channel would violate d(s_j, r_i) >= (1 + delta) * d(s_i, r_i) or the
/// symmetric condition. Ordering: increasing link length; Proposition 13
/// gives rho <= ceil(pi / arcsin(delta / (2(delta+1)))) - 1.
[[nodiscard]] ModelGraph protocol_conflict_graph(std::span<const Link> links,
                                                 const Metric& metric,
                                                 double delta);

/// The rho bound of Proposition 13 as a function of delta.
[[nodiscard]] double protocol_rho_bound(double delta);

/// IEEE 802.11 bidirectional model: both endpoints of a link act as sender
/// and receiver (RTS/CTS), so links i and j conflict iff any endpoint of j
/// is within (1 + delta) * d(ℓ_i) of any endpoint of i, or vice versa.
/// Ordering: increasing link length; rho <= 23 [31].
[[nodiscard]] ModelGraph ieee80211_conflict_graph(std::span<const Link> links,
                                                  const Metric& metric,
                                                  double delta);

}  // namespace ssa
