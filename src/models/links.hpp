#pragma once
/// \file links.hpp
/// Link-based scenarios: a "user" is a sender/receiver pair of sites in a
/// metric space (Section 4.2/4.3). All link models (protocol, 802.11,
/// physical) consume links plus a Metric, so general metrics (Theorem 17)
/// and the Euclidean plane share one code path.

#include <span>
#include <utility>
#include <vector>

#include "geometry/metric.hpp"
#include "geometry/point.hpp"

namespace ssa {

/// Sender/receiver pair; indices refer to sites of a Metric.
struct Link {
  int sender = 0;
  int receiver = 0;
};

/// d(s_l, r_l) under the metric.
[[nodiscard]] double link_length(const Link& link, const Metric& metric);

/// Planar link given by explicit endpoints; converted to Link + metric by
/// to_metric_links.
struct PlanarLink {
  Point sender;
  Point receiver;
};

/// Packs planar links into a EuclideanMetric (site 2i = sender of link i,
/// site 2i+1 = its receiver) plus index-based links.
[[nodiscard]] std::pair<std::vector<Link>, EuclideanMetric> to_metric_links(
    std::span<const PlanarLink> links);

}  // namespace ssa
