#pragma once
/// \file connection_server.hpp
/// The accept-loop/handler-thread skeleton shared by every wire server
/// (ServiceServer, FrontDoor): one listener, one accept thread, one
/// handler thread per live connection, with the teardown subtleties
/// solved once --
///  - finished handlers are REAPED on every accept (a long-lived server
///    over many short-lived connections must not accumulate one dead
///    thread per past connection until shutdown);
///  - open connections are tracked so stop() can half-close them and
///    unblock handlers parked in recv_frame;
///  - the stop sequence is shutdown-listener -> join accept thread ->
///    half-close connections -> join handlers -> close listener, which
///    never closes an fd another thread is still using.
/// The protocol logic stays in the owner's handler callback; a handler
/// that returns ends its connection.

#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/socket.hpp"

namespace ssa::net {

/// Runs \p handler on a dedicated thread per accepted connection.
/// Thread-safe; the destructor performs a full stop().
class ConnectionServer {
 public:
  using Handler = std::function<void(TcpConnection&)>;

  /// Takes ownership of \p listener and starts accepting immediately.
  ConnectionServer(TcpListener listener, Handler handler);
  ~ConnectionServer();

  ConnectionServer(const ConnectionServer&) = delete;
  ConnectionServer& operator=(const ConnectionServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept {
    return listener_.port();
  }

  /// Stops accepting new connections (live handlers keep running). Safe
  /// from any thread INCLUDING a handler -- the piece of stop() a
  /// wire-shutdown message may trigger from inside a connection.
  void shutdown_listener() noexcept;

  /// Full stop: shutdown_listener, join the accept thread, half-close
  /// every open connection (unblocking handlers parked in recv), join
  /// every handler, close the listener. Idempotent; must NOT be called
  /// from a handler thread (it would join itself).
  void stop();

 private:
  struct HandlerThread {
    std::thread thread;
    /// Set by the handler wrapper as its last shared-state action, so
    /// the accept loop can join-and-erase finished entries cheaply.
    std::shared_ptr<bool> done = std::make_shared<bool>(false);
  };

  void accept_loop();
  /// Joins and erases finished handler threads; requires mutex_ held.
  void reap_finished_locked();

  Handler handler_;
  TcpListener listener_;

  std::mutex mutex_;
  bool stopping_ = false;
  std::list<HandlerThread> handlers_;
  std::vector<TcpConnection*> open_connections_;

  std::thread accept_thread_;  ///< last member: joined before the rest dies
};

}  // namespace ssa::net
