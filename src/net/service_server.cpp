#include "net/service_server.hpp"

#include <algorithm>
#include <deque>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "wire/protocol.hpp"
#include "wire/telemetry_codec.hpp"

namespace ssa::net {

namespace {

using wire::ErrorKind;
using wire::MessageType;

std::string error_frame(std::uint64_t request_id, ErrorKind kind,
                        const std::string& message) {
  return wire::encode_frame(MessageType::kError, request_id,
                            wire::encode_error(kind, message));
}

}  // namespace

/// Fixed worker pool pulling decoded frames off the loop thread. The loop
/// must never block, and submit decoding (instance reconstruction) is the
/// expensive step of the backend path -- pumping it here keeps the loop
/// at wire speed and lets one connection's pipelined submits decode in
/// parallel. Frames may complete out of order across workers; responses
/// correlate by wire request id, which is the whole point of v3.
struct ServiceServer::Pump {
  struct Job {
    EventConnectionPtr connection;
    wire::Frame frame;
  };

  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Job> jobs;
  bool stopping = false;
  std::vector<std::thread> workers;

  void start(int threads, ServiceServer* owner) {
    workers.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      workers.emplace_back([owner, this] {
        for (;;) {
          Job job;
          {
            std::unique_lock<std::mutex> lock(mutex);
            cv.wait(lock, [this] { return stopping || !jobs.empty(); });
            if (jobs.empty()) return;  // stopping and drained
            job = std::move(jobs.front());
            jobs.pop_front();
          }
          owner->process(job.connection, job.frame);
        }
      });
    }
  }

  void post(Job job) {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      if (stopping) return;  // late frame during stop: the client is gone
      jobs.push_back(std::move(job));
    }
    cv.notify_one();
  }

  void stop() {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      stopping = true;
    }
    cv.notify_all();
    for (std::thread& worker : workers) {
      if (worker.joinable()) worker.join();
    }
  }
};

ServiceServer::ServiceServer(ServiceServerOptions options)
    : service_(std::move(options.service)), pump_(std::make_unique<Pump>()) {
  pump_->start(std::max(1, options.pump_threads), this);
  EventLoopOptions loop_options;
  loop_options.error_key = "service-server";
  loop_.emplace(TcpListener::bind_loopback(options.port),
                [this](const EventConnectionPtr& connection,
                       wire::Frame frame) {
                  handle_frame(connection, std::move(frame));
                },
                std::move(loop_options));
}

ServiceServer::~ServiceServer() { stop(); }

std::uint16_t ServiceServer::port() const noexcept { return loop_->port(); }

service::AuctionService& ServiceServer::service() noexcept { return service_; }

void ServiceServer::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  stopped_cv_.wait(lock, [this] { return stopping_; });
}

void ServiceServer::request_stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  // Completes everything queued/in flight and writes the snapshot when
  // configured -- the remote analogue of an in-process shutdown(). Every
  // parked blocking-get watcher fires during this drain, so their
  // responses are queued before the shutdown ack that follows.
  service_.shutdown();
  loop_->shutdown_listener();
  stopped_cv_.notify_all();
}

void ServiceServer::stop() {
  request_stop();
  pump_->stop();
  loop_->stop();
}

void ServiceServer::handle_frame(const EventConnectionPtr& connection,
                                 wire::Frame frame) {
  // Loop thread: hand off immediately.
  pump_->post(Pump::Job{connection, std::move(frame)});
}

void ServiceServer::process_submit(const EventConnectionPtr& connection,
                                   const wire::Frame& frame) {
  const std::optional<wire::SubmitRequest> request =
      wire::decode_submit(frame.payload);
  if (!request) {
    connection->send(error_frame(frame.request_id, ErrorKind::kInvalidArgument,
                                 "service-server: malformed submit payload"));
    return;
  }
  try {
    // The envelope's span context rides into the service through the
    // runtime-only SolveOptions field (never serialized, never a cache
    // key): backend spans parent to the caller's span -- the door's
    // forwarding span, or the client's root span on a direct connection.
    SolveOptions options = request->options;
    options.span_context = frame.context;
    const service::RequestId id =
        service_.submit(request->instance.view(), request->solver, options);
    wire::Writer writer;
    writer.u64(id);
    connection->send(wire::encode_frame(MessageType::kSubmitOk,
                                        frame.request_id, writer.buffer()));
  } catch (const std::invalid_argument& e) {
    connection->send(
        error_frame(frame.request_id, ErrorKind::kInvalidArgument, e.what()));
  } catch (const std::exception& e) {
    connection->send(
        error_frame(frame.request_id, ErrorKind::kRuntime, e.what()));
  }
}

void ServiceServer::process_get(const EventConnectionPtr& connection,
                                const wire::Frame& frame) {
  wire::Reader reader(frame.payload);
  const std::uint64_t id = reader.u64();
  const bool blocking = reader.boolean();
  if (reader.failed() || !reader.exhausted()) {
    connection->send(error_frame(frame.request_id, ErrorKind::kInvalidArgument,
                                 "service-server: malformed get payload"));
    return;
  }
  const auto answer = [this, connection, wire_id = frame.request_id, id] {
    try {
      const std::optional<SolveReport> report = service_.try_get(id);
      wire::Writer writer;
      writer.u8(report.has_value() ? 1 : 0);
      if (report) wire::write_report(writer, *report);
      connection->send(
          wire::encode_frame(MessageType::kReport, wire_id, writer.buffer()));
    } catch (const std::invalid_argument& e) {
      connection->send(error_frame(wire_id, ErrorKind::kInvalidArgument,
                                   e.what()));
    } catch (const std::exception& e) {
      connection->send(error_frame(wire_id, ErrorKind::kRuntime, e.what()));
    }
  };
  if (blocking) {
    // No parked thread: the watcher fires when the id completes (inline
    // when it already did) and the response travels through the
    // thread-safe connection handle. A concurrent claim between the
    // watcher firing and try_get surfaces as the same invalid_argument
    // the in-process racer would see.
    service_.watch(id, answer);
  } else {
    answer();
  }
}

void ServiceServer::process(const EventConnectionPtr& connection,
                            wire::Frame& frame) {
  switch (frame.type) {
    case MessageType::kSubmit:
      process_submit(connection, frame);
      break;
    case MessageType::kGet:
      process_get(connection, frame);
      break;
    case MessageType::kStats: {
      wire::Writer writer;
      writer.u32(static_cast<std::uint32_t>(service_.shards()));
      wire::write_stats(writer, service_.stats());
      connection->send(wire::encode_frame(MessageType::kStatsOk,
                                          frame.request_id, writer.buffer()));
      break;
    }
    case MessageType::kGetTelemetry: {
      wire::Writer writer;
      wire::write_telemetry(writer, service_.telemetry());
      connection->send(wire::encode_frame(MessageType::kTelemetryOk,
                                          frame.request_id, writer.buffer()));
      break;
    }
    case MessageType::kShutdown: {
      // Ack AFTER the service drained: when the client sees the reply,
      // every previously submitted request has completed and the
      // snapshot (when configured) is on disk.
      request_stop();
      connection->send(
          wire::encode_frame(MessageType::kShutdownOk, frame.request_id, {}));
      connection->close_after_flush();
      break;
    }
    default:
      connection->send(error_frame(frame.request_id, ErrorKind::kRuntime,
                                   "service-server: unexpected message type"));
      break;
  }
}

}  // namespace ssa::net
