#include "net/service_server.hpp"

#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

#include "wire/protocol.hpp"

namespace ssa::net {

namespace {

using wire::ErrorKind;
using wire::MessageType;

std::string error_frame(ErrorKind kind, const std::string& message) {
  return wire::encode_frame(MessageType::kError,
                            wire::encode_error(kind, message));
}

}  // namespace

ServiceServer::ServiceServer(ServiceServerOptions options)
    : service_(std::move(options.service)) {
  server_.emplace(TcpListener::bind_loopback(options.port),
                  [this](TcpConnection& connection) {
                    handle_connection(connection);
                  });
}

ServiceServer::~ServiceServer() { stop(); }

std::uint16_t ServiceServer::port() const noexcept { return server_->port(); }

service::AuctionService& ServiceServer::service() noexcept { return service_; }

void ServiceServer::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  stopped_cv_.wait(lock, [this] { return stopping_; });
}

void ServiceServer::request_stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  // Completes everything queued/in flight and writes the snapshot when
  // configured -- the remote analogue of an in-process shutdown(). Also
  // what lets stop() join handlers safely: a handler blocked in a
  // blocking get() is released by the drain.
  service_.shutdown();
  server_->shutdown_listener();
  stopped_cv_.notify_all();
}

void ServiceServer::stop() {
  request_stop();
  server_->stop();
}

void ServiceServer::handle_connection(TcpConnection& connection) {
  for (;;) {
    std::optional<std::string> body = connection.recv_frame();
    if (!body) return;  // client closed
    const std::optional<wire::Frame> frame = wire::decode_frame_body(*body);
    if (!frame) {
      // Wrong magic/version/type: answer once, then drop the stream --
      // after a framing error nothing later on it can be trusted.
      connection.send_frame(
          error_frame(ErrorKind::kRuntime, "service-server: malformed frame"));
      return;
    }
    switch (frame->type) {
      case MessageType::kSubmit: {
        const std::optional<wire::SubmitRequest> request =
            wire::decode_submit(frame->payload);
        if (!request) {
          connection.send_frame(
              error_frame(ErrorKind::kInvalidArgument,
                          "service-server: malformed submit payload"));
          break;
        }
        try {
          const service::RequestId id = service_.submit(
              request->instance.view(), request->solver, request->options);
          wire::Writer writer;
          writer.u64(id);
          connection.send_frame(
              wire::encode_frame(MessageType::kSubmitOk, writer.buffer()));
        } catch (const std::invalid_argument& e) {
          connection.send_frame(
              error_frame(ErrorKind::kInvalidArgument, e.what()));
        } catch (const std::exception& e) {
          connection.send_frame(error_frame(ErrorKind::kRuntime, e.what()));
        }
        break;
      }
      case MessageType::kGet: {
        wire::Reader reader(frame->payload);
        const std::uint64_t id = reader.u64();
        const bool blocking = reader.boolean();
        if (reader.failed() || !reader.exhausted()) {
          connection.send_frame(
              error_frame(ErrorKind::kInvalidArgument,
                          "service-server: malformed get payload"));
          break;
        }
        try {
          std::optional<SolveReport> report;
          if (blocking) {
            report = service_.get(id);
          } else {
            report = service_.try_get(id);
          }
          wire::Writer writer;
          writer.u8(report.has_value() ? 1 : 0);
          if (report) wire::write_report(writer, *report);
          connection.send_frame(
              wire::encode_frame(MessageType::kReport, writer.buffer()));
        } catch (const std::invalid_argument& e) {
          connection.send_frame(
              error_frame(ErrorKind::kInvalidArgument, e.what()));
        } catch (const std::exception& e) {
          connection.send_frame(error_frame(ErrorKind::kRuntime, e.what()));
        }
        break;
      }
      case MessageType::kStats: {
        wire::Writer writer;
        writer.u32(static_cast<std::uint32_t>(service_.shards()));
        wire::write_stats(writer, service_.stats());
        connection.send_frame(
            wire::encode_frame(MessageType::kStatsOk, writer.buffer()));
        break;
      }
      case MessageType::kShutdown: {
        // Ack AFTER the service drained: when the client sees the reply,
        // every previously submitted request has completed and the
        // snapshot (when configured) is on disk.
        request_stop();
        connection.send_frame(
            wire::encode_frame(MessageType::kShutdownOk, {}));
        return;
      }
      default:
        connection.send_frame(error_frame(
            ErrorKind::kRuntime, "service-server: unexpected message type"));
        break;
    }
  }
}

}  // namespace ssa::net
