#pragma once
/// \file event_loop.hpp
/// The epoll-based server core behind every wire server (ServiceServer,
/// FrontDoor): ONE loop thread multiplexes the listener and every accepted
/// connection over non-blocking sockets, replacing the PR-5
/// thread-per-connection skeleton. This is what makes request pipelining
/// real on the server side -- a connection with ten in-flight requests
/// costs one epoll registration and two buffers, not ten parked threads.
///
/// Responsibilities split:
///  - the LOOP owns all sockets and their per-connection read/write
///    buffers, parses length-prefixed v3 frames out of the read buffer and
///    hands each decoded wire::Frame to the owner's handler;
///  - the HANDLER (called on the loop thread) implements the protocol. It
///    must not block -- slow work is handed to worker threads which answer
///    later through the thread-safe EventConnection::send;
///  - responses are queued on the connection's outbox and flushed by the
///    loop. Frames queued while the loop is busy elsewhere coalesce into
///    one write() (small-frame batching -- the pipelined client's chatty
///    submit/get pairs ride the same syscall).
///
/// Backpressure: a connection whose outbox exceeds
/// EventLoopOptions::outbox_pause_bytes stops being READ until the peer
/// drains it below outbox_resume_bytes -- a slow reader throttles its own
/// request stream instead of ballooning the server's memory.
///
/// Malformed input (bad length prefix, undecodable envelope) answers one
/// kError frame with request id 0 and closes the connection after the
/// flush: after a framing error nothing later on the stream can be
/// trusted. This mirrors the PR-5 handler behavior exactly.
///
/// Teardown: shutdown_listener() stops accepting while live connections
/// keep being served (the wire-kShutdown path); stop() drains the command
/// queue, makes a bounded best-effort flush of every outbox (a stalled
/// peer cannot wedge the stop), closes everything and joins the loop
/// thread. The destructor performs a full stop().

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/socket.hpp"
#include "wire/protocol.hpp"

namespace ssa::net {

namespace detail {
struct LoopCore;
}  // namespace detail

/// Thread-safe handle to one accepted connection. Handlers receive a
/// shared_ptr and may keep it as long as they like (worker threads answer
/// through it after the handler returned); once the peer disconnects or
/// the loop stops, send() becomes a silent no-op -- exactly what a late
/// completion wants.
class EventConnection {
 public:
  /// Queues one pre-encoded frame (length prefix included,
  /// wire::encode_frame) for sending and wakes the loop. Never blocks,
  /// never throws; a no-op once the connection or loop is gone.
  void send(std::string frame);

  /// Asks the loop to close this connection once its queued writes have
  /// flushed -- the "answered a fatal protocol error" path.
  void close_after_flush();

 private:
  friend class EventLoop;  // Impl (a member) constructs handles
  EventConnection(std::weak_ptr<detail::LoopCore> core, std::uint64_t id)
      : core_(std::move(core)), id_(id) {}

  std::weak_ptr<detail::LoopCore> core_;
  std::uint64_t id_;
};

using EventConnectionPtr = std::shared_ptr<EventConnection>;

struct EventLoopOptions {
  /// Outbox size past which the loop stops reading from that connection.
  std::size_t outbox_pause_bytes = std::size_t{4} << 20;
  /// Outbox size below which a paused connection resumes reading.
  std::size_t outbox_resume_bytes = std::size_t{512} << 10;
  /// Protocol key used in loop-generated kError messages
  /// ("service-server", "front-door").
  std::string error_key = "event-loop";
};

/// One listener + one epoll loop thread serving every connection.
/// Thread-safe surface; the destructor performs a full stop().
class EventLoop {
 public:
  /// Called on the loop thread for every complete, well-formed frame.
  using FrameHandler =
      std::function<void(const EventConnectionPtr&, wire::Frame)>;

  /// Takes ownership of \p listener and starts serving immediately.
  EventLoop(TcpListener listener, FrameHandler handler,
            EventLoopOptions options = {});
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept;

  /// Stops accepting new connections; live connections keep being served.
  /// Safe from any thread including the loop thread's handlers.
  void shutdown_listener() noexcept;

  /// Full stop (see the file comment). Idempotent; must NOT be called
  /// from the loop thread itself.
  void stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ssa::net
