#include "net/mux_connection.hpp"

#include <future>
#include <stdexcept>
#include <utility>

namespace ssa::net {

MuxConnection::MuxConnection(const std::string& host, std::uint16_t port)
    : connection_(TcpConnection::connect(host, port)) {
  reader_ = std::thread([this] { reader_loop(); });
}

MuxConnection::~MuxConnection() { close(); }

bool MuxConnection::poisoned() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return poisoned_;
}

void MuxConnection::close() {
  poison("mux: connection closed");
  if (reader_.joinable()) reader_.join();
}

void MuxConnection::poison(const std::string& reason) {
  std::unordered_map<std::uint64_t, Callback> victims;
  std::string recorded;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!poisoned_) {
      poisoned_ = true;
      poison_reason_ = reason;
    }
    recorded = poison_reason_;  // first reason wins for everyone
    victims.swap(pending_);
  }
  // Unblocks the reader thread (recv observes EOF) without releasing the
  // descriptor under it.
  connection_.shutdown_both();
  for (auto& [id, callback] : victims) {
    callback(std::nullopt, recorded);
  }
}

void MuxConnection::call(wire::MessageType type, std::string_view payload,
                         Callback callback, obs::SpanContext context) {
  std::uint64_t id = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!poisoned_) {
      // Parked BEFORE the send: the response may race back before
      // send_frame even returns on this thread.
      id = next_id_++;
      pending_.emplace(id, std::move(callback));
    }
  }
  if (id == 0) {
    std::string reason;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      reason = poison_reason_;
    }
    callback(std::nullopt, reason);
    return;
  }

  std::string frame;
  try {
    frame = wire::encode_frame(type, id, payload, context);
  } catch (const std::exception& e) {
    // Oversized payload: nothing hit the wire, so the STREAM is fine --
    // fail only this call, not the connection.
    Callback parked;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto it = pending_.find(id);
      if (it == pending_.end()) return;  // a concurrent poison beat us
      parked = std::move(it->second);
      pending_.erase(it);
    }
    parked(std::nullopt, std::string("mux: ") + e.what());
    return;
  }

  try {
    const std::lock_guard<std::mutex> send_lock(send_mutex_);
    connection_.send_frame(frame);
  } catch (const std::exception& e) {
    // A partial frame may be on the wire: the stream is unusable. poison
    // fails every pending call including this one.
    poison(std::string("mux: ") + e.what());
  }
}

wire::Frame MuxConnection::call_sync(wire::MessageType type,
                                     std::string_view payload,
                                     obs::SpanContext context) {
  std::promise<wire::Frame> promise;
  std::future<wire::Frame> future = promise.get_future();
  call(type, payload,
       [&promise](std::optional<wire::Frame> frame, const std::string& error) {
         if (frame) {
           promise.set_value(*std::move(frame));
         } else {
           promise.set_exception(
               std::make_exception_ptr(std::runtime_error(error)));
         }
       },
       context);
  return future.get();
}

void MuxConnection::reader_loop() {
  std::string reason = "mux: server closed the connection";
  try {
    for (;;) {
      std::optional<std::string> body = connection_.recv_frame();
      if (!body) break;  // EOF (server gone, or close() unblocked us)
      std::optional<wire::Frame> frame = wire::decode_frame_body(*body);
      if (!frame) {
        reason = "mux: malformed response frame";
        break;
      }
      Callback callback;
      bool unknown = false;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = pending_.find(frame->request_id);
        if (it == pending_.end()) {
          unknown = true;
        } else {
          callback = std::move(it->second);
          pending_.erase(it);
        }
      }
      if (unknown) {
        // No pending call owns this id: either the server invented one or
        // it answered the same id twice (the first response consumed the
        // entry). Both are protocol violations.
        reason = "mux: response for unknown request id " +
                 std::to_string(frame->request_id);
        break;
      }
      callback(*std::move(frame), std::string());
    }
  } catch (const std::exception& e) {
    reason = std::string("mux: ") + e.what();
  }
  poison(reason);
}

}  // namespace ssa::net
