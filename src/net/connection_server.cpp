#include "net/connection_server.hpp"

#include <algorithm>
#include <utility>

namespace ssa::net {

ConnectionServer::ConnectionServer(TcpListener listener, Handler handler)
    : handler_(std::move(handler)), listener_(std::move(listener)) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

ConnectionServer::~ConnectionServer() { stop(); }

void ConnectionServer::shutdown_listener() noexcept {
  // Leaves the fd open (close() would race the accept thread reusing the
  // number); stop() releases it after the join.
  listener_.shutdown();
}

void ConnectionServer::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Unblock handlers parked in recv_frame (their clients may hold the
  // connection open), then join everything.
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (TcpConnection* connection : open_connections_) {
      connection->shutdown_both();
    }
  }
  std::list<HandlerThread> joining;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    joining.swap(handlers_);
  }
  for (HandlerThread& handler : joining) {
    if (handler.thread.joinable()) handler.thread.join();
  }
  listener_.close();
}

void ConnectionServer::reap_finished_locked() {
  for (auto it = handlers_.begin(); it != handlers_.end();) {
    if (*it->done) {
      it->thread.join();  // finished: the join returns immediately
      it = handlers_.erase(it);
    } else {
      ++it;
    }
  }
}

void ConnectionServer::accept_loop() {
  for (;;) {
    std::optional<TcpConnection> accepted = listener_.accept();
    if (!accepted) return;  // listener shut down
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;  // raced a concurrent stop: drop the connection
    reap_finished_locked();
    // Registration happens HERE, atomically with the stopping_ check: if
    // it happened inside the handler thread, a stop() running between
    // spawn and registration would miss this connection in its half-close
    // sweep and then hang joining a handler parked in recv.
    auto connection = std::make_shared<TcpConnection>(std::move(*accepted));
    open_connections_.push_back(connection.get());
    HandlerThread& entry = handlers_.emplace_back();
    entry.thread =
        std::thread([this, done = entry.done, connection]() mutable {
          try {
            handler_(*connection);
          } catch (...) {
            // A handler must not take the server down; the connection
            // simply ends.
          }
          const std::lock_guard<std::mutex> registry(mutex_);
          open_connections_.erase(
              std::remove(open_connections_.begin(), open_connections_.end(),
                          connection.get()),
              open_connections_.end());
          // Last shared-state action: after this the thread only returns,
          // so a reaper observing done == true can join without blocking.
          *done = true;
        });
  }
}

}  // namespace ssa::net
