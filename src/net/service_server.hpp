#pragma once
/// \file service_server.hpp
/// One AuctionService behind a wire-protocol listener: the backend process
/// of the cross-process serving topology. A ServiceServer binds a loopback
/// port, accepts connections (one handler thread each, reaped as they
/// finish -- net/connection_server.hpp) and answers the protocol's
/// submit/get/stats/shutdown frames by driving its in-process
/// AuctionService -- the same construction the FrontDoor's backends and
/// the front_door_demo's child processes run.
///
/// Error passthrough: solver/domain failures stay INSIDE SolveReport::
/// error (already "<solver-key>: <reason>"-pinned) and travel as normal
/// kReport frames; only API-surface exceptions (bad request id, submit
/// after shutdown, malformed frames) become kError frames, tagged with
/// the exception kind so a remote client rethrows exactly what the
/// in-process call would have thrown.
///
/// A wire kShutdown stops the whole server: the service completes its
/// queue and writes its snapshot (when configured), the listener stops
/// accepting, wait() returns. That is the remote analogue of
/// AuctionService::shutdown() and what the demo uses to reap its spawned
/// backend processes.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>

#include "net/connection_server.hpp"
#include "service/auction_service.hpp"

namespace ssa::net {

struct ServiceServerOptions {
  /// Configuration of the served AuctionService (shards, caches, policy,
  /// snapshot persistence -- everything the in-process service accepts).
  service::ServiceOptions service;
  /// Loopback port to listen on; 0 picks an ephemeral port (port()).
  std::uint16_t port = 0;
};

/// Serves one AuctionService over the wire protocol. Thread-safe surface;
/// the destructor performs a full stop().
class ServiceServer {
 public:
  explicit ServiceServer(ServiceServerOptions options = {});
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// The bound loopback port (resolved when options.port was 0).
  [[nodiscard]] std::uint16_t port() const noexcept;

  /// The served service (tests inspect stats; the server owns it).
  [[nodiscard]] service::AuctionService& service() noexcept;

  /// Blocks until a wire kShutdown arrives or stop() is called.
  void wait();

  /// Full stop: shuts the service down (draining its queues), stops
  /// accepting, unblocks every connection handler and joins all threads.
  /// Idempotent; safe from any thread except a connection handler.
  void stop();

 private:
  void handle_connection(TcpConnection& connection);
  /// Shutdown initiation usable FROM a handler thread (no joins): flags
  /// the stop, shuts the service and listener down, wakes wait().
  void request_stop();

  service::AuctionService service_;

  std::mutex mutex_;
  std::condition_variable stopped_cv_;
  bool stopping_ = false;

  /// Last: its destructor/stop() joins every network thread before the
  /// members above die.
  std::optional<ConnectionServer> server_;
};

}  // namespace ssa::net
