#pragma once
/// \file service_server.hpp
/// One AuctionService behind a wire-protocol listener: the backend process
/// of the cross-process serving topology. A ServiceServer binds a loopback
/// port and serves every connection from one epoll event loop
/// (net/event_loop.hpp); decoded frames are handed to a small request pump
/// (worker threads) so the loop thread stays pure I/O, and BLOCKING get
/// frames park a completion watcher on the service
/// (AuctionService::watch) instead of a thread -- a connection may have
/// any number of submits and gets in flight, answered out of order by
/// wire request id.
///
/// Error passthrough: solver/domain failures stay INSIDE SolveReport::
/// error (already "<solver-key>: <reason>"-pinned) and travel as normal
/// kReport frames; only API-surface exceptions (bad request id, submit
/// after shutdown, malformed frames) become kError frames, tagged with
/// the exception kind so a remote client rethrows exactly what the
/// in-process call would have thrown.
///
/// A wire kShutdown stops the whole server: the service completes its
/// queue and writes its snapshot (when configured), the listener stops
/// accepting, wait() returns; the ack frame is sent only after the drain,
/// so a client that saw it knows every prior submission completed. That
/// is the remote analogue of AuctionService::shutdown() and what the demo
/// uses to reap its spawned backend processes.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>

#include "net/event_loop.hpp"
#include "service/auction_service.hpp"

namespace ssa::net {

struct ServiceServerOptions {
  /// Configuration of the served AuctionService (shards, caches, policy,
  /// snapshot persistence -- everything the in-process service accepts).
  service::ServiceOptions service;
  /// Loopback port to listen on; 0 picks an ephemeral port (port()).
  std::uint16_t port = 0;
  /// Request-pump worker threads decoding/answering frames off the loop
  /// thread (clamped to >= 1). Submit decoding is the expensive step;
  /// more pumps let one connection's pipelined submits decode in
  /// parallel.
  int pump_threads = 3;
};

/// Serves one AuctionService over the wire protocol. Thread-safe surface;
/// the destructor performs a full stop().
class ServiceServer {
 public:
  explicit ServiceServer(ServiceServerOptions options = {});
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// The bound loopback port (resolved when options.port was 0).
  [[nodiscard]] std::uint16_t port() const noexcept;

  /// The served service (tests inspect stats; the server owns it).
  [[nodiscard]] service::AuctionService& service() noexcept;

  /// Blocks until a wire kShutdown arrives or stop() is called.
  void wait();

  /// Full stop: shuts the service down (draining its queues), stops
  /// accepting, joins the pump and the loop. Idempotent; safe from any
  /// thread except a pump worker or the loop thread.
  void stop();

 private:
  struct Pump;

  void handle_frame(const EventConnectionPtr& connection, wire::Frame frame);
  void process(const EventConnectionPtr& connection, wire::Frame& frame);
  void process_submit(const EventConnectionPtr& connection,
                      const wire::Frame& frame);
  void process_get(const EventConnectionPtr& connection,
                   const wire::Frame& frame);
  /// Shutdown initiation usable FROM a pump thread (no joins): flags the
  /// stop, shuts the service and listener down, wakes wait().
  void request_stop();

  service::AuctionService service_;

  std::mutex mutex_;
  std::condition_variable stopped_cv_;
  bool stopping_ = false;

  /// Declared after the service, before the loop: the stop order is pump
  /// first (no new work), then loop.
  std::unique_ptr<Pump> pump_;

  /// Last: its stop() quiesces all network activity before the members
  /// above die.
  std::optional<EventLoop> loop_;
};

}  // namespace ssa::net
