#include "net/front_door.hpp"

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "net/event_loop.hpp"
#include "net/mux_connection.hpp"
#include "service/auction_service.hpp"
#include "support/fingerprint.hpp"
#include "wire/protocol.hpp"

namespace ssa::net {

namespace {

using wire::ErrorKind;
using wire::MessageType;

/// Routing decisions memoized by the fingerprint of the raw submit
/// payload bytes: repeats of an identical submit (the cache-warm steady
/// state) skip the instance decode entirely. Equal payloads always map to
/// one backend, so the consistent-split contract holds; distinct payloads
/// of one instance (different options) still meet the same backend
/// through the full decode + instance-fingerprint path.
constexpr std::size_t kRouteCacheEntries = std::size_t{1} << 16;

std::string error_frame(std::uint64_t request_id, ErrorKind kind,
                        const std::string& message) {
  return wire::encode_frame(MessageType::kError, request_id,
                            wire::encode_error(kind, message));
}

}  // namespace

struct FrontDoor::Impl {
  /// Where a door-assigned request id lives.
  struct Route {
    std::size_t backend = 0;
    std::uint64_t remote_id = 0;
  };

  /// The single multiplexed connection to one backend, created on first
  /// use and recreated after poisoning (a backend restart costs one
  /// failed call, not a dead door). close() is terminal: the stop
  /// sequence must not race a handler into resurrecting a channel whose
  /// reader thread nobody would join.
  struct Channel {
    Endpoint endpoint;
    std::mutex mutex;
    std::shared_ptr<MuxConnection> mux;
    bool closed = false;

    [[nodiscard]] std::shared_ptr<MuxConnection> get() {
      const std::lock_guard<std::mutex> lock(mutex);
      if (closed) throw std::runtime_error("front door is stopping");
      if (!mux || mux->poisoned()) {
        mux = std::make_shared<MuxConnection>(endpoint.host, endpoint.port);
      }
      return mux;
    }

    void close() {
      std::shared_ptr<MuxConnection> victim;
      {
        const std::lock_guard<std::mutex> lock(mutex);
        closed = true;
        victim = std::move(mux);
      }
      // Outside the lock: close() fires every pending continuation and
      // joins the reader thread.
      if (victim) victim->close();
    }
  };

  explicit Impl(FrontDoorOptions options) {
    if (options.backends.empty()) {
      throw std::invalid_argument("FrontDoor: no backends configured");
    }
    channels.reserve(options.backends.size());
    for (Endpoint& endpoint : options.backends) {
      auto channel = std::make_unique<Channel>();
      channel->endpoint = std::move(endpoint);
      channels.push_back(std::move(channel));
    }
    EventLoopOptions loop_options;
    loop_options.error_key = "front-door";
    loop.emplace(TcpListener::bind_loopback(options.port),
                 [this](const EventConnectionPtr& connection,
                        wire::Frame frame) {
                   handle_frame(connection, std::move(frame));
                 },
                 std::move(loop_options));
  }

  void request_stop() {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      if (stopping) return;
      stopping = true;
    }
    loop->shutdown_listener();
    stopped_cv.notify_all();
  }

  void stop() {
    request_stop();
    // Close the backend channels BEFORE the loop: every in-flight
    // continuation fires (with the poison reason), posts its door-keyed
    // error reply, and the loop's stop flush delivers what it can. A
    // stalled backend therefore cannot wedge the stop -- its calls fail
    // fast instead of being waited out.
    for (const std::unique_ptr<Channel>& channel : channels) {
      channel->close();
    }
    loop->stop();
  }

  [[nodiscard]] std::string backend_failure(std::size_t index,
                                            const std::string& what) const {
    const Endpoint& endpoint = channels[index]->endpoint;
    return "front-door: backend " + std::to_string(index) + " (" +
           endpoint.host + ":" + std::to_string(endpoint.port) +
           ") failed: " + what;
  }

  /// Continuation-style forward: sends (type, payload) to backend
  /// \p index over its multiplexed channel and invokes \p callback with
  /// the response -- or with a door-keyed failure message. The callback
  /// runs on the channel's reader thread (or inline on connect failure).
  void forward(std::size_t index, MessageType type, std::string_view payload,
               MuxConnection::Callback callback) {
    std::shared_ptr<MuxConnection> mux;
    try {
      mux = channels[index]->get();
    } catch (const std::exception& e) {
      callback(std::nullopt, backend_failure(index, e.what()));
      return;
    }
    mux->call(type, payload,
              [this, index, callback = std::move(callback)](
                  std::optional<wire::Frame> response,
                  const std::string& error) mutable {
                if (!response) {
                  callback(std::nullopt, backend_failure(index, error));
                } else {
                  callback(std::move(response), std::string());
                }
              });
  }

  void handle_submit(const EventConnectionPtr& connection,
                     const wire::Frame& frame) {
    // Route by instance fingerprint (key.hi mod backend count -- the same
    // consistent-split discipline the service shards use), memoized by
    // payload bytes so the warm path never re-decodes the instance.
    FingerprintHasher payload_hasher;
    payload_hasher.mix(std::string_view(frame.payload));
    const Fingerprint payload_key = payload_hasher.digest();
    std::optional<std::size_t> backend;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      const auto it = route_cache.find(payload_key);
      if (it != route_cache.end()) backend = it->second;
    }
    if (!backend) {
      // Decode only to fingerprint: the forwarded bytes are the ORIGINAL
      // payload, so the backend decodes exactly what the client encoded.
      const std::optional<wire::SubmitRequest> request =
          wire::decode_submit(frame.payload);
      if (!request) {
        connection->send(error_frame(frame.request_id,
                                     ErrorKind::kInvalidArgument,
                                     "front-door: malformed submit payload"));
        return;
      }
      const Fingerprint key = fingerprint(request->instance.view());
      backend = static_cast<std::size_t>(
          key.hi % static_cast<std::uint64_t>(channels.size()));
      const std::lock_guard<std::mutex> lock(mutex);
      if (route_cache.size() >= kRouteCacheEntries) route_cache.clear();
      route_cache.emplace(payload_key, *backend);
    }
    const std::uint64_t client_id = frame.request_id;
    forward(
        *backend, MessageType::kSubmit, frame.payload,
        [this, connection, client_id, chosen = *backend](
            std::optional<wire::Frame> response, const std::string& error) {
          if (!response) {
            connection->send(
                error_frame(client_id, ErrorKind::kRuntime, error));
            return;
          }
          if (response->type != MessageType::kSubmitOk) {
            // Backend-side error (shut down, rejected submit, ...):
            // payload verbatim under the client's envelope id.
            connection->send(wire::encode_frame(response->type, client_id,
                                                response->payload));
            return;
          }
          wire::Reader reader(response->payload);
          const std::uint64_t remote_id = reader.u64();
          if (reader.failed()) {
            connection->send(
                error_frame(client_id, ErrorKind::kRuntime,
                            "front-door: malformed backend submit ack"));
            return;
          }
          std::uint64_t door_id = 0;
          {
            const std::lock_guard<std::mutex> lock(mutex);
            door_id = next_id++;
            routes.emplace(door_id, Route{chosen, remote_id});
          }
          wire::Writer writer;
          writer.u64(door_id);
          connection->send(wire::encode_frame(MessageType::kSubmitOk,
                                              client_id, writer.buffer()));
        });
  }

  void handle_get(const EventConnectionPtr& connection,
                  const wire::Frame& frame) {
    wire::Reader reader(frame.payload);
    const std::uint64_t door_id = reader.u64();
    const bool blocking = reader.boolean();
    if (reader.failed() || !reader.exhausted()) {
      connection->send(error_frame(frame.request_id,
                                   ErrorKind::kInvalidArgument,
                                   "front-door: malformed get payload"));
      return;
    }
    Route route;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      const auto it = routes.find(door_id);
      if (it == routes.end()) {
        // Match the in-process wording so client-visible behavior is
        // identical whichever side detects the bad id.
        connection->send(
            error_frame(frame.request_id, ErrorKind::kInvalidArgument,
                        "front-door: unknown or already-claimed request id"));
        return;
      }
      route = it->second;
    }
    wire::Writer writer;
    writer.u64(route.remote_id);
    writer.boolean(blocking);
    const std::uint64_t client_id = frame.request_id;
    forward(
        route.backend, MessageType::kGet, writer.buffer(),
        [this, connection, client_id, door_id](
            std::optional<wire::Frame> response, const std::string& error) {
          if (!response) {
            // Door-level transport failure: the route survives
            // (retryable).
            connection->send(
                error_frame(client_id, ErrorKind::kRuntime, error));
            return;
          }
          // The route is spent once the backend delivered the report
          // (claimed remotely) or rejected the id; it survives only a
          // "still pending" try_get answer.
          bool spent = false;
          if (response->type == MessageType::kReport) {
            wire::Reader report_reader(response->payload);
            spent = report_reader.u8() == 1;
          } else if (response->type == MessageType::kError) {
            const std::optional<wire::WireError> wire_error =
                wire::decode_error(response->payload);
            spent =
                wire_error && wire_error->kind == ErrorKind::kInvalidArgument;
          }
          if (spent) {
            const std::lock_guard<std::mutex> lock(mutex);
            routes.erase(door_id);
          }
          connection->send(wire::encode_frame(response->type, client_id,
                                              response->payload));  // verbatim
        });
  }

  void handle_stats(const EventConnectionPtr& connection,
                    std::uint64_t client_id) {
    // Concurrent fan-out with a counted aggregation: the reply goes out
    // when the LAST backend answered; the first failure wins verbatim.
    struct Aggregation {
      std::mutex mutex;
      bool done = false;
      std::size_t remaining = 0;
      std::uint32_t shards = 0;
      service::ServiceStats total;
    };
    auto aggregation = std::make_shared<Aggregation>();
    aggregation->remaining = channels.size();
    for (std::size_t i = 0; i < channels.size(); ++i) {
      forward(
          i, MessageType::kStats, {},
          [connection, client_id, aggregation](
              std::optional<wire::Frame> response, const std::string& error) {
            const std::lock_guard<std::mutex> lock(aggregation->mutex);
            if (aggregation->done) return;
            if (!response) {
              aggregation->done = true;
              connection->send(
                  error_frame(client_id, ErrorKind::kRuntime, error));
              return;
            }
            if (response->type != MessageType::kStatsOk) {
              aggregation->done = true;
              connection->send(wire::encode_frame(response->type, client_id,
                                                  response->payload));
              return;
            }
            wire::Reader reader(response->payload);
            aggregation->shards += reader.u32();
            const service::ServiceStats stats = wire::read_stats(reader);
            if (reader.failed()) {
              aggregation->done = true;
              connection->send(
                  error_frame(client_id, ErrorKind::kRuntime,
                              "front-door: malformed backend stats"));
              return;
            }
            service::ServiceStats& total = aggregation->total;
            total.submitted += stats.submitted;
            total.completed += stats.completed;
            total.cache_hits += stats.cache_hits;
            total.fallbacks += stats.fallbacks;
            total.coalesced += stats.coalesced;
            total.admission_degraded += stats.admission_degraded;
            total.admission_rejected += stats.admission_rejected;
            total.timed_out += stats.timed_out;
            total.warm_starts += stats.warm_starts;
            total.snapshot_restored += stats.snapshot_restored;
            total.cache_entries += stats.cache_entries;
            total.cache_bytes += stats.cache_bytes;
            if (--aggregation->remaining == 0) {
              aggregation->done = true;
              wire::Writer writer;
              writer.u32(aggregation->shards);
              wire::write_stats(writer, total);
              connection->send(wire::encode_frame(MessageType::kStatsOk,
                                                  client_id,
                                                  writer.buffer()));
            }
          });
    }
  }

  void handle_shutdown(const EventConnectionPtr& connection,
                       std::uint64_t client_id) {
    // Fan out to every backend; ack the client only when ALL answered, so
    // a client that saw the ack knows every backend drained and
    // snapshotted. A backend that is already gone counts as shut down.
    struct Countdown {
      std::mutex mutex;
      std::size_t remaining = 0;
    };
    auto countdown = std::make_shared<Countdown>();
    countdown->remaining = channels.size();
    for (std::size_t i = 0; i < channels.size(); ++i) {
      forward(i, MessageType::kShutdown, {},
              [this, connection, client_id, countdown](
                  std::optional<wire::Frame>, const std::string&) {
                bool last = false;
                {
                  const std::lock_guard<std::mutex> lock(countdown->mutex);
                  last = --countdown->remaining == 0;
                }
                if (!last) return;
                connection->send(wire::encode_frame(MessageType::kShutdownOk,
                                                    client_id, {}));
                connection->close_after_flush();
                request_stop();
              });
    }
  }

  void handle_frame(const EventConnectionPtr& connection, wire::Frame frame) {
    switch (frame.type) {
      case MessageType::kSubmit:
        handle_submit(connection, frame);
        break;
      case MessageType::kGet:
        handle_get(connection, frame);
        break;
      case MessageType::kStats:
        handle_stats(connection, frame.request_id);
        break;
      case MessageType::kShutdown:
        handle_shutdown(connection, frame.request_id);
        break;
      default:
        connection->send(error_frame(frame.request_id, ErrorKind::kRuntime,
                                     "front-door: unexpected message type"));
        break;
    }
  }

  std::vector<std::unique_ptr<Channel>> channels;

  std::mutex mutex;
  std::condition_variable stopped_cv;
  bool stopping = false;
  std::unordered_map<std::uint64_t, Route> routes;
  std::uint64_t next_id = 1;
  std::unordered_map<Fingerprint, std::size_t> route_cache;

  /// Last member: quiesced before the rest dies.
  std::optional<EventLoop> loop;
};

FrontDoor::FrontDoor(FrontDoorOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

FrontDoor::~FrontDoor() {
  if (impl_) impl_->stop();
}

std::uint16_t FrontDoor::port() const noexcept { return impl_->loop->port(); }

std::size_t FrontDoor::backend_count() const noexcept {
  return impl_->channels.size();
}

void FrontDoor::wait() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->stopped_cv.wait(lock, [this] { return impl_->stopping; });
}

void FrontDoor::stop() { impl_->stop(); }

}  // namespace ssa::net
