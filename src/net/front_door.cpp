#include "net/front_door.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "net/connection_server.hpp"
#include "service/auction_service.hpp"
#include "support/fingerprint.hpp"
#include "wire/protocol.hpp"

namespace ssa::net {

namespace {

using wire::ErrorKind;
using wire::MessageType;

std::string error_frame(ErrorKind kind, const std::string& message) {
  return wire::encode_frame(MessageType::kError,
                            wire::encode_error(kind, message));
}

/// Connection pool to one backend: every call checks a connection out for
/// its full request/response round trip (a blocking get parks one),
/// returns it to the idle list on success and drops it on any transport
/// error. Concurrent calls simply open additional connections. Busy
/// connections are tracked so close_all() can half-close them and
/// unblock callers parked in recv -- without that, a FrontDoor stop
/// would wait out every in-flight solve (or hang on a stalled backend).
class BackendPool {
 public:
  explicit BackendPool(Endpoint endpoint) : endpoint_(std::move(endpoint)) {}

  /// One round trip: sends \p frame, returns the response BODY. Throws
  /// std::runtime_error on connect/transport failure.
  [[nodiscard]] std::string rpc(const std::string& frame) {
    // On any throw below, `connection` dies with the stack frame: a
    // stream in an unknown state is never pooled again.
    TcpConnection connection = acquire();
    const auto deregister = [&] {
      const std::lock_guard<std::mutex> lock(mutex_);
      busy_.erase(std::remove(busy_.begin(), busy_.end(), &connection),
                  busy_.end());
    };
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      busy_.push_back(&connection);
    }
    try {
      connection.send_frame(frame);
      std::optional<std::string> body = connection.recv_frame();
      if (!body) {
        throw std::runtime_error("backend closed the connection");
      }
      deregister();
      release(std::move(connection));
      return *std::move(body);
    } catch (...) {
      deregister();
      throw;
    }
  }

  /// Half-closes every busy connection (their rpcs fail promptly) and
  /// drops the idle ones. Part of the FrontDoor stop sequence.
  void close_all() {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (TcpConnection* connection : busy_) connection->shutdown_both();
    idle_.clear();
  }

  [[nodiscard]] const Endpoint& endpoint() const noexcept { return endpoint_; }

 private:
  [[nodiscard]] TcpConnection acquire() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!idle_.empty()) {
        TcpConnection connection = std::move(idle_.back());
        idle_.pop_back();
        return connection;
      }
    }
    return TcpConnection::connect(endpoint_.host, endpoint_.port);
  }

  void release(TcpConnection connection) {
    const std::lock_guard<std::mutex> lock(mutex_);
    idle_.push_back(std::move(connection));
  }

  Endpoint endpoint_;
  std::mutex mutex_;
  std::vector<TcpConnection> idle_;
  std::vector<TcpConnection*> busy_;  ///< checked out to an in-flight rpc
};

}  // namespace

struct FrontDoor::Impl {
  explicit Impl(FrontDoorOptions options) {
    if (options.backends.empty()) {
      throw std::invalid_argument("FrontDoor: no backends configured");
    }
    pools.reserve(options.backends.size());
    for (Endpoint& endpoint : options.backends) {
      pools.push_back(std::make_unique<BackendPool>(std::move(endpoint)));
    }
    server.emplace(
        TcpListener::bind_loopback(options.port),
        [this](TcpConnection& connection) { handle_connection(connection); });
  }

  /// Where a door-assigned request id lives.
  struct Route {
    std::size_t backend = 0;
    std::uint64_t remote_id = 0;
  };

  void request_stop() {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      if (stopping) return;
      stopping = true;
    }
    server->shutdown_listener();
    stopped_cv.notify_all();
  }

  void stop() {
    request_stop();
    // Unblock handlers parked on a backend (in-flight rpcs fail fast)
    // BEFORE the server joins them; handlers parked on their client are
    // unblocked by the server's own connection shutdown.
    for (const std::unique_ptr<BackendPool>& pool : pools) {
      pool->close_all();
    }
    server->stop();
  }

  /// Forwards \p frame (a full sendable frame) to backend \p index and
  /// returns the response BODY; a door-keyed kError body on failure.
  [[nodiscard]] std::string forward(std::size_t index,
                                    const std::string& frame) {
    try {
      return pools[index]->rpc(frame);
    } catch (const std::exception& e) {
      return wire::encode_frame_body(
          MessageType::kError,
          wire::encode_error(
              ErrorKind::kRuntime,
              "front-door: backend " + std::to_string(index) + " (" +
                  pools[index]->endpoint().host + ":" +
                  std::to_string(pools[index]->endpoint().port) +
                  ") failed: " + e.what()));
    }
  }

  void handle_submit(TcpConnection& connection, const wire::Frame& frame) {
    // Decode only to fingerprint: the forwarded bytes are the ORIGINAL
    // payload, so the backend decodes exactly what the client encoded.
    const std::optional<wire::SubmitRequest> request =
        wire::decode_submit(frame.payload);
    if (!request) {
      connection.send_frame(
          error_frame(ErrorKind::kInvalidArgument,
                      "front-door: malformed submit payload"));
      return;
    }
    const Fingerprint key = fingerprint(request->instance.view());
    const std::size_t backend = static_cast<std::size_t>(
        key.hi % static_cast<std::uint64_t>(pools.size()));
    const std::string response = forward(
        backend, wire::encode_frame(MessageType::kSubmit, frame.payload));
    const std::optional<wire::Frame> parsed =
        wire::decode_frame_body(response);
    if (!parsed) {
      connection.send_frame(error_frame(
          ErrorKind::kRuntime, "front-door: malformed backend response"));
      return;
    }
    if (parsed->type != MessageType::kSubmitOk) {
      // Backend-side error (shut down, rejected submit, ...): verbatim.
      connection.send_frame(wire::reframe_body(response));
      return;
    }
    wire::Reader reader(parsed->payload);
    const std::uint64_t remote_id = reader.u64();
    if (reader.failed()) {
      connection.send_frame(error_frame(
          ErrorKind::kRuntime, "front-door: malformed backend submit ack"));
      return;
    }
    std::uint64_t door_id = 0;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      door_id = next_id++;
      routes.emplace(door_id, Route{backend, remote_id});
    }
    wire::Writer writer;
    writer.u64(door_id);
    connection.send_frame(
        wire::encode_frame(MessageType::kSubmitOk, writer.buffer()));
  }

  void handle_get(TcpConnection& connection, const wire::Frame& frame) {
    wire::Reader reader(frame.payload);
    const std::uint64_t door_id = reader.u64();
    const bool blocking = reader.boolean();
    if (reader.failed() || !reader.exhausted()) {
      connection.send_frame(error_frame(
          ErrorKind::kInvalidArgument, "front-door: malformed get payload"));
      return;
    }
    Route route;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      const auto it = routes.find(door_id);
      if (it == routes.end()) {
        // Match the in-process wording so client-visible behavior is
        // identical whichever side detects the bad id.
        connection.send_frame(error_frame(
            ErrorKind::kInvalidArgument,
            "front-door: unknown or already-claimed request id"));
        return;
      }
      route = it->second;
    }
    wire::Writer writer;
    writer.u64(route.remote_id);
    writer.boolean(blocking);
    const std::string response = forward(
        route.backend, wire::encode_frame(MessageType::kGet, writer.buffer()));
    const std::optional<wire::Frame> parsed =
        wire::decode_frame_body(response);
    // The route is spent once the backend delivered the report (claimed
    // remotely) or rejected the id; it survives only a "still pending"
    // try_get answer and door-level transport failures (retryable).
    bool spent = false;
    if (parsed && parsed->type == MessageType::kReport) {
      wire::Reader report_reader(parsed->payload);
      spent = report_reader.u8() == 1;
    } else if (parsed && parsed->type == MessageType::kError) {
      const std::optional<wire::WireError> error =
          wire::decode_error(parsed->payload);
      spent = error && error->kind == ErrorKind::kInvalidArgument;
    }
    if (spent) {
      const std::lock_guard<std::mutex> lock(mutex);
      routes.erase(door_id);
    }
    connection.send_frame(wire::reframe_body(response));  // verbatim
  }

  void handle_stats(TcpConnection& connection) {
    std::uint32_t shards = 0;
    service::ServiceStats total;
    for (std::size_t i = 0; i < pools.size(); ++i) {
      const std::string response =
          forward(i, wire::encode_frame(MessageType::kStats, {}));
      const std::optional<wire::Frame> parsed =
          wire::decode_frame_body(response);
      if (!parsed || parsed->type != MessageType::kStatsOk) {
        // First failing backend wins, verbatim.
        connection.send_frame(wire::reframe_body(response));
        return;
      }
      wire::Reader reader(parsed->payload);
      shards += reader.u32();
      const service::ServiceStats stats = wire::read_stats(reader);
      if (reader.failed()) {
        connection.send_frame(error_frame(
            ErrorKind::kRuntime, "front-door: malformed backend stats"));
        return;
      }
      total.submitted += stats.submitted;
      total.completed += stats.completed;
      total.cache_hits += stats.cache_hits;
      total.fallbacks += stats.fallbacks;
      total.coalesced += stats.coalesced;
      total.admission_degraded += stats.admission_degraded;
      total.admission_rejected += stats.admission_rejected;
      total.timed_out += stats.timed_out;
      total.snapshot_restored += stats.snapshot_restored;
      total.cache_entries += stats.cache_entries;
      total.cache_bytes += stats.cache_bytes;
    }
    wire::Writer writer;
    writer.u32(shards);
    wire::write_stats(writer, total);
    connection.send_frame(
        wire::encode_frame(MessageType::kStatsOk, writer.buffer()));
  }

  void handle_shutdown(TcpConnection& connection) {
    // Fan out to every backend first: when the client sees the door's ack,
    // every backend has drained and snapshotted. A backend that is already
    // gone counts as shut down.
    for (std::size_t i = 0; i < pools.size(); ++i) {
      (void)forward(i, wire::encode_frame(MessageType::kShutdown, {}));
    }
    request_stop();
    connection.send_frame(wire::encode_frame(MessageType::kShutdownOk, {}));
  }

  void handle_connection(TcpConnection& connection) {
    for (;;) {
      std::optional<std::string> body = connection.recv_frame();
      if (!body) return;
      const std::optional<wire::Frame> frame = wire::decode_frame_body(*body);
      if (!frame) {
        connection.send_frame(
            error_frame(ErrorKind::kRuntime, "front-door: malformed frame"));
        return;
      }
      switch (frame->type) {
        case MessageType::kSubmit:
          handle_submit(connection, *frame);
          break;
        case MessageType::kGet:
          handle_get(connection, *frame);
          break;
        case MessageType::kStats:
          handle_stats(connection);
          break;
        case MessageType::kShutdown:
          handle_shutdown(connection);
          return;
        default:
          connection.send_frame(error_frame(
              ErrorKind::kRuntime, "front-door: unexpected message type"));
          break;
      }
    }
  }

  std::vector<std::unique_ptr<BackendPool>> pools;

  std::mutex mutex;
  std::condition_variable stopped_cv;
  bool stopping = false;
  std::unordered_map<std::uint64_t, Route> routes;
  std::uint64_t next_id = 1;

  /// Last member: joins every network thread before the rest dies.
  std::optional<ConnectionServer> server;
};

FrontDoor::FrontDoor(FrontDoorOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

FrontDoor::~FrontDoor() {
  if (impl_) impl_->stop();
}

std::uint16_t FrontDoor::port() const noexcept { return impl_->server->port(); }

std::size_t FrontDoor::backend_count() const noexcept {
  return impl_->pools.size();
}

void FrontDoor::wait() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->stopped_cv.wait(lock, [this] { return impl_->stopping; });
}

void FrontDoor::stop() { impl_->stop(); }

}  // namespace ssa::net
