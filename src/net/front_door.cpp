#include "net/front_door.hpp"

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "net/event_loop.hpp"
#include "net/mux_connection.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "service/auction_service.hpp"
#include "support/fingerprint.hpp"
#include "wire/protocol.hpp"
#include "wire/telemetry_codec.hpp"

namespace ssa::net {

namespace {

using wire::ErrorKind;
using wire::MessageType;

/// Routing decisions memoized by the fingerprint of the raw submit
/// payload bytes: repeats of an identical submit (the cache-warm steady
/// state) skip the instance decode entirely. Equal payloads always map to
/// one backend, so the consistent-split contract holds; distinct payloads
/// of one instance (different options) still meet the same backend
/// through the full decode + instance-fingerprint path.
constexpr std::size_t kRouteCacheEntries = std::size_t{1} << 16;

std::string error_frame(std::uint64_t request_id, ErrorKind kind,
                        const std::string& message) {
  return wire::encode_frame(MessageType::kError, request_id,
                            wire::encode_error(kind, message));
}

}  // namespace

struct FrontDoor::Impl {
  /// Where a door-assigned request id lives.
  struct Route {
    std::size_t backend = 0;
    std::uint64_t remote_id = 0;
  };

  /// The single multiplexed connection to one backend, created on first
  /// use and recreated after poisoning (a backend restart costs one
  /// failed call, not a dead door). close() is terminal: the stop
  /// sequence must not race a handler into resurrecting a channel whose
  /// reader thread nobody would join.
  struct Channel {
    Endpoint endpoint;
    std::mutex mutex;
    std::shared_ptr<MuxConnection> mux;
    bool closed = false;

    [[nodiscard]] std::shared_ptr<MuxConnection> get() {
      const std::lock_guard<std::mutex> lock(mutex);
      if (closed) throw std::runtime_error("front door is stopping");
      if (!mux || mux->poisoned()) {
        mux = std::make_shared<MuxConnection>(endpoint.host, endpoint.port);
      }
      return mux;
    }

    void close() {
      std::shared_ptr<MuxConnection> victim;
      {
        const std::lock_guard<std::mutex> lock(mutex);
        closed = true;
        victim = std::move(mux);
      }
      // Outside the lock: close() fires every pending continuation and
      // joins the reader thread.
      if (victim) victim->close();
    }
  };

  explicit Impl(FrontDoorOptions options) {
    if (options.backends.empty()) {
      throw std::invalid_argument("FrontDoor: no backends configured");
    }
    channels.reserve(options.backends.size());
    for (Endpoint& endpoint : options.backends) {
      auto channel = std::make_unique<Channel>();
      channel->endpoint = std::move(endpoint);
      channels.push_back(std::move(channel));
    }
    EventLoopOptions loop_options;
    loop_options.error_key = "front-door";
    loop.emplace(TcpListener::bind_loopback(options.port),
                 [this](const EventConnectionPtr& connection,
                        wire::Frame frame) {
                   handle_frame(connection, std::move(frame));
                 },
                 std::move(loop_options));
  }

  void request_stop() {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      if (stopping) return;
      stopping = true;
    }
    loop->shutdown_listener();
    stopped_cv.notify_all();
  }

  void stop() {
    request_stop();
    // Close the backend channels BEFORE the loop: every in-flight
    // continuation fires (with the poison reason), posts its door-keyed
    // error reply, and the loop's stop flush delivers what it can. A
    // stalled backend therefore cannot wedge the stop -- its calls fail
    // fast instead of being waited out.
    for (const std::unique_ptr<Channel>& channel : channels) {
      channel->close();
    }
    loop->stop();
  }

  [[nodiscard]] std::string backend_failure(std::size_t index,
                                            const std::string& what) const {
    const Endpoint& endpoint = channels[index]->endpoint;
    return "front-door: backend " + std::to_string(index) + " (" +
           endpoint.host + ":" + std::to_string(endpoint.port) +
           ") failed: " + what;
  }

  /// Continuation-style forward: sends (type, payload) to backend
  /// \p index over its multiplexed channel and invokes \p callback with
  /// the response -- or with a door-keyed failure message. The callback
  /// runs on the channel's reader thread (or inline on connect failure).
  /// \p context is stamped into the forwarded frame's v6 envelope: for
  /// submits it carries {trace, door span}, which is what makes backend
  /// spans children of the door span.
  void forward(std::size_t index, MessageType type, std::string_view payload,
               MuxConnection::Callback callback,
               obs::SpanContext context = {}) {
    std::shared_ptr<MuxConnection> mux;
    try {
      mux = channels[index]->get();
    } catch (const std::exception& e) {
      backend_failures.add();
      callback(std::nullopt, backend_failure(index, e.what()));
      return;
    }
    mux->call(type, payload,
              [this, index, callback = std::move(callback)](
                  std::optional<wire::Frame> response,
                  const std::string& error) mutable {
                if (!response) {
                  backend_failures.add();
                  callback(std::nullopt, backend_failure(index, error));
                } else {
                  callback(std::move(response), std::string());
                }
              },
              context);
  }

  void handle_submit(const EventConnectionPtr& connection,
                     const wire::Frame& frame) {
    submits.add();
    // Door span: opened here, recorded when the backend's submit ack (or
    // failure) comes back, so its duration is the forwarding round trip.
    // The forwarded envelope carries {trace, door span id}: the backend's
    // spans parent to this span, which is the causal link of the tree. A
    // client that sent no context gets a fresh trace minted at the door.
    obs::SpanContext inbound = frame.context;
    if (!inbound.traced()) {
      inbound = obs::SpanContext{obs::next_trace_id(), 0};
    }
    const std::uint64_t door_span_id = obs::next_span_id();
    const double span_start = obs::unix_now_seconds();
    // Route by instance fingerprint (key.hi mod backend count -- the same
    // consistent-split discipline the service shards use), memoized by
    // payload bytes so the warm path never re-decodes the instance.
    FingerprintHasher payload_hasher;
    payload_hasher.mix(std::string_view(frame.payload));
    const Fingerprint payload_key = payload_hasher.digest();
    std::optional<std::size_t> backend;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      const auto it = route_cache.find(payload_key);
      if (it != route_cache.end()) backend = it->second;
    }
    if (backend) route_cache_hits.add();
    if (!backend) {
      // Decode only to fingerprint: the forwarded bytes are the ORIGINAL
      // payload, so the backend decodes exactly what the client encoded.
      const std::optional<wire::SubmitRequest> request =
          wire::decode_submit(frame.payload);
      if (!request) {
        connection->send(error_frame(frame.request_id,
                                     ErrorKind::kInvalidArgument,
                                     "front-door: malformed submit payload"));
        return;
      }
      const Fingerprint key = fingerprint(request->instance.view());
      backend = static_cast<std::size_t>(
          key.hi % static_cast<std::uint64_t>(channels.size()));
      const std::lock_guard<std::mutex> lock(mutex);
      if (route_cache.size() >= kRouteCacheEntries) route_cache.clear();
      route_cache.emplace(payload_key, *backend);
    }
    const std::uint64_t client_id = frame.request_id;
    forward(
        *backend, MessageType::kSubmit, frame.payload,
        [this, connection, client_id, chosen = *backend, inbound,
         door_span_id, span_start](
            std::optional<wire::Frame> response, const std::string& error) {
          registry.spans().record(obs::SpanRecord{
              inbound.trace_id, door_span_id, inbound.parent_span_id,
              "door/submit",
              response ? "backend=" + std::to_string(chosen)
                       : "backend=" + std::to_string(chosen) + " failed",
              span_start, obs::unix_now_seconds() - span_start});
          if (!response) {
            connection->send(
                error_frame(client_id, ErrorKind::kRuntime, error));
            return;
          }
          if (response->type != MessageType::kSubmitOk) {
            // Backend-side error (shut down, rejected submit, ...):
            // payload verbatim under the client's envelope id.
            connection->send(wire::encode_frame(response->type, client_id,
                                                response->payload));
            return;
          }
          wire::Reader reader(response->payload);
          const std::uint64_t remote_id = reader.u64();
          if (reader.failed()) {
            connection->send(
                error_frame(client_id, ErrorKind::kRuntime,
                            "front-door: malformed backend submit ack"));
            return;
          }
          std::uint64_t door_id = 0;
          {
            const std::lock_guard<std::mutex> lock(mutex);
            door_id = next_id++;
            routes.emplace(door_id, Route{chosen, remote_id});
          }
          wire::Writer writer;
          writer.u64(door_id);
          connection->send(wire::encode_frame(MessageType::kSubmitOk,
                                              client_id, writer.buffer()));
        },
        obs::SpanContext{inbound.trace_id, door_span_id});
  }

  void handle_get(const EventConnectionPtr& connection,
                  const wire::Frame& frame) {
    gets.add();
    wire::Reader reader(frame.payload);
    const std::uint64_t door_id = reader.u64();
    const bool blocking = reader.boolean();
    if (reader.failed() || !reader.exhausted()) {
      connection->send(error_frame(frame.request_id,
                                   ErrorKind::kInvalidArgument,
                                   "front-door: malformed get payload"));
      return;
    }
    Route route;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      const auto it = routes.find(door_id);
      if (it == routes.end()) {
        // Match the in-process wording so client-visible behavior is
        // identical whichever side detects the bad id.
        connection->send(
            error_frame(frame.request_id, ErrorKind::kInvalidArgument,
                        "front-door: unknown or already-claimed request id"));
        return;
      }
      route = it->second;
    }
    wire::Writer writer;
    writer.u64(route.remote_id);
    writer.boolean(blocking);
    const std::uint64_t client_id = frame.request_id;
    forward(
        route.backend, MessageType::kGet, writer.buffer(),
        [this, connection, client_id, door_id](
            std::optional<wire::Frame> response, const std::string& error) {
          if (!response) {
            // Door-level transport failure: the route survives
            // (retryable).
            connection->send(
                error_frame(client_id, ErrorKind::kRuntime, error));
            return;
          }
          // The route is spent once the backend delivered the report
          // (claimed remotely) or rejected the id; it survives only a
          // "still pending" try_get answer.
          bool spent = false;
          if (response->type == MessageType::kReport) {
            wire::Reader report_reader(response->payload);
            spent = report_reader.u8() == 1;
          } else if (response->type == MessageType::kError) {
            const std::optional<wire::WireError> wire_error =
                wire::decode_error(response->payload);
            spent =
                wire_error && wire_error->kind == ErrorKind::kInvalidArgument;
          }
          if (spent) {
            const std::lock_guard<std::mutex> lock(mutex);
            routes.erase(door_id);
          }
          connection->send(wire::encode_frame(response->type, client_id,
                                              response->payload));  // verbatim
        });
  }

  /// Folds one backend's stats block into the running total, every field
  /// exactly once. Field-by-field aggregation used to live inline in the
  /// fan-out callback, where it silently dropped colgen_warm -- the door
  /// under-reported pool warm starts. Centralizing the fold is what the
  /// "reads each backend block once, sums every field" test pins.
  static void accumulate_stats(service::ServiceStats& total,
                               const service::ServiceStats& stats) {
    total.submitted += stats.submitted;
    total.completed += stats.completed;
    total.cache_hits += stats.cache_hits;
    total.fallbacks += stats.fallbacks;
    total.coalesced += stats.coalesced;
    total.admission_degraded += stats.admission_degraded;
    total.admission_rejected += stats.admission_rejected;
    total.timed_out += stats.timed_out;
    total.warm_starts += stats.warm_starts;
    total.colgen_warm += stats.colgen_warm;
    total.snapshot_restored += stats.snapshot_restored;
    total.cache_entries += stats.cache_entries;
    total.cache_bytes += stats.cache_bytes;
  }

  void handle_stats(const EventConnectionPtr& connection,
                    std::uint64_t client_id) {
    stats_requests.add();
    // Concurrent fan-out with a counted aggregation: the reply goes out
    // when the LAST backend answered; the first failure wins verbatim.
    struct Aggregation {
      std::mutex mutex;
      bool done = false;
      std::size_t remaining = 0;
      std::uint32_t shards = 0;
      service::ServiceStats total;
    };
    auto aggregation = std::make_shared<Aggregation>();
    aggregation->remaining = channels.size();
    for (std::size_t i = 0; i < channels.size(); ++i) {
      forward(
          i, MessageType::kStats, {},
          [connection, client_id, aggregation](
              std::optional<wire::Frame> response, const std::string& error) {
            const std::lock_guard<std::mutex> lock(aggregation->mutex);
            if (aggregation->done) return;
            if (!response) {
              aggregation->done = true;
              connection->send(
                  error_frame(client_id, ErrorKind::kRuntime, error));
              return;
            }
            if (response->type != MessageType::kStatsOk) {
              aggregation->done = true;
              connection->send(wire::encode_frame(response->type, client_id,
                                                  response->payload));
              return;
            }
            // Read the backend's block ONCE, validate, then fold: nothing
            // is accumulated from a frame that later turns out malformed.
            wire::Reader reader(response->payload);
            const std::uint32_t backend_shards = reader.u32();
            const service::ServiceStats stats = wire::read_stats(reader);
            if (reader.failed()) {
              aggregation->done = true;
              connection->send(
                  error_frame(client_id, ErrorKind::kRuntime,
                              "front-door: malformed backend stats"));
              return;
            }
            aggregation->shards += backend_shards;
            accumulate_stats(aggregation->total, stats);
            if (--aggregation->remaining == 0) {
              aggregation->done = true;
              wire::Writer writer;
              writer.u32(aggregation->shards);
              wire::write_stats(writer, aggregation->total);
              connection->send(wire::encode_frame(MessageType::kStatsOk,
                                                  client_id,
                                                  writer.buffer()));
            }
          });
    }
  }

  void handle_telemetry(const EventConnectionPtr& connection,
                        std::uint64_t client_id) {
    telemetry_requests.add();
    // Counted fan-out like handle_stats, but the aggregation is the EXACT
    // snapshot merge (obs/telemetry.hpp): counters and gauges sum by
    // name, histograms fold bucket-for-bucket, spans concatenate. The
    // door's own registry (door.* counters, door/submit spans) merges in
    // last, so one kGetTelemetry answers for the whole deployment.
    struct Aggregation {
      std::mutex mutex;
      bool done = false;
      std::size_t remaining = 0;
      obs::TelemetrySnapshot total;
    };
    auto aggregation = std::make_shared<Aggregation>();
    aggregation->remaining = channels.size();
    for (std::size_t i = 0; i < channels.size(); ++i) {
      forward(
          i, MessageType::kGetTelemetry, {},
          [this, connection, client_id, aggregation](
              std::optional<wire::Frame> response, const std::string& error) {
            const std::lock_guard<std::mutex> lock(aggregation->mutex);
            if (aggregation->done) return;
            if (!response) {
              aggregation->done = true;
              connection->send(
                  error_frame(client_id, ErrorKind::kRuntime, error));
              return;
            }
            if (response->type != MessageType::kTelemetryOk) {
              aggregation->done = true;
              connection->send(wire::encode_frame(response->type, client_id,
                                                  response->payload));
              return;
            }
            const std::optional<obs::TelemetrySnapshot> snapshot =
                wire::decode_telemetry(response->payload);
            if (!snapshot) {
              aggregation->done = true;
              connection->send(
                  error_frame(client_id, ErrorKind::kRuntime,
                              "front-door: malformed backend telemetry"));
              return;
            }
            obs::merge(aggregation->total, *snapshot);
            if (--aggregation->remaining == 0) {
              aggregation->done = true;
              obs::merge(aggregation->total, registry.snapshot());
              wire::Writer writer;
              wire::write_telemetry(writer, aggregation->total);
              connection->send(wire::encode_frame(MessageType::kTelemetryOk,
                                                  client_id,
                                                  writer.buffer()));
            }
          });
    }
  }

  void handle_shutdown(const EventConnectionPtr& connection,
                       std::uint64_t client_id) {
    // Fan out to every backend; ack the client only when ALL answered, so
    // a client that saw the ack knows every backend drained and
    // snapshotted. A backend that is already gone counts as shut down.
    struct Countdown {
      std::mutex mutex;
      std::size_t remaining = 0;
    };
    auto countdown = std::make_shared<Countdown>();
    countdown->remaining = channels.size();
    for (std::size_t i = 0; i < channels.size(); ++i) {
      forward(i, MessageType::kShutdown, {},
              [this, connection, client_id, countdown](
                  std::optional<wire::Frame>, const std::string&) {
                bool last = false;
                {
                  const std::lock_guard<std::mutex> lock(countdown->mutex);
                  last = --countdown->remaining == 0;
                }
                if (!last) return;
                connection->send(wire::encode_frame(MessageType::kShutdownOk,
                                                    client_id, {}));
                connection->close_after_flush();
                request_stop();
              });
    }
  }

  void handle_frame(const EventConnectionPtr& connection, wire::Frame frame) {
    switch (frame.type) {
      case MessageType::kSubmit:
        handle_submit(connection, frame);
        break;
      case MessageType::kGet:
        handle_get(connection, frame);
        break;
      case MessageType::kStats:
        handle_stats(connection, frame.request_id);
        break;
      case MessageType::kGetTelemetry:
        handle_telemetry(connection, frame.request_id);
        break;
      case MessageType::kShutdown:
        handle_shutdown(connection, frame.request_id);
        break;
      default:
        connection->send(error_frame(frame.request_id, ErrorKind::kRuntime,
                                     "front-door: unexpected message type"));
        break;
    }
  }

  std::vector<std::unique_ptr<Channel>> channels;

  /// The door's own registry: routing/forwarding metrics plus the
  /// door/submit spans. Merged into the deployment-wide snapshot by
  /// handle_telemetry, AFTER the backend snapshots -- merge order cannot
  /// change the totals (the exactness contract in obs/registry.hpp).
  obs::Registry registry;
  obs::Counter& submits = registry.counter("door.submits");
  obs::Counter& gets = registry.counter("door.gets");
  obs::Counter& route_cache_hits = registry.counter("door.route_cache_hits");
  obs::Counter& stats_requests = registry.counter("door.stats_requests");
  obs::Counter& telemetry_requests =
      registry.counter("door.telemetry_requests");
  obs::Counter& backend_failures = registry.counter("door.backend_failures");

  std::mutex mutex;
  std::condition_variable stopped_cv;
  bool stopping = false;
  std::unordered_map<std::uint64_t, Route> routes;
  std::uint64_t next_id = 1;
  std::unordered_map<Fingerprint, std::size_t> route_cache;

  /// Last member: quiesced before the rest dies.
  std::optional<EventLoop> loop;
};

FrontDoor::FrontDoor(FrontDoorOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

FrontDoor::~FrontDoor() {
  if (impl_) impl_->stop();
}

std::uint16_t FrontDoor::port() const noexcept { return impl_->loop->port(); }

std::size_t FrontDoor::backend_count() const noexcept {
  return impl_->channels.size();
}

void FrontDoor::wait() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->stopped_cv.wait(lock, [this] { return impl_->stopping; });
}

void FrontDoor::stop() { impl_->stop(); }

}  // namespace ssa::net
