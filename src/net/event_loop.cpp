#include "net/event_loop.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ssa::net {

namespace detail {

/// Cross-thread mailbox shared between the loop thread and every
/// EventConnection handle. Posts append under the mutex; the eventfd is
/// written only when the queue was empty, so a burst of posts (the
/// pipelined client's completion storm) costs one wake syscall, and the
/// frames it carried flush as one batched write per connection.
struct LoopCore {
  struct Command {
    std::uint64_t connection = 0;
    std::string frame;  ///< empty = close_after_flush marker
  };

  std::mutex mutex;
  std::vector<Command> commands;
  bool stopped = false;       ///< loop exited: posts become no-ops
  bool stop_posted = false;   ///< stop() asked the loop to exit
  int wake_fd = -1;

  ~LoopCore() {
    // Closed here, NOT in the loop teardown: a handle mid-post still
    // holds the shared_ptr, and writing a recycled descriptor number
    // would be far worse than holding one eventfd slightly longer.
    if (wake_fd >= 0) ::close(wake_fd);
  }

  void post(std::uint64_t connection, std::string frame) {
    bool wake = false;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      if (stopped) return;
      wake = commands.empty();
      commands.push_back(Command{connection, std::move(frame)});
    }
    if (wake) notify();
  }

  void notify() const noexcept {
    const std::uint64_t one = 1;
    // A saturated counter or EINTR only delays the wake; the loop drains
    // the queue before every sleep anyway.
    (void)!::write(wake_fd, &one, sizeof one);
  }
};

}  // namespace detail

void EventConnection::send(std::string frame) {
  if (frame.empty()) return;  // reserved as the close marker
  if (const std::shared_ptr<detail::LoopCore> core = core_.lock()) {
    core->post(id_, std::move(frame));
  }
}

void EventConnection::close_after_flush() {
  if (const std::shared_ptr<detail::LoopCore> core = core_.lock()) {
    core->post(id_, std::string());
  }
}

namespace {

constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kWakeTag = 1;
constexpr std::uint64_t kFirstConnectionTag = 2;

/// Best-effort flush budget of stop(): enough for loopback peers that
/// are actually reading, bounded so a stalled peer cannot wedge the stop.
constexpr std::chrono::milliseconds kStopFlushBudget{250};

}  // namespace

struct EventLoop::Impl {
  struct Conn {
    TcpConnection socket;
    EventConnectionPtr handle;
    std::string inbuf;
    std::size_t inpos = 0;
    std::string outbuf;
    std::size_t outpos = 0;
    bool want_close = false;
    bool reads_paused = false;
    bool write_armed = false;

    [[nodiscard]] std::size_t outstanding() const noexcept {
      return outbuf.size() - outpos;
    }
  };

  FrameHandler handler;
  EventLoopOptions options;
  TcpListener listener;
  std::shared_ptr<detail::LoopCore> core;
  int epoll_fd = -1;
  bool accepting = true;
  bool stop_requested = false;
  std::unordered_map<std::uint64_t, Conn> conns;
  std::uint64_t next_tag = kFirstConnectionTag;
  std::thread thread;  ///< last: joined before the members above die

  ~Impl() {
    if (epoll_fd >= 0) ::close(epoll_fd);
  }

  // -- epoll registration helpers -------------------------------------------

  void update_mask(std::uint64_t tag, Conn& conn) noexcept {
    epoll_event event{};
    event.data.u64 = tag;
    event.events = (conn.reads_paused ? 0u : static_cast<unsigned>(EPOLLIN)) |
                   (conn.write_armed ? static_cast<unsigned>(EPOLLOUT) : 0u);
    (void)::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.socket.fd(), &event);
  }

  void destroy(std::uint64_t tag) {
    const auto it = conns.find(tag);
    if (it == conns.end()) return;
    (void)::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, it->second.socket.fd(),
                      nullptr);
    conns.erase(it);  // TcpConnection destructor closes the descriptor
  }

  void deregister_listener() noexcept {
    if (!accepting) return;
    accepting = false;
    (void)::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listener.fd(), nullptr);
  }

  // -- accept path ----------------------------------------------------------

  void accept_ready() {
    for (;;) {
      const int fd = ::accept(listener.fd(), nullptr, nullptr);
      if (fd >= 0) {
        const int one = 1;
        (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        const std::uint64_t tag = next_tag++;
        Conn conn;
        conn.socket = TcpConnection(fd);
        conn.socket.set_nonblocking(true);
        conn.handle = EventConnectionPtr(new EventConnection(core, tag));
        epoll_event event{};
        event.data.u64 = tag;
        event.events = EPOLLIN;
        if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &event) != 0) {
          continue;  // conn dies with this scope; keep accepting
        }
        conns.emplace(tag, std::move(conn));
        continue;
      }
      // Same transient-errno discipline as the blocking accept loop had:
      // an aborted queued peer is skipped, fd exhaustion backs off (the
      // backlog keeps the peer; the pause stops a level-triggered spin).
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EMFILE || errno == ENFILE) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        return;
      }
      // shutdown_listener() (EINVAL) or a dead descriptor: stop accepting;
      // live connections keep being served until stop().
      deregister_listener();
      return;
    }
  }

  // -- read path ------------------------------------------------------------

  /// Appends a loop-generated kError and marks the connection for a
  /// flush-then-close: after a framing error the stream is untrustworthy.
  void protocol_error(Conn& conn, const std::string& reason) {
    conn.outbuf += wire::encode_frame(
        wire::MessageType::kError, 0,
        wire::encode_error(wire::ErrorKind::kRuntime,
                           options.error_key + ": " + reason));
    conn.want_close = true;
  }

  /// Parses every complete frame out of the read buffer and hands it to
  /// the handler. Consumed bytes are trimmed lazily (inpos) so a burst of
  /// pipelined frames costs one compaction, not one memmove per frame.
  void parse_frames(Conn& conn) {
    while (!conn.want_close) {
      const std::size_t avail = conn.inbuf.size() - conn.inpos;
      std::uint32_t length = 0;
      if (avail < sizeof length) break;
      std::memcpy(&length, conn.inbuf.data() + conn.inpos, sizeof length);
      if (length > wire::kMaxFrameBytes) {
        protocol_error(conn, "malformed frame");
        break;
      }
      if (avail < sizeof length + length) break;
      std::optional<wire::Frame> frame = wire::decode_frame_body(
          std::string_view(conn.inbuf.data() + conn.inpos + sizeof length,
                           length));
      conn.inpos += sizeof length + length;
      if (!frame) {
        protocol_error(conn, "malformed frame");
        break;
      }
      try {
        handler(conn.handle, *std::move(frame));
      } catch (...) {
        // A handler must not take the loop down; this connection ends
        // like any other protocol failure.
        protocol_error(conn, "internal handler failure");
        break;
      }
    }
    if (conn.inpos == conn.inbuf.size()) {
      conn.inbuf.clear();
      conn.inpos = 0;
    } else if (conn.inpos >= (std::size_t{64} << 10) &&
               conn.inpos * 2 >= conn.inbuf.size()) {
      conn.inbuf.erase(0, conn.inpos);
      conn.inpos = 0;
    }
  }

  /// Drains the socket into the read buffer; false when the peer is gone.
  [[nodiscard]] bool read_ready(Conn& conn) {
    char buffer[64 << 10];
    for (;;) {
      const ssize_t n = ::recv(conn.socket.fd(), buffer, sizeof buffer, 0);
      if (n > 0) {
        conn.inbuf.append(buffer, static_cast<std::size_t>(n));
        if (static_cast<std::size_t>(n) < sizeof buffer) break;
        continue;
      }
      if (n == 0) return false;  // EOF
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;  // transport error
    }
    parse_frames(conn);
    return true;
  }

  // -- write path -----------------------------------------------------------

  void maybe_pause(std::uint64_t tag, Conn& conn) {
    if (!conn.reads_paused &&
        conn.outstanding() > options.outbox_pause_bytes) {
      conn.reads_paused = true;
      update_mask(tag, conn);
    }
  }

  void maybe_resume(std::uint64_t tag, Conn& conn) {
    if (conn.reads_paused &&
        conn.outstanding() < options.outbox_resume_bytes) {
      conn.reads_paused = false;
      update_mask(tag, conn);
    }
  }

  /// Writes as much of the outbox as the socket takes; arms EPOLLOUT on a
  /// short write. Returns false when the connection must be destroyed
  /// (peer gone, or want_close and fully flushed).
  [[nodiscard]] bool flush(std::uint64_t tag, Conn& conn) {
    while (conn.outpos < conn.outbuf.size()) {
      const ssize_t n =
          ::send(conn.socket.fd(), conn.outbuf.data() + conn.outpos,
                 conn.outbuf.size() - conn.outpos, MSG_NOSIGNAL);
      if (n >= 0) {
        conn.outpos += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn.write_armed) {
          conn.write_armed = true;
          update_mask(tag, conn);
        }
        maybe_resume(tag, conn);
        return true;
      }
      return false;  // peer gone
    }
    conn.outbuf.clear();
    conn.outpos = 0;
    if (conn.write_armed) {
      conn.write_armed = false;
      update_mask(tag, conn);
    }
    if (conn.want_close) return false;
    maybe_resume(tag, conn);
    return true;
  }

  // -- command + event pump -------------------------------------------------

  void drain_wake() const noexcept {
    std::uint64_t count = 0;
    (void)!::read(core->wake_fd, &count, sizeof count);
  }

  void apply_commands() {
    std::vector<detail::LoopCore::Command> batch;
    {
      const std::lock_guard<std::mutex> lock(core->mutex);
      batch.swap(core->commands);
      stop_requested = core->stop_posted;
    }
    for (detail::LoopCore::Command& command : batch) {
      const auto it = conns.find(command.connection);
      if (it == conns.end()) continue;  // late completion for a gone peer
      Conn& conn = it->second;
      if (command.frame.empty()) {
        conn.want_close = true;
        continue;
      }
      if (conn.outbuf.empty()) {
        conn.outbuf = std::move(command.frame);
      } else {
        conn.outbuf += command.frame;
      }
      maybe_pause(command.connection, conn);
    }
  }

  /// One batched write per connection with queued output -- the
  /// small-frame coalescing point: every frame posted since the last
  /// flush leaves in a single send().
  void flush_all() {
    std::vector<std::uint64_t> dead;
    for (auto& [tag, conn] : conns) {
      const bool pending = conn.outpos < conn.outbuf.size();
      if ((pending && !conn.write_armed) || (conn.want_close && !pending)) {
        if (!flush(tag, conn)) dead.push_back(tag);
      }
    }
    for (const std::uint64_t tag : dead) destroy(tag);
  }

  void run() {
    epoll_event events[64];
    for (;;) {
      const int n = ::epoll_wait(epoll_fd, events, 64, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // epoll itself failed: tear down
      }
      for (int i = 0; i < n; ++i) {
        const std::uint64_t tag = events[i].data.u64;
        if (tag == kListenerTag) {
          accept_ready();
          continue;
        }
        if (tag == kWakeTag) {
          drain_wake();
          continue;
        }
        const auto it = conns.find(tag);
        if (it == conns.end()) continue;  // destroyed earlier in this batch
        Conn& conn = it->second;
        const std::uint32_t flags = events[i].events;
        if ((flags & EPOLLIN) && !read_ready(conn)) {
          destroy(tag);
          continue;
        }
        if ((flags & EPOLLOUT) && !flush(tag, conn)) {
          destroy(tag);
          continue;
        }
        if ((flags & (EPOLLHUP | EPOLLERR)) &&
            !(flags & (EPOLLIN | EPOLLOUT))) {
          destroy(tag);
        }
      }
      apply_commands();
      flush_all();
      if (stop_requested) break;
    }
    shutdown_flush();
  }

  /// Loop exit: take the mailbox down, apply what it still held, give
  /// every outbox one bounded chance to reach its peer (the wire-shutdown
  /// ack travels this path), then close everything.
  void shutdown_flush() {
    std::vector<detail::LoopCore::Command> batch;
    {
      const std::lock_guard<std::mutex> lock(core->mutex);
      core->stopped = true;
      batch.swap(core->commands);
    }
    for (detail::LoopCore::Command& command : batch) {
      const auto it = conns.find(command.connection);
      if (it == conns.end() || command.frame.empty()) continue;
      it->second.outbuf += command.frame;
    }
    const auto deadline = std::chrono::steady_clock::now() + kStopFlushBudget;
    for (auto& [tag, conn] : conns) {
      while (conn.outpos < conn.outbuf.size()) {
        const ssize_t n =
            ::send(conn.socket.fd(), conn.outbuf.data() + conn.outpos,
                   conn.outbuf.size() - conn.outpos, MSG_NOSIGNAL);
        if (n >= 0) {
          conn.outpos += static_cast<std::size_t>(n);
          continue;
        }
        if (errno == EINTR) continue;
        const auto now = std::chrono::steady_clock::now();
        if ((errno != EAGAIN && errno != EWOULDBLOCK) || now >= deadline) {
          break;
        }
        pollfd waiter{conn.socket.fd(), POLLOUT, 0};
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                  now);
        (void)::poll(&waiter, 1, static_cast<int>(remaining.count()) + 1);
      }
    }
    conns.clear();
  }
};

EventLoop::EventLoop(TcpListener listener, FrameHandler handler,
                     EventLoopOptions options)
    : impl_(std::make_unique<Impl>()) {
  if (!listener.valid()) {
    throw std::invalid_argument("event-loop: invalid listener");
  }
  impl_->handler = std::move(handler);
  impl_->options = std::move(options);
  impl_->listener = std::move(listener);
  impl_->core = std::make_shared<detail::LoopCore>();
  impl_->core->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  impl_->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (impl_->core->wake_fd < 0 || impl_->epoll_fd < 0) {
    throw std::runtime_error("event-loop: epoll/eventfd setup failed");
  }
  impl_->listener.set_nonblocking(true);
  epoll_event listen_event{};
  listen_event.data.u64 = kListenerTag;
  listen_event.events = EPOLLIN;
  epoll_event wake_event{};
  wake_event.data.u64 = kWakeTag;
  wake_event.events = EPOLLIN;
  if (::epoll_ctl(impl_->epoll_fd, EPOLL_CTL_ADD, impl_->listener.fd(),
                  &listen_event) != 0 ||
      ::epoll_ctl(impl_->epoll_fd, EPOLL_CTL_ADD, impl_->core->wake_fd,
                  &wake_event) != 0) {
    throw std::runtime_error("event-loop: epoll registration failed");
  }
  impl_->thread = std::thread([this] { impl_->run(); });
}

EventLoop::~EventLoop() { stop(); }

std::uint16_t EventLoop::port() const noexcept {
  return impl_->listener.port();
}

void EventLoop::shutdown_listener() noexcept {
  // Wakes the loop through the listener fd itself (EPOLLHUP); accept then
  // fails with EINVAL and the loop deregisters it.
  impl_->listener.shutdown();
}

void EventLoop::stop() {
  {
    const std::lock_guard<std::mutex> lock(impl_->core->mutex);
    impl_->core->stop_posted = true;
  }
  impl_->core->notify();
  if (impl_->thread.joinable()) impl_->thread.join();
  impl_->listener.close();
}

}  // namespace ssa::net
