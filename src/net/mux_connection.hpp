#pragma once
/// \file mux_connection.hpp
/// One multiplexed client connection: the sending half of request
/// pipelining. Many calls may be in flight at once on the single TCP
/// stream -- each request frame is stamped with a connection-unique
/// wire request id, the callback is parked in a pending map, and a
/// dedicated reader thread dispatches every response frame to its
/// caller by that id, in whatever order the server answers.
///
/// This is the shared client-side transport of the serving stack:
/// TcpClient layers the blocking/async AuctionClient surface over
/// call()/call_sync(), and the FrontDoor keeps exactly one MuxConnection
/// per backend (its continuation-style forwarding rides the callback
/// form, so a blocking backend get parks a map entry, never a thread).
///
/// Failure model: any transport error, EOF, undecodable response, or a
/// response id that matches no pending call (which covers duplicated
/// ids -- the first response consumed the entry) POISONS the connection:
/// every pending and future call fails with std::runtime_error carrying
/// the original reason. Reconnect by constructing a new MuxConnection;
/// the stream past a protocol violation is untrustworthy by definition.
///
/// Callbacks run on the reader thread (or inline on the calling thread
/// when the failure is immediate); they must not block for long and must
/// not call back into close()/the destructor (deadlock: close joins the
/// reader). Server-reported kError frames are NOT failures at this layer
/// -- they dispatch like any response, and the caller maps them to
/// exceptions (client/tcp_client.cpp does).

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "net/socket.hpp"
#include "wire/protocol.hpp"

namespace ssa::net {

/// Multiplexed request/response client over one TCP connection.
/// Thread-safe: call() freely from any thread.
class MuxConnection {
 public:
  /// Exactly one of the two arguments is meaningful: a response frame on
  /// success, or the poison reason when the transport failed first.
  using Callback =
      std::function<void(std::optional<wire::Frame>, const std::string&)>;

  /// Connects immediately (throws std::runtime_error when nobody
  /// listens) and starts the reader thread.
  MuxConnection(const std::string& host, std::uint16_t port);
  ~MuxConnection();

  MuxConnection(const MuxConnection&) = delete;
  MuxConnection& operator=(const MuxConnection&) = delete;

  /// Starts one call: assigns the next request id, parks \p callback in
  /// the pending map, sends the frame. The callback is invoked exactly
  /// once -- with the response, or with the poison reason (possibly
  /// inline, when the connection is already poisoned or the send fails).
  /// \p context is the span context stamped into the v6 envelope
  /// ({0, 0} = untraced; purely observability, see wire/protocol.hpp).
  void call(wire::MessageType type, std::string_view payload,
            Callback callback, obs::SpanContext context = {});

  /// Blocking convenience over call(): waits for this call's own
  /// response (other calls proceed concurrently) and returns the frame.
  /// Throws std::runtime_error on transport failure/poisoning.
  [[nodiscard]] wire::Frame call_sync(wire::MessageType type,
                                      std::string_view payload,
                                      obs::SpanContext context = {});

  /// True once a transport failure or protocol violation was observed;
  /// every later call fails fast with the recorded reason.
  [[nodiscard]] bool poisoned() const;

  /// Poisons with "connection closed" (failing all pending calls) and
  /// joins the reader thread. Idempotent; must not be called from a
  /// callback. The destructor calls it.
  void close();

 private:
  void reader_loop();
  /// Fails all pending calls with \p reason and half-closes the socket;
  /// first reason wins. Safe from any thread.
  void poison(const std::string& reason);

  TcpConnection connection_;

  mutable std::mutex mutex_;  ///< pending map + id counter + poison state
  std::unordered_map<std::uint64_t, Callback> pending_;
  std::uint64_t next_id_ = 1;
  bool poisoned_ = false;
  std::string poison_reason_;

  std::mutex send_mutex_;  ///< serializes whole-frame writes

  std::thread reader_;  ///< last: joined before the members above die
};

}  // namespace ssa::net
