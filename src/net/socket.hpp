#pragma once
/// \file socket.hpp
/// Minimal RAII TCP primitives for the serving front door and its clients
/// (POSIX sockets; the library's deployment targets are Linux hosts).
/// TcpConnection sends/receives whole wire frames (wire/protocol.hpp) --
/// the length prefix is handled here, so the layers above only ever see
/// complete frame bodies. All operations are blocking; concurrency comes
/// from the callers' threads (one handler thread per accepted connection,
/// one pooled connection per in-flight backend call).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ssa::net {

/// One established, blocking TCP stream. Movable, not copyable; the
/// destructor closes the socket.
class TcpConnection {
 public:
  TcpConnection() = default;
  /// Adopts an already-connected file descriptor (accept(), tests).
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection();

  TcpConnection(TcpConnection&& other) noexcept;
  TcpConnection& operator=(TcpConnection&& other) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Connects to \p host:\p port; throws std::runtime_error on failure.
  [[nodiscard]] static TcpConnection connect(const std::string& host,
                                             std::uint16_t port);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Sends one pre-encoded frame (length prefix included,
  /// wire::encode_frame). Throws std::runtime_error when the peer is gone.
  void send_frame(std::string_view frame);

  /// Receives one frame and returns its BODY (the bytes after the length
  /// prefix, ready for wire::decode_frame_body). nullopt on clean EOF
  /// before the first byte; throws std::runtime_error on mid-frame EOF,
  /// transport errors, or a length beyond wire::kMaxFrameBytes.
  [[nodiscard]] std::optional<std::string> recv_frame();

  /// Half-closes both directions WITHOUT releasing the descriptor: a peer
  /// thread blocked in recv_frame() observes EOF and exits cleanly, after
  /// which the owner may close(). (Closing under a live recv() races the
  /// kernel reusing the fd number, exactly like the listener case.)
  void shutdown_both() noexcept;

  void close() noexcept;

  /// The raw descriptor (still owned by this object) -- what the event
  /// loop registers with epoll and drives with non-blocking reads/writes.
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Switches the descriptor between blocking (the default) and
  /// non-blocking mode. send_frame/recv_frame assume blocking mode; the
  /// event loop owns non-blocking descriptors and never uses them.
  void set_nonblocking(bool nonblocking) noexcept;

 private:
  int fd_ = -1;
};

/// A listening socket bound to the loopback interface. close() (or the
/// destructor) unblocks a concurrent accept().
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds 127.0.0.1:\p port (0 = ephemeral; port() reports the choice)
  /// and listens. Throws std::runtime_error on failure.
  [[nodiscard]] static TcpListener bind_loopback(std::uint16_t port);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Blocks for the next connection; nullopt once shutdown()/close() was
  /// called (the accept-loop exit signal).
  [[nodiscard]] std::optional<TcpConnection> accept();

  /// Unblocks a concurrent accept() WITHOUT closing the descriptor, so a
  /// stop sequence can join its accept thread before close() releases the
  /// fd (closing first would race the kernel reusing the number).
  void shutdown() noexcept;

  void close() noexcept;

  /// The raw descriptor (still owned); the event loop polls it directly.
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Non-blocking mode for event-loop accepting (accept() here assumes
  /// blocking mode and must not be mixed with it).
  void set_nonblocking(bool nonblocking) noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// The loopback address every component of this library binds/dials.
inline constexpr const char* kLoopbackHost = "127.0.0.1";

}  // namespace ssa::net
