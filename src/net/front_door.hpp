#pragma once
/// \file front_door.hpp
/// The cross-process sharding front door: a wire-protocol server that owns
/// no solver at all. It decodes each submit just far enough to compute the
/// canonical 128-bit instance fingerprint (support/fingerprint.hpp), picks
/// the backend that owns that slice of the keyspace (fingerprint.hi mod
/// backend count -- the same consistent-split discipline the service uses
/// for its internal shards), and forwards the original frame bytes
/// untouched. Equal instances therefore always meet the same backend
/// process, which is what keeps the per-backend result caches and
/// coalescing tables effective with zero cross-process coordination --
/// exactly the role the in-process shard routing plays one level down.
///
/// Per backend the door keeps ONE multiplexed connection
/// (net/mux_connection.hpp): every forwarded call is a pipelined request
/// correlated by the v3 wire request id, so a blocking get parks a map
/// entry -- not a connection, not a thread -- and any number of calls
/// share the channel. The door itself serves its clients from one epoll
/// event loop (net/event_loop.hpp); responses are relayed as
/// continuations with the envelope id rewritten to the client's and the
/// payload bytes untouched, so a TcpClient behind the door receives
/// byte-for-byte what the backend produced, and kError frames pass
/// through with their "<solver-key>: <reason>"-pinned messages intact.
/// Door-level failures (unknown id, unreachable backend) use the
/// "front-door" key. Routing decisions are memoized by submit payload
/// bytes, so the cache-warm steady state skips the instance decode.
///
/// Request ids are door-assigned: the door maps its id to (backend,
/// backend id) at submit, routes get/try_get by the map, and drops the
/// entry once the report is claimed. stats aggregates all backends.
/// A wire kShutdown fans out to every backend, then stops the door.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/socket.hpp"

namespace ssa::net {

/// One backend address (ServiceServer processes on this machine or
/// elsewhere; the demo and tests use loopback ports).
struct Endpoint {
  std::string host = kLoopbackHost;
  std::uint16_t port = 0;
};

struct FrontDoorOptions {
  /// Backend wire servers, in keyspace order: backend i owns the
  /// fingerprints with hi % backends.size() == i. The list must not be
  /// empty and its ORDER is the routing contract -- permuting it re-keys
  /// the split (caches go cold), exactly like changing a shard count.
  std::vector<Endpoint> backends;
  /// Loopback port to listen on; 0 picks an ephemeral port (port()).
  std::uint16_t port = 0;
};

/// Routing front door over N backend service processes. Thread-safe; the
/// destructor performs a full stop() (the backends keep running unless a
/// wire kShutdown reached them).
class FrontDoor {
 public:
  explicit FrontDoor(FrontDoorOptions options);
  ~FrontDoor();

  FrontDoor(const FrontDoor&) = delete;
  FrontDoor& operator=(const FrontDoor&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept;
  [[nodiscard]] std::size_t backend_count() const noexcept;

  /// Blocks until a wire kShutdown arrives or stop() is called.
  void wait();

  /// Stops the door: no new connections, backend channels closed (every
  /// in-flight forward fails fast -- a stalled backend cannot wedge the
  /// stop), event loop joined. Does NOT shut the backends down (only a
  /// wire kShutdown does).
  void stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ssa::net
