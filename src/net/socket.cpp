#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "wire/codec.hpp"
#include "wire/protocol.hpp"

namespace ssa::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Writes the whole buffer, retrying on EINTR and partial writes.
/// MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not SIGPIPE.
void send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("net: send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Reads exactly \p size bytes. Returns false on EOF before the first
/// byte when \p eof_ok (the caller treats it as a clean close); EOF
/// mid-buffer always throws.
bool recv_all(int fd, char* data, std::size_t size, bool eof_ok) {
  std::size_t received = 0;
  while (received < size) {
    const ssize_t n = ::recv(fd, data + received, size - received, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("net: recv");
    }
    if (n == 0) {
      if (received == 0 && eof_ok) return false;
      throw std::runtime_error("net: connection closed mid-frame");
    }
    received += static_cast<std::size_t>(n);
  }
  return true;
}

/// Sets/clears O_NONBLOCK; best-effort (fcntl on a live socket only fails
/// for programming errors, which the callers cannot act on anyway).
void set_nonblocking_fd(int fd, bool nonblocking) noexcept {
  if (fd < 0) return;
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return;
  const int wanted = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (wanted != flags) (void)::fcntl(fd, F_SETFL, wanted);
}

}  // namespace

// -- TcpConnection ----------------------------------------------------------

TcpConnection::~TcpConnection() { close(); }

TcpConnection::TcpConnection(TcpConnection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

TcpConnection TcpConnection::connect(const std::string& host,
                                     std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("net: socket");
  TcpConnection connection(fd);  // owns fd from here on
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    throw std::runtime_error("net: bad address " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof address) != 0) {
    throw_errno("net: connect to " + host + ":" + std::to_string(port));
  }
  // Frames are request/response pairs; Nagle would add latency for free.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return connection;
}

void TcpConnection::send_frame(std::string_view frame) {
  if (!valid()) throw std::runtime_error("net: send on a closed connection");
  send_all(fd_, frame.data(), frame.size());
}

std::optional<std::string> TcpConnection::recv_frame() {
  if (!valid()) throw std::runtime_error("net: recv on a closed connection");
  std::uint32_t length = 0;
  if (!recv_all(fd_, reinterpret_cast<char*>(&length), sizeof length,
                /*eof_ok=*/true)) {
    return std::nullopt;  // clean EOF between frames
  }
  if (length > wire::kMaxFrameBytes) {
    throw std::runtime_error("net: frame length " + std::to_string(length) +
                             " exceeds the protocol cap");
  }
  std::string body(length, '\0');
  (void)recv_all(fd_, body.data(), body.size(), /*eof_ok=*/false);
  return body;
}

void TcpConnection::shutdown_both() noexcept {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void TcpConnection::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpConnection::set_nonblocking(bool nonblocking) noexcept {
  set_nonblocking_fd(fd_, nonblocking);
}

// -- TcpListener ------------------------------------------------------------

TcpListener::~TcpListener() { close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

TcpListener TcpListener::bind_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("net: socket");
  TcpListener listener;
  listener.fd_ = fd;  // owns fd from here on
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, kLoopbackHost, &address.sin_addr) != 1) {
    throw std::runtime_error("net: bad loopback address");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof address) != 0) {
    throw_errno("net: bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, SOMAXCONN) != 0) throw_errno("net: listen");
  sockaddr_in bound{};
  socklen_t bound_size = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_size) !=
      0) {
    throw_errno("net: getsockname");
  }
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

std::optional<TcpConnection> TcpListener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return TcpConnection(fd);
    }
    // Transient conditions must not kill the accept loop for the rest of
    // the server's life: a peer that aborted while queued (ECONNABORTED,
    // routine under load) is simply skipped, and momentary fd exhaustion
    // is retried after a breather (the pending connection keeps waiting
    // in the backlog).
    if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) continue;
    if (errno == EMFILE || errno == ENFILE) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    // shutdown()/close() took the listening socket down (EINVAL/EBADF):
    // signal the accept loop to exit.
    return std::nullopt;
  }
}

void TcpListener::shutdown() noexcept {
  // Unblocks a thread parked in accept() (it returns EINVAL); plain
  // close() alone would leave it waiting forever on Linux, and closing
  // the fd under a live accept() races the kernel reusing the number.
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void TcpListener::close() noexcept {
  if (fd_ >= 0) {
    (void)::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpListener::set_nonblocking(bool nonblocking) noexcept {
  set_nonblocking_fd(fd_, nonblocking);
}

}  // namespace ssa::net
