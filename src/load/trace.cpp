#include "load/trace.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numbers>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/asymmetric.hpp"
#include "support/random.hpp"
#include "wire/codec.hpp"

namespace ssa::load {
namespace {

/// Validation shared by the generator (throwing) and the decoder
/// (failing): returns the first problem, or nullptr for a sound spec.
const char* spec_problem(const TraceSpec& spec) noexcept {
  const auto positive = [](double v) { return std::isfinite(v) && v > 0.0; };
  if (!positive(spec.duration_seconds)) return "duration must be > 0";
  if (!positive(spec.rate_per_second)) return "rate must be > 0";
  if (spec.arrivals != ArrivalProcess::kPoisson &&
      spec.arrivals != ArrivalProcess::kOnOffBurst) {
    return "unknown arrival process";
  }
  if (spec.arrivals == ArrivalProcess::kOnOffBurst) {
    if (!positive(spec.burst_rate_multiplier) ||
        !positive(spec.idle_rate_multiplier)) {
      return "on/off rate multipliers must be > 0";
    }
    if (!positive(spec.mean_burst_seconds) ||
        !positive(spec.mean_idle_seconds)) {
      return "on/off holding times must be > 0";
    }
  }
  if (!std::isfinite(spec.diurnal_amplitude) || spec.diurnal_amplitude < 0.0 ||
      spec.diurnal_amplitude >= 1.0) {
    return "diurnal amplitude must be in [0, 1)";
  }
  if (spec.diurnal_amplitude > 0.0 && !positive(spec.diurnal_period_seconds)) {
    return "diurnal period must be > 0";
  }
  if (spec.pool_size == 0) return "pool must hold at least one scenario";
  if (!std::isfinite(spec.zipf_exponent) || spec.zipf_exponent < 0.0) {
    return "zipf exponent must be >= 0";
  }
  if (!std::isfinite(spec.churn_probability) || spec.churn_probability < 0.0 ||
      spec.churn_probability > 1.0) {
    return "churn probability must be in [0, 1]";
  }
  if (spec.churn_probability > 0.0 && spec.max_variants == 0) {
    return "churn needs max_variants >= 1";
  }
  if (!std::isfinite(spec.tight_fraction) || spec.tight_fraction < 0.0 ||
      !std::isfinite(spec.loose_fraction) || spec.loose_fraction < 0.0 ||
      spec.tight_fraction + spec.loose_fraction > 1.0) {
    return "deadline fractions must be >= 0 and sum to <= 1";
  }
  if (spec.bidders < 2 || spec.bidders > 4096) {
    return "bidders must be in [2, 4096]";
  }
  if (spec.channels < 1 ||
      spec.channels > static_cast<std::uint32_t>(
                          AsymmetricInstance::kMaxChannels)) {
    return "channels must be in [1, AsymmetricInstance::kMaxChannels]";
  }
  // The generator's event count is bounded by the peak instantaneous rate.
  const double burst_peak = spec.arrivals == ArrivalProcess::kOnOffBurst
                                ? std::max(spec.burst_rate_multiplier,
                                           spec.idle_rate_multiplier)
                                : 1.0;
  const double peak_rate = spec.rate_per_second *
                           (1.0 + spec.diurnal_amplitude) * burst_peak;
  if (peak_rate * spec.duration_seconds >
      0.5 * static_cast<double>(kMaxTraceEvents)) {
    return "expected event count beyond kMaxTraceEvents";
  }
  return nullptr;
}

void write_spec(wire::Writer& writer, const TraceSpec& spec) {
  writer.u64(spec.seed);
  writer.f64(spec.duration_seconds);
  writer.f64(spec.rate_per_second);
  writer.u8(static_cast<std::uint8_t>(spec.arrivals));
  writer.f64(spec.burst_rate_multiplier);
  writer.f64(spec.idle_rate_multiplier);
  writer.f64(spec.mean_burst_seconds);
  writer.f64(spec.mean_idle_seconds);
  writer.f64(spec.diurnal_amplitude);
  writer.f64(spec.diurnal_period_seconds);
  writer.u32(spec.pool_size);
  writer.f64(spec.zipf_exponent);
  writer.f64(spec.churn_probability);
  writer.u32(spec.max_variants);
  writer.f64(spec.tight_fraction);
  writer.f64(spec.loose_fraction);
  writer.u32(spec.bidders);
  writer.u32(spec.channels);
}

[[nodiscard]] TraceSpec read_spec(wire::Reader& reader) {
  TraceSpec spec;
  spec.seed = reader.u64();
  spec.duration_seconds = reader.f64();
  spec.rate_per_second = reader.f64();
  spec.arrivals = static_cast<ArrivalProcess>(reader.u8());
  spec.burst_rate_multiplier = reader.f64();
  spec.idle_rate_multiplier = reader.f64();
  spec.mean_burst_seconds = reader.f64();
  spec.mean_idle_seconds = reader.f64();
  spec.diurnal_amplitude = reader.f64();
  spec.diurnal_period_seconds = reader.f64();
  spec.pool_size = reader.u32();
  spec.zipf_exponent = reader.f64();
  spec.churn_probability = reader.f64();
  spec.max_variants = reader.u32();
  spec.tight_fraction = reader.f64();
  spec.loose_fraction = reader.f64();
  spec.bidders = reader.u32();
  spec.channels = reader.u32();
  if (!reader.failed() && spec_problem(spec) != nullptr) reader.fail();
  return spec;
}

}  // namespace

Trace generate_trace(const TraceSpec& spec) {
  if (const char* problem = spec_problem(spec)) {
    throw std::invalid_argument(std::string("load: bad trace spec: ") +
                                problem);
  }

  // Independent substreams per concern, so e.g. flipping churn on does not
  // reshuffle the arrival times of an otherwise identical spec.
  Rng root(spec.seed);
  Rng arrivals = root.split(1);
  Rng modulation = root.split(2);
  Rng popularity = root.split(3);
  Rng churn = root.split(4);
  Rng classes = root.split(5);

  // Zipf popularity: cumulative weights 1/(i+1)^s over the pool.
  std::vector<double> cumulative(spec.pool_size);
  double total = 0.0;
  for (std::uint32_t i = 0; i < spec.pool_size; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i) + 1.0, spec.zipf_exponent);
    cumulative[i] = total;
  }

  const bool on_off = spec.arrivals == ArrivalProcess::kOnOffBurst;
  bool burst = true;  // on/off state machine starts in the burst state
  double state_left =
      on_off ? modulation.exponential(1.0 / spec.mean_burst_seconds) : 0.0;

  Trace trace{spec, {}};
  double t = 0.0;
  while (true) {
    // Piecewise-constant rate approximation: the instantaneous rate at the
    // interval start drives the next inter-arrival gap (state flips and
    // the diurnal ramp lag by at most one gap -- fine at serving rates).
    double rate = spec.rate_per_second;
    if (spec.diurnal_amplitude > 0.0) {
      rate *= 1.0 + spec.diurnal_amplitude *
                        std::sin(2.0 * std::numbers::pi * t /
                                 spec.diurnal_period_seconds);
    }
    if (on_off) {
      rate *= burst ? spec.burst_rate_multiplier : spec.idle_rate_multiplier;
    }
    const double gap = arrivals.exponential(rate);
    t += gap;
    if (t > spec.duration_seconds) break;
    if (on_off) {
      state_left -= gap;
      while (state_left <= 0.0) {
        burst = !burst;
        state_left += modulation.exponential(
            1.0 / (burst ? spec.mean_burst_seconds : spec.mean_idle_seconds));
      }
    }

    TraceEvent event;
    event.at_seconds = t;
    const double u = popularity.uniform() * total;
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), u);
    event.scenario = static_cast<std::uint32_t>(
        std::min<std::ptrdiff_t>(it - cumulative.begin(),
                                 static_cast<std::ptrdiff_t>(spec.pool_size) -
                                     1));
    if (churn.bernoulli(spec.churn_probability)) {
      event.variant =
          1 + static_cast<std::uint32_t>(churn.uniform_int(spec.max_variants));
    }
    const double c = classes.uniform();
    if (c < spec.tight_fraction) {
      event.deadline = DeadlineClass::kTight;
    } else if (c < spec.tight_fraction + spec.loose_fraction) {
      event.deadline = DeadlineClass::kLoose;
    }
    trace.events.push_back(event);
    if (trace.events.size() > kMaxTraceEvents) {
      throw std::invalid_argument("load: trace exceeds kMaxTraceEvents");
    }
  }
  return trace;
}

std::string encode_trace(const Trace& trace) {
  wire::Writer writer;
  writer.u32(kTraceMagic);
  writer.u32(kTraceVersion);
  write_spec(writer, trace.spec);
  writer.u64(trace.events.size());
  for (const TraceEvent& event : trace.events) {
    writer.f64(event.at_seconds);
    writer.u32(event.scenario);
    writer.u32(event.variant);
    writer.u8(static_cast<std::uint8_t>(event.deadline));
  }
  return writer.take();
}

std::optional<Trace> decode_trace(std::string_view bytes) {
  wire::Reader reader(bytes);
  if (reader.u32() != kTraceMagic || reader.u32() != kTraceVersion) {
    return std::nullopt;
  }
  Trace trace;
  trace.spec = read_spec(reader);
  const std::uint64_t count = reader.u64();
  // Every event costs 17 bytes; a count beyond the remaining bytes or the
  // global cap can only be corruption.
  if (count > kMaxTraceEvents || count > reader.remaining()) {
    return std::nullopt;
  }
  double last_at = 0.0;
  for (std::uint64_t i = 0; i < count && !reader.failed(); ++i) {
    TraceEvent event;
    event.at_seconds = reader.f64();
    event.scenario = reader.u32();
    event.variant = reader.u32();
    event.deadline = static_cast<DeadlineClass>(reader.u8());
    if (!std::isfinite(event.at_seconds) || event.at_seconds < last_at ||
        event.scenario >= trace.spec.pool_size ||
        event.variant > trace.spec.max_variants ||
        event.deadline > DeadlineClass::kLoose) {
      reader.fail();
      break;
    }
    last_at = event.at_seconds;
    trace.events.push_back(event);
  }
  if (reader.failed() || !reader.exhausted()) return std::nullopt;
  return trace;
}

void write_trace(std::ostream& out, const Trace& trace) {
  const std::string bytes = encode_trace(trace);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::optional<Trace> read_trace(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return decode_trace(buffer.str());
}

Fingerprint trace_fingerprint(const Trace& trace) {
  FingerprintHasher hasher;
  hasher.mix(std::string_view(encode_trace(trace)));
  return hasher.digest();
}

}  // namespace ssa::load
