#pragma once
/// \file workload.hpp
/// Materializes the instances a trace references: ScenarioPool turns the
/// pool coordinates of a TraceEvent -- (scenario, variant) -- into owned
/// gen::NamedInstance objects the driver can submit.
///
/// The pool is a pure function of the TraceSpec fields that shape it
/// (seed, pool_size, bidders, channels): base scenario i cycles through
/// five generator families (disk, random-graph, clique, asym-random,
/// asym-hardness) with a per-index derived seed, so any process that holds
/// the spec -- including one that only loaded the trace file -- rebuilds
/// bitwise-identical instances and therefore identical request
/// fingerprints (the replay guarantee tests/test_load.cpp pins).
///
/// Churn variants (variant > 0) are near duplicates: the base scenario
/// with ONE bidder's valuation resampled from the generator's mixed
/// population, derived deterministically from (seed, scenario, variant).
/// They differ from the base instance by a single valuation -- exactly the
/// near-miss traffic that must MISS the fingerprint cache -- while
/// variant 0 repeats must HIT it.
///
/// Threading: construction and materialize() are single-threaded;
/// afterwards view() is const and safe to call concurrently (the driver
/// materializes every pair a trace uses before starting its submitters).

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "api/any_instance.hpp"
#include "gen/scenario.hpp"
#include "load/trace.hpp"

namespace ssa::load {

/// Owned, deterministic instance pool behind a trace; see the file
/// comment.
class ScenarioPool {
 public:
  /// Builds every base scenario eagerly (pool_size instances). Throws
  /// std::invalid_argument on a malformed spec (via generate-side
  /// validation rules: pool_size >= 1, bidders >= 2, channels in range).
  explicit ScenarioPool(const TraceSpec& spec);

  [[nodiscard]] const TraceSpec& spec() const noexcept { return spec_; }
  /// Base scenarios (spec.pool_size).
  [[nodiscard]] std::size_t size() const noexcept { return base_.size(); }

  /// The owned instance at (scenario, variant), built and cached on first
  /// use. NOT thread-safe (it may mutate the variant cache); references
  /// stay valid for the pool's lifetime. Throws std::out_of_range for a
  /// scenario beyond the pool.
  [[nodiscard]] const gen::NamedInstance& instance(std::uint32_t scenario,
                                                   std::uint32_t variant = 0);

  /// Caches every (scenario, variant) pair \p trace references, making
  /// subsequent view() calls hit-only (and therefore thread-safe).
  void materialize(const Trace& trace);

  /// Non-owning view for one event. Const and safe to call concurrently
  /// AFTER the pair was materialized; throws std::out_of_range for a
  /// variant that was not.
  [[nodiscard]] AnyInstance view(const TraceEvent& event) const;

 private:
  [[nodiscard]] gen::NamedInstance make_base(std::uint32_t scenario) const;
  [[nodiscard]] gen::NamedInstance make_variant(std::uint32_t scenario,
                                                std::uint32_t variant) const;

  TraceSpec spec_;
  std::vector<gen::NamedInstance> base_;
  /// (scenario << 32 | variant) -> near-duplicate instance.
  std::unordered_map<std::uint64_t, gen::NamedInstance> variants_;
};

}  // namespace ssa::load
