#include "load/driver.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace ssa::load {
namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_between(Clock::time_point from,
                                     Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// One fired request travelling from a submitter to its collector.
struct Pending {
  service::RequestId id = 0;
  Clock::time_point fired;
  double budget_seconds = 0.0;
  DeadlineClass deadline = DeadlineClass::kNone;
  bool submit_failed = false;  ///< poisoned entry: count the error, no claim
};

/// Single-producer single-consumer FIFO between a submitter and its
/// collector.
class ClaimQueue {
 public:
  void push(Pending pending) {
    {
      std::lock_guard lock(mutex_);
      queue_.push_back(pending);
    }
    ready_.notify_one();
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    ready_.notify_one();
  }

  /// False once the queue is closed AND drained.
  [[nodiscard]] bool pop(Pending& out) {
    std::unique_lock lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return false;
    out = queue_.front();
    queue_.pop_front();
    return true;
  }

 private:
  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Pending> queue_;
  bool closed_ = false;
};

/// Per-thread measurement shard, merged into the LoadReport at the end.
struct Shard {
  LatencyHistogram service_latency;
  LatencyHistogram turnaround;
  LatencyHistogram lateness;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  double welfare = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t degraded = 0;
  std::uint64_t rejected = 0;
  std::uint64_t timed_out = 0;
  ClassOutcome by_class[3];
  Clock::time_point last_claim;
};

[[nodiscard]] double class_budget(DeadlineClass deadline,
                                  const DriverOptions& options) {
  switch (deadline) {
    case DeadlineClass::kTight: return options.tight_budget_seconds;
    case DeadlineClass::kLoose: return options.loose_budget_seconds;
    case DeadlineClass::kNone: break;
  }
  return 0.0;
}

void collect(client::AuctionClient& client, ClaimQueue& queue, Shard& shard) {
  Pending pending;
  while (queue.pop(pending)) {
    auto& tally = shard.by_class[static_cast<std::size_t>(pending.deadline)];
    tally.requests += 1;
    if (pending.submit_failed) {
      shard.errors += 1;
      if (pending.budget_seconds > 0.0) tally.deadline_missed += 1;
      continue;
    }
    SolveReport report;
    try {
      report = client.get(pending.id);
    } catch (const std::exception&) {
      shard.errors += 1;
      if (pending.budget_seconds > 0.0) tally.deadline_missed += 1;
      continue;
    }
    const Clock::time_point claimed = Clock::now();
    shard.last_claim = claimed;
    shard.completed += 1;
    shard.turnaround.add(seconds_between(pending.fired, claimed));
    shard.welfare += report.welfare;
    shard.cache_hits += report.cache_hit ? 1 : 0;
    shard.coalesced += report.coalesced ? 1 : 0;
    shard.timed_out += report.timed_out ? 1 : 0;
    if (report.admission == Admission::kRejected) {
      // Shed, not slow: excluded from the latency histogram by design.
      shard.rejected += 1;
      if (pending.budget_seconds > 0.0) tally.deadline_missed += 1;
      continue;
    }
    shard.degraded += report.admission == Admission::kDegraded ? 1 : 0;
    const double latency =
        report.cache_hit
            ? 0.0
            : report.queue_wait_seconds +
                  (report.coalesced ? 0.0 : report.wall_time_seconds);
    shard.service_latency.add(latency);
    if (pending.budget_seconds > 0.0) {
      if (latency <= pending.budget_seconds) {
        tally.deadline_met += 1;
      } else {
        tally.deadline_missed += 1;
      }
    }
  }
}

}  // namespace

LoadReport run_trace(client::AuctionClient& client, ScenarioPool& pool,
                     const Trace& trace, const DriverOptions& options) {
  pool.materialize(trace);

  const std::size_t events = trace.events.size();
  const int submitters = static_cast<int>(std::clamp<std::size_t>(
      static_cast<std::size_t>(std::clamp(options.submitters, 1, 64)), 1,
      std::max<std::size_t>(events, 1)));
  const double scale = std::max(options.time_scale, 0.0);

  std::vector<Shard> submit_shards(static_cast<std::size_t>(submitters));
  std::vector<Shard> collect_shards(static_cast<std::size_t>(submitters));
  std::vector<ClaimQueue> queues(static_cast<std::size_t>(submitters));

  // A short runway before the first scheduled fire so thread startup does
  // not register as driver lateness.
  const Clock::time_point start =
      Clock::now() + std::chrono::milliseconds(20);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(submitters) * 2);
  for (int s = 0; s < submitters; ++s) {
    threads.emplace_back([&, s] {
      Shard& shard = submit_shards[static_cast<std::size_t>(s)];
      ClaimQueue& queue = queues[static_cast<std::size_t>(s)];
      // Round-robin partition: every submitter holds a time-ordered
      // subsequence of the trace.
      for (std::size_t i = static_cast<std::size_t>(s); i < events;
           i += static_cast<std::size_t>(submitters)) {
        const TraceEvent& event = trace.events[i];
        const auto offset = std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(event.at_seconds * scale));
        const Clock::time_point scheduled = start + offset;
        if (scale > 0.0 && Clock::now() < scheduled) {
          std::this_thread::sleep_until(scheduled);
        }
        Pending pending;
        pending.fired = Clock::now();
        pending.deadline = event.deadline;
        pending.budget_seconds = class_budget(event.deadline, options);
        shard.lateness.add(seconds_between(scheduled, pending.fired));
        SolveOptions request = options.base_options;
        request.time_budget_seconds = pending.budget_seconds;
        try {
          pending.id = client.submit(pool.view(event), options.solver, request);
        } catch (const std::exception&) {
          pending.submit_failed = true;
        }
        queue.push(pending);
      }
      queue.close();
    });
    threads.emplace_back([&, s] {
      collect(client, queues[static_cast<std::size_t>(s)],
              collect_shards[static_cast<std::size_t>(s)]);
    });
  }
  for (std::thread& thread : threads) thread.join();

  LoadReport report;
  report.requests = events;
  Clock::time_point last_claim = start;
  for (const Shard& shard : submit_shards) {
    report.lateness.merge(shard.lateness);
  }
  for (const Shard& shard : collect_shards) {
    report.service_latency.merge(shard.service_latency);
    report.turnaround.merge(shard.turnaround);
    report.completed += shard.completed;
    report.errors += shard.errors;
    report.total_welfare += shard.welfare;
    report.cache_hits += shard.cache_hits;
    report.coalesced += shard.coalesced;
    report.degraded += shard.degraded;
    report.rejected += shard.rejected;
    report.timed_out += shard.timed_out;
    for (std::size_t c = 0; c < 3; ++c) {
      report.by_class[c].requests += shard.by_class[c].requests;
      report.by_class[c].deadline_met += shard.by_class[c].deadline_met;
      report.by_class[c].deadline_missed += shard.by_class[c].deadline_missed;
    }
    last_claim = std::max(last_claim, shard.last_claim);
  }
  report.elapsed_seconds = seconds_between(start, last_claim);
  const double horizon = trace.spec.duration_seconds * scale;
  report.offered_rate =
      horizon > 0.0 ? static_cast<double>(events) / horizon : 0.0;
  return report;
}

}  // namespace ssa::load
