#pragma once
/// \file driver.hpp
/// Open-loop trace replay against any serving client: run_trace fires a
/// Trace at its scheduled timestamps through an ssa::client::AuctionClient
/// -- LocalClient, TcpClient to a ServiceServer, or TcpClient through a
/// FrontDoor -- and measures what the SERVICE did, separately from how
/// well the DRIVER kept the schedule.
///
/// Open loop means arrivals never wait for completions: each submitter
/// thread paces its (time-ordered, round-robin) share of the events with
/// sleep_until and hands the returned RequestId to a paired collector
/// thread, which claims reports in submission order while the submitter
/// keeps firing. A service that falls behind therefore sees the queue
/// build-up a real arrival process inflicts, instead of the self-throttling
/// a closed loop hides behind.
///
/// Measurement semantics (documented in README "Load & soak harness"):
///  - service latency: what the service took per SERVED request --
///    0 for cache hits (answered at submission), queue_wait_seconds for
///    coalesced followers (attach-to-completion; the leader's solve
///    overlaps it), queue_wait + wall_time for executed solves. Rejected
///    requests are shed, not slow: they count in `rejected` and are
///    excluded from this histogram.
///  - turnaround: submit -> claim per completed request, as the collector
///    observes it (an upper bound: collectors claim FIFO, so one slow
///    leader delays the claim of its successors, not their completion).
///  - lateness: scheduled fire time vs. actual fire time, per event. This
///    is the DRIVER falling behind (oversubscribed submitters, scheduler
///    jitter) and is reported in its own histogram precisely so it cannot
///    be mistaken for -- or silently absorbed into -- service latency.
///
/// Deadline classes: the driver maps TraceEvent::deadline to the per-class
/// budgets in DriverOptions at fire time (budget 0 = submit without a
/// deadline); a classed request whose service latency beat its budget
/// counts as met, a rejected or slower one as missed.

#include <cstdint>
#include <string>

#include "api/solver.hpp"
#include "client/auction_client.hpp"
#include "load/trace.hpp"
#include "load/workload.hpp"
#include "support/histogram.hpp"

namespace ssa::load {

struct DriverOptions {
  /// Paced submission threads (each with a paired collector); clamped to
  /// [1, 64] and to the event count.
  int submitters = 2;
  /// Multiplies every event timestamp: 2.0 halves the offered rate, 0.0
  /// replays as fast as possible (no pacing; lateness then measures replay
  /// progress, not driver health).
  double time_scale = 1.0;
  /// Per-class SolveOptions::time_budget_seconds; 0 submits the class
  /// without a deadline (kNone always submits without one).
  double tight_budget_seconds = 0.0;
  double loose_budget_seconds = 0.0;
  /// Registry key or kAutoSolver, identical for every request.
  std::string solver = client::kAutoSolver;
  /// Per-request options; the driver overwrites time_budget_seconds from
  /// the event's class and leaves everything else constant, so repeats of
  /// one (scenario, variant) stay fingerprint-identical and can hit the
  /// cache.
  SolveOptions base_options;
};

/// Outcome tally of one deadline class (index = DeadlineClass).
struct ClassOutcome {
  std::uint64_t requests = 0;
  /// Only classed requests submitted WITH a budget score met/missed.
  std::uint64_t deadline_met = 0;
  std::uint64_t deadline_missed = 0;
};

/// Everything one replay measured; histograms are merged from the
/// per-thread shards (LatencyHistogram::merge is exact, so the merge
/// order does not matter).
struct LoadReport {
  std::uint64_t requests = 0;   ///< events fired (submit attempted)
  std::uint64_t completed = 0;  ///< reports successfully claimed
  std::uint64_t errors = 0;     ///< submit/claim calls that threw
  double elapsed_seconds = 0.0;  ///< first scheduled fire -> last claim
  double offered_rate = 0.0;     ///< events / scaled trace horizon
  double total_welfare = 0.0;    ///< sum of claimed report welfare

  LatencyHistogram service_latency;  ///< served requests (see file comment)
  LatencyHistogram turnaround;       ///< submit -> claim, completed requests
  LatencyHistogram lateness;         ///< driver schedule slip, every event

  // Provenance tallies over the claimed reports.
  std::uint64_t cache_hits = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t degraded = 0;
  std::uint64_t rejected = 0;
  std::uint64_t timed_out = 0;

  ClassOutcome by_class[3];  ///< indexed by DeadlineClass

  [[nodiscard]] double achieved_rate() const noexcept {
    return elapsed_seconds > 0.0
               ? static_cast<double>(requests) / elapsed_seconds
               : 0.0;
  }
};

/// Replays \p trace against \p client; materializes every (scenario,
/// variant) pair in \p pool up front so the timed loop never generates
/// instances. Blocks until every claim returned. Thread-safe with respect
/// to the client (which is shared across submitters); the pool must not be
/// used concurrently by anyone else during the call.
[[nodiscard]] LoadReport run_trace(client::AuctionClient& client,
                                   ScenarioPool& pool, const Trace& trace,
                                   const DriverOptions& options = {});

}  // namespace ssa::load
