#pragma once
/// \file trace.hpp
/// Deterministic, seed-driven workload traces: the load model the soak
/// harness fires at a serving client (load/driver.hpp). A trace is a
/// time-ordered list of arrival events over a pool of generated scenarios
/// (load/workload.hpp); the generator composes the traffic phenomena the
/// serving layer exists for:
///
///  - arrivals: Poisson, or MMPP-style on/off bursts (two exponential
///    holding times switching the rate between a burst and an idle
///    multiplier);
///  - a diurnal ramp: the base rate modulated by a sinusoid
///    (1 + amplitude * sin(2 pi t / period));
///  - popularity: scenarios drawn Zipf(s) over the pool, so a few
///    instances dominate and exercise the fingerprint cache + coalescing;
///  - churn: with probability churn_probability an arrival is a near
///    duplicate -- the base scenario with one bidder's valuation resampled
///    (variant > 0) -- which must MISS the cache despite looking similar;
///  - deadline classes: each arrival is tagged kTight / kLoose / kNone;
///    the driver maps classes to time budgets at fire time.
///
/// Determinism contract: generate_trace(spec) is a pure function of the
/// spec -- same spec, same bytes, on every platform and compiler
/// (tests/test_load.cpp pins golden trace fingerprints; the only
/// portability assumption is IEEE-754 double arithmetic plus the libm
/// exp/log/sin calls behind Rng and the diurnal ramp, and the pins exist
/// precisely so any drift fails loudly instead of silently).
///
/// On-disk format ("SSAT"), versioned exactly like the wire protocol and
/// the result-cache snapshots:
///
///     u32 kTraceMagic | u32 kTraceVersion | TraceSpec | u64 count | events
///
/// via the little-endian wire::Writer/Reader primitives; any anomaly --
/// short file, bad magic, unknown version, out-of-range enum, trailing
/// garbage -- makes read_trace/decode_trace return nullopt. Bump
/// kTraceVersion on ANY layout change (spec fields included) so old files
/// are rejected cleanly instead of misparsed.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/fingerprint.hpp"

namespace ssa::load {

/// First field of every serialized trace ("SSAT", little-endian).
inline constexpr std::uint32_t kTraceMagic = 0x54415353u;

/// Trace format schema version; see the file comment for when to bump.
inline constexpr std::uint32_t kTraceVersion = 1;

/// Hard cap on generated/decoded events (a spec whose rate * duration
/// lands beyond this is a configuration error, and a corrupt count field
/// must not drive a huge parse loop).
inline constexpr std::uint64_t kMaxTraceEvents = std::uint64_t{1} << 24;

enum class ArrivalProcess : std::uint8_t {
  kPoisson = 0,    ///< time-varying Poisson (diurnal ramp only)
  kOnOffBurst = 1  ///< MMPP-style two-state modulation on top of it
};

enum class DeadlineClass : std::uint8_t {
  kNone = 0,   ///< no time budget
  kTight = 1,  ///< driver applies DriverOptions::tight_budget_seconds
  kLoose = 2   ///< driver applies DriverOptions::loose_budget_seconds
};

/// Full recipe for one trace AND its scenario pool; a spec is the unit of
/// reproducibility (it travels inside the trace file, so a reloaded trace
/// rebuilds the identical pool).
struct TraceSpec {
  std::uint64_t seed = 1;

  // -- arrivals --
  double duration_seconds = 10.0;  ///< trace time horizon (> 0)
  double rate_per_second = 50.0;   ///< base arrival rate (> 0)
  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  /// On/off modulation (kOnOffBurst only): rate multipliers and mean
  /// exponential holding times of the two states.
  double burst_rate_multiplier = 4.0;
  double idle_rate_multiplier = 0.25;
  double mean_burst_seconds = 2.0;
  double mean_idle_seconds = 6.0;
  /// Diurnal ramp: rate(t) *= 1 + amplitude * sin(2 pi t / period).
  /// amplitude in [0, 1); 0 disables, period > 0 when enabled.
  double diurnal_amplitude = 0.0;
  double diurnal_period_seconds = 60.0;

  // -- popularity over the scenario pool --
  std::uint32_t pool_size = 16;  ///< base scenarios (>= 1)
  double zipf_exponent = 1.0;    ///< >= 0; 0 = uniform popularity

  // -- churn (near-duplicate variants) --
  double churn_probability = 0.0;  ///< in [0, 1]
  std::uint32_t max_variants = 4;  ///< variants per scenario (>= 1 w/ churn)

  // -- deadline class mixture (fractions sum to <= 1; rest is kNone) --
  double tight_fraction = 0.0;
  double loose_fraction = 0.0;

  // -- scenario pool shape (load/workload.hpp) --
  std::uint32_t bidders = 12;  ///< bidders per generated instance (>= 2)
  std::uint32_t channels = 2;  ///< channels per generated instance (>= 1)

  [[nodiscard]] friend bool operator==(const TraceSpec&,
                                       const TraceSpec&) = default;
};

/// One arrival: fire the (scenario, variant) instance at \p at_seconds
/// (trace time, ascending within a trace) under \p deadline.
struct TraceEvent {
  double at_seconds = 0.0;
  std::uint32_t scenario = 0;  ///< pool index in [0, spec.pool_size)
  std::uint32_t variant = 0;   ///< 0 = base scenario; > 0 = churn variant
  DeadlineClass deadline = DeadlineClass::kNone;

  [[nodiscard]] friend bool operator==(const TraceEvent&,
                                       const TraceEvent&) = default;
};

struct Trace {
  TraceSpec spec;
  std::vector<TraceEvent> events;  ///< ascending at_seconds

  [[nodiscard]] friend bool operator==(const Trace&, const Trace&) = default;
};

/// Generates the trace a spec describes; pure and deterministic (see the
/// file comment). Throws std::invalid_argument on a malformed spec
/// (non-positive rate/duration/pool, fractions out of range, an expected
/// or actual event count beyond kMaxTraceEvents, ...).
[[nodiscard]] Trace generate_trace(const TraceSpec& spec);

/// Serializes a trace into the versioned "SSAT" byte format.
[[nodiscard]] std::string encode_trace(const Trace& trace);
/// Parses "SSAT" bytes; nullopt on ANY anomaly (strict: trailing bytes
/// fail too).
[[nodiscard]] std::optional<Trace> decode_trace(std::string_view bytes);

/// Stream variants of encode/decode for trace files on disk.
void write_trace(std::ostream& out, const Trace& trace);
[[nodiscard]] std::optional<Trace> read_trace(std::istream& in);

/// Canonical 128-bit digest of the serialized trace -- the golden-pin
/// handle: same spec => same bytes => same fingerprint, across platforms.
[[nodiscard]] Fingerprint trace_fingerprint(const Trace& trace);

}  // namespace ssa::load
