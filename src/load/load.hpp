#pragma once
/// \file load.hpp
/// Umbrella header of the load-harness subsystem: seed-driven trace
/// generation with a versioned on-disk format (trace.hpp), deterministic
/// scenario materialization (workload.hpp), and the open-loop replay
/// driver with histogram telemetry (driver.hpp, support/histogram.hpp).

#include "load/driver.hpp"    // IWYU pragma: export
#include "load/trace.hpp"     // IWYU pragma: export
#include "load/workload.hpp"  // IWYU pragma: export
#include "support/histogram.hpp"  // IWYU pragma: export
