#include "load/workload.hpp"

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

#include "support/random.hpp"

namespace ssa::load {
namespace {

/// Valuation scale of the generator families (gen/scenario.cpp uses 100
/// throughout), so a churned bidder draws from the same population.
constexpr int kMaxValue = 100;

/// Derived 64-bit seed for one (purpose, index) slot of the pool.
[[nodiscard]] std::uint64_t derived_seed(std::uint64_t seed,
                                         std::uint64_t purpose,
                                         std::uint64_t index) {
  return Rng(seed).split(purpose).split(index)();
}

[[nodiscard]] std::uint64_t variant_key(std::uint32_t scenario,
                                        std::uint32_t variant) {
  return (static_cast<std::uint64_t>(scenario) << 32) | variant;
}

}  // namespace

ScenarioPool::ScenarioPool(const TraceSpec& spec) : spec_(spec) {
  if (spec_.pool_size == 0) {
    throw std::invalid_argument("load: pool needs at least one scenario");
  }
  base_.reserve(spec_.pool_size);
  for (std::uint32_t i = 0; i < spec_.pool_size; ++i) {
    base_.push_back(make_base(i));
  }
}

gen::NamedInstance ScenarioPool::make_base(std::uint32_t scenario) const {
  const std::size_t n = spec_.bidders;
  const int k = static_cast<int>(spec_.channels);
  const std::uint64_t seed = derived_seed(spec_.seed, 1, scenario);
  const auto named = [scenario](const char* family) {
    std::string label = family;
    label += '#';
    label += std::to_string(scenario);
    return label;
  };
  switch (scenario % 5) {
    case 0:
      return {named("disk"),
              gen::make_disk_auction(n, k, gen::ValuationMix::kMixed, seed)};
    case 1:
      return {named("random-graph"),
              gen::make_random_graph_auction(n, k, 0.25,
                                             gen::ValuationMix::kMixed, seed)};
    case 2:
      // The edge-LP integrality-gap clique (single channel by design).
      // The seed shuffles the elimination ordering, so pool scenarios are
      // fingerprint-distinct as generated -- repeats of DIFFERENT
      // scenarios never collide in the result caches.
      return {named("clique"), gen::make_clique_auction(n, seed)};
    case 3:
      return {named("asym-random"),
              gen::make_random_asymmetric(n, k, 0.25,
                                          gen::ValuationMix::kMixed, seed)};
    default:
      // Theorem 18 hardness construction: degree bound 2k keeps rho_j <= 2.
      return {named("asym-hardness"),
              gen::make_hardness_instance(n, 2 * k, k, seed)};
  }
}

gen::NamedInstance ScenarioPool::make_variant(std::uint32_t scenario,
                                              std::uint32_t variant) const {
  const gen::NamedInstance& base = base_.at(scenario);
  Rng rng(derived_seed(spec_.seed, 2, variant_key(scenario, variant)));
  const std::string label = base.label + "~v" + std::to_string(variant);
  return std::visit(
      [&](const auto& inst) -> gen::NamedInstance {
        const std::size_t bidder = rng.uniform_int(inst.num_bidders());
        auto valuation =
            gen::random_valuations(1, inst.num_channels(),
                                   gen::ValuationMix::kMixed, kMaxValue, rng)
                .front();
        return {label, inst.with_valuation(bidder, std::move(valuation))};
      },
      base.instance);
}

const gen::NamedInstance& ScenarioPool::instance(std::uint32_t scenario,
                                                 std::uint32_t variant) {
  if (variant == 0) return base_.at(scenario);
  const std::uint64_t key = variant_key(scenario, variant);
  auto it = variants_.find(key);
  if (it == variants_.end()) {
    it = variants_.emplace(key, make_variant(scenario, variant)).first;
  }
  return it->second;
}

void ScenarioPool::materialize(const Trace& trace) {
  for (const TraceEvent& event : trace.events) {
    (void)instance(event.scenario, event.variant);
  }
}

AnyInstance ScenarioPool::view(const TraceEvent& event) const {
  if (event.variant == 0) return base_.at(event.scenario).view();
  return variants_.at(variant_key(event.scenario, event.variant)).view();
}

}  // namespace ssa::load
